"""Quickstart: mount HiNFS on an emulated NVMM device and use it.

Builds the full stack by hand -- simulation environment, NVMM device,
HiNFS, VFS -- then exercises the basic file API and shows where the
written bytes actually live (DRAM write buffer vs NVMM).

Run:  python examples/quickstart.py
"""

from repro.core import HiNFS, HiNFSConfig
from repro.engine.clock import format_ns
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import O_CREAT, O_RDWR, VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


def main():
    # 1. A simulation environment and an emulated NVMM device
    #    (200 ns write latency, 1 GB/s write bandwidth -- Table 2).
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, size=64 << 20)

    # 2. HiNFS with a 4 MiB DRAM write buffer, under a VFS.
    fs = HiNFS(env, device, config,
               hconfig=HiNFSConfig(buffer_bytes=4 << 20))
    vfs = VFS(env, fs, config)

    # 3. A simulated application thread.
    ctx = ExecContext(env, "app")

    # 4. Ordinary file I/O.
    vfs.mkdir(ctx, "/projects")
    fd = vfs.open(ctx, "/projects/notes.txt", O_CREAT | O_RDWR)
    vfs.write(ctx, fd, b"HiNFS hides NVMM write latency.\n" * 1024)

    # The write returned at DRAM speed; the data sits in the buffer:
    print("after write:")
    print("  simulated time spent:  %s" % format_ns(ctx.now))
    print("  buffered DRAM blocks:  %d" % fs.buffer.used_blocks)
    print("  NVMM data bytes:       %d" % env.stats.bytes_written_nvmm)

    # 5. Reading merges DRAM and NVMM transparently.
    vfs.lseek(ctx, fd, 0)
    first_line = vfs.read(ctx, fd, 32)
    print("  read back:             %r" % first_line)

    # 6. fsync makes it durable (and teaches the Buffer Benefit Model).
    before = ctx.now
    vfs.fsync(ctx, fd)
    print("after fsync:")
    print("  fsync cost:            %s" % format_ns(ctx.now - before))
    print("  NVMM bytes written:    %d" % env.stats.bytes_written_nvmm)

    # 7. Crash and remount: the journal recovers a consistent image.
    device.crash()
    fs2 = HiNFS.mount(env, device, config)
    vfs2 = VFS(env, fs2, config)
    data = vfs2.read_file(ctx, "/projects/notes.txt")
    print("after crash + recovery:")
    print("  file intact:           %s (%d bytes)"
          % (data.startswith(b"HiNFS hides"), len(data)))


if __name__ == "__main__":
    main()

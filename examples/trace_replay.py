"""Replay a syscall trace on HiNFS vs PMFS (a miniature Figure 12).

Synthesises a desktop-style trace (or loads one in the repository's
tab-separated trace format), replays it on both file systems, and prints
the per-syscall time breakdown -- the write bucket is where HiNFS's
buffer shows up.

Run:  python examples/trace_replay.py [usr0|usr1|lasr|facebook] [trace-file]
"""

import sys

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.core.config import HiNFSConfig
from repro.workloads.traces import (
    SYNTHESIZERS,
    SyntheticTrace,
    TraceReplayWorkload,
    load_trace,
)

SYSCALLS = ("read", "write", "unlink", "fsync")


def main(argv):
    name = argv[1] if len(argv) > 1 else "usr0"
    if len(argv) > 2:
        with open(argv[2]) as fileobj:
            trace = SyntheticTrace(name, load_trace(fileobj))
    else:
        trace = SYNTHESIZERS[name](ops=3000)
    total, fsynced = trace.fsync_byte_stats()
    print("trace %s: %d records, %.0f KB written, %.0f%% fsync bytes\n"
          % (name, len(trace.records), total / 1e3,
             100 * fsynced / max(1, total)))

    table = Table("replay time by syscall (ms)",
                  ["fs"] + list(SYSCALLS) + ["total"])
    totals = {}
    for fs_name in ("hinfs", "pmfs"):
        result = run_workload(
            fs_name, TraceReplayWorkload(trace),
            device_size=128 << 20,
            hinfs_config=HiNFSConfig(buffer_bytes=8 << 20),
        )
        ms = [result.stats.syscall_time_ns.get(s, 0) / 1e6 for s in SYSCALLS]
        totals[fs_name] = sum(ms)
        table.add_row(fs_name, *ms, sum(ms))
    print(table)
    saved = 1 - totals["hinfs"] / totals["pmfs"]
    print("\nHiNFS reduces replay time by %.0f%%" % (100 * saved))


if __name__ == "__main__":
    main(sys.argv)

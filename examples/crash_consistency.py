"""Crash-consistency walkthrough: ordered mode with deferred commits.

Demonstrates the guarantees Section 4.1 of the paper claims:

1. Data synced with fsync (or written O_SYNC) survives a power failure.
2. Lazy-persistent data still in the DRAM buffer is lost on a crash --
   but the metadata transaction that referenced it was never committed,
   so recovery rolls the file back to a consistent earlier state
   (ordered-mode invariant: metadata never points at unwritten data).
3. The journal's undo entries repair even the nasty case where the CPU
   cache evicted new metadata to NVMM before the commit record landed.
4. And the systematic version of all of the above: the crash-point
   explorer replays a mixed workload, reconstructs the NVMM image at
   *every* flush/fence boundary (plus sampled cache-eviction states),
   and re-mounts each one, checking the recovery invariants.

Run:  python examples/crash_consistency.py
Exits non-zero if any guarantee fails to hold.
"""

import sys

from repro.core import HiNFS, HiNFSConfig
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults.crashpoints import run_crashcheck
from repro.fs import O_CREAT, O_RDWR, O_SYNC, VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice

FAILURES = []


def check(label, ok, detail=""):
    print("%-42s %s%s" % (label, "ok" if ok else "FAILED",
                          " (%s)" % detail if detail else ""))
    if not ok:
        FAILURES.append(label)


def fresh_stack():
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, 32 << 20)
    fs = HiNFS(env, device, config, hconfig=HiNFSConfig(buffer_bytes=2 << 20))
    return env, config, device, fs, VFS(env, fs, config)


def remount(env, config, device):
    fs = HiNFS.mount(env, device, config)
    return fs, VFS(env, fs, config)


def scenario_fsync_survives():
    env, config, device, fs, vfs = fresh_stack()
    ctx = ExecContext(env, "app")
    fd = vfs.open(ctx, "/mail", O_CREAT | O_RDWR)
    vfs.write(ctx, fd, b"delivered " * 500)
    vfs.fsync(ctx, fd)
    device.crash()
    _, vfs = remount(env, config, device)
    data = vfs.read_file(ctx, "/mail")
    check("1. fsynced data survives the crash",
          data == b"delivered " * 500, "%d bytes" % len(data))


def scenario_lazy_data_rolls_back():
    env, config, device, fs, vfs = fresh_stack()
    ctx = ExecContext(env, "app")
    # Durable baseline, then a clean remount so the Benefit Model has no
    # sync history (a freshly mounted file starts Lazy-Persistent).
    vfs.write_file(ctx, "/doc", b"v1 " * 100, sync=True)
    vfs.unmount(ctx)
    _, vfs = remount(env, config, device)
    # A lazy overwrite + extension: buffered in DRAM, tx left open.
    fd = vfs.open(ctx, "/doc", O_CREAT | O_RDWR)
    vfs.pwrite(ctx, fd, 0, b"v2 " * 400)
    device.crash()
    _, vfs = remount(env, config, device)
    st = vfs.stat(ctx, "/doc")
    data = vfs.read_file(ctx, "/doc")
    check("2. lazy overwrite rolls back cleanly",
          st.size == 300 and data.startswith(b"v1 "),
          "size %d after recovery" % st.size)


def scenario_o_sync_is_eager():
    env, config, device, fs, vfs = fresh_stack()
    ctx = ExecContext(env, "app")
    fd = vfs.open(ctx, "/wal", O_CREAT | O_RDWR | O_SYNC)
    vfs.write(ctx, fd, b"commit-record")
    device.crash()
    _, vfs = remount(env, config, device)
    check("3. O_SYNC write survives the crash",
          vfs.read_file(ctx, "/wal") == b"commit-record")


def scenario_evicted_metadata_repaired():
    env, config, device, fs, vfs = fresh_stack()
    ctx = ExecContext(env, "app")
    vfs.write_file(ctx, "/t", b"A" * 4096, sync=True)
    fd = vfs.open(ctx, "/t", O_CREAT | O_RDWR)
    vfs.pwrite(ctx, fd, 4096, b"B" * 4096)  # lazy growth, tx open
    # Worst case: the cache evicts *everything* volatile (including the
    # uncommitted metadata) right before the power failure.
    device.crash(evict_lines=device.mem.dirty_line_indices())
    _, vfs = remount(env, config, device)
    st = vfs.stat(ctx, "/t")
    check("4. undo journal repairs evicted metadata", st.size == 4096,
          "size %d" % st.size)


def scenario_exhaustive_crash_points():
    # Every flush/fence boundary of a mixed create/append/rename/unlink
    # sequence, on both file systems, plus sampled eviction states.
    for report in run_crashcheck(seed=0, eviction_samples_per_op=16):
        print("   %s" % report.summary())
        check("5. crash-point exploration (%s)" % report.fs_kind, report.ok,
              "%d violation(s)" % len(report.failures) if report.failures
              else "")
        for violation in report.failures[:5]:
            print("     %s" % violation, file=sys.stderr)


if __name__ == "__main__":
    scenario_fsync_survives()
    scenario_lazy_data_rolls_back()
    scenario_o_sync_is_eager()
    scenario_evicted_metadata_repaired()
    scenario_exhaustive_crash_points()
    if FAILURES:
        print("\n%d scenario(s) FAILED" % len(FAILURES), file=sys.stderr)
        sys.exit(1)
    print("\nall crash-consistency guarantees held")

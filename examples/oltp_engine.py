"""An OLTP storage engine on HiNFS: where the Benefit Model earns its keep.

The TPC-C-style engine commits every transaction with a WAL append +
fsync.  Those WAL blocks can never coalesce writes between syncs, so
HiNFS's Buffer Benefit Model marks them Eager-Persistent and routes them
straight to NVMM -- skipping the double copy that a naive write buffer
(HiNFS-WB) would pay.  Table pages between checkpoints, by contrast,
coalesce nicely and stay Lazy-Persistent.

Run:  python examples/oltp_engine.py
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.core.config import HiNFSConfig
from repro.workloads.macro import TPCC


def main():
    table = Table("TPC-C mini engine: elapsed time and write routing",
                  ["fs", "elapsed_ms", "eager_writes", "lazy_writes",
                   "model_accuracy_%"])
    for fs_name in ("hinfs", "hinfs-wb", "pmfs"):
        workload = TPCC(transactions=400)
        result = run_workload(
            fs_name, workload,
            device_size=128 << 20,
            hinfs_config=HiNFSConfig(buffer_bytes=8 << 20),
        )
        accuracy = ""
        if result.fs is not None and hasattr(result.fs, "benefit"):
            model = result.fs.benefit
            if model.accuracy is not None:
                accuracy = "%.1f" % (100 * model.accuracy)
        table.add_row(
            fs_name,
            result.elapsed_ns / 1e6,
            result.stats.count("hinfs_eager_writes"),
            result.stats.count("hinfs_lazy_writes"),
            accuracy,
        )
    print(table)
    print("\nThe WAL's fsync-per-commit pattern drives its blocks")
    print("Eager-Persistent; table pages stay Lazy-Persistent and are")
    print("coalesced in DRAM until the periodic checkpoint.")


if __name__ == "__main__":
    main()

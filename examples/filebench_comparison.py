"""Compare the five file systems on a filebench personality.

A miniature of the paper's Figure 7: runs the chosen personality on
HiNFS, PMFS, EXT4-DAX, and EXT2/EXT4+NVMMBD and prints throughput
normalised to PMFS.

Run:  python examples/filebench_comparison.py [fileserver|webserver|webproxy|varmail]
"""

import sys

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.core.config import HiNFSConfig
from repro.workloads.filebench import Fileserver, Varmail, Webproxy, Webserver

PERSONALITIES = {
    "fileserver": Fileserver,
    "webserver": Webserver,
    "webproxy": Webproxy,
    "varmail": Varmail,
}

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")


def main(argv):
    name = argv[1] if len(argv) > 1 else "fileserver"
    cls = PERSONALITIES[name]
    table = Table("%s: throughput (ops/s) by file system" % name,
                  ["fs", "ops_per_sec", "vs_pmfs", "nvmm_MB_written"])
    results = {}
    for fs_name in FILE_SYSTEMS:
        workload = cls(threads=2, files_per_thread=60, duration_ops=100_000)
        results[fs_name] = run_workload(
            fs_name, workload,
            device_size=128 << 20,
            duration_ns=300_000_000,
            hinfs_config=HiNFSConfig(buffer_bytes=8 << 20),
            cache_pages=2048,
        )
    base = results["pmfs"].throughput
    for fs_name, result in results.items():
        table.add_row(fs_name, result.throughput, result.throughput / base,
                      result.nvmm_bytes_written / 1e6)
    print(table)


if __name__ == "__main__":
    main(sys.argv)

"""Mapping-targeted fault injection for the mmio data plane.

Library-mode I/O never crosses the VFS, so request-id targeting
(:mod:`repro.faults.reqfault`) cannot reach it.  This injector arms
faults against *mapping operations* instead: a ``("store", ino)`` arm
fails the next store through inode ``ino``'s atomic mapping with EIO,
``("append", None)`` fails the next log append on any mapping, and so
on -- letting tests ask "what does a failed epoch-log append do to the
mapping?" without poisoning media addresses.

Wire it up by setting ``fs.mmio_faults`` to an instance; the mapping
consults it at every load/store/msync/log-append boundary.
"""

from repro.fs.errors import MediaError

#: Operation points the mapping checks, in hot-path order.
OPS = ("load", "store", "msync", "append")


class MmioFaultInjector:
    """Fails armed mapping operations with EIO."""

    def __init__(self):
        # (op, ino_or_None) -> remaining hit budget (-1 = unlimited).
        self._armed = {}
        self.hits = 0

    def arm(self, op, ino=None, max_hits=1):
        """Target ``op`` (on one inode, or any with ``ino=None``);
        ``max_hits=None`` keeps firing.  Returns self for chaining."""
        if op not in OPS:
            raise ValueError("unknown mmio fault point %r" % (op,))
        self._armed[(op, ino)] = -1 if max_hits is None else int(max_hits)
        return self

    def disarm(self, op, ino=None):
        self._armed.pop((op, ino), None)

    def check(self, op, ino):
        """Raise EIO if ``(op, ino)`` (or the any-inode arm) is armed."""
        for key in ((op, ino), (op, None)):
            budget = self._armed.get(key)
            if budget is None or budget == 0:
                continue
            if budget > 0:
                self._armed[key] = budget - 1
            self.hits += 1
            raise MediaError(
                "injected mmio fault at %s (ino %s)" % (op, ino)
            )

"""Deterministic NVMM media-fault injection.

Real NVMM is not pristine: cells wear out, stray writes corrupt lines,
and the memory controller surfaces uncorrectable errors as machine
checks that the kernel turns into EIO (KucoFS, Chen et al., argues
PMFS-class systems must survive exactly this).  The
:class:`MediaFaultModel` is a seeded registry of bad cachelines attached
to an :class:`~repro.nvmm.device.NVMMDevice`:

- **Permanent faults** (``poison_line``) fail every read and persist of
  the line until ``heal_line``.
- **Transient faults** (``inject_transient``) fail a configured number of
  persist attempts and then succeed; the device retries them with
  exponential backoff in virtual time and only marks the line bad when
  the retry budget is exhausted.

All failure decisions are deterministic: the same seed and the same
access sequence produce the same faults, so fault runs are replayable.
"""

import random

from repro.mem.region import CACHELINE_SIZE


class MediaFaultModel:
    """Registry of bad and transiently-failing cachelines on one device."""

    def __init__(self, seed=0):
        self._rng = random.Random(seed)
        self._bad = set()
        # line -> remaining persist attempts that will fail
        self._transient = {}
        #: Accesses failed so far, by kind (observability + degradation
        #: thresholds read these).
        self.read_errors = 0
        self.persist_errors = 0
        self.retries = 0
        # Environment whose SimStats mirrors the counters above (so fault
        # activity shows up in `hinfs-bench trace` / --json, not only on
        # this object).  Set by NVMMDevice.attach_faults.
        self._env = None

    def bind(self, env):
        """Mirror fault counters into ``env.stats``; returns self."""
        self._env = env
        return self

    def _bump(self, name):
        if self._env is not None:
            self._env.stats.bump(name)

    # -- registry ---------------------------------------------------------

    @property
    def bad_lines(self):
        return frozenset(self._bad)

    def poison_line(self, line):
        """Mark ``line`` permanently bad (uncorrectable)."""
        self._bad.add(int(line))

    def heal_line(self, line):
        """Clear a line's faults (media replacement in tests)."""
        self._bad.discard(line)
        self._transient.pop(line, None)

    def inject_transient(self, line, failures=1):
        """Make the next ``failures`` persist attempts of ``line`` fail."""
        if failures <= 0:
            raise ValueError("failures must be positive")
        self._transient[int(line)] = failures

    def scatter(self, nlines, region_lines):
        """Poison ``nlines`` distinct random lines in ``[0, region_lines)``.

        Returns the poisoned line indices (deterministic per seed).
        """
        if region_lines < 0:
            raise ValueError("region_lines must be >= 0, got %d" % region_lines)
        if not 0 <= nlines <= region_lines:
            raise ValueError(
                "cannot poison %d lines in a region of %d lines"
                % (nlines, region_lines)
            )
        if nlines == 0:
            return []
        lines = self._rng.sample(range(region_lines), nlines)
        for line in lines:
            self.poison_line(line)
        return sorted(lines)

    # -- access checks (called by the device) ------------------------------

    @staticmethod
    def _lines_of(addr, length):
        if length <= 0:
            return range(0, 0)
        first = addr // CACHELINE_SIZE
        last = (addr + length - 1) // CACHELINE_SIZE
        return range(first, last + 1)

    def failing_read_lines(self, addr, length):
        """Permanently-bad lines overlapping a load (reads do not retry:
        an uncorrectable line is uncorrectable)."""
        bad = [line for line in self._lines_of(addr, length) if line in self._bad]
        if bad:
            self.read_errors += 1
            self._bump("media_read_errors")
        return bad

    def probe_persist(self, addr, length):
        """One persist attempt over a range.

        Returns ``(permanent, transient)`` failing line lists.  Transient
        counters are consumed by the probe, so a retry loop observes the
        line recovering once its injected failures are spent.
        """
        permanent = []
        transient = []
        for line in self._lines_of(addr, length):
            if line in self._bad:
                permanent.append(line)
            elif self._transient.get(line, 0) > 0:
                self._transient[line] -= 1
                if self._transient[line] == 0:
                    del self._transient[line]
                transient.append(line)
        if permanent or transient:
            self.persist_errors += 1
            self._bump("media_persist_errors")
        return permanent, transient

    def note_retry(self):
        """The device is retrying a transiently-failed persist."""
        self.retries += 1
        self._bump("media_retries")

    def mark_bad(self, line):
        """Retry budget exhausted: the line is now permanently bad."""
        self._bad.add(line)
        self._transient.pop(line, None)
        self._bump("media_lines_marked_bad")

    def __repr__(self):
        return "MediaFaultModel(bad=%d, transient=%d, errors=%d/%d)" % (
            len(self._bad),
            len(self._transient),
            self.read_errors,
            self.persist_errors,
        )

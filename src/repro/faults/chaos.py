"""Seeded chaos campaigns: faults mid-workload, then prove recovery.

One campaign drives a seeded workload against a live stack while
injecting every fault class the harness models --

- permanent media faults (poisoned cachelines) in allocated data blocks,
- transient persist failures (the device's retry policy absorbs them),
- ring-level EIO on specific SQEs (the ring's retry policy resubmits),
- for the NVMM-native stacks, a torn-write power failure: volatile lines
  are lost, a seeded subset of one dirty line's 8-byte words persists,
  and the journal must recover the image --

then exercises the full recovery story: the mount-health FSM degrades
under the error threshold, a scrub pass repairs or isolates every bad
line, the FSM's recovery edge returns the mount to HEALTHY, and a
write + fsync + read afterwards must succeed.

Throughout, an in-DRAM reference model (path -> bytes) tracks what every
file must read back.  The oracle at each checkpoint: a file's content
matches the reference *unless the stack reported the loss* (a raised
EIO, or an errseq record the next fsync/close will surface).  Silent
divergence is a violation; a campaign must end with zero.

Everything is seeded and iteration-ordered, so the same seed reproduces
the same fault sites, the same recovery outcomes, and the same SimStats.
"""

import random

from repro.engine.background import BackgroundRegistry
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults.media import MediaFaultModel
from repro.faults.policy import RetryPolicy
from repro.faults.ringfault import RingFaultInjector
from repro.fs import flags as f
from repro.fs.errors import FSError, MediaError, ReadOnly
from repro.fs.health import HEALTHY
from repro.fs.vfs import VFS
from repro.mem.region import CACHELINE_SIZE
from repro.nvmm.config import BLOCK_SIZE, NVMMConfig

#: The paper's comparison set: every stack the campaign must survive on.
CHAOS_STACKS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")

#: Stacks whose persistent image lives in NVMM proper (PMFS layout with
#: an undo journal): these get the torn-write crash leg.  The NVMMBD
#: stacks keep all metadata in DRAM; power failure is out of their
#: contract, so they only run the media/ring/scrub legs.
TORN_CRASH_STACKS = ("hinfs", "pmfs")

LINES_PER_BLOCK = BLOCK_SIZE // CACHELINE_SIZE
WORD_SIZE = 8
WORDS_PER_LINE = CACHELINE_SIZE // WORD_SIZE


class ChaosCampaign:
    """One seeded fault campaign against one file-system stack."""

    def __init__(self, fs_name, seed=0, config=None, device_size=32 << 20,
                 rounds=2, files=4, writes_per_round=6,
                 media_faults_per_round=2, transients_per_round=1,
                 media_error_threshold=3):
        self.fs_name = fs_name
        self.seed = seed
        self.config = config or NVMMConfig()
        self.device_size = device_size
        self.rounds = rounds
        self.files = ["/c%d" % i for i in range(files)]
        self.writes_per_round = writes_per_round
        self.media_faults_per_round = media_faults_per_round
        self.transients_per_round = transients_per_round
        self.media_error_threshold = media_error_threshold
        self._rng = random.Random("chaos:%s:%d" % (fs_name, seed))
        # -- live state (set by run) --
        self.env = None
        self.fs = None
        self.vfs = None
        self.ctx = None
        self.model = None
        # path -> bytearray of what the file must read back now
        self.reference = {}
        # paths with a reported (non-silent) error: raised EIO or errseq
        self.reported = set()
        # paths written since their last successful fsync (skip strict
        # content checks across a crash)
        self.dirty_since_sync = set()
        # -- results --
        self.fault_lines = []
        self.transient_lines = []
        self.ring_fault_seqs = []
        self.scrub_reports = []
        self.violations = []
        self.acknowledged_losses = 0

    # -- plumbing ---------------------------------------------------------

    def _device(self):
        bdev = getattr(self.fs, "bdev", None)
        return bdev.nvmm if bdev is not None else self.fs.device

    def _ino(self, path):
        return self.fs.lookup(self.ctx, 1, path.lstrip("/"))

    def _file_extents(self, path):
        """The file's ``(file_block, device_block)`` pairs, sorted."""
        ino = self._ino(path)
        if ino is None:
            return []
        if hasattr(self.fs, "_map"):
            return sorted(self.fs._map(ino).mapped_blocks())
        return sorted(self.fs._inodes[ino].blocks.items())

    def _data_blocks(self, path):
        """The file's physical blocks on the device, sorted."""
        return sorted(b for _fb, b in self._file_extents(path))

    def _mark_reported(self, path):
        if path not in self.reported:
            self.reported.add(path)

    def _violation(self, message):
        self.violations.append("%s: %s" % (self.fs_name, message))

    # -- workload ---------------------------------------------------------

    def _payload(self, length, tag):
        rng = random.Random("chaos-data:%s:%d:%d"
                            % (self.fs_name, self.seed, tag))
        return bytes(rng.randrange(256) for _ in range(length))

    def _apply_write(self, path, offset, data):
        buf = self.reference[path]
        if offset > len(buf):
            buf.extend(b"\0" * (offset - len(buf)))
        buf[offset:offset + len(data)] = data

    def _workload_round(self, round_index):
        """Seeded writes + fsyncs over the campaign files, with the
        reference model tracking every acknowledged byte."""
        for op in range(self.writes_per_round):
            path = self._rng.choice(self.files)
            offset = self._rng.randrange(0, 12 << 10)
            length = self._rng.randrange(64, 4096)
            tag = round_index * 1000 + op
            data = self._payload(length, tag)
            try:
                fd = self.vfs.open(self.ctx, path, f.O_RDWR | f.O_CREAT)
            except (MediaError, ReadOnly):
                self._mark_reported(path)
                continue
            try:
                self.vfs.pwrite(self.ctx, fd, offset, data)
                self.reference.setdefault(path, bytearray())
                self._apply_write(path, offset, data)
                self.dirty_since_sync.add(path)
                if self._rng.random() < 0.6:
                    self.vfs.fsync(self.ctx, fd)
                    self.dirty_since_sync.discard(path)
            except (MediaError, ReadOnly):
                # EIO was *raised*: the loss is reported, not silent.
                self._mark_reported(path)
            finally:
                try:
                    self.vfs.close(self.ctx, fd)
                except MediaError:
                    self._mark_reported(path)

    # -- fault injection --------------------------------------------------

    def _inject_media_faults(self, nfaults):
        """Poison seeded lines inside allocated data blocks of campaign
        files (where the loss is observable by the oracle)."""
        sites = []
        for path in self.files:
            for block in self._data_blocks(path):
                base = block * LINES_PER_BLOCK
                sites.extend(range(base, base + LINES_PER_BLOCK))
        injected = []
        while sites and len(injected) < nfaults:
            line = sites.pop(self._rng.randrange(len(sites)))
            if line in self.model.bad_lines:
                continue
            self.model.poison_line(line)
            injected.append(line)
        self.fault_lines.extend(sorted(injected))
        return sorted(injected)

    def _inject_transients(self, ntransients):
        """Schedule a transient persist failure, then immediately drive a
        full-block overwrite + fsync over the faulted line, so the
        device's retry policy is exercised deterministically (and must
        absorb the failure without surfacing an error)."""
        injected = []
        for n in range(ntransients):
            path = self._rng.choice(self.files)
            extents = self._file_extents(path)
            if not extents:
                continue
            fb, block = extents[self._rng.randrange(len(extents))]
            line = block * LINES_PER_BLOCK \
                + self._rng.randrange(LINES_PER_BLOCK)
            self.model.inject_transient(line, failures=1)
            injected.append(line)
            data = self._payload(BLOCK_SIZE,
                                 5000 + len(self.transient_lines) + n)
            try:
                fd = self.vfs.open(self.ctx, path, f.O_RDWR)
            except (MediaError, ReadOnly):
                self._mark_reported(path)
                continue
            try:
                self.vfs.pwrite(self.ctx, fd, fb * BLOCK_SIZE, data)
                self._apply_write(path, fb * BLOCK_SIZE, data)
                self.vfs.fsync(self.ctx, fd)
                self.dirty_since_sync.discard(path)
            except (MediaError, ReadOnly):
                self._mark_reported(path)
            finally:
                try:
                    self.vfs.close(self.ctx, fd)
                except MediaError:
                    self._mark_reported(path)
        self.transient_lines.extend(sorted(injected))

    def _arm_ring_faults(self):
        """Arm a transient EIO on an upcoming SQE; the ring's retry
        policy resubmits it and the operation must succeed."""
        ring = self.vfs.ring(self.ctx)
        if ring.retry_policy is None:
            ring.retry_policy = RetryPolicy(
                max_retries=2,
                base_backoff_ns=self.config.media_retry_backoff_ns,
                multiplier=2.0, jitter_frac=0.0, breaker_threshold=32,
            )
        if ring.faults is None:
            ring.faults = RingFaultInjector(max_hits=0)
        seq = ring._seq + self._rng.randrange(1, self.writes_per_round)
        ring.faults.arm_fail(seq)
        ring.faults.max_hits += 1
        self.ring_fault_seqs.append(seq)

    # -- oracle -----------------------------------------------------------

    def _refresh_reported(self):
        """Fold the errseq map into the reported set: an async loss the
        next fsync/close would surface counts as reported."""
        for path in sorted(self.reference):
            ino = self._ino(path)
            if ino is None:
                continue
            hit, _cursor = self.fs.wb_err.check(ino, 0)
            if hit:
                self._mark_reported(path)

    def _check_oracle(self, where, skip_dirty=False):
        """Every file matches the reference, or its loss was reported."""
        self._refresh_reported()
        for path in sorted(self.reference):
            if skip_dirty and path in self.dirty_since_sync:
                continue
            expect = bytes(self.reference[path])
            try:
                got = self.vfs.read_file(self.ctx, path)
            except MediaError:
                self._mark_reported(path)
                continue
            except FSError as exc:
                self._violation("%s unreadable at %s: %s"
                                % (path, where, exc))
                continue
            if got == expect:
                continue
            if path in self.reported:
                self.acknowledged_losses += 1
            else:
                self._violation(
                    "silent divergence on %s at %s (%d bytes vs %d)"
                    % (path, where, len(got), len(expect)))

    # -- recovery legs ----------------------------------------------------

    def _scrub_until_clean(self, where, max_passes=3):
        for _ in range(max_passes):
            report = self.vfs.scrub(self.ctx)
            self.scrub_reports.append(report)
            if report.clean:
                return report
        self._violation("scrub did not converge at %s (%d bad lines left)"
                        % (where, len(self.model.bad_lines)))
        return report

    def _degradation_leg(self):
        """Drop DRAM copies, poison a victim file, read it until the
        health FSM degrades, then recover via scrub."""
        self.fs.unmount(self.ctx)
        self.fs.drop_caches()
        self.dirty_since_sync.clear()
        victim = self.files[0]
        blocks = self._data_blocks(victim)
        if blocks:
            base = blocks[0] * LINES_PER_BLOCK
            for r in range(min(2, LINES_PER_BLOCK)):
                if base + r not in self.model.bad_lines:
                    self.model.poison_line(base + r)
                    self.fault_lines.append(base + r)
        attempts = 0
        while self.vfs.health.state == HEALTHY and attempts < \
                self.media_error_threshold * 3:
            attempts += 1
            try:
                self.vfs.read_file(self.ctx, victim)
            except MediaError:
                self._mark_reported(victim)
        if self.vfs.health.state == HEALTHY:
            self._violation("mount never degraded under repeated EIO")
            return
        # Degraded: mutations must be refused ...
        try:
            self.vfs.write_file(self.ctx, "/degraded-probe", b"x")
            self._violation("write succeeded on a degraded mount")
        except ReadOnly:
            pass
        # ... and a clean scrub must bring the mount back.
        self._scrub_until_clean("degradation leg")
        if self.vfs.health.state != HEALTHY:
            self._violation("mount did not recover after a clean scrub "
                            "(state=%s)" % self.vfs.health.state)

    def _post_recovery_probe(self):
        """After recovery the mount must be fully serviceable again."""
        try:
            self.vfs.write_file(self.ctx, "/recovered", b"alive" * 16,
                                sync=True)
            back = self.vfs.read_file(self.ctx, "/recovered")
        except FSError as exc:
            self._violation("post-recovery I/O failed: %s" % exc)
            return
        if back != b"alive" * 16:
            self._violation("post-recovery read returned wrong bytes")

    def _torn_crash_leg(self):
        """Power-fail with a torn line: volatile lines are lost, a seeded
        proper subset of one dirty line's 8-byte words persists, and
        journal recovery must produce a consistent image."""
        device = self._device()
        mem = device.mem
        # Leave some writes unsynced so the crash has volatile state.
        for op, path in enumerate(self.files[:2]):
            data = self._payload(1024, 9000 + op)[:1024]
            try:
                self.vfs.write_file(self.ctx, path, data)
            except (MediaError, ReadOnly):
                self._mark_reported(path)
                continue
            self.reference[path] = bytearray(data)
            self.dirty_since_sync.add(path)
        # PMFS persists data eagerly and HiNFS stages writes in DRAM, so
        # at a syscall boundary no NVMM store is ever pending.  Model
        # power failing in the *middle* of a data persist: issue the
        # stores for one more overwrite through the volatile cache and
        # cut power before any clflush retires.
        victim = self.files[0]
        blocks = self._data_blocks(victim)
        if blocks:
            block = blocks[self._rng.randrange(len(blocks))]
            pending = self._payload(4 * CACHELINE_SIZE, 9100)
            mem.write(block * BLOCK_SIZE, pending)
            self.dirty_since_sync.add(victim)
        dirty = mem.dirty_line_indices()
        torn = None
        if dirty:
            line = dirty[self._rng.randrange(len(dirty))]
            new = mem.dirty_lines_snapshot()[line]
            old = mem.persistent_snapshot()[
                line * CACHELINE_SIZE:(line + 1) * CACHELINE_SIZE]
            # A proper nonempty word subset: genuinely torn, not a plain
            # lost-or-persisted line.
            count = self._rng.randint(1, WORDS_PER_LINE - 1)
            words = self._rng.sample(range(WORDS_PER_LINE), count)
            image = bytearray(old)
            for w in words:
                image[w * WORD_SIZE:(w + 1) * WORD_SIZE] = \
                    new[w * WORD_SIZE:(w + 1) * WORD_SIZE]
            evictable = [ln for ln in dirty if ln != line]
            nevict = self._rng.randint(0, len(evictable)) \
                if evictable else 0
            evicted = sorted(self._rng.sample(evictable, nevict))
            device.crash(evicted)
            mem.write_nocache(line * CACHELINE_SIZE, bytes(image))
            torn = {"line": line, "words": sorted(words),
                    "evicted": evicted}
        else:
            device.crash(())
        # Remount: fresh background timelines, journal recovery runs.
        self.env.background = BackgroundRegistry()
        fs_cls = type(self.fs)
        self.fs = fs_cls.mount(self.env, device, self.config)
        self.model = self.fs.device.fault_model
        self.vfs = VFS(self.env, self.fs, self.config,
                       media_error_threshold=self.media_error_threshold)
        self.ctx = ExecContext(self.env, "chaos", start_ns=self.ctx.now)
        if self.fs.degraded_reason is not None:
            # The journal itself was damaged; recovery must still have
            # produced a mountable (read-only) image.
            self._mark_reported("*mount*")
        # Unsynced files may have lost their tail (or a torn word); only
        # files quiescent since their last fsync are held to the oracle.
        self._check_oracle("after torn crash", skip_dirty=True)
        for path in sorted(self.dirty_since_sync):
            # Whatever survived, it must at least be readable.
            try:
                data = self.vfs.read_file(self.ctx, path)
            except FSError:
                data = None
            self.reference[path] = bytearray(data or b"")
        self.dirty_since_sync.clear()
        return torn

    # -- campaign ---------------------------------------------------------

    def run(self):
        self.env = SimEnv()
        from repro.bench.runner import build_stack

        self.fs, self.vfs = build_stack(self.env, self.fs_name, self.config,
                                        self.device_size)
        self.vfs.health.media_error_threshold = self.media_error_threshold
        self.vfs.health.isolate_threshold = self.media_error_threshold * 4
        self.model = self._device().attach_faults(
            MediaFaultModel(seed=self.seed))
        self.ctx = ExecContext(self.env, "chaos")

        # Seed every campaign file with synced content, so each one has
        # allocated blocks for the fault injectors to target.
        for i, path in enumerate(self.files):
            data = self._payload(6 << 10, 100 + i)
            self.vfs.write_file(self.ctx, path, data, sync=True)
            self.reference[path] = bytearray(data)

        self._workload_round(0)
        for r in range(1, self.rounds + 1):
            self._inject_transients(self.transients_per_round)
            self._arm_ring_faults()
            self._workload_round(r)
            self._inject_media_faults(self.media_faults_per_round)
            self._scrub_until_clean("round %d" % r)
            self._check_oracle("round %d" % r)

        torn = None
        if self.fs_name in TORN_CRASH_STACKS:
            torn = self._torn_crash_leg()
            self._scrub_until_clean("after crash")

        self._degradation_leg()
        self._check_oracle("after recovery")
        self._post_recovery_probe()
        return self._result(torn)

    def _result(self, torn):
        stats = self.env.stats
        mttr = self.vfs.health.mttr_ns()
        return {
            "fs": self.fs_name,
            "seed": self.seed,
            "fault_lines": sorted(self.fault_lines),
            "transient_lines": sorted(self.transient_lines),
            "ring_fault_seqs": list(self.ring_fault_seqs),
            "torn": torn,
            "scrub_passes": len(self.scrub_reports),
            "bad_lines_found": sum(r.bad_lines_found
                                   for r in self.scrub_reports),
            "repaired_lines": sum(r.repaired_lines
                                  for r in self.scrub_reports),
            "isolated_lines": sum(r.isolated_lines
                                  for r in self.scrub_reports),
            "quarantined_blocks": sorted(
                b for r in self.scrub_reports for b in r.quarantined_blocks),
            "mttr_ns": mttr,
            "health_history": list(self.vfs.health.history),
            "final_state": self.vfs.health.state,
            "acknowledged_losses": self.acknowledged_losses,
            "violations": list(self.violations),
            "stats": {
                name: stats.count(name)
                for name in ("media_read_errors", "media_persist_errors",
                             "media_retries", "media_lines_marked_bad",
                             "ring_fault_injections", "ring_sqe_retries",
                             "ring_sqe_retry_successes", "wb_retries",
                             "vfs_media_errors", "vfs_remount_ro",
                             "health_transitions", "health_recoveries",
                             "scrub_passes", "scrub_repaired_lines",
                             "scrub_isolated_lines",
                             "scrub_quarantined_blocks")
            },
        }


def run_campaign(fs_name, seed=0, **kwargs):
    """Run one campaign; returns its result dict."""
    return ChaosCampaign(fs_name, seed=seed, **kwargs).run()


def run_all(seed=0, stacks=CHAOS_STACKS, **kwargs):
    """Run the campaign on every stack; returns ``{fs_name: result}``."""
    return {name: run_campaign(name, seed=seed, **kwargs)
            for name in stacks}

"""Request-targeted fault injection.

The unified I/O pipeline tags every buffered block with the id of the
last :class:`repro.io.IORequest` that wrote it (``last_req_id``), and
HiNFS's ``flush_blocks`` consults the file system's ``request_faults``
injector before persisting each block.  Arming a request id here makes
*that request's* writeback fail with EIO -- letting tests and the
crash-point explorer ask precise questions ("what happens when exactly
write #17's data cannot reach NVMM?") instead of poisoning media
addresses and hoping the right victim lands on them.
"""

from repro.fs.errors import MediaError


class RequestFaultInjector:
    """Fails the writeback of blocks last written by armed request ids."""

    def __init__(self, req_ids=(), max_hits=None):
        self._armed = set(req_ids)
        #: Stop injecting after this many hits (None = unlimited).
        self.max_hits = max_hits
        self.hits = 0

    def arm(self, req_id):
        """Target ``req_id``; returns self for chaining."""
        self._armed.add(req_id)
        return self

    def disarm(self, req_id):
        self._armed.discard(req_id)

    @property
    def armed(self):
        return frozenset(self._armed)

    def check(self, req_id):
        """Raise EIO if ``req_id`` is armed (called from flush paths)."""
        if req_id is None or req_id not in self._armed:
            return
        if self.max_hits is not None and self.hits >= self.max_hits:
            return
        self.hits += 1
        raise MediaError(
            "injected writeback fault targeting request #%d" % req_id
        )

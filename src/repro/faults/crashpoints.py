"""Crash-point exploration for the NVMM file systems.

CrashMonkey-style, adapted to byte-addressable persistence: instead of
reordering bios, the explorer records the *persistence tape* of an
operation sequence -- every volatile (cached) store, every byte range
that actually reached the persistence domain (``clflush`` / non-temporal
store), and every flush/fence ordering boundary -- via the observer hook
on :class:`repro.mem.cpucache.CachedPersistentRegion`.

From the tape it reconstructs the NVMM image a power failure would leave
behind at **every** event prefix (which covers every clflush/mfence
boundary), plus, per operation, a seeded sample of *uncontrolled
eviction* states: the same prefix image with a random subset of the
then-dirty CPU-cache lines written back, modelling lines the cache
evicted on its own before the crash.

Each reconstructed state is mounted on a fresh device and the recovered
file system is checked against invariants derived from the operations
that had completed before the crash point:

1. recovery succeeds (journal replay / rollback is correct);
2. durably-acknowledged namespace operations survive (created files
   exist, unlinked files are gone, a rename shows exactly one name --
   and *during* a rename, at least one of the two names);
3. fsynced (or O_SYNC-written) bytes are never lost;
4. every file's size matches its readable contents;
5. the rebuilt allocator agrees exactly with the union of all block
   maps: no block referenced twice, none out of range, no orphans;
6. a second crash immediately after recovery mounts cleanly too.

Everything is deterministic: the only randomness is a seeded
``random.Random`` used for eviction-subset sampling.
"""

import hashlib
import random

from repro.core import HiNFS, HiNFSConfig
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.fs.errors import FSError
from repro.fs.pmfs.pmfs import PMFS
from repro.fs.vfs import VFS
from repro.nvmm.config import CACHELINE_SIZE, NVMMConfig
from repro.nvmm.device import NVMMDevice
from repro.workloads.base import payload

EV_STORE = "store"      # volatile store into the CPU cache
EV_PERSIST = "persist"  # bytes reached the persistence domain

#: The architectural store-atomicity unit: an aligned 8-byte word always
#: persists or vanishes as a unit (the guarantee PMFS's in-place commit
#: relies on), but nothing larger does -- a crash mid-flush may leave any
#: word subset of a cacheline behind.  The torn-write model samples
#: exactly those states.
WORD_SIZE = 8
WORDS_PER_LINE = CACHELINE_SIZE // WORD_SIZE


class TapeRecorder:
    """Observer that records the persistence tape of a region."""

    def __init__(self):
        self.events = []       # (kind, addr, bytes)
        self.boundaries = []   # event indices of clflush/fence points
        self.enabled = True

    # -- CachedPersistentRegion observer protocol ----------------------

    def on_cached_write(self, addr, data):
        if self.enabled:
            self.events.append((EV_STORE, addr, bytes(data)))

    def on_persist(self, addr, data):
        if self.enabled:
            self.events.append((EV_PERSIST, addr, bytes(data)))

    def on_flush_boundary(self, region):
        if self.enabled:
            self.boundaries.append(len(self.events))

    def on_fence(self, region):
        if self.enabled:
            self.boundaries.append(len(self.events))


class ShadowImage:
    """Replays a tape, mirroring the cache model's crash semantics.

    Maintains the persistent image and the set of dirty (volatile)
    cachelines as they were at each point of the recorded run, so any
    prefix yields (a) the post-crash image and (b) the eviction
    candidates -- whole dirty lines that may additionally persist.
    """

    def __init__(self, baseline):
        self.image = bytearray(baseline)
        self.dirty = {}  # line index -> bytearray(CACHELINE_SIZE)

    def _line_buf(self, line):
        buf = self.dirty.get(line)
        if buf is None:
            base = line * CACHELINE_SIZE
            end = min(base + CACHELINE_SIZE, len(self.image))
            buf = bytearray(self.image[base:end])
            buf.extend(b"\0" * (CACHELINE_SIZE - len(buf)))
            self.dirty[line] = buf
        return buf

    def apply(self, event):
        kind, addr, data = event
        first = addr // CACHELINE_SIZE
        last = (addr + len(data) - 1) // CACHELINE_SIZE if data else first
        if kind == EV_STORE:
            pos = addr
            view = memoryview(data)
            while view:
                line = pos // CACHELINE_SIZE
                off = pos % CACHELINE_SIZE
                take = min(CACHELINE_SIZE - off, len(view))
                self._line_buf(line)[off:off + take] = view[:take]
                pos += take
                view = view[take:]
        else:
            for line in range(first, last + 1):
                self.dirty.pop(line, None)
            self.image[addr:addr + len(data)] = data

    def crash_image(self, evict_lines=(), torn=None):
        """Post-power-failure image; ``evict_lines`` persisted first.

        ``torn`` maps a dirty line index to an 8-word bitmask: only the
        selected aligned 8-byte words of that line reach persistence --
        the sub-cacheline crash state a power failure mid-writeback
        leaves behind.  Each word persists atomically; the rest of the
        line keeps its old persistent bytes.
        """
        image = bytes(self.image)
        if not evict_lines and not torn:
            return image
        image = bytearray(image)
        for line in evict_lines:
            buf = self.dirty[line]
            base = line * CACHELINE_SIZE
            end = min(base + CACHELINE_SIZE, len(image))
            image[base:end] = buf[: end - base]
        if torn:
            for line in sorted(torn):
                buf = self.dirty[line]
                mask = torn[line]
                base = line * CACHELINE_SIZE
                for word in range(WORDS_PER_LINE):
                    if not mask >> word & 1:
                        continue
                    lo = base + word * WORD_SIZE
                    hi = min(lo + WORD_SIZE, len(image))
                    if lo < hi:
                        image[lo:hi] = buf[word * WORD_SIZE:
                                           word * WORD_SIZE + (hi - lo)]
        return bytes(image)

    def torn_persist_image(self, event, word_mask, evict_lines=()):
        """The crash state of ``event`` (the *next* EV_PERSIST on the
        tape) tearing mid-flight: only the aligned 8-byte words selected
        by ``word_mask`` (bit ``i`` = i-th word overlapping the event's
        range) become durable on top of this prefix's crash image."""
        kind, addr, data = event
        if kind != EV_PERSIST:
            raise ValueError("only persist events can tear")
        image = bytearray(self.crash_image(evict_lines))
        first_word = addr // WORD_SIZE
        last_word = (addr + len(data) - 1) // WORD_SIZE
        for i, word in enumerate(range(first_word, last_word + 1)):
            if not word_mask >> i & 1:
                continue
            lo = max(addr, word * WORD_SIZE)
            hi = min(addr + len(data), (word + 1) * WORD_SIZE)
            image[lo:hi] = data[lo - addr:hi - addr]
        return bytes(image)

    @staticmethod
    def persist_word_count(event):
        """Aligned 8-byte words a persist event touches (tear candidates)."""
        kind, addr, data = event
        if kind != EV_PERSIST or not data:
            return 0
        return (addr + len(data) - 1) // WORD_SIZE - addr // WORD_SIZE + 1


class Expectations:
    """What must hold in any crash state taken at or after a checkpoint."""

    __slots__ = ("present", "absent", "fsynced", "either_present",
                 "epoch_window")

    def __init__(self):
        self.present = set()   # paths that must exist
        self.absent = set()    # paths that must not exist
        #: path -> (bytes, clean): fsync-acknowledged content.  ``clean``
        #: means no later write touched the file, so the recovered prefix
        #: must match byte-for-byte; otherwise only the length guarantee
        #: holds (fsynced bytes may be legally overwritten, never lost).
        self.fsynced = {}
        #: (old, new) pairs inside a rename window: at least one of the
        #: two names must resolve (rename atomicity).
        self.either_present = []
        #: path -> (pre, post) inside an mmio msync/munmap window: the
        #: epoch commit is atomic, so recovery must yield exactly the
        #: pre-epoch or the post-epoch image -- never a blend.
        self.epoch_window = {}

    def copy(self):
        out = Expectations()
        out.present = set(self.present)
        out.absent = set(self.absent)
        out.fsynced = dict(self.fsynced)
        out.either_present = list(self.either_present)
        out.epoch_window = dict(self.epoch_window)
        return out


class Violation:
    """One invariant failure at one reconstructed crash state."""

    __slots__ = ("fs_kind", "op_index", "event_index", "evicted", "torn",
                 "message")

    def __init__(self, fs_kind, op_index, event_index, evicted, message,
                 torn=None):
        self.fs_kind = fs_kind
        self.op_index = op_index
        self.event_index = event_index
        self.evicted = tuple(evicted)
        #: Torn-write description, or None: ``("persist", word_mask)`` for
        #: a persist event torn mid-flight, ``("line", line, word_mask)``
        #: for a dirty line partially evicted at word granularity.
        self.torn = torn
        self.message = message

    def __str__(self):
        where = "%s op#%d event#%d" % (self.fs_kind, self.op_index,
                                       self.event_index)
        if self.evicted:
            where += " evicted=%s" % (list(self.evicted),)
        if self.torn is not None:
            where += " torn=%s" % (self.torn,)
        return "[%s] %s" % (where, self.message)


class ExplorationReport:
    """Outcome of one exploration run."""

    def __init__(self, fs_kind, ops):
        self.fs_kind = fs_kind
        self.ops = list(ops)
        self.events = 0
        self.boundaries = 0
        self.states_checked = 0
        self.states_deduped = 0
        self.eviction_draws = {}  # op index -> sampled eviction subsets
        self.torn_draws = {}      # op index -> sampled torn-write states
        #: op index -> (first_req_id, last_req_id) allocated while that
        #: op ran, so a crash point (or a RequestFaultInjector arm) can
        #: be mapped back to the specific in-flight request.
        self.op_request_ids = {}
        self.failures = []

    @property
    def ok(self):
        return not self.failures

    def raise_if_failed(self):
        if self.failures:
            head = self.failures[:10]
            more = len(self.failures) - len(head)
            text = "\n".join(str(v) for v in head)
            if more:
                text += "\n... and %d more" % more
            raise AssertionError(
                "%d crash-state invariant violation(s):\n%s"
                % (len(self.failures), text)
            )

    def summary(self):
        return (
            "%s: %d ops, %d tape events, %d boundaries, %d states checked "
            "(%d duplicates skipped), %d eviction subsets sampled, %d torn "
            "states sampled, %d violations"
            % (self.fs_kind, len(self.ops), self.events, self.boundaries,
               self.states_checked, self.states_deduped,
               sum(self.eviction_draws.values()),
               sum(self.torn_draws.values()), len(self.failures))
        )


#: A representative mixed sequence used by ``repro crashcheck`` and the
#: examples: namespace churn, appends, overwrite, fsync, and the rename
#: patterns (plain move and replace-by-rename) crash tooling cares about.
DEFAULT_OPS = (
    ("mkdir", "/d"),
    ("create", "/a"),
    ("append", "/a", 5000),
    ("fsync", "/a"),
    ("create", "/d/b"),
    ("append", "/d/b", 1500),
    ("rename", "/d/b", "/b2"),
    ("write", "/a", 100, 900),
    ("sync_write", "/c", 0, 4096),
    ("rename", "/c", "/a"),
    ("append", "/a", 300),
    ("fsync", "/a"),
    ("unlink", "/b2"),
    ("truncate", "/a", 2000),
    ("create", "/d/e"),
)

#: Library-mode mmap sequence: map a stabilised file, store through the
#: mapping under both log policies, commit epochs with msync, and tear
#: the whole thing down -- every log-append, epoch-commit and checkpoint
#: boundary becomes a crash point.  Stores stay inside the preallocated
#: extent so the strict pre-image invariant holds between commits.
MMIO_OPS = (
    ("create", "/m"),
    ("append", "/m", 8192),
    ("fsync", "/m"),
    ("mmap", "/m", "undo"),
    ("mstore", "/m", 0, 200),
    ("mstore", "/m", 4096, 64),
    ("msync_m", "/m"),
    ("mstore", "/m", 100, 700),
    ("munmap", "/m"),
    ("mmap", "/m", "redo"),
    ("mstore", "/m", 64, 256),
    ("mstore", "/m", 5000, 1024),
    ("msync_m", "/m"),
    ("mstore", "/m", 0, 64),
    ("munmap", "/m"),
)


class CrashPointExplorer:
    """Run an op sequence, then test every crash state it could leave."""

    def __init__(self, fs_kind, seed=0, eviction_samples_per_op=64,
                 torn_samples_per_op=16, journal_checksums=True,
                 mmio_log_checksums=True, device_bytes=4 << 20):
        if fs_kind not in ("pmfs", "hinfs"):
            raise ValueError("fs_kind must be 'pmfs' or 'hinfs'")
        self.fs_kind = fs_kind
        self.seed = seed
        self.eviction_samples_per_op = eviction_samples_per_op
        #: Sub-cacheline crash states sampled per op: torn persist events
        #: (a flush interrupted mid-line) and word-granular partial
        #: evictions of dirty lines.
        self.torn_samples_per_op = torn_samples_per_op
        #: Journal entry CRCs on the explored stack.  ``False`` is the
        #: negative control: the torn-write model must then catch
        #: replayed garbage undo entries.
        self.journal_checksums = journal_checksums
        #: Entry CRCs on the library-mode mmio epoch log.  ``False`` is
        #: the matching negative control for the ``mmap`` op family: a
        #: torn log append then parses as a valid record with garbage
        #: bytes, and recovery corrupts the mapped file.
        self.mmio_log_checksums = mmio_log_checksums
        self.device_bytes = device_bytes
        self._rng = random.Random(seed)

    # -- stack construction -------------------------------------------

    def _fresh_stack(self):
        env = SimEnv()
        config = NVMMConfig()
        device = NVMMDevice(env, config, self.device_bytes)
        # Small journal and inode table: every crash-state mount scans
        # the whole ring, so the defaults would dominate the run time.
        if self.fs_kind == "hinfs":
            fs = HiNFS(env, device, config, journal_blocks=8, inode_count=64,
                       journal_checksums=self.journal_checksums,
                       hconfig=HiNFSConfig(buffer_bytes=256 << 10))
        else:
            fs = PMFS(env, device, config, journal_blocks=8, inode_count=64,
                      journal_checksums=self.journal_checksums)
        vfs = VFS(env, fs, config)
        return env, config, device, fs, vfs, ExecContext(env, "crashpoints")

    def _mount_state(self, image):
        env = SimEnv()
        config = NVMMConfig()
        device = NVMMDevice(env, config, len(image))
        device.mem.load_snapshot(image)
        if self.fs_kind == "hinfs":
            fs = HiNFS.mount(env, device, config,
                             journal_checksums=self.journal_checksums,
                             hconfig=HiNFSConfig(buffer_bytes=256 << 10))
        else:
            fs = PMFS.mount(env, device, config,
                            journal_checksums=self.journal_checksums)
        return device, fs, VFS(env, fs, config), ExecContext(env, "recovery")

    # -- the recorded run ---------------------------------------------

    def _run_ops(self, ops):
        """Execute ``ops``, recording the tape and expectation checkpoints.

        Returns ``(tape, baseline, checkpoints)`` where checkpoints is a
        list of ``(event_position, op_index, Expectations)`` in tape
        order; the expectations entered at an op's *start* are weakened
        (the op may touch its paths at any intermediate state), the ones
        at its *end* carry the op's durable guarantees.
        """
        env, config, device, fs, vfs, ctx = self._fresh_stack()
        tape = TapeRecorder()
        baseline = device.mem.persistent_snapshot()
        device.mem.observer = tape
        #: path -> (fd, MmioMapping) for the mmap op family, plus the
        #: staged-content model backing the epoch-window expectations.
        self._mmaps = {}
        self._mmio_staged = {}

        expect = Expectations()
        checkpoints = [(0, -1, expect.copy())]
        op_request_ids = {}
        for op_index, op in enumerate(ops):
            weakened = self._weaken(expect.copy(), op)
            checkpoints.append((len(tape.events), op_index, weakened))
            # Bracket the op with the env's request-id counter so every
            # tape event inside it maps to a request-id range.
            first_req = env.next_req_id()
            self._execute(vfs, ctx, op, op_index)
            last_req = env.next_req_id()
            if last_req - first_req > 1:
                op_request_ids[op_index] = (first_req + 1, last_req - 1)
            expect = self._strengthen(weakened, vfs, ctx, op)
            checkpoints.append((len(tape.events), op_index, expect.copy()))
        device.mem.observer = None
        self._op_request_ids = op_request_ids
        return tape, baseline, checkpoints

    def _execute(self, vfs, ctx, op, op_index):
        kind = op[0]
        if kind == "create":
            vfs.close(ctx, vfs.open(ctx, op[1], f.O_CREAT | f.O_RDWR))
        elif kind == "mkdir":
            vfs.mkdir(ctx, op[1])
        elif kind == "append":
            fd = vfs.open(ctx, op[1], f.O_CREAT | f.O_RDWR)
            size = vfs.stat(ctx, op[1]).size
            vfs.pwrite(ctx, fd, size, payload(op[2], op_index))
            vfs.close(ctx, fd)
        elif kind == "write":
            fd = vfs.open(ctx, op[1], f.O_CREAT | f.O_RDWR)
            vfs.pwrite(ctx, fd, op[2], payload(op[3], op_index))
            vfs.close(ctx, fd)
        elif kind == "sync_write":
            fd = vfs.open(ctx, op[1], f.O_CREAT | f.O_RDWR | f.O_SYNC)
            vfs.pwrite(ctx, fd, op[2], payload(op[3], op_index))
            vfs.close(ctx, fd)
        elif kind == "fsync":
            fd = vfs.open(ctx, op[1], f.O_RDWR)
            vfs.fsync(ctx, fd)
            vfs.close(ctx, fd)
        elif kind == "rename":
            vfs.rename(ctx, op[1], op[2])
        elif kind == "unlink":
            vfs.unlink(ctx, op[1])
        elif kind == "truncate":
            vfs.truncate(ctx, op[1], op[2])
        elif kind == "mmap":
            # Stabilise first (fsync), then map: the pre-epoch image is
            # durable, so every crash state has a well-defined baseline.
            fd = vfs.open(ctx, op[1], f.O_CREAT | f.O_RDWR)
            vfs.fsync(ctx, fd)
            region = vfs.mmap(ctx, fd, flags=f.MAP_ATOMIC, policy=op[2],
                              log_blocks=4,
                              log_checksums=self.mmio_log_checksums)
            self._mmaps[op[1]] = (fd, region)
        elif kind == "mstore":
            _fd, region = self._mmaps[op[1]]
            data = payload(op[3], op_index)
            region.store(ctx, op[2], data)
            # Keep the staged-content model current: it becomes the
            # "post" side of the next commit's epoch window.
            staged = self._mmio_staged[op[1]]
            if op[2] + len(data) > len(staged):
                staged.extend(b"\0" * (op[2] + len(data) - len(staged)))
            staged[op[2]:op[2] + len(data)] = data
        elif kind == "msync_m":
            _fd, region = self._mmaps[op[1]]
            region.msync(ctx)
        elif kind == "munmap":
            fd, region = self._mmaps.pop(op[1])
            region.munmap(ctx)
            vfs.close(ctx, fd)
        else:
            raise ValueError("unknown op kind %r" % (kind,))

    def _weaken(self, expect, op):
        """Relax expectations for the paths ``op`` is about to touch."""
        kind = op[0]
        if kind in ("create", "mkdir"):
            expect.absent.discard(op[1])
        elif kind in ("append", "write", "sync_write"):
            expect.absent.discard(op[1])
            if op[1] in expect.fsynced:
                data, _ = expect.fsynced[op[1]]
                expect.fsynced[op[1]] = (data, False)
        elif kind == "unlink":
            expect.present.discard(op[1])
            expect.fsynced.pop(op[1], None)
        elif kind == "rename":
            old, new = op[1], op[2]
            expect.present.discard(old)
            expect.present.discard(new)
            expect.absent.discard(new)
            expect.fsynced.pop(old, None)
            expect.fsynced.pop(new, None)
            expect.either_present.append((old, new))
        elif kind == "truncate":
            expect.fsynced.pop(op[1], None)
        elif kind == "mstore":
            # Deliberately NOT weakened: an uncommitted epoch's stores
            # are invisible to recovery, so the strict pre-epoch content
            # expectation keeps holding through the whole store window.
            pass
        elif kind in ("msync_m", "munmap"):
            # The commit window: recovery must produce exactly the
            # pre-epoch or post-epoch image, never a blend.
            path = op[1]
            pre, _clean = expect.fsynced.pop(path)
            expect.epoch_window[path] = (pre, bytes(self._mmio_staged[path]))
        return expect

    def _strengthen(self, expect, vfs, ctx, op):
        """Add the guarantees the completed ``op`` acknowledged."""
        expect = expect.copy()
        kind = op[0]
        if kind in ("create", "mkdir", "append", "write", "truncate"):
            # Namespace metadata commits synchronously on the PMFS family,
            # so an acknowledged create/open(O_CREAT) is durable.
            expect.present.add(op[1])
        elif kind in ("sync_write", "fsync"):
            expect.present.add(op[1])
            expect.fsynced[op[1]] = (vfs.read_file(ctx, op[1]), True)
        elif kind == "unlink":
            expect.absent.add(op[1])
        elif kind == "rename":
            old, new = op[1], op[2]
            expect.either_present = [
                pair for pair in expect.either_present if pair != (old, new)
            ]
            expect.present.add(new)
            expect.absent.add(old)
        elif kind == "mmap":
            # The op fsynced before mapping: the mapped baseline is
            # durable, and every later crash state inside the epoch must
            # recover it byte-for-byte.
            expect.present.add(op[1])
            content = vfs.read_file(ctx, op[1])
            expect.fsynced[op[1]] = (content, True)
            self._mmio_staged[op[1]] = bytearray(content)
        elif kind in ("msync_m", "munmap"):
            path = op[1]
            expect.epoch_window.pop(path, None)
            expect.fsynced[path] = (vfs.read_file(ctx, path), True)
        return expect

    # -- state enumeration --------------------------------------------

    def explore(self, ops=DEFAULT_OPS):
        ops = list(ops)
        report = ExplorationReport(self.fs_kind, ops)
        tape, baseline, checkpoints = self._run_ops(ops)
        report.events = len(tape.events)
        report.boundaries = len(set(tape.boundaries))
        report.op_request_ids = dict(self._op_request_ids)

        # Checkpoint lookup: for event prefix k, the newest checkpoint at
        # position <= k governs.
        def expect_at(k):
            active = checkpoints[0]
            for cp in checkpoints:
                if cp[0] <= k:
                    active = cp
                else:
                    break
            return active[1], active[2]

        # Per-op event windows, for attributing eviction samples.
        op_windows = []
        starts = [cp for cp in checkpoints[1::2]]  # op-start checkpoints
        for i, (pos, op_index, _) in enumerate(starts):
            end = starts[i + 1][0] if i + 1 < len(starts) else len(tape.events)
            op_windows.append((op_index, pos, end))

        seen = {}
        shadow = ShadowImage(baseline)
        # Prefix 0 (crash before anything ran) through every event.
        self._check_dedup(report, seen, shadow, 0, expect_at, ())
        for k, event in enumerate(tape.events):
            shadow.apply(event)
            self._check_dedup(report, seen, shadow, k + 1, expect_at, ())

        # Sampled uncontrolled-eviction subsets, per op: rebuild the
        # shadow incrementally along the tape and, at randomly chosen
        # points inside each op's window, persist a random subset of the
        # dirty lines on top of the prefix image.
        draw_points = {}  # event index -> list of draw ids
        for op_index, start, end in op_windows:
            report.eviction_draws[op_index] = 0
            if end <= start:
                continue
            for _ in range(self.eviction_samples_per_op):
                k = self._rng.randint(start, end)
                draw_points.setdefault(k, []).append(op_index)
        shadow = ShadowImage(baseline)
        for op_index in draw_points.get(0, ()):
            report.eviction_draws[op_index] += 1
            self._check_eviction_draw(report, seen, shadow, 0, expect_at)
        for k, event in enumerate(tape.events):
            shadow.apply(event)
            for op_index in draw_points.get(k + 1, ()):
                report.eviction_draws[op_index] += 1
                self._check_eviction_draw(report, seen, shadow, k + 1,
                                          expect_at)

        # Sub-cacheline (torn-write) states, per op: at seeded points
        # inside each op's window, tear the next persist event mid-flight
        # (a proper nonempty subset of its 8-byte words persists) and
        # partially evict one dirty line at word granularity.  Persists
        # of 8 bytes or less are atomic by architecture and never torn --
        # that is exactly the in-place-commit assumption under test.
        torn_points = {}
        for op_index, start, end in op_windows:
            report.torn_draws[op_index] = 0
            if end <= start:
                continue
            for _ in range(self.torn_samples_per_op):
                k = self._rng.randint(start, max(start, end - 1))
                torn_points.setdefault(k, []).append(op_index)
        shadow = ShadowImage(baseline)
        for k in range(len(tape.events) + 1):
            for op_index in torn_points.get(k, ()):
                report.torn_draws[op_index] += 1
                self._check_torn_draw(report, seen, shadow, tape, k,
                                      expect_at)
            if k < len(tape.events):
                shadow.apply(tape.events[k])
        return report

    def _word_mask(self, nwords):
        """A seeded proper, nonempty word subset as a bitmask (full and
        empty subsets are plain prefix states, already enumerated)."""
        count = self._rng.randint(1, nwords - 1)
        mask = 0
        for word in self._rng.sample(range(nwords), count):
            mask |= 1 << word
        return mask

    def _check_torn_draw(self, report, seen, shadow, tape, k, expect_at):
        event = tape.events[k] if k < len(tape.events) else None
        if event is not None:
            nwords = ShadowImage.persist_word_count(event)
            if nwords >= 2:
                mask = self._word_mask(nwords)
                image = shadow.torn_persist_image(event, mask)
                self._check_image(report, seen, image, k, expect_at, (),
                                  torn=("persist", mask))
        dirty = sorted(shadow.dirty)
        if dirty:
            line = self._rng.choice(dirty)
            mask = self._word_mask(WORDS_PER_LINE)
            image = shadow.crash_image(torn={line: mask})
            self._check_image(report, seen, image, k, expect_at, (),
                              torn=("line", line, mask))

    def _check_eviction_draw(self, report, seen, shadow, k, expect_at):
        dirty = sorted(shadow.dirty)
        if dirty:
            nlines = self._rng.randint(1, len(dirty))
            evicted = tuple(sorted(self._rng.sample(dirty, nlines)))
        else:
            evicted = ()
        self._check_dedup(report, seen, shadow, k, expect_at, evicted)

    def _check_dedup(self, report, seen, shadow, k, expect_at, evicted):
        self._check_image(report, seen, shadow.crash_image(evicted), k,
                          expect_at, evicted)

    def _check_image(self, report, seen, image, k, expect_at, evicted,
                     torn=None):
        op_index, expect = expect_at(k)
        key = (hashlib.sha1(image).digest(), id(expect))
        if key in seen:
            report.states_deduped += 1
            return
        seen[key] = True
        report.states_checked += 1
        for message in self._check_state(image, expect):
            report.failures.append(
                Violation(self.fs_kind, op_index, k, evicted, message,
                          torn=torn)
            )

    # -- invariants -----------------------------------------------------

    def _check_state(self, image, expect):
        problems = []
        try:
            device, fs, vfs, ctx = self._mount_state(image)
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            return ["mount failed: %r" % (exc,)]
        if fs.degraded_reason is not None:
            problems.append("mount degraded: %s" % fs.degraded_reason)
            return problems
        problems.extend(self._check_namespace(vfs, ctx, expect))
        problems.extend(self._check_files(vfs, ctx))
        problems.extend(self._check_allocator(fs))
        if problems:
            return problems
        # Crash again right after recovery: remount must also be clean
        # (recovery itself only persists ordered, flushed state).
        device.crash()
        try:
            _, fs2, vfs2, ctx2 = self._mount_state(
                device.mem.persistent_snapshot()
            )
        except Exception as exc:  # noqa: BLE001
            return ["remount after recovery failed: %r" % (exc,)]
        problems.extend(self._check_namespace(vfs2, ctx2, expect))
        problems.extend(self._check_allocator(fs2))
        return problems

    def _check_namespace(self, vfs, ctx, expect):
        problems = []
        for path in sorted(expect.present):
            if not vfs.exists(ctx, path):
                problems.append("durable path %s missing" % path)
        for path in sorted(expect.absent):
            if vfs.exists(ctx, path):
                problems.append("unlinked/renamed-away path %s present" % path)
        for old, new in expect.either_present:
            if not vfs.exists(ctx, old) and not vfs.exists(ctx, new):
                problems.append(
                    "rename atomicity broken: neither %s nor %s exists"
                    % (old, new)
                )
        for path, (data, clean) in sorted(expect.fsynced.items()):
            if not vfs.exists(ctx, path):
                problems.append("fsynced file %s missing" % path)
                continue
            recovered = vfs.read_file(ctx, path)
            if len(recovered) < len(data):
                problems.append(
                    "fsynced bytes lost on %s: %d < %d"
                    % (path, len(recovered), len(data))
                )
            elif clean and recovered[: len(data)] != data:
                problems.append("fsynced content of %s corrupted" % path)
        for path, (pre, post) in sorted(expect.epoch_window.items()):
            if not vfs.exists(ctx, path):
                problems.append("mmio-mapped file %s missing" % path)
                continue
            recovered = vfs.read_file(ctx, path)
            if recovered != pre and recovered != post:
                problems.append(
                    "mmio epoch atomicity broken on %s: recovered image is "
                    "neither the pre- nor the post-epoch content" % path
                )
        return problems

    def _check_files(self, vfs, ctx, root="/"):
        """Every reachable file reads exactly stat.size bytes."""
        problems = []
        try:
            entries = vfs.readdir(ctx, root)
        except FSError as exc:
            return ["readdir(%s) failed: %r" % (root, exc)]
        for name, _ino in entries:
            path = root.rstrip("/") + "/" + name
            try:
                stat = vfs.stat(ctx, path)
            except FSError as exc:
                problems.append("stat(%s) failed: %r" % (path, exc))
                continue
            if stat.is_dir:
                problems.extend(self._check_files(vfs, ctx, path))
                continue
            try:
                contents = vfs.read_file(ctx, path)
            except FSError as exc:
                problems.append("read(%s) failed: %r" % (path, exc))
                continue
            if len(contents) != stat.size:
                problems.append(
                    "%s: size %d but %d readable bytes"
                    % (path, stat.size, len(contents))
                )
        return problems

    @staticmethod
    def _check_allocator(fs):
        """The rebuilt allocator agrees exactly with the block maps."""
        problems = []
        referenced = {}
        for inode in fs.itable.live_inodes():
            blockmap = fs._maps.get(inode.ino)
            if blockmap is None:
                continue
            for block in blockmap.all_physical_blocks():
                if block in referenced:
                    problems.append(
                        "block %d referenced by inodes %d and %d"
                        % (block, referenced[block], inode.ino)
                    )
                referenced[block] = inode.ino
                if not fs.sb.data_start <= block < fs.sb.total_blocks:
                    problems.append(
                        "inode %d references out-of-range block %d"
                        % (inode.ino, block)
                    )
                elif not fs.balloc.is_allocated(block):
                    problems.append(
                        "block %d referenced but free in the allocator"
                        % block
                    )
        in_range = [b for b in referenced
                    if fs.sb.data_start <= b < fs.sb.total_blocks]
        if fs.balloc.used_count != len(in_range):
            problems.append(
                "allocator bitmap has %d used blocks but %d are referenced "
                "(orphaned blocks)" % (fs.balloc.used_count, len(in_range))
            )
        return problems


def run_crashcheck(fs_kinds=("pmfs", "hinfs"), seed=0,
                   eviction_samples_per_op=64, torn_samples_per_op=16,
                   journal_checksums=True, mmio_log_checksums=True,
                   ops=DEFAULT_OPS):
    """Explore every crash state of ``ops`` on each fs; returns reports."""
    return [
        CrashPointExplorer(
            kind, seed=seed,
            eviction_samples_per_op=eviction_samples_per_op,
            torn_samples_per_op=torn_samples_per_op,
            journal_checksums=journal_checksums,
            mmio_log_checksums=mmio_log_checksums,
        ).explore(ops)
        for kind in fs_kinds
    ]

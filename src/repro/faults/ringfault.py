"""Ring-targeted fault injection.

The submission/completion ring (:mod:`repro.io.ring`) consults its
``faults`` injector around every SQE it executes: ``before_op`` fires
just before dispatch (raising :class:`~repro.fs.errors.MediaError` turns
*that SQE* into a ``-EIO`` CQE and, via ``IOSQE_IO_LINK``, cancels the
rest of its chain), and ``after_op`` fires after the SQE completed
inline (its crash hook models power failing *between* the ops of a
linked chain -- after the write's CQE exists but before the linked
fsync ran).

Arming is positional -- "fail the Nth SQE this ring executes" -- so
tests and the crash-point explorer can ask precise questions about
batch semantics without caring which request ids the workload happens
to allocate.
"""

from repro.fs.errors import MediaError


class RingCrash(Exception):
    """Raised by the after-op crash hook; the test harness catches it
    and snapshots/remounts, like the crash-point explorer's cut."""

    def __init__(self, seq, sqe):
        super().__init__("injected crash after ring op #%d (%s)"
                         % (seq, sqe.syscall))
        self.seq = seq
        self.sqe = sqe


class RingFaultInjector:
    """Fails (or crashes after) specific SQEs by execution sequence.

    ``fail_seqs`` are ring sequence numbers whose *execution* is
    replaced by an injected EIO; ``crash_after_seq`` raises
    :class:`RingCrash` right after that sequence number completes --
    between it and whatever is linked behind it.
    """

    def __init__(self, fail_seqs=(), crash_after_seq=None, max_hits=None):
        self._fail = set(fail_seqs)
        self.crash_after_seq = crash_after_seq
        #: Stop injecting failures after this many hits (None = unlimited).
        self.max_hits = max_hits
        self.hits = 0
        #: Every ``(seq, syscall)`` this injector observed, for asserting
        #: exactly which ops ran before a crash.
        self.observed = []

    def arm_fail(self, seq):
        """Fail the SQE executed as sequence number ``seq``."""
        self._fail.add(seq)
        return self

    def before_op(self, ctx, seq, sqe):
        self.observed.append((seq, sqe.syscall))
        if seq not in self._fail:
            return
        if self.max_hits is not None and self.hits >= self.max_hits:
            return
        self.hits += 1
        ctx.env.stats.bump("ring_fault_injections")
        raise MediaError("injected fault on ring op #%d (%s)"
                         % (seq, sqe.syscall))

    def after_op(self, ctx, seq, sqe):
        if self.crash_after_seq is not None and seq == self.crash_after_seq:
            raise RingCrash(seq, sqe)

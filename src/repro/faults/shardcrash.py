"""Crash-point exploration for the cross-shard rename protocol.

The single-device explorer (:mod:`repro.faults.crashpoints`) enumerates
cacheline-granular crash states inside one journal; this module attacks
the seam the shard layer adds *between* journals: a cross-shard
``rename(2)`` is several independent per-shard transactions stitched
together by the intent log, and a crash may land between any two of
them.

For every protocol boundary (after the intent record, after the data
copy, after the ``copied`` record, after a cross-shard victim's unlink,
after the target-shard link, after the source-shard unlink) the explorer
runs the rename up to that boundary, snapshots every device's persistent
image (whole volatile cachelines lost, per the crash model), remounts the
sharded stack from the images -- running intent recovery and mirror
reconciliation -- and checks the recovery contract:

- **exactly one name**: the moved file's content is reachable under
  exactly one of (old name, new name), never zero, never both;
- **no vanished destination**: when the rename was replacing an existing
  file, the destination name resolves at every crash point (to the old
  victim before the point of no return, to the moved file after);
- **content integrity**: whichever file survives reads back its full
  original payload.
"""

from repro.engine.env import SimEnv
from repro.fs.base import ROOT_INO
from repro.fs.pmfs.pmfs import _FreeContext
from repro.fs.shard import (
    _CrashRequested,
    build_sharded,
    mount_sharded,
    shard_of,
)
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice
from repro.workloads.base import payload, prepare_context

#: Crash boundaries of :meth:`ShardedFS._rename_migrate`, in protocol
#: order ("victim-unlinked" only fires for a cross-shard replacement).
BOUNDARIES = ("intent", "copy", "copied", "victim-unlinked", "linked",
              "unlinked")

_DEVICE_SIZE = 8 << 20
_SRC_BYTES = 24 << 10


class ShardRenameViolation:
    """One broken recovery contract at one crash boundary."""

    def __init__(self, boundary, detail):
        self.boundary = boundary
        self.detail = detail

    def __repr__(self):
        return "ShardRenameViolation(%s: %s)" % (self.boundary, self.detail)


class ShardCrashReport:
    """Outcome of one exploration run."""

    def __init__(self, base, nshards, with_victim):
        self.base = base
        self.nshards = nshards
        self.with_victim = with_victim
        self.cases = []
        self.violations = []

    @property
    def passed(self):
        return not self.violations

    def raise_if_failed(self):
        if self.violations:
            raise AssertionError(
                "cross-shard rename recovery violated %d contract(s): %r"
                % (len(self.violations), self.violations))

    def as_dict(self):
        return {
            "base": self.base,
            "nshards": self.nshards,
            "with_victim": self.with_victim,
            "cases": list(self.cases),
            "violations": [repr(v) for v in self.violations],
            "passed": self.passed,
        }

    def __repr__(self):
        return "ShardCrashReport(%s@%d, victim=%s, %d cases, %s)" % (
            self.base, self.nshards, self.with_victim, len(self.cases),
            "PASS" if self.passed else "FAIL: %r" % self.violations)


def _pick_names(nshards):
    """A source and destination name owned by different shards."""
    src = next("src%d" % i for i in range(1000)
               if shard_of("src%d" % i, nshards, parent=ROOT_INO) == 0)
    dst = next("dst%d" % i for i in range(1000)
               if shard_of("dst%d" % i, nshards, parent=ROOT_INO) != 0)
    return src, dst


def _build(base, nshards):
    env = SimEnv()
    fs = build_sharded(env, base, NVMMConfig(), _DEVICE_SIZE,
                       nshards=nshards)
    return env, fs


def _remount(fs, base):
    """Remount from every device's post-crash persistent image."""
    images = [inner.device.mem.persistent_snapshot() for inner in fs.shards]
    env = SimEnv()
    config = NVMMConfig()
    devices = []
    for s, image in enumerate(images):
        device = NVMMDevice(env, config, len(image), domain="dev%d" % s)
        device.mem.load_snapshot(image)
        devices.append(device)
    return env, mount_sharded(env, devices, base, config)


def _resolve(fs, free, name):
    """(global ino, content bytes) for a root entry, or (None, None)."""
    gino = fs.lookup(free, ROOT_INO, name)
    if gino is None:
        return None, None
    size = fs.getattr(free, gino).size
    shard, local = fs._dec(gino)
    data = fs.shards[shard].read(free, local, 0, size) if size else b""
    return gino, data


def explore_cross_shard_rename(base="hinfs", nshards=2, with_victim=False):
    """Run the boundary sweep; returns a :class:`ShardCrashReport`.

    ``with_victim`` places an existing file at the destination name:
    ``"same"`` (or True) hash-places it on the target shard, so the
    inner journal replaces it atomically at the link step;
    ``"misplaced"`` parks it on the *source* shard -- the residue of an
    earlier in-place rename -- so the protocol must unlink it
    cross-shard, exercising the ``victim-unlinked`` boundary.
    """
    report = ShardCrashReport(base, nshards, with_victim)
    src_data = payload(_SRC_BYTES, tag=7)
    victim_data = payload(_SRC_BYTES // 2, tag=13)
    for boundary in BOUNDARIES:
        if boundary == "victim-unlinked" and with_victim != "misplaced":
            continue
        env, fs = _build(base, nshards)
        ctx = prepare_context(env)
        src_name, dst_name = _pick_names(nshards)
        free = _FreeContext(env)
        src_g = fs.create_file(free, ROOT_INO, src_name)
        s, local = fs._dec(src_g)
        fs.shards[s].write(free, local, 0, src_data, eager=True)
        if with_victim:
            if with_victim == "misplaced":
                # Park the victim on the source shard (shard 0), where a
                # previous in-place rename would have left it.
                vlocal = fs.shards[0].create_file(free, ROOT_INO, dst_name)
                vic_g = fs._enc(vlocal, 0)
            else:
                vic_g = fs.create_file(free, ROOT_INO, dst_name)
            vs, vlocal = fs._dec(vic_g)
            fs.shards[vs].write(free, vlocal, 0, victim_data, eager=True)
        fired = []

        def hook(point, _want=boundary, _fired=fired):
            if point == _want:
                _fired.append(point)
                raise _CrashRequested(point)

        fs._xmv_hook = hook
        crashed = False
        try:
            fs.rename(ctx, ROOT_INO, src_name, ROOT_INO, dst_name, src_g,
                      replaced_ino=vic_g if with_victim else None)
        except _CrashRequested:
            crashed = True
        if not crashed or not fired:
            report.violations.append(ShardRenameViolation(
                boundary, "crash hook never fired (protocol path changed?)"))
            continue
        _env2, fs2 = _remount(fs, base)
        free2 = _FreeContext(_env2)
        _old_g, old_data = _resolve(fs2, free2, src_name)
        _new_g, new_data = _resolve(fs2, free2, dst_name)
        holders = [nm for nm, data in ((src_name, old_data),
                                       (dst_name, new_data))
                   if data == src_data]
        outcome = {"boundary": boundary,
                   "old_present": old_data is not None,
                   "new_present": new_data is not None,
                   "recovered_to": holders[0] if len(holders) == 1 else None}
        report.cases.append(outcome)
        if len(holders) != 1:
            report.violations.append(ShardRenameViolation(
                boundary,
                "moved file reachable under %d names (%r)"
                % (len(holders), holders)))
            continue
        if with_victim:
            if new_data is None:
                report.violations.append(ShardRenameViolation(
                    boundary, "destination name vanished mid-replace"))
            elif new_data not in (src_data, victim_data):
                report.violations.append(ShardRenameViolation(
                    boundary, "destination content is neither old nor new"))
        else:
            if (old_data is None) == (new_data is None):
                report.violations.append(ShardRenameViolation(
                    boundary,
                    "expected exactly one of old/new, got old=%s new=%s"
                    % (old_data is not None, new_data is not None)))
    return report


def explore_all(bases=("hinfs", "pmfs"), shard_counts=(2, 4)):
    """The full sweep the bench gate runs: every base fs and shard
    count, with no victim, a hash-placed victim, and a misplaced one."""
    reports = []
    for base in bases:
        for nshards in shard_counts:
            for with_victim in (False, "same", "misplaced"):
                reports.append(explore_cross_shard_rename(
                    base, nshards, with_victim=with_victim))
    return reports


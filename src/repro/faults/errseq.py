"""errseq-style deferred-writeback error reporting.

When background writeback (HiNFS's flusher threads, pdflush for the
block-based baselines) hits a media error, the write has already been
acknowledged to the application -- the only honest thing left to do is
report the loss on the *next* ``fsync``/``close`` of that file.  Linux
solves this with ``errseq_t``: a per-mapping sequence that writeback
errors advance and every file description samples, so each fd sees a
given error exactly once.  This is the same mechanism in miniature:

- :meth:`ErrseqMap.record` advances the inode's sequence (a writeback
  error happened) and clears its SEEN mark.
- :meth:`ErrseqMap.sample` is taken at ``open`` time and stored on the
  open file.  Like Linux's ``errseq_sample``, an inode whose latest
  error nobody has reported yet samples as 0, so a descriptor opened
  *after* the error still observes it -- an unreported loss is never
  silently retired by the accident of when the fd was opened.
- :meth:`ErrseqMap.check` compares an fd's cursor against the current
  sequence, returning True (marking the error SEEN and advancing the
  cursor) when an error occurred that this fd has not yet reported.
"""


class ErrseqMap:
    """Per-inode writeback-error sequences for one file system."""

    def __init__(self):
        self._seq = {}
        # Inodes whose *latest* error some fd has already reported.
        self._seen = set()

    def record(self, ino):
        """A deferred writeback error occurred on ``ino``."""
        self._seq[ino] = self._seq.get(ino, 0) + 1
        self._seen.discard(ino)
        return self._seq[ino]

    def sample(self, ino):
        """Current sequence, stored on a freshly-opened fd as its cursor.

        While the latest error is unSEEN the sample is 0 (Linux
        ``errseq_sample`` semantics): the new fd's first check will
        report it.
        """
        if ino in self._seen:
            return self._seq.get(ino, 0)
        return 0

    def check(self, ino, cursor):
        """Has an error happened since ``cursor``?

        Returns ``(hit, new_cursor)``; the caller stores ``new_cursor``
        back on the fd so the same error is reported exactly once per fd.
        """
        seq = self._seq.get(ino, 0)
        if seq > cursor:
            self._seen.add(ino)
            return True, seq
        return False, cursor

    def drop(self, ino):
        """Forget an inode's history (unlink)."""
        self._seq.pop(ino, None)
        self._seen.discard(ino)

    def pending(self):
        """Inodes with at least one recorded error (diagnostics)."""
        return sorted(ino for ino, seq in self._seq.items() if seq)

    def unseen(self):
        """Inodes whose latest error no descriptor has reported yet."""
        return sorted(ino for ino, seq in self._seq.items()
                      if seq and ino not in self._seen)

"""Deterministic fault injection for the simulated NVMM storage stack.

Cooperating pieces:

- :mod:`repro.faults.media` -- a seeded registry of bad / transiently
  failing NVMM cachelines, attached to :class:`repro.nvmm.device.NVMMDevice`;
  poisoned lines fail reads and persists with EIO
  (:class:`repro.fs.errors.MediaError`).
- :mod:`repro.faults.policy` -- the unified :class:`RetryPolicy` every
  retry loop in the stack shares: seeded exponential backoff with jitter,
  a bounded attempt budget, and a circuit breaker that fails fast while a
  component is saturated with errors.
- :mod:`repro.faults.errseq` -- Linux ``errseq_t``-style tracking so an
  asynchronous writeback failure is reported by the *next* fsync/close of
  the file, exactly once per file descriptor.
- :mod:`repro.faults.crashpoints` -- a CrashMonkey-style crash-state
  explorer: it records every persist event and flush/fence boundary of an
  operation sequence, reconstructs the NVMM image a power failure would
  leave at each point (plus sampled uncontrolled-eviction subsets and
  torn lines where only some 8-byte words of a dirty cacheline persist),
  then replays recovery and checks file-system invariants.
- :mod:`repro.faults.reqfault` -- request-targeted injection: fail the
  writeback of blocks last written by a specific
  :class:`repro.io.IORequest` id.
- :mod:`repro.faults.ringfault` -- ring-targeted injection: fail the Nth
  SQE a submission ring executes, or crash between the ops of a linked
  chain.
- :mod:`repro.faults.chaos` -- seeded chaos campaigns that combine all of
  the above against a live stack and prove recovery: scrub repairs or
  isolates every fault, the mount-health FSM returns to HEALTHY, and a
  differential oracle shows zero silent divergence.
"""

from repro.faults.chaos import ChaosCampaign, run_all, run_campaign
from repro.faults.errseq import ErrseqMap
from repro.faults.media import MediaFaultModel
from repro.faults.policy import RetryPolicy
from repro.faults.reqfault import RequestFaultInjector
from repro.faults.ringfault import RingCrash, RingFaultInjector

__all__ = ["ChaosCampaign", "ErrseqMap", "MediaFaultModel",
           "RequestFaultInjector", "RetryPolicy", "RingCrash",
           "RingFaultInjector", "run_all", "run_campaign"]

"""Deterministic fault injection for the simulated NVMM storage stack.

Three cooperating pieces:

- :mod:`repro.faults.media` -- a seeded registry of bad / transiently
  failing NVMM cachelines, attached to :class:`repro.nvmm.device.NVMMDevice`;
  poisoned lines fail reads and persists with EIO
  (:class:`repro.fs.errors.MediaError`).
- :mod:`repro.faults.errseq` -- Linux ``errseq_t``-style tracking so an
  asynchronous writeback failure is reported by the *next* fsync/close of
  the file, exactly once per file descriptor.
- :mod:`repro.faults.crashpoints` -- a CrashMonkey-style crash-state
  explorer: it records every persist event and flush/fence boundary of an
  operation sequence, reconstructs the NVMM image a power failure would
  leave at each point (plus sampled uncontrolled-eviction subsets), then
  replays recovery and checks file-system invariants.
- :mod:`repro.faults.reqfault` -- request-targeted injection: fail the
  writeback of blocks last written by a specific
  :class:`repro.io.IORequest` id.
- :mod:`repro.faults.ringfault` -- ring-targeted injection: fail the Nth
  SQE a submission ring executes, or crash between the ops of a linked
  chain.
"""

from repro.faults.errseq import ErrseqMap
from repro.faults.media import MediaFaultModel
from repro.faults.reqfault import RequestFaultInjector
from repro.faults.ringfault import RingCrash, RingFaultInjector

__all__ = ["ErrseqMap", "MediaFaultModel", "RequestFaultInjector",
           "RingCrash", "RingFaultInjector"]

"""The unified retry policy: one seeded backoff/budget/breaker primitive.

Before this module, every layer that met a transient EIO rolled its own
loop: ``nvmm/device.py`` retried persists inline, HiNFS's writeback
dropped failed blocks on the floor, and a failed ring SQE simply
completed with ``-EIO``.  A :class:`RetryPolicy` centralises the three
decisions every such loop makes:

- **Budget** -- how many retries before giving up (``max_retries``).
- **Backoff** -- how long to wait (in *virtual* time) before attempt
  ``n``: exponential with an optional seeded jitter fraction, so two
  policies with the same seed back off identically and a run stays
  bit-for-bit deterministic.
- **Circuit breaker** -- after ``breaker_threshold`` *consecutive*
  exhausted budgets, the circuit opens for ``breaker_cooldown_ns`` of
  virtual time and every attempt fails fast; a success (or the cooldown
  expiring) closes it again.  This is what keeps a writeback worker from
  grinding its full backoff schedule against a permanently-dead line on
  every batch.

The policy only *decides*; the caller charges the returned backoff to
its own :class:`~repro.engine.context.ExecContext` so the cost lands on
the right thread's clock and breakdown category.
"""

import random


class RetryPolicy:
    """Seeded exponential-backoff-with-jitter retry budget + breaker."""

    def __init__(self, max_retries=3, base_backoff_ns=1_000, multiplier=2.0,
                 jitter_frac=0.0, seed=0, breaker_threshold=None,
                 breaker_cooldown_ns=1_000_000):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base_backoff_ns < 0:
            raise ValueError("base_backoff_ns must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")
        self.max_retries = int(max_retries)
        self.base_backoff_ns = int(base_backoff_ns)
        self.multiplier = float(multiplier)
        self.jitter_frac = float(jitter_frac)
        self._rng = random.Random(seed)
        #: Consecutive exhausted budgets that trip the breaker
        #: (``None`` disables the breaker entirely).
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_ns = int(breaker_cooldown_ns)
        self._consecutive_failures = 0
        self._open_until_ns = None
        #: Lifetime observability.
        self.retries = 0
        self.gave_up = 0
        self.breaker_trips = 0

    # -- budget / backoff --------------------------------------------------

    def allows(self, attempt):
        """May retry number ``attempt`` (1-based) run at all?"""
        return attempt <= self.max_retries

    def backoff_ns(self, attempt):
        """Virtual-time backoff before retry ``attempt`` (1-based).

        Exponential in the attempt number; jitter (when configured) adds
        a seeded fraction on top, never subtracts, so the deterministic
        floor ``base * multiplier**(attempt-1)`` is preserved.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        backoff = self.base_backoff_ns * self.multiplier ** (attempt - 1)
        if self.jitter_frac:
            backoff += backoff * self.jitter_frac * self._rng.random()
        return int(backoff)

    def note_retry(self):
        self.retries += 1

    # -- circuit breaker ---------------------------------------------------

    def circuit_open(self, now_ns):
        """Fail-fast gate: True while the breaker holds the circuit open."""
        if self._open_until_ns is None:
            return False
        if now_ns >= self._open_until_ns:
            # Cooldown expired: half-open; the next outcome decides.
            self._open_until_ns = None
            self._consecutive_failures = 0
            return False
        return True

    def record_success(self):
        """An attempt (or a retried attempt) succeeded: close the circuit."""
        self._consecutive_failures = 0
        self._open_until_ns = None

    def record_failure(self, now_ns):
        """A full retry budget was exhausted without success."""
        self.gave_up += 1
        self._consecutive_failures += 1
        if (self.breaker_threshold is not None
                and self._consecutive_failures >= self.breaker_threshold):
            self._open_until_ns = now_ns + self.breaker_cooldown_ns
            self.breaker_trips += 1

    # -- generic driver ----------------------------------------------------

    def run(self, ctx, fn, retryable=Exception, category=None,
            on_retry=None):
        """Drive ``fn()`` under this policy, charging backoff to ``ctx``.

        ``fn`` is called up to ``1 + max_retries`` times; ``retryable``
        exceptions trigger a charged backoff and a retry, anything else
        propagates immediately.  With the circuit open, the first failure
        (or, when ``fn`` is never attempted-safe, the breaker check by
        the caller) propagates without consuming backoff time.  Returns
        ``fn()``'s value on success.
        """
        if self.circuit_open(ctx.now):
            self.gave_up += 1
            return fn()  # one bare attempt, no budget: fail fast
        attempt = 0
        while True:
            try:
                result = fn()
            except retryable:
                attempt += 1
                if not self.allows(attempt):
                    self.record_failure(ctx.now)
                    raise
                self.note_retry()
                if on_retry is not None:
                    on_retry(attempt)
                ctx.charge(self.backoff_ns(attempt), category)
                continue
            self.record_success()
            return result

    def __repr__(self):
        return ("RetryPolicy(max_retries=%d, base=%dns, x%.1f, jitter=%.2f, "
                "retries=%d, gave_up=%d, trips=%d)") % (
            self.max_retries, self.base_backoff_ns, self.multiplier,
            self.jitter_frac, self.retries, self.gave_up, self.breaker_trips,
        )

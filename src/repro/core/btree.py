"""An in-DRAM B-tree, the structure behind HiNFS's DRAM Block Index.

The paper (Figure 5) indexes each file's buffered blocks with a per-file
B-tree keyed by the block-aligned logical file offset; the value is an
index node holding the DRAM block number and the corresponding NVMM
block number.  This module provides the generic ordered map; the index
semantics live in :mod:`repro.core.buffer`.

A classic B-tree of minimum degree ``t``: every node except the root
holds between ``t - 1`` and ``2t - 1`` sorted keys; inserts split full
children on the way down, deletes merge/borrow on the way down, so no
recursion ever backtracks.
"""

import bisect


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf=True):
        self.keys = []
        self.values = []
        self.children = [] if leaf else None

    @property
    def leaf(self):
        return self.children is None or len(self.children) == 0


class BTree:
    """Ordered integer-keyed map with B-tree internals."""

    def __init__(self, min_degree=16):
        if min_degree < 2:
            raise ValueError("min_degree must be >= 2")
        self.t = min_degree
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self):
        return self._size

    def __contains__(self, key):
        return self.get(key) is not None

    # -- search -----------------------------------------------------------

    def get(self, key, default=None):
        node = self._root
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.leaf:
                return default
            node = node.children[i]

    # -- insert -----------------------------------------------------------

    def insert(self, key, value):
        """Insert or replace; returns True if the key was new."""
        root = self._root
        if len(root.keys) == 2 * self.t - 1:
            new_root = _Node(leaf=False)
            new_root.children = [root]
            self._split_child(new_root, 0)
            self._root = new_root
        fresh = self._insert_nonfull(self._root, key, value)
        if fresh:
            self._size += 1
        return fresh

    def _split_child(self, parent, index):
        t = self.t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        mid_key = child.keys[t - 1]
        mid_val = child.values[t - 1]
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.keys.insert(index, mid_key)
        parent.values.insert(index, mid_val)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node, key, value):
        while True:
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return False
            if node.leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                return True
            child = node.children[i]
            if len(child.keys) == 2 * self.t - 1:
                self._split_child(node, i)
                if node.keys[i] == key:
                    node.values[i] = value
                    return False
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    # -- delete -----------------------------------------------------------

    def remove(self, key):
        """Delete ``key``; returns its value or None if absent."""
        value = self.get(key)
        if value is None and key not in self:
            return None
        self._delete(self._root, key)
        if not self._root.leaf and len(self._root.keys) == 0:
            self._root = self._root.children[0]
        self._size -= 1
        return value

    def _delete(self, node, key):
        t = self.t
        while True:
            i = bisect.bisect_left(node.keys, key)
            found = i < len(node.keys) and node.keys[i] == key
            if node.leaf:
                if found:
                    node.keys.pop(i)
                    node.values.pop(i)
                return
            if found:
                left, right = node.children[i], node.children[i + 1]
                if len(left.keys) >= t:
                    pred_k, pred_v = self._max_entry(left)
                    node.keys[i], node.values[i] = pred_k, pred_v
                    key = pred_k
                    node = left
                    continue
                if len(right.keys) >= t:
                    succ_k, succ_v = self._min_entry(right)
                    node.keys[i], node.values[i] = succ_k, succ_v
                    key = succ_k
                    node = right
                    continue
                self._merge(node, i)
                node = node.children[i]
                continue
            child = node.children[i]
            if len(child.keys) < t:
                i = self._fill(node, i)
                child = node.children[i]
                # After a merge the key may now live in this child.
            node = child

    @staticmethod
    def _max_entry(node):
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    @staticmethod
    def _min_entry(node):
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def _merge(self, parent, i):
        """Merge children i and i+1 around separator i."""
        left = parent.children[i]
        right = parent.children[i + 1]
        left.keys.append(parent.keys.pop(i))
        left.values.append(parent.values.pop(i))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        if not left.leaf:
            left.children.extend(right.children)
        parent.children.pop(i + 1)

    def _fill(self, parent, i):
        """Ensure child i has >= t keys; returns the (possibly new) index."""
        t = self.t
        if i > 0 and len(parent.children[i - 1].keys) >= t:
            self._borrow_from_left(parent, i)
            return i
        if i < len(parent.children) - 1 and len(parent.children[i + 1].keys) >= t:
            self._borrow_from_right(parent, i)
            return i
        if i < len(parent.children) - 1:
            self._merge(parent, i)
            return i
        self._merge(parent, i - 1)
        return i - 1

    @staticmethod
    def _borrow_from_left(parent, i):
        child = parent.children[i]
        left = parent.children[i - 1]
        child.keys.insert(0, parent.keys[i - 1])
        child.values.insert(0, parent.values[i - 1])
        parent.keys[i - 1] = left.keys.pop()
        parent.values[i - 1] = left.values.pop()
        if not child.leaf:
            child.children.insert(0, left.children.pop())

    @staticmethod
    def _borrow_from_right(parent, i):
        child = parent.children[i]
        right = parent.children[i + 1]
        child.keys.append(parent.keys[i])
        child.values.append(parent.values[i])
        parent.keys[i] = right.keys.pop(0)
        parent.values[i] = right.values.pop(0)
        if not child.leaf:
            child.children.append(right.children.pop(0))

    # -- iteration ----------------------------------------------------------

    def items(self):
        """All (key, value) pairs in ascending key order."""
        out = []
        self._walk(self._root, out)
        return out

    def _walk(self, node, out):
        if node.leaf:
            out.extend(zip(node.keys, node.values))
            return
        for i, key in enumerate(node.keys):
            self._walk(node.children[i], out)
            out.append((key, node.values[i]))
        self._walk(node.children[-1], out)

    def keys(self):
        return [k for k, _ in self.items()]

    def clear(self):
        self._root = _Node(leaf=True)
        self._size = 0

    # -- invariants (used by property tests) --------------------------------

    def check_invariants(self):
        """Raise AssertionError if any B-tree invariant is violated."""
        self._check_node(self._root, is_root=True, lo=None, hi=None)

    def _check_node(self, node, is_root, lo, hi):
        assert node.keys == sorted(node.keys), "keys unsorted"
        assert len(node.keys) == len(node.values)
        if not is_root:
            assert len(node.keys) >= self.t - 1, "underfull node"
        assert len(node.keys) <= 2 * self.t - 1, "overfull node"
        for key in node.keys:
            if lo is not None:
                assert key > lo
            if hi is not None:
                assert key < hi
        if not node.leaf:
            assert len(node.children) == len(node.keys) + 1
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                self._check_node(child, False, bounds[i], bounds[i + 1])

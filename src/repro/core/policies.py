"""Pluggable buffer replacement policies (the paper's future work).

Section 3.2: "this does not limit HiNFS of using other sophisticated
buffer replacement policies, such as LFU, ARC, 2Q ... We leave the
research of using different buffer replacement policies in the future."
This module implements that future work: a policy interface plus four
policies --

- :class:`LRWPolicy` -- the paper's default Least-Recently-Written list;
- :class:`LFUPolicy` -- Least-Frequently-Written (frequency buckets with
  LRW tie-breaking, O(1) operations);
- :class:`TwoQPolicy` -- Johnson & Shasha's 2Q adapted to a write
  buffer: a FIFO probation queue (A1in), a ghost queue of recently
  evicted block ids (A1out), and a main LRW queue (Am) for blocks
  rewritten after probation or re-admitted from the ghost;
- :class:`ARCPolicy` -- Megiddo & Modha's Adaptive Replacement Cache
  adapted likewise: recency list T1, frequency list T2, ghost lists
  B1/B2 steering the adaptive target ``p``.

Policies order *eviction*; correctness is unaffected (every block is
flushed before release), only the write-hit ratio changes -- which is
exactly what the ablation benchmark measures.
"""

from collections import OrderedDict

from repro.core.lrw import LRWList


class ReplacementPolicy:
    """Victim-ordering interface used by the write buffer."""

    name = "abstract"

    def on_buffered(self, block):
        """A block entered the buffer (first write after insert follows)."""
        raise NotImplementedError

    def on_write(self, block):
        """The block was written again while buffered."""
        raise NotImplementedError

    def on_evict(self, block):
        """The block left the buffer (flushed or discarded)."""
        raise NotImplementedError

    def victim(self):
        """The next block to evict, or None if the buffer is empty."""
        raise NotImplementedError

    def iter_order(self):
        """All buffered blocks, best-victim first (snapshot)."""
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError


class LRWPolicy(ReplacementPolicy):
    """The paper's default: a single Least-Recently-Written list."""

    name = "lrw"

    def __init__(self):
        self._list = LRWList()

    def on_buffered(self, block):
        self._list.touch(block)

    def on_write(self, block):
        self._list.touch(block)

    def on_evict(self, block):
        self._list.remove(block)

    def victim(self):
        return self._list.lrw_victim()

    def iter_order(self):
        return self._list.iter_lrw_order()

    def __len__(self):
        return len(self._list)


class LFUPolicy(ReplacementPolicy):
    """Least-Frequently-Written with O(1) frequency buckets.

    Each bucket is an LRW list; eviction takes the LRW end of the lowest
    non-empty bucket, so ties break by recency (LFU-aging without decay).
    """

    name = "lfu"

    def __init__(self, max_frequency=64):
        self.max_frequency = max_frequency
        self._buckets = {}
        self._freq = {}  # id(block) -> frequency
        self._size = 0

    def _bucket(self, freq):
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = LRWList()
            self._buckets[freq] = bucket
        return bucket

    def on_buffered(self, block):
        self._freq[id(block)] = 1
        self._bucket(1).touch(block)
        self._size += 1

    def on_write(self, block):
        freq = self._freq.get(id(block))
        if freq is None:
            self.on_buffered(block)
            return
        new_freq = min(self.max_frequency, freq + 1)
        if new_freq != freq:
            self._buckets[freq].remove(block)
            self._freq[id(block)] = new_freq
        else:
            self._buckets[freq].remove(block)
        self._bucket(new_freq).touch(block)

    def on_evict(self, block):
        freq = self._freq.pop(id(block), None)
        if freq is not None:
            self._buckets[freq].remove(block)
            self._size -= 1

    def victim(self):
        for freq in sorted(self._buckets):
            victim = self._buckets[freq].lrw_victim()
            if victim is not None:
                return victim
        return None

    def iter_order(self):
        out = []
        for freq in sorted(self._buckets):
            out.extend(self._buckets[freq].iter_lrw_order())
        return out

    def __len__(self):
        return self._size


class TwoQPolicy(ReplacementPolicy):
    """2Q adapted to a write buffer.

    New blocks enter the FIFO probation queue ``A1in``.  A block written
    again while in probation is promoted to the main queue ``Am`` (an
    LRW list).  Eviction prefers the front of ``A1in`` (once it exceeds
    ``kin`` of the population) and remembers evicted ids in the ghost
    ``A1out``; a re-inserted ghost id goes straight to ``Am``.
    """

    name = "2q"

    def __init__(self, kin=0.25, kout=0.5, capacity_hint=1024):
        self.kin = kin
        self.kout_entries = max(16, int(kout * capacity_hint))
        self._a1in = LRWList()
        self._am = LRWList()
        self._a1out = OrderedDict()  # ghost: (ino, file_block) -> None
        self._where = {}  # id(block) -> "a1in" | "am"

    @staticmethod
    def _key(block):
        return (block.ino, block.file_block)

    def on_buffered(self, block):
        if self._key(block) in self._a1out:
            del self._a1out[self._key(block)]
            self._am.touch(block)
            self._where[id(block)] = "am"
        else:
            self._a1in.touch(block)
            self._where[id(block)] = "a1in"

    def on_write(self, block):
        where = self._where.get(id(block))
        if where is None:
            self.on_buffered(block)
        elif where == "a1in":
            # Second write while on probation: promote.
            self._a1in.remove(block)
            self._am.touch(block)
            self._where[id(block)] = "am"
        else:
            self._am.touch(block)

    def on_evict(self, block):
        where = self._where.pop(id(block), None)
        if where == "a1in":
            self._a1in.remove(block)
            self._a1out[self._key(block)] = None
            while len(self._a1out) > self.kout_entries:
                self._a1out.popitem(last=False)
        elif where == "am":
            self._am.remove(block)

    def victim(self):
        total = len(self)
        if total == 0:
            return None
        if len(self._a1in) > self.kin * total:
            victim = self._a1in.lrw_victim()
            if victim is not None:
                return victim
        victim = self._am.lrw_victim()
        if victim is not None:
            return victim
        return self._a1in.lrw_victim()

    def iter_order(self):
        return self._a1in.iter_lrw_order() + self._am.iter_lrw_order()

    def __len__(self):
        return len(self._a1in) + len(self._am)


class ARCPolicy(ReplacementPolicy):
    """ARC adapted to a write buffer.

    ``t1`` holds blocks written once since admission, ``t2`` blocks
    written at least twice.  Ghost lists ``b1``/``b2`` remember evicted
    ids; a re-insertion that hits a ghost list adapts the target size
    ``p`` of ``t1`` (hit in b1 -> favour recency, grow p; hit in b2 ->
    favour frequency, shrink p) exactly as in the original algorithm.
    """

    name = "arc"

    def __init__(self, capacity_hint=1024):
        self.capacity = max(8, capacity_hint)
        self.p = 0.0
        self._t1 = LRWList()
        self._t2 = LRWList()
        self._b1 = OrderedDict()
        self._b2 = OrderedDict()
        self._where = {}

    @staticmethod
    def _key(block):
        return (block.ino, block.file_block)

    def _trim_ghost(self, ghost):
        while len(ghost) > self.capacity:
            ghost.popitem(last=False)

    def on_buffered(self, block):
        key = self._key(block)
        if key in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self.p = min(float(self.capacity), self.p + delta)
            del self._b1[key]
            self._t2.touch(block)
            self._where[id(block)] = "t2"
        elif key in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self.p = max(0.0, self.p - delta)
            del self._b2[key]
            self._t2.touch(block)
            self._where[id(block)] = "t2"
        else:
            self._t1.touch(block)
            self._where[id(block)] = "t1"

    def on_write(self, block):
        where = self._where.get(id(block))
        if where is None:
            self.on_buffered(block)
        elif where == "t1":
            self._t1.remove(block)
            self._t2.touch(block)
            self._where[id(block)] = "t2"
        else:
            self._t2.touch(block)

    def on_evict(self, block):
        where = self._where.pop(id(block), None)
        key = self._key(block)
        if where == "t1":
            self._t1.remove(block)
            self._b1[key] = None
            self._trim_ghost(self._b1)
        elif where == "t2":
            self._t2.remove(block)
            self._b2[key] = None
            self._trim_ghost(self._b2)

    def victim(self):
        if len(self._t1) >= max(1, int(self.p)):
            victim = self._t1.lrw_victim()
            if victim is not None:
                return victim
        victim = self._t2.lrw_victim()
        if victim is not None:
            return victim
        return self._t1.lrw_victim()

    def iter_order(self):
        return self._t1.iter_lrw_order() + self._t2.iter_lrw_order()

    def __len__(self):
        return len(self._t1) + len(self._t2)


POLICIES = {
    "lrw": LRWPolicy,
    "lfu": LFUPolicy,
    "2q": TwoQPolicy,
    "arc": ARCPolicy,
}


def make_policy(name, capacity_hint=1024):
    """Instantiate a policy by name, sizing its ghosts to the buffer."""
    cls = POLICIES[name]
    if cls in (TwoQPolicy, ARCPolicy):
        return cls(capacity_hint=capacity_hint)
    return cls()

"""HiNFS: hide NVMM write latency, avoid double copies (paper Section 3).

HiNFS extends PMFS (it "shares the file system data structures of PMFS
but adds a new DRAM buffer layer and modifies the file I/O execution
paths", Section 4):

- **Lazy-persistent writes** go to the DRAM write buffer; background
  writeback threads persist them later.  Their metadata transaction
  stays open until the buffered data reaches NVMM (ordered mode with a
  deferred commit entry).
- **Eager-persistent writes** (O_SYNC / sync mount, or blocks the Buffer
  Benefit Model marked Eager-Persistent) go directly to NVMM with a
  single copy.
- **Reads** copy directly from DRAM and/or NVMM into the user buffer;
  the Cacheline Bitmap decides, run by run, where the newest bytes live.

Ablation variants used by the paper's evaluation:

- ``make_hinfs_nclfw`` -- CLFW disabled (block-granular fetch/writeback;
  Figure 9).
- ``make_hinfs_wb`` -- Eager-Persistent Write Checker disabled: every
  write is buffered (Figures 12/13's HiNFS-WB).
"""

from repro.core.benefit import BufferBenefitModel
from repro.core.bitmap import FULL_MASK, iter_runs, iter_valid_runs, popcount
from repro.core.buffer import WriteBuffer
from repro.core.config import HiNFSConfig
from repro.core.writeback import WritebackPool
from repro.engine.errors import DeadlockError, ThreadDiagnostic
from repro.engine.locks import VCompletion
from repro.engine.stats import CAT_READ_ACCESS, CAT_WRITE_ACCESS
from repro.fs.errors import IsADirectory, MediaError
from repro.fs.pmfs.layout import block_addr
from repro.fs.pmfs.pmfs import PMFS
from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE


class PendingTx:
    """A journal transaction whose commit waits on buffered data blocks.

    Commits of one file's transactions must land in journal order: an
    undo rollback of an older-but-uncommitted transaction would otherwise
    clobber the effects of a newer committed one on the same inode
    bytes.  Pending transactions therefore form a per-file chain; a
    transaction whose data is durable but whose predecessor is still
    open waits (``ready``) and is committed by the predecessor's cascade.
    """

    __slots__ = ("tx", "blocks", "prev", "next", "ready")

    def __init__(self, tx, prev=None):
        self.tx = tx
        self.blocks = set()
        self.prev = prev
        self.next = None
        self.ready = False
        if prev is not None:
            prev.next = self

    def attach(self, block):
        self.blocks.add(block)
        # pending_txs is an insertion-ordered dict-as-set (determinism).
        block.pending_txs[self] = None

    def complete_block(self, ctx, journal, block):
        """Called when ``block`` has been persisted (or discarded)."""
        self.blocks.discard(block)
        self.maybe_commit(ctx, journal)

    def maybe_commit(self, ctx, journal):
        node = self
        while node is not None:
            if node.blocks or not node.tx.open:
                return
            if node.prev is not None and node.prev.tx.open:
                # Data durable, but an older same-file tx is still open.
                node.ready = True
                return
            journal.commit(ctx, node.tx)
            node.prev = None
            successor = node.next
            node.next = None
            if successor is None or not successor.ready:
                return
            node = successor


class HiNFS(PMFS):
    """The high performance file system for non-volatile main memory."""

    name = "hinfs"

    def __init__(self, env, device, config, hconfig=None, journal_blocks=512,
                 **kwargs):
        super().__init__(env, device, config, journal_blocks=journal_blocks,
                         **kwargs)
        self.hconfig = hconfig or HiNFSConfig()
        self.buffer = WriteBuffer(env, config, self.hconfig)
        self.benefit = BufferBenefitModel(env, config, self.hconfig)
        self.writeback = WritebackPool(env, self)
        env.background.register(self.writeback)
        self.journal.wrap_barrier = self._wrap_barrier
        self._mmapped = set()
        # ino -> newest PendingTx of that file (commit-ordering chains).
        self._file_tx_tail = {}
        # Transient: id(tx) -> PendingTx while a write is in flight.
        self._async_pending = {}

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def write_iter(self, ctx, req):
        inode = self._inode(req.ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % req.ino)
        # Contiguous iovecs coalesce here: the request is ONE buffered
        # operation stream and ONE eager/lazy decision below, however
        # many fragments the syscall carried.
        data = req.coalesce()
        if not data:
            return 0
        ctx.charge(self.config.index_lookup_ns)
        if req.eager:
            # Case (1): synchronous write -- must be durable on return.
            return self._write_sync(ctx, inode, req.offset, data, req=req)
        return self._write_async(ctx, inode, req.offset, data, req=req)

    def _open_tail(self, ino):
        """Newest still-relevant PendingTx of a file, or None."""
        tail = self._file_tx_tail.get(ino)
        if tail is not None and not tail.tx.open:
            del self._file_tx_tail[ino]
            return None
        return tail

    def _write_async(self, ctx, inode, offset, data, req=None):
        """Asynchronous write: buffer unless the block is Eager-Persistent."""
        ino = inode.ino
        tx = self.journal.begin(ctx)
        try:
            return self._write_async_body(ctx, inode, offset, tx,
                                          memoryview(data), req)
        finally:
            # Success or failure (e.g. ENOSPC mid-write), the transaction
            # must end up committed or chained -- never leaked open.
            self._finish_async_tx(ctx, ino, tx,
                                  self._async_pending.pop(id(tx), None))

    def _write_async_body(self, ctx, inode, offset, tx, view, req=None):
        ino = inode.ino
        blockmap = self._map(ino)
        mmapped = ino in self._mmapped
        pending = None
        pos = offset
        # ONE Buffer Benefit Model evaluation per request: the first
        # touched block decides eager vs. lazy for the whole request
        # (Inequality (1) is a per-write-pattern judgement, and a
        # coalesced gather write is one pattern, not N).
        decided = None
        while view:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, len(view))
            chunk = bytes(view[:take])
            self.benefit.record_write(ino, file_block, in_off, take, ctx.now)
            buffered = self.buffer.lookup(ino, file_block)
            if decided is None:
                decided = mmapped or self.benefit.is_eager(
                    ino, file_block, ctx.now, inode.last_sync
                )
                self.env.stats.bump("hinfs_benefit_decisions")
            if decided and buffered is None:
                # Direct single-copy write to NVMM; safe because the
                # block's newest data is already persistent (Sec 3.3.2).
                nvmm_block, fresh = self._ensure_mapped(ctx, tx, blockmap,
                                                        file_block)
                self.device.write_persistent(
                    ctx, block_addr(nvmm_block) + in_off, chunk
                )
                self.env.stats.bump("hinfs_eager_writes")
            else:
                nvmm_block, fresh = self._ensure_mapped(ctx, tx, blockmap,
                                                        file_block)
                if buffered is None:
                    buffered = self._buffer_insert(
                        ctx, ino, file_block, nvmm_block, fresh
                    )
                    self.env.stats.bump("hinfs_buffer_misses")
                else:
                    self.env.stats.bump("hinfs_buffer_hits")
                self._fetch_before_write(ctx, buffered, in_off, take)
                self.buffer.write_into(ctx, buffered, in_off, chunk, ctx.now)
                if req is not None:
                    # Tag the block with its originating request so fault
                    # injection can target this request's writeback.
                    buffered.last_req_id = req.req_id
                if pending is None:
                    pending = PendingTx(tx)
                    self._async_pending[id(tx)] = pending
                pending.attach(buffered)
                self.env.stats.bump("hinfs_lazy_writes")
            pos += take
            view = view[take:]
        written = pos - offset
        inode.size = max(inode.size, offset + written)
        inode.mtime = ctx.now
        self.itable.write_core(ctx, tx, inode)
        return written

    def _finish_async_tx(self, ctx, ino, tx, pending):
        """Commit now, or chain the deferred commit behind this file's
        still-open transactions (see PendingTx)."""
        if not tx.open:
            return
        tail = self._open_tail(ino)
        if pending is None and tail is None:
            self.journal.commit(ctx, tx)
        else:
            if pending is None:
                pending = PendingTx(tx, prev=tail)
            else:
                pending.prev = tail
                if tail is not None:
                    tail.next = pending
            self._file_tx_tail[ino] = pending
            pending.maybe_commit(ctx, self.journal)
        if self.buffer.below_low_watermark or self._journal_pressure():
            self.writeback.signal_pressure(ctx.now)

    def _journal_pressure(self):
        """Ask for background flushing well before the ring must wrap, so
        the wrap barrier rarely lands on the foreground."""
        return self.journal.used_slots > int(0.35 * self.journal.capacity)

    def _barrier_file(self, ctx, ino):
        """Close every open deferred transaction of a file, in order.

        Required before any operation that commits a new transaction on
        the same file synchronously (O_SYNC writes, truncate): committing
        out of order would let a crash roll an older transaction back
        over the newer committed state.
        """
        blocks = [b for b in self.buffer.file_blocks(ino) if b.pending_txs]
        if blocks:
            self.flush_blocks(ctx, blocks)
        tail = self._open_tail(ino)
        if tail is None:
            return
        chain = []
        node = tail
        while node is not None and node.tx.open:
            chain.append(node)
            node = node.prev
        for node in reversed(chain):
            if not node.blocks and node.tx.open:
                self.journal.commit(ctx, node.tx)

    def _write_sync(self, ctx, inode, offset, data, req=None):
        """Case (1) eager write: durable (data + metadata) on return."""
        ino = inode.ino
        self._barrier_file(ctx, ino)
        blockmap = self._map(ino)
        tx = self.journal.begin(ctx)
        try:
            return self._write_sync_body(ctx, inode, offset, tx,
                                         memoryview(data))
        finally:
            if tx.open:
                self.journal.commit(ctx, tx)

    def _write_sync_body(self, ctx, inode, offset, tx, view):
        """The per-block persist loop of an eager request."""
        ino = inode.ino
        blockmap = self._map(ino)
        pos = offset
        while view:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, len(view))
            chunk = bytes(view[:take])
            self.benefit.record_write(ino, file_block, in_off, take, ctx.now)
            nvmm_block, fresh = self._ensure_mapped(ctx, tx, blockmap, file_block)
            buffered = self.buffer.lookup(ino, file_block)
            if buffered is not None:
                # Paper 3.3.2: write into the DRAM copy, then explicitly
                # evict it before returning to the user.
                self._fetch_before_write(ctx, buffered, in_off, take)
                self.buffer.write_into(ctx, buffered, in_off, chunk, ctx.now)
                self.flush_and_evict(ctx, buffered)
            else:
                self.device.write_persistent(
                    ctx, block_addr(nvmm_block) + in_off, chunk
                )
            self.env.stats.bump("hinfs_sync_writes")
            pos += take
            view = view[take:]
        written = pos - offset
        inode.size = max(inode.size, offset + written)
        inode.mtime = ctx.now
        self.itable.write_core(ctx, tx, inode)
        return written

    # -- write-path helpers -------------------------------------------------

    def _ensure_mapped(self, ctx, tx, blockmap, file_block):
        """Map ``file_block`` in NVMM (journaled); returns (block, fresh)."""
        return self._ensure_mapped_for_mmap(ctx, tx, blockmap, file_block)

    def _buffer_insert(self, ctx, ino, file_block, nvmm_block, fresh):
        """Get a free DRAM block (stalling on the flusher if dry)."""
        if self.buffer.free_blocks == 0:
            self.writeback.demand_reclaim(ctx)
        if self.buffer.free_blocks == 0:
            # Demand reclaim freed nothing: every buffered block is stuck
            # (e.g. its writeback target sits on bad media).  Raise the
            # diagnosable deadlock instead of overfilling the buffer.
            notes = []
            model = getattr(self.device, "fault_model", None)
            if model is not None and model.bad_lines:
                notes.append(
                    "%d NVMM cacheline(s) are marked bad; writeback of "
                    "blocks mapped onto them cannot complete"
                    % len(model.bad_lines)
                )
            raise DeadlockError(
                "DRAM write buffer exhausted: demand reclaim freed no "
                "blocks (%d buffered, 0 free)" % self.buffer.used_blocks,
                diagnostics=[ThreadDiagnostic.of(ctx)] + [
                    ThreadDiagnostic.of(worker.ctx)
                    for worker in self.writeback.workers
                ],
                notes=notes,
            )
        block = self.buffer.insert(ino, file_block, nvmm_block)
        if fresh:
            # Freshly-allocated NVMM blocks are all zeroes; materialise
            # them in DRAM instead of "fetching" zeroes.
            self.buffer.dram.mem.fill(block.dram_addr, BLOCK_SIZE, 0)
            block.bitmap.mark_fetched(FULL_MASK)
        return block

    def _fetch_before_write(self, ctx, block, in_off, length):
        """CLFW: fetch only the partially-overwritten edge cachelines;
        HiNFS-NCLFW fetches the whole missing block instead."""
        if self.hconfig.enable_clfw:
            need = block.bitmap.fetch_needed(in_off, length)
        else:
            need = FULL_MASK & ~block.bitmap.valid
        if not need:
            return
        src_base = block_addr(block.nvmm_block)
        for start, nlines in iter_runs(need):
            data = self.device.read(
                ctx, src_base + start * CACHELINE_SIZE, nlines * CACHELINE_SIZE
            )
            self.buffer.dram.write(ctx, block.dram_addr + start * CACHELINE_SIZE,
                                   data)
        block.bitmap.mark_fetched(need)
        self.env.stats.bump("hinfs_fetched_lines", popcount(need))

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def read_iter(self, ctx, req):
        """Direct read from DRAM and/or NVMM guided by the bitmaps."""
        ino, offset, count = req.ino, req.offset, req.total_bytes
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if offset >= inode.size or count <= 0:
            return b""
        count = min(count, inode.size - offset)
        ctx.charge(self.config.index_lookup_ns)
        blockmap = self._map(ino)
        out = bytearray()
        pos = offset
        remaining = count
        while remaining > 0:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, remaining)
            buffered = self.buffer.lookup(ino, file_block)
            if buffered is None or buffered.bitmap.valid == 0:
                out.extend(self._read_nvmm(ctx, blockmap, file_block, in_off, take))
            else:
                out.extend(
                    self._read_merged(ctx, buffered, in_off, take)
                )
            pos += take
            remaining -= take
        return bytes(out)

    def _read_nvmm(self, ctx, blockmap, file_block, in_off, take):
        nvmm_block = blockmap.get(file_block)
        if nvmm_block is None:
            ctx.charge(self.config.load_cost_ns(take), CAT_READ_ACCESS)
            return b"\0" * take
        return self.device.read(ctx, block_addr(nvmm_block) + in_off, take)

    def _read_merged(self, ctx, block, in_off, take):
        """One memcpy per run of equal Cacheline-Bitmap bits (Sec 3.3.1)."""
        out = bytearray()
        lo, hi = in_off, in_off + take
        for start, nlines, in_dram in iter_valid_runs(block.bitmap.valid):
            run_lo = start * CACHELINE_SIZE
            run_hi = run_lo + nlines * CACHELINE_SIZE
            copy_lo = max(lo, run_lo)
            copy_hi = min(hi, run_hi)
            if copy_lo >= copy_hi:
                continue
            length = copy_hi - copy_lo
            if in_dram:
                out.extend(self.buffer.read_from(ctx, block, copy_lo, length))
            else:
                out.extend(
                    self.device.read(
                        ctx, block_addr(block.nvmm_block) + copy_lo, length
                    )
                )
        return bytes(out)

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def fsync(self, ctx, ino):
        """Flush the file's buffered blocks; re-evaluate the Benefit Model."""
        inode = self._inode(ino)
        # Evaluate Inequality (1) for every block written since the last
        # sync (the ghost buffer tracked them whether buffered or not).
        for file_block in self.benefit.pending_blocks(ino):
            self.benefit.on_sync(ino, file_block, ctx.now)
        self.flush_blocks(ctx, self.buffer.file_blocks(ino))
        # last_sync only feeds the 5-second eager-reset heuristic; the
        # paper notes recording it is lightweight, so it stays DRAM-only.
        inode.last_sync = ctx.now
        self.device.fence(ctx)
        self.env.stats.bump("hinfs_fsyncs")

    def fdatasync(self, ctx, ino):
        """fdatasync(2): flush the file's buffered data and fence.

        Skips the Benefit Model's per-block sync pass and the
        ``last_sync`` bookkeeping -- those drive the eager-persistence
        heuristics, i.e. metadata a data-only sync need not touch."""
        self._inode(ino)
        self.flush_blocks(ctx, self.buffer.file_blocks(ino))
        self.device.fence(ctx)
        self.env.stats.bump("hinfs_fdatasyncs")

    def sync_iter(self, ctx, req):
        """OP_SYNC: foreground (eager) syncs keep the paper's serial
        Section 3.3.2 flush; ring-async syncs overlap the dirty runs
        across the NVMM writer slots and return a pending completion
        that resolves at the slowest run's device-side end."""
        if req.eager:
            return super().sync_iter(ctx, req)
        ino = req.ino
        inode = self._inode(ino)
        if not req.datasync:
            for file_block in self.benefit.pending_blocks(ino):
                self.benefit.on_sync(ino, file_block, ctx.now)
        end = self.flush_blocks(ctx, self.buffer.file_blocks(ino),
                                parallel=True, wait=False)
        if not req.datasync:
            inode.last_sync = ctx.now
        self.device.fence(ctx)
        self.env.stats.bump(
            "hinfs_fdatasyncs" if req.datasync else "hinfs_fsyncs"
        )
        comp = VCompletion(self.env, name="hinfs.sync:%d" % ino)
        comp.resolve(max(end or 0, ctx.now), 0)
        return comp

    # ------------------------------------------------------------------
    # flush / discard machinery
    # ------------------------------------------------------------------

    def flush_and_evict(self, ctx, block):
        """Persist one buffered block and release it."""
        self.flush_blocks(ctx, [block])

    def flush_blocks(self, ctx, blocks, parallel=False, record_errors=False,
                     wait=True, retry_policy=None):
        """Persist a batch of buffered blocks to NVMM, then release them.

        ``parallel=True`` overlaps the dirty runs across the NVMM writer
        slots -- the effect of the paper's *multiple* background
        writeback threads; the caller waits once for the slowest run.  A
        foreground fsync flushes serially (the syncing thread performs
        the ``N_cf`` cacheline flushes itself, Section 3.3.2).
        ``wait=False`` (parallel only) skips that final wait and returns
        the slowest run's device-side end time instead, for callers --
        the ring's async fsync -- that surface it as a completion rather
        than blocking on it.

        Deferred commits are appended only after the data is durable
        (ordered mode).  With CLFW only dirty cacheline runs are written;
        the HiNFS-NCLFW ablation writes back every valid line of a dirty
        block.

        Media errors: with ``record_errors=False`` (foreground fsync /
        O_SYNC) a failed persist raises EIO to the caller and the
        affected blocks stay buffered for a later retry.  Background
        writeback passes ``record_errors=True``: nobody is there to
        raise at, so the block's acknowledged-but-unpersistable data is
        dropped and the failure is recorded against the inode's errseq --
        the next fsync/close of the file reports it (Linux writeback
        semantics: the data is lost, the error is not).

        ``retry_policy`` (a :class:`repro.faults.policy.RetryPolicy`)
        makes background writeback re-attempt a failed block with charged
        backoff before declaring the acknowledged data lost -- only
        meaningful with ``record_errors=True``; foreground callers raise
        immediately so the syscall can report EIO.
        """
        ends = []
        failed = set()
        injector = self.request_faults
        for block in blocks:
            if self.hconfig.enable_clfw:
                mask = block.bitmap.dirty
            else:
                mask = block.bitmap.valid if block.bitmap.dirty else 0
            if not mask:
                continue
            dst_base = block_addr(block.nvmm_block)
            attempt = 0
            while True:
                try:
                    if injector is not None:
                        # Request-targeted fault injection: fail the persist
                        # of blocks last written by an armed request id.
                        injector.check(block.last_req_id)
                    for start, nlines in iter_runs(mask):
                        data = self.buffer.read_from(
                            ctx, block, start * CACHELINE_SIZE,
                            nlines * CACHELINE_SIZE
                        )
                        dst = dst_base + start * CACHELINE_SIZE
                        if parallel:
                            ends.append(
                                self.device.write_persistent_async(ctx, dst,
                                                                   data)
                            )
                        else:
                            self.device.write_persistent(ctx, dst, data)
                except MediaError:
                    if not record_errors:
                        if ends:
                            ctx.sync_to(max(ends), CAT_WRITE_ACCESS)
                        raise
                    attempt += 1
                    if retry_policy is not None and \
                            retry_policy.allows(attempt) and \
                            not retry_policy.circuit_open(ctx.now):
                        retry_policy.note_retry()
                        self.env.stats.bump("wb_retries")
                        ctx.charge(retry_policy.backoff_ns(attempt),
                                   CAT_WRITE_ACCESS)
                        continue
                    if retry_policy is not None:
                        retry_policy.record_failure(ctx.now)
                    self.note_wb_error(block.ino)
                    failed.add(id(block))
                    self.env.stats.bump("hinfs_wb_media_errors")
                    break
                else:
                    if attempt:
                        retry_policy.record_success()
                        self.env.stats.bump("wb_retry_successes")
                    self.env.stats.bump("hinfs_flushed_lines", popcount(mask))
                    break
        end = max(ends) if ends else None
        if ends and wait:
            ctx.sync_to(end, CAT_WRITE_ACCESS)
        for block in blocks:
            if id(block) in failed:
                # Data lost: complete the deferred commits (the metadata
                # is already acknowledged) and free the DRAM block so the
                # buffer cannot wedge on unpersistable lines.
                self.discard_block(ctx, block)
                continue
            block.bitmap.clean()
            self._complete_pending(ctx, block)
            self.buffer.evict(block)
        return end

    def discard_block(self, ctx, block):
        """Drop a buffered block without writeback (unlink/truncate path:
        writes to files that are later deleted never touch NVMM)."""
        self._complete_pending(ctx, block)
        self.buffer.evict(block)
        self.env.stats.bump("hinfs_discarded_blocks")

    def _complete_pending(self, ctx, block):
        for pending in list(block.pending_txs):
            pending.complete_block(ctx, self.journal, block)
        block.pending_txs.clear()

    def _wrap_barrier(self, ctx):
        """Journal recycling: force every deferred commit closed.

        Must not abort half-way (the wrap needs every transaction
        closed), so media errors are recorded, not raised.
        """
        self.flush_blocks(ctx, self.buffer.all_blocks_lrw_order(),
                          parallel=True, record_errors=True)

    # ------------------------------------------------------------------
    # memory-mapped I/O (paper Section 4.2)
    # ------------------------------------------------------------------

    def on_mmap(self, ctx, ino):
        """Map-time hook: flush the file's buffered DRAM blocks first
        and pin its blocks Eager-Persistent until munmap (mapped stores
        bypass the file-I/O path, so nothing may be staged in DRAM)."""
        self.flush_blocks(ctx, self.buffer.file_blocks(ino))
        self._mmapped.add(ino)

    def on_munmap(self, ino, region=None):
        super().on_munmap(ino, region)
        if not self._live_mappings(ino):
            self._mmapped.discard(ino)

    # ------------------------------------------------------------------
    # namespace hooks
    # ------------------------------------------------------------------

    def on_release(self, ctx, ino):
        for block in self.buffer.file_blocks(ino):
            self.discard_block(ctx, block)
        self.benefit.drop_file(ino)
        self._mmapped.discard(ino)

    def truncate(self, ctx, ino, new_size):
        first_dead = -(-new_size // BLOCK_SIZE)
        for block in self.buffer.file_blocks(ino):
            if block.file_block >= first_dead:
                self.discard_block(ctx, block)
        # The buffered copy of the partial tail block wins over NVMM on
        # reads, so its bytes past new_size must be zeroed too (PMFS
        # below zeroes the NVMM side).
        in_off = new_size % BLOCK_SIZE
        if in_off:
            buffered = self.buffer.lookup(ino, new_size // BLOCK_SIZE)
            if buffered is not None:
                self.buffer.write_into(ctx, buffered, in_off,
                                       b"\0" * (BLOCK_SIZE - in_off), ctx.now)
        # The truncate transaction commits synchronously; surviving
        # deferred transactions of this file must commit first.
        self._barrier_file(ctx, ino)
        super().truncate(ctx, ino, new_size)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def unmount(self, ctx):
        """Flush all DRAM blocks to NVMM (paper Section 3.2).  Best
        effort on bad media: errors are recorded, the drain completes."""
        self.flush_blocks(ctx, self.buffer.all_blocks_lrw_order(),
                          parallel=True, record_errors=True)
        super().unmount(ctx)

    def drop_caches(self):
        """Reset the Benefit Model's history (fresh measured run); the
        buffer itself was emptied by the preceding unmount flush."""
        self.benefit = BufferBenefitModel(self.env, self.config, self.hconfig)

    def free_data_bytes(self, ctx):
        return self.balloc.free_count * BLOCK_SIZE


def make_hinfs_nclfw(env, device, config, hconfig=None, **kwargs):
    """HiNFS-NCLFW: block-granular fetch/writeback (Figure 9 ablation)."""
    hconfig = (hconfig or HiNFSConfig()).replace(enable_clfw=False)
    return HiNFS(env, device, config, hconfig=hconfig, **kwargs)


def make_hinfs_wb(env, device, config, hconfig=None, **kwargs):
    """HiNFS-WB: plain DRAM write buffer, no eager checker (Fig 12/13)."""
    hconfig = (hconfig or HiNFSConfig()).replace(enable_eager_checker=False)
    fs = HiNFS(env, device, config, hconfig=hconfig, **kwargs)
    fs.name = "hinfs-wb"
    return fs

"""The global Least-Recently-Written list (paper Section 3.2).

All buffered DRAM blocks are kept sorted by last written time.  A write
moves a block to the MRW (most-recently-written) end; the writeback
threads pick victims from the LRW end.  Implemented as an intrusive
doubly-linked list with two sentinels, so every operation is O(1).
"""


class LRWNode:
    """Mixin/base giving an object a place in one LRW list."""

    __slots__ = ("lrw_prev", "lrw_next")

    def __init__(self):
        self.lrw_prev = None
        self.lrw_next = None


class LRWList:
    """Intrusive doubly-linked list: head = LRW victim end, tail = MRW."""

    def __init__(self):
        self._head = LRWNode()  # sentinel before the LRW-most node
        self._tail = LRWNode()  # sentinel after the MRW-most node
        self._head.lrw_next = self._tail
        self._tail.lrw_prev = self._head
        self._size = 0

    def __len__(self):
        return self._size

    def __contains__(self, node):
        return node.lrw_prev is not None

    def _unlink(self, node):
        node.lrw_prev.lrw_next = node.lrw_next
        node.lrw_next.lrw_prev = node.lrw_prev
        node.lrw_prev = None
        node.lrw_next = None

    def _link_mrw(self, node):
        last = self._tail.lrw_prev
        last.lrw_next = node
        node.lrw_prev = last
        node.lrw_next = self._tail
        self._tail.lrw_prev = node

    def touch(self, node):
        """Insert or move ``node`` to the MRW position."""
        if node.lrw_prev is not None:
            self._unlink(node)
        else:
            self._size += 1
        self._link_mrw(node)

    def remove(self, node):
        """Drop ``node`` from the list (no-op if absent)."""
        if node.lrw_prev is None:
            return
        self._unlink(node)
        self._size -= 1

    def lrw_victim(self):
        """The least-recently-written node, or None when empty."""
        node = self._head.lrw_next
        return None if node is self._tail else node

    def iter_lrw_order(self):
        """Iterate from LRW to MRW (snapshot-safe: collects first)."""
        nodes = []
        node = self._head.lrw_next
        while node is not self._tail:
            nodes.append(node)
            node = node.lrw_next
        return nodes

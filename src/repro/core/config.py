"""HiNFS tunables, with the paper's defaults.

Section 3.2: ``Low_f`` = 5 % free blocks wakes the writeback threads,
which reclaim until ``High_f`` = 20 % are free, then keep flushing any
dirty block older than 30 seconds; an independent periodic wakeup fires
every 5 seconds.  Section 3.3.2: a block in the Eager-Persistent state
reverts to Lazy-Persistent after 5 seconds without a synchronization.
"""

import dataclasses

from repro.engine.clock import NS_PER_SEC


@dataclasses.dataclass(frozen=True)
class HiNFSConfig:
    #: DRAM write-buffer capacity in bytes (the paper mounts with 2 GB for
    #: microbenchmarks and workload-size fractions for trace replay).
    buffer_bytes: int = 64 << 20
    #: Wake writeback when free blocks fall below this fraction.
    low_watermark: float = 0.05
    #: Writeback reclaims until this fraction of blocks is free.
    high_watermark: float = 0.20
    #: Periodic writeback wakeup interval.
    periodic_interval_ns: int = 5 * NS_PER_SEC
    #: Age beyond which dirty blocks are flushed by the periodic scan.
    dirty_age_ns: int = 30 * NS_PER_SEC
    #: Eager-Persistent blocks revert to Lazy after this long with no sync.
    eager_reset_ns: int = 5 * NS_PER_SEC
    #: Cacheline-Level Fetch/Writeback; off = the HiNFS-NCLFW ablation.
    enable_clfw: bool = True
    #: The Eager-Persistent Write Checker; off = the HiNFS-WB ablation.
    enable_eager_checker: bool = True
    #: Number of buffer blocks reclaimed per demand-flush batch.
    reclaim_batch: int = 16
    #: Buffer replacement policy: "lrw" (the paper's default), or the
    #: alternatives the paper defers to future work: "lfu", "arc", "2q".
    replacement_policy: str = "lrw"
    #: Parallel background writeback workers (the paper runs multiple
    #: writeback threads, Section 3.2); each owns a subset of the buffer
    #: shards and flushes on its own virtual timeline.
    nr_writeback_workers: int = 1
    #: DRAM Block Index shards (by ``ino % buffer_shards``); each shard
    #: keeps its own dirty list so writeback workers scan independently.
    buffer_shards: int = 8

    def replace(self, **kwargs):
        return dataclasses.replace(self, **kwargs)

    @property
    def buffer_blocks(self):
        return max(8, self.buffer_bytes // 4096)

    @property
    def low_blocks(self):
        return max(1, int(self.buffer_blocks * self.low_watermark))

    @property
    def high_blocks(self):
        return max(2, int(self.buffer_blocks * self.high_watermark))

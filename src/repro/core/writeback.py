"""Background writeback threads (paper Section 3.2).

Two wakeup causes, exactly as the paper specifies:

1. Pressure: fewer than ``Low_f`` free DRAM blocks.  The thread reclaims
   LRW victims until ``High_f`` blocks are free, then keeps scanning the
   LRW list for dirty blocks last updated more than 30 s ago.
2. Periodic: every 5 seconds it writes cold updated data back to NVMM.

The task runs on its own virtual-time line (its flushes occupy NVMM
writer slots, contending with foreground eager writes -- the effect
Figure 9 attributes background traffic to).  When the foreground runs
the buffer completely dry it calls :meth:`demand_reclaim` and *waits*,
which is the only time writeback latency enters the critical path.
"""

from repro.engine.background import NEVER, BackgroundTask
from repro.obs.trace import LAYER_WRITEBACK


class WritebackTask(BackgroundTask):
    """The lazily-advanced writeback timeline for one HiNFS instance."""

    def __init__(self, env, hinfs):
        super().__init__(env, "hinfs-writeback")
        self.hinfs = hinfs
        self.config = hinfs.hconfig
        self._next_periodic_ns = self.config.periodic_interval_ns
        self._pressure_ns = NEVER

    # -- BackgroundTask interface ----------------------------------------

    def next_due_ns(self):
        return min(self._next_periodic_ns, self._pressure_ns)

    def run_due(self, horizon_ns):
        while self.next_due_ns() <= horizon_ns:
            due = self.next_due_ns()
            self.ctx.clock.advance_to(due)
            if self._pressure_ns <= due:
                self._pressure_ns = NEVER
                if self.hinfs.buffer.free_blocks < self.config.high_blocks:
                    self._reclaim_to_high()
                self._journal_relief()
                self._flush_aged()
            if self._next_periodic_ns <= due:
                self._next_periodic_ns += self.config.periodic_interval_ns
                self._periodic_flush()

    # -- signals ------------------------------------------------------------

    def signal_pressure(self, now_ns):
        """Foreground noticed free blocks < Low_f."""
        if now_ns < self._pressure_ns:
            self._pressure_ns = now_ns

    def demand_reclaim(self, fg_ctx):
        """The buffer is completely full: reclaim a batch *synchronously*.

        The flusher's clock catches up to the foreground's, flushes a
        batch of LRW victims (occupying NVMM writer slots), and the
        foreground waits for completion -- the paper's foreground stall.
        """
        self.ctx.clock.advance_to(fg_ctx.now)
        buffer = self.hinfs.buffer
        victims = []
        for block in buffer.all_blocks_lrw_order():
            if len(victims) >= self.config.reclaim_batch:
                break
            victims.append(block)
        with fg_ctx.waiting("hinfs-writeback demand reclaim "
                            "(%d victim blocks)" % len(victims)):
            with self.ctx.waiting("flushing %d demand-reclaim victims"
                                  % len(victims)):
                self._flush_batch(self.ctx, "demand", victims)
            self.env.stats.bump("writeback_demand_stalls")
            self.env.stats.bump("writeback_demand_blocks", len(victims))
            # The only time writeback latency enters the critical path:
            # the foreground's wait shows up as a writeback phase on its
            # own in-flight request's span.
            with fg_ctx.layer(LAYER_WRITEBACK):
                fg_ctx.sync_to(self.ctx.now)
        # Let the background continue towards High_f off the critical path.
        self.signal_pressure(fg_ctx.now)
        return len(victims)

    # -- work items -----------------------------------------------------------

    def _flush_batch(self, ctx, cause, victims):
        """Flush one batch under a ``writeback``-layer span.

        When tracing is on the span is tagged with the ids of the
        requests whose buffered data this batch persists, joining the
        background timeline to the foreground requests in the exported
        trace (and letting fault injection target one request's
        writeback).
        """
        meta = None
        if self.env.trace is not None:
            meta = {
                "cause": cause,
                "req_ids": sorted({block.last_req_id for block in victims
                                   if block.last_req_id is not None}),
            }
        with ctx.span("wb:%s" % cause, layer=LAYER_WRITEBACK, meta=meta):
            self.hinfs.flush_blocks(ctx, victims, parallel=True,
                                    record_errors=True)

    def _reclaim_to_high(self):
        buffer = self.hinfs.buffer
        while not buffer.at_high_watermark:
            victims = []
            for block in buffer.all_blocks_lrw_order():
                if len(victims) >= self.config.reclaim_batch:
                    break
                victims.append(block)
            if not victims:
                return
            self._flush_batch(self.ctx, "pressure", victims)
            self.env.stats.bump("writeback_pressure_blocks", len(victims))

    def _journal_relief(self):
        """Close deferred-commit transactions before the journal ring has
        to wrap, so the wrap barrier rarely stalls the foreground."""
        journal = self.hinfs.journal
        if journal.used_slots <= int(0.35 * journal.capacity):
            return
        victims = [block for block in self.hinfs.buffer.all_blocks_lrw_order()
                   if block.pending_txs]
        self._flush_batch(self.ctx, "journal-relief", victims)
        self.env.stats.bump("writeback_journal_relief_blocks", len(victims))

    def _flush_aged(self):
        """After reclaiming, flush any dirty block older than 30 s."""
        now = self.ctx.now
        victims = [
            block for block in self.hinfs.buffer.all_blocks_lrw_order()
            if block.is_dirty
            and now - block.last_written_ns >= self.config.dirty_age_ns
        ]
        self._flush_batch(self.ctx, "aged", victims)
        self.env.stats.bump("writeback_aged_blocks", len(victims))

    def _periodic_flush(self):
        """The 5-second wakeup: persist blocks that have gone cold (not
        written for at least one full interval)."""
        now = self.ctx.now
        interval = self.config.periodic_interval_ns
        victims = [
            block for block in self.hinfs.buffer.all_blocks_lrw_order()
            if block.is_dirty and now - block.last_written_ns >= interval
        ]
        self._flush_batch(self.ctx, "periodic", victims)
        self.env.stats.bump("writeback_periodic_blocks", len(victims))

"""Background writeback workers (paper Section 3.2).

Two wakeup causes, exactly as the paper specifies:

1. Pressure: fewer than ``Low_f`` free DRAM blocks.  The pool reclaims
   LRW victims until ``High_f`` blocks are free, then keeps scanning the
   dirty lists for blocks last updated more than 30 s ago.
2. Periodic: every 5 seconds it writes cold updated data back to NVMM.

The paper runs *multiple* writeback threads; here that is a
:class:`WritebackPool` of ``nr_writeback_workers`` timelines.  Each
worker owns a round-robin subset of the buffer's shards and flushes its
victims on its own virtual clock, so a batch spanning many files drains
in parallel (bounded below by the shared ``N_w`` NVMM writer slots).
When victims cluster in one worker's shards, idle workers *steal* the
tail of the longest queue (``writeback_steals``), so a single hot file
still spreads across the pool.

All worker flushes occupy NVMM writer slots, contending with foreground
eager writes -- the effect Figure 9 attributes background traffic to.
When the foreground runs the buffer completely dry it calls
:meth:`demand_reclaim` and *waits* for the slowest participating
worker, which is the only time writeback latency enters the critical
path.  Worker 0 runs on the pool's registered timeline (named
``hinfs-writeback``); extra workers are ``hinfs-writeback-N``.
"""

from repro.engine.background import NEVER, BackgroundTask
from repro.engine.context import ExecContext
from repro.faults.policy import RetryPolicy
from repro.obs.trace import LAYER_WRITEBACK


class WritebackWorker:
    """One parallel writeback timeline and the shards it owns."""

    __slots__ = ("worker_id", "ctx", "shards")

    def __init__(self, worker_id, ctx, shards):
        self.worker_id = worker_id
        self.ctx = ctx
        self.shards = shards

    def __repr__(self):
        return "WritebackWorker(%d, now=%d, shards=%r)" % (
            self.worker_id, self.ctx.now, self.shards,
        )


class WritebackPool(BackgroundTask):
    """The lazily-advanced writeback worker pool of one HiNFS instance."""

    def __init__(self, env, hinfs):
        super().__init__(env, "hinfs-writeback")
        self.hinfs = hinfs
        self.config = hinfs.hconfig
        nr = max(1, self.config.nr_writeback_workers)
        nr_shards = hinfs.buffer.nr_shards
        #: Worker 0 reuses the pool's registered context (and its name,
        #: which diagnostics and tests key on); the rest get their own.
        self.workers = []
        for wid in range(nr):
            ctx = self.ctx if wid == 0 else ExecContext(
                env, "hinfs-writeback-%d" % wid
            )
            shards = tuple(s for s in range(nr_shards) if s % nr == wid)
            self.workers.append(WritebackWorker(wid, ctx, shards))
        self._next_periodic_ns = self.config.periodic_interval_ns
        self._pressure_ns = NEVER
        #: The pool's unified retry policy for writeback EIO: transient
        #: persist failures are re-attempted with charged backoff before
        #: the acknowledged data is declared lost (errseq).  Shared across
        #: workers so the circuit breaker sees the whole pool's failures.
        self.retry_policy = RetryPolicy(
            max_retries=2,
            base_backoff_ns=hinfs.config.media_retry_backoff_ns,
            multiplier=2.0,
            jitter_frac=0.0,
            breaker_threshold=8,
        )

    @property
    def nr_workers(self):
        return len(self.workers)

    def quiesce(self):
        for worker in self.workers:
            worker.ctx.clock.reset()
        self._next_periodic_ns = self.config.periodic_interval_ns
        self._pressure_ns = NEVER

    # -- BackgroundTask interface ----------------------------------------

    def next_due_ns(self):
        return min(self._next_periodic_ns, self._pressure_ns)

    def run_due(self, horizon_ns):
        while self.next_due_ns() <= horizon_ns:
            due = self.next_due_ns()
            for worker in self.workers:
                worker.ctx.clock.advance_to(due)
            if self._pressure_ns <= due:
                self._pressure_ns = NEVER
                if self.hinfs.buffer.free_blocks < self.config.high_blocks:
                    self._reclaim_to_high()
                self._journal_relief()
                self._flush_aged()
            if self._next_periodic_ns <= due:
                self._next_periodic_ns += self.config.periodic_interval_ns
                self._periodic_flush()

    # -- signals ------------------------------------------------------------

    def signal_pressure(self, now_ns):
        """Foreground noticed free blocks < Low_f.

        Coalescing: under sustained saturation the foreground signals on
        every write, but only a signal that actually pulls the wakeup
        *earlier* touches the registry -- and then via
        :meth:`~repro.engine.background.BackgroundRegistry.note_earlier`,
        which lowers the cached minimum in place instead of invalidating
        it, so the PR 7 idle fast path stays warm through an overload
        episode.
        """
        if now_ns < self._pressure_ns:
            self._pressure_ns = now_ns
            self.env.background.note_earlier(now_ns)

    def demand_reclaim(self, fg_ctx):
        """The buffer is completely full: reclaim a batch *synchronously*.

        Every worker's clock catches up to the foreground's, the victim
        batch is partitioned across the pool (occupying NVMM writer
        slots), and the foreground waits for the slowest participating
        worker -- the paper's foreground stall, shortened by worker
        parallelism.
        """
        for worker in self.workers:
            worker.ctx.clock.advance_to(fg_ctx.now)
        buffer = self.hinfs.buffer
        victims = []
        for block in buffer.all_blocks_lrw_order():
            if len(victims) >= self.config.reclaim_batch:
                break
            victims.append(block)
        with fg_ctx.waiting("hinfs-writeback demand reclaim "
                            "(%d victim blocks)" % len(victims)):
            ends = []
            for worker, part in zip(self.workers, self._partition(victims)):
                if not part:
                    continue
                with worker.ctx.waiting("flushing %d demand-reclaim victims"
                                        % len(part)):
                    self._flush_batch(worker.ctx, "demand", part)
                self.env.stats.bump(
                    "writeback_worker%d_blocks" % worker.worker_id, len(part)
                )
                ends.append(worker.ctx.now)
            self.env.stats.bump("writeback_demand_stalls")
            self.env.stats.bump("writeback_demand_blocks", len(victims))
            # The only time writeback latency enters the critical path:
            # the foreground's wait shows up as a writeback phase on its
            # own in-flight request's span.
            if ends:
                with fg_ctx.layer(LAYER_WRITEBACK):
                    fg_ctx.sync_to(max(ends))
        # Let the background continue towards High_f off the critical path.
        self.signal_pressure(fg_ctx.now)
        return len(victims)

    # -- work distribution ----------------------------------------------------

    def _partition(self, victims):
        """Split a victim batch across the workers.

        Blocks go to the owner of their buffer shard first; then idle
        workers steal the tail half of the longest queue until nobody
        sits idle while another worker holds more than one block.
        """
        nr = self.nr_workers
        parts = [[] for _ in range(nr)]
        shard_of = self.hinfs.buffer.shard_of
        for block in victims:
            parts[shard_of(block.ino) % nr].append(block)
        if nr == 1:
            return parts
        while True:
            busiest = max(range(nr), key=lambda w: len(parts[w]))
            idle = min(range(nr), key=lambda w: len(parts[w]))
            take = len(parts[busiest]) // 2
            if parts[idle] or take == 0:
                break
            parts[idle] = parts[busiest][-take:]
            del parts[busiest][-take:]
            self.env.stats.bump("writeback_steals")
            self.env.stats.bump("writeback_stolen_blocks", take)
        return parts

    def _flush_distributed(self, cause, victims):
        """Partition a batch and flush each part on its worker's timeline."""
        for worker, part in zip(self.workers, self._partition(victims)):
            if not part:
                continue
            self._flush_batch(worker.ctx, cause, part)
            self.env.stats.bump(
                "writeback_worker%d_blocks" % worker.worker_id, len(part)
            )

    # -- work items -----------------------------------------------------------

    def _flush_batch(self, ctx, cause, victims):
        """Flush one batch under a ``writeback``-layer span.

        When tracing is on the span is tagged with the ids of the
        requests whose buffered data this batch persists, joining the
        background timeline to the foreground requests in the exported
        trace (and letting fault injection target one request's
        writeback, whichever worker flushes it).
        """
        meta = None
        if self.env.trace is not None:
            meta = {
                "cause": cause,
                "req_ids": sorted({block.last_req_id for block in victims
                                   if block.last_req_id is not None}),
            }
        with ctx.span("wb:%s" % cause, layer=LAYER_WRITEBACK, meta=meta):
            self.hinfs.flush_blocks(ctx, victims, parallel=True,
                                    record_errors=True,
                                    retry_policy=self.retry_policy)

    def _reclaim_to_high(self):
        buffer = self.hinfs.buffer
        while not buffer.at_high_watermark:
            victims = []
            for block in buffer.all_blocks_lrw_order():
                if len(victims) >= self.config.reclaim_batch:
                    break
                victims.append(block)
            if not victims:
                return
            self._flush_distributed("pressure", victims)
            self.env.stats.bump("writeback_pressure_blocks", len(victims))

    def _journal_relief(self):
        """Close deferred-commit transactions before the journal ring has
        to wrap, so the wrap barrier rarely stalls the foreground."""
        journal = self.hinfs.journal
        if journal.used_slots <= int(0.35 * journal.capacity):
            return
        victims = [block for block in self.hinfs.buffer.all_blocks_lrw_order()
                   if block.pending_txs]
        self._flush_distributed("journal-relief", victims)
        self.env.stats.bump("writeback_journal_relief_blocks", len(victims))

    def _flush_aged(self):
        """After reclaiming, flush any dirty block older than 30 s.

        Scans the per-shard dirty lists (not the whole LRW list): each
        worker's shards are checked in shard order, so the scan cost and
        the resulting flush work stay partitioned.
        """
        now = max(worker.ctx.now for worker in self.workers)
        victims = [
            block for block in self.hinfs.buffer.dirty_blocks()
            if now - block.last_written_ns >= self.config.dirty_age_ns
        ]
        self._flush_distributed("aged", victims)
        self.env.stats.bump("writeback_aged_blocks", len(victims))

    def _periodic_flush(self):
        """The 5-second wakeup: persist blocks that have gone cold (not
        written for at least one full interval)."""
        now = max(worker.ctx.now for worker in self.workers)
        interval = self.config.periodic_interval_ns
        victims = [
            block for block in self.hinfs.buffer.dirty_blocks()
            if now - block.last_written_ns >= interval
        ]
        self._flush_distributed("periodic", victims)
        self.env.stats.bump("writeback_periodic_blocks", len(victims))


#: Historical name, kept for callers predating the worker pool.
WritebackTask = WritebackPool

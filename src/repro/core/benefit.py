"""The Buffer Benefit Model and its ghost buffer (paper Section 3.3.2).

The model decides, per 4 KiB data block, whether future asynchronous
writes should be buffered (Lazy-Persistent) or sent straight to NVMM
(Eager-Persistent).  At every synchronization operation it evaluates
Inequality (1) for each block the sync had to persist::

    N_cw * L_dram + N_cf * L_nvmm  <  N_cw * L_nvmm

where ``N_cw`` is the number of cacheline writes to the block since its
previous sync and ``N_cf`` the number of cacheline flushes this sync
itself had to perform (flushes already done by the background writeback
threads do not count).  Buffering wins exactly when enough writes
coalesce between syncs.

``N_cf`` for blocks that currently bypass the buffer is measured with a
**ghost buffer** that pretends every write were buffered but keeps only
index metadata (bitmaps and counters, no data) -- under 1 % of the buffer
footprint.  The model also tracks its own prediction accuracy, which
regenerates the paper's Figure 6.
"""

from collections import OrderedDict

from repro.core.bitmap import line_range_mask, popcount

STATE_LAZY = 0
STATE_EAGER = 1


class GhostEntry:
    """Ghost-buffer record for one data block (metadata only)."""

    __slots__ = ("n_cw", "ghost_dirty", "last_write_ns", "state", "last_outcome")

    def __init__(self):
        self.n_cw = 0
        self.ghost_dirty = 0
        self.last_write_ns = 0
        self.state = STATE_LAZY
        #: Result of the previous sync's Inequality (1) evaluation
        #: (None until the block has seen a sync).
        self.last_outcome = None


class BufferBenefitModel:
    """Per-block eager/lazy state machine driven by sync history."""

    def __init__(self, env, nvmm_config, hinfs_config, max_entries=None):
        self.env = env
        self.nvmm_config = nvmm_config
        self.config = hinfs_config
        #: Per-cacheline write latencies for Inequality (1).
        self.l_dram_ns = nvmm_config.dram_store_cost_ns(64)
        self.l_nvmm_ns = nvmm_config.nvmm_write_latency_ns
        self.max_entries = max_entries or hinfs_config.buffer_blocks * 4
        # (ino, file_block) -> GhostEntry, LRU-ordered for capacity capping.
        self._entries = OrderedDict()
        # ino -> set of file blocks written since the file's last sync
        # (which blocks a sync must evaluate, without scanning the ghost).
        self._pending_by_file = {}
        # Figure 6 accounting.
        self.predictions = 0
        self.accurate_predictions = 0

    # -- ghost bookkeeping ---------------------------------------------------

    def _entry(self, ino, file_block, create=True):
        key = (ino, file_block)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if not create:
            return None
        entry = GhostEntry()
        self._entries[key] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def record_write(self, ino, file_block, offset_in_block, length, now_ns):
        """Every write (buffered or direct) updates the ghost buffer."""
        entry = self._entry(ino, file_block)
        mask = line_range_mask(offset_in_block, length)
        entry.n_cw += popcount(mask)
        entry.ghost_dirty |= mask
        entry.last_write_ns = now_ns
        self._pending_by_file.setdefault(ino, set()).add(file_block)

    def pending_blocks(self, ino):
        """Blocks written since the file's last sync; resets the set."""
        return sorted(self._pending_by_file.pop(ino, ()))

    def drop_file(self, ino):
        """Forget a deleted file's ghost state."""
        for file_block in self._pending_by_file.pop(ino, ()):
            self._entries.pop((ino, file_block), None)

    # -- state queries -----------------------------------------------------

    def is_eager(self, ino, file_block, now_ns, file_last_sync_ns):
        """The Eager-Persistent Write Checker's case-(2) decision.

        A block is treated as eager only while its file keeps seeing
        synchronization operations; after ``eager_reset_ns`` without one
        the state reverts to lazy (paper Section 3.3.2).
        """
        if not self.config.enable_eager_checker:
            return False
        if self.l_nvmm_ns <= int(self.l_dram_ns * 1.5):
            # NVMM writes are (nearly) as fast as DRAM: Inequality (1)
            # can essentially never pay for the extra copy, so every
            # write bypasses the buffer -- the paper observes exactly
            # this at the 50 ns point of Figure 11.
            return True
        entry = self._entry(ino, file_block, create=False)
        if entry is None or entry.state != STATE_EAGER:
            return False
        if now_ns - file_last_sync_ns > self.config.eager_reset_ns:
            entry.state = STATE_LAZY
            return False
        return True

    # -- sync-time evaluation -------------------------------------------------

    def on_sync(self, ino, file_block, now_ns, flushed_by_background=False):
        """Evaluate Inequality (1) for one block at a sync point.

        ``flushed_by_background`` marks blocks whose dirty lines had
        already been written back before the sync arrived, so this sync
        performed no flushes for them (``N_cf = 0``).
        Returns the new state.
        """
        entry = self._entry(ino, file_block)
        n_cw = entry.n_cw
        if flushed_by_background or now_ns - entry.last_write_ns > self.config.dirty_age_ns:
            n_cf = 0
        else:
            n_cf = popcount(entry.ghost_dirty)
        buffering_wins = (
            n_cw * self.l_dram_ns + n_cf * self.l_nvmm_ns < n_cw * self.l_nvmm_ns
        )
        outcome = STATE_LAZY if buffering_wins else STATE_EAGER
        if entry.last_outcome is not None:
            self.predictions += 1
            if entry.last_outcome == outcome:
                self.accurate_predictions += 1
        entry.last_outcome = outcome
        entry.state = outcome
        entry.n_cw = 0
        entry.ghost_dirty = 0
        return outcome

    # -- reporting ----------------------------------------------------------

    @property
    def accuracy(self):
        """Fraction of syncs whose outcome matched the previous one
        (the paper's Figure 6 metric); None before any repeat sync."""
        if self.predictions == 0:
            return None
        return self.accurate_predictions / self.predictions

    def state_of(self, ino, file_block):
        entry = self._entry(ino, file_block, create=False)
        return STATE_LAZY if entry is None else entry.state

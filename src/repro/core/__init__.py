"""HiNFS: the paper's contribution.

HiNFS buffers *lazy-persistent* file writes in DRAM to hide NVMM's long
write latency, while keeping *reads* and *eager-persistent* writes on the
direct single-copy path to avoid double-copy overheads:

- :mod:`repro.core.btree` -- the in-DRAM B-tree underlying the per-file
  DRAM Block Index (Figure 5).
- :mod:`repro.core.bitmap` -- the Cacheline Bitmap tracking which lines
  of a buffered block are valid in DRAM and which are dirty (Section
  3.2.1, CLFW).
- :mod:`repro.core.lrw` -- the global Least-Recently-Written list.
- :mod:`repro.core.buffer` -- the DRAM write buffer (allocation,
  Low_f/High_f watermarks, fetch/writeback at cacheline granularity).
- :mod:`repro.core.benefit` -- the Buffer Benefit Model with its ghost
  buffer (Section 3.3.2) deciding eager- vs lazy-persistent block states.
- :mod:`repro.core.writeback` -- the background writeback timeline
  (5-second periodic wakeups, Low_f pressure flushes, 30-second age
  flushes).
- :mod:`repro.core.hinfs` -- the file system itself, plus the paper's
  ablation variants HiNFS-NCLFW (no cacheline-level fetch/writeback) and
  HiNFS-WB (no eager-persistent write checker).
"""

from repro.core.btree import BTree
from repro.core.config import HiNFSConfig
from repro.core.hinfs import HiNFS, make_hinfs_nclfw, make_hinfs_wb

__all__ = ["BTree", "HiNFS", "HiNFSConfig", "make_hinfs_nclfw", "make_hinfs_wb"]

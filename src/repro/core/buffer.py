"""The NVMM-aware DRAM write buffer (paper Section 3.2).

Holds lazy-persistent writes in DRAM blocks until the background
writeback threads (or an fsync) persist them to NVMM.  Three structures
from the paper live here:

- the **DRAM Block Index**: a per-file B-tree keyed by the block-aligned
  file offset whose index nodes carry the DRAM block number and the
  corresponding NVMM block number (Figure 5);
- the **Cacheline Bitmap** on every buffered block (Section 3.2.1);
- the global **LRW list** ordering blocks by last written time.
"""

from repro.core.bitmap import CachelineBitmap
from repro.core.btree import BTree
from repro.core.lrw import LRWNode
from repro.core.policies import make_policy
from repro.engine.stats import CAT_WRITE_ACCESS
from repro.nvmm.allocator import BlockAllocator, OutOfSpaceError
from repro.nvmm.device import DRAMDevice
from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE, lines_spanned


class BufferBlock(LRWNode):
    """One buffered DRAM block: the paper's Index Node plus line state."""

    __slots__ = (
        "ino",
        "file_block",
        "dram_block",
        "nvmm_block",
        "bitmap",
        "last_written_ns",
        "last_req_id",
        "pending_txs",
    )

    def __init__(self, ino, file_block, dram_block, nvmm_block):
        super().__init__()
        self.ino = ino
        self.file_block = file_block
        self.dram_block = dram_block
        self.nvmm_block = nvmm_block
        self.bitmap = CachelineBitmap()
        self.last_written_ns = 0
        #: Request id of the last IORequest that wrote into this block;
        #: lets fault injection target one in-flight request's writeback.
        self.last_req_id = None
        #: Open journal transactions whose commit waits on this block
        #: (HiNFS's ordered-mode deferred commit, Section 4.1).
        self.pending_txs = set()

    @property
    def dram_addr(self):
        return self.dram_block * BLOCK_SIZE

    @property
    def is_dirty(self):
        return self.bitmap.dirty != 0

    def __repr__(self):
        return "BufferBlock(ino=%d, fb=%d, dram=%d, nvmm=%d, %r)" % (
            self.ino,
            self.file_block,
            self.dram_block,
            self.nvmm_block,
            self.bitmap,
        )


class WriteBuffer:
    """The DRAM buffer pool and its index/LRW bookkeeping."""

    def __init__(self, env, nvmm_config, hinfs_config):
        self.env = env
        self.config = hinfs_config
        self.blocks_total = hinfs_config.buffer_blocks
        self.dram = DRAMDevice(env, nvmm_config, self.blocks_total * BLOCK_SIZE)
        self._alloc = BlockAllocator(self.blocks_total)
        #: Victim-ordering policy; LRW by default (paper Section 3.2),
        #: with LFU/ARC/2Q available as the paper's deferred future work.
        self.policy = make_policy(hinfs_config.replacement_policy,
                                  capacity_hint=self.blocks_total)
        # ino -> BTree(file_block -> BufferBlock): the DRAM Block Index.
        self._index = {}

    # -- capacity ---------------------------------------------------------

    @property
    def free_blocks(self):
        return self._alloc.free_count

    @property
    def used_blocks(self):
        return self._alloc.used_count

    @property
    def below_low_watermark(self):
        return self.free_blocks < self.config.low_blocks

    @property
    def at_high_watermark(self):
        return self.free_blocks >= self.config.high_blocks

    # -- index -----------------------------------------------------------

    def lookup(self, ino, file_block):
        tree = self._index.get(ino)
        if tree is None:
            return None
        return tree.get(file_block)

    def insert(self, ino, file_block, nvmm_block):
        """Allocate a DRAM block and index it; caller guarantees space."""
        try:
            dram_block = self._alloc.alloc()
        except OutOfSpaceError:
            raise RuntimeError(
                "buffer insert without a free block; caller must reclaim first"
            ) from None
        block = BufferBlock(ino, file_block, dram_block, nvmm_block)
        tree = self._index.get(ino)
        if tree is None:
            tree = BTree()
            self._index[ino] = tree
        tree.insert(file_block, block)
        self.policy.on_buffered(block)
        self.env.stats.bump("buffer_inserts")
        return block

    def evict(self, block):
        """Remove a block from the index/LRW and free its DRAM frame.

        The caller is responsible for having flushed or discarded the
        dirty lines first.
        """
        tree = self._index.get(block.ino)
        if tree is not None:
            tree.remove(block.file_block)
            if len(tree) == 0:
                del self._index[block.ino]
        self.policy.on_evict(block)
        self._alloc.free(block.dram_block)
        self.env.stats.bump("buffer_evictions")

    def file_blocks(self, ino):
        """All buffered blocks of a file, in file-offset order."""
        tree = self._index.get(ino)
        if tree is None:
            return []
        return [block for _, block in tree.items()]

    def all_blocks_lrw_order(self):
        """Every buffered block, best-victim first (policy order)."""
        return self.policy.iter_order()

    def dirty_block_count(self):
        return sum(1 for b in self.policy.iter_order() if b.is_dirty)

    # -- data plane ---------------------------------------------------------

    def write_into(self, ctx, block, offset_in_block, data, now_ns):
        """Store bytes into a buffered block and update its state.

        Charged per touched cacheline (``L_dram`` per line), matching the
        cost the Buffer Benefit Model's Inequality (1) attributes to a
        buffered write -- this is the "extra copy" half of the double-copy
        overhead the paper eliminates for eager-persistent writes.
        """
        self.dram.mem.write(block.dram_addr + offset_in_block, data)
        nlines = lines_spanned(len(data), offset_in_block % CACHELINE_SIZE)
        ctx.charge(
            nlines * self.dram.config.dram_store_cost_ns(CACHELINE_SIZE),
            CAT_WRITE_ACCESS,
        )
        self.env.stats.bytes_written_dram += len(data)
        block.bitmap.mark_written(offset_in_block, len(data))
        block.last_written_ns = now_ns
        self.policy.on_write(block)

    def read_from(self, ctx, block, offset_in_block, length):
        return self.dram.read(ctx, block.dram_addr + offset_in_block, length)

"""The NVMM-aware DRAM write buffer (paper Section 3.2).

Holds lazy-persistent writes in DRAM blocks until the background
writeback threads (or an fsync) persist them to NVMM.  Three structures
from the paper live here:

- the **DRAM Block Index**: a per-file B-tree keyed by the block-aligned
  file offset whose index nodes carry the DRAM block number and the
  corresponding NVMM block number (Figure 5);
- the **Cacheline Bitmap** on every buffered block (Section 3.2.1);
- the global **LRW list** ordering blocks by last written time.

The index is sharded by ``ino % buffer_shards``: each shard owns the
B-trees of its inodes plus an insertion-ordered dirty list, so parallel
writeback workers scan and flush their shards without touching a global
structure.  Victim *ordering* stays global (one policy instance) --
sharding distributes the work, not the replacement decision.
"""

from repro.core.bitmap import CachelineBitmap
from repro.core.btree import BTree
from repro.core.lrw import LRWNode
from repro.core.policies import make_policy
from repro.engine.stats import CAT_WRITE_ACCESS
from repro.nvmm.allocator import BlockAllocator, OutOfSpaceError
from repro.nvmm.device import DRAMDevice
from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE, lines_spanned


class BufferBlock(LRWNode):
    """One buffered DRAM block: the paper's Index Node plus line state."""

    __slots__ = (
        "ino",
        "file_block",
        "dram_block",
        "nvmm_block",
        "bitmap",
        "last_written_ns",
        "last_req_id",
        "pending_txs",
    )

    def __init__(self, ino, file_block, dram_block, nvmm_block):
        super().__init__()
        self.ino = ino
        self.file_block = file_block
        self.dram_block = dram_block
        self.nvmm_block = nvmm_block
        self.bitmap = CachelineBitmap()
        self.last_written_ns = 0
        #: Request id of the last IORequest that wrote into this block;
        #: lets fault injection target one in-flight request's writeback.
        self.last_req_id = None
        #: Open journal transactions whose commit waits on this block
        #: (HiNFS's ordered-mode deferred commit, Section 4.1).  A dict
        #: used as an insertion-ordered set: completion must visit the
        #: transactions in a reproducible order (a ``set`` would iterate
        #: in ``id()`` order and break run-to-run determinism).
        self.pending_txs = {}

    @property
    def dram_addr(self):
        return self.dram_block * BLOCK_SIZE

    @property
    def is_dirty(self):
        return self.bitmap.dirty != 0

    def __repr__(self):
        return "BufferBlock(ino=%d, fb=%d, dram=%d, nvmm=%d, %r)" % (
            self.ino,
            self.file_block,
            self.dram_block,
            self.nvmm_block,
            self.bitmap,
        )


class BufferShard:
    """One slice of the DRAM Block Index plus its dirty list."""

    __slots__ = ("index", "dirty")

    def __init__(self):
        # ino -> BTree(file_block -> BufferBlock): this shard's slice of
        # the DRAM Block Index.
        self.index = {}
        # (ino, file_block) -> BufferBlock, in first-dirtied order; the
        # shard-local dirty list writeback workers scan.
        self.dirty = {}


class WriteBuffer:
    """The DRAM buffer pool and its index/LRW bookkeeping."""

    def __init__(self, env, nvmm_config, hinfs_config):
        self.env = env
        self.config = hinfs_config
        self.blocks_total = hinfs_config.buffer_blocks
        self.dram = DRAMDevice(env, nvmm_config, self.blocks_total * BLOCK_SIZE)
        self._alloc = BlockAllocator(self.blocks_total)
        #: Victim-ordering policy; LRW by default (paper Section 3.2),
        #: with LFU/ARC/2Q available as the paper's deferred future work.
        self.policy = make_policy(hinfs_config.replacement_policy,
                                  capacity_hint=self.blocks_total)
        self.nr_shards = max(1, hinfs_config.buffer_shards)
        self._shards = [BufferShard() for _ in range(self.nr_shards)]

    # -- capacity ---------------------------------------------------------

    @property
    def free_blocks(self):
        return self._alloc.free_count

    @property
    def used_blocks(self):
        return self._alloc.used_count

    @property
    def below_low_watermark(self):
        return self.free_blocks < self.config.low_blocks

    @property
    def at_high_watermark(self):
        return self.free_blocks >= self.config.high_blocks

    # -- index -----------------------------------------------------------

    def shard_of(self, ino):
        return ino % self.nr_shards

    def shard(self, ino):
        return self._shards[self.shard_of(ino)]

    def lookup(self, ino, file_block):
        tree = self.shard(ino).index.get(ino)
        if tree is None:
            return None
        return tree.get(file_block)

    def insert(self, ino, file_block, nvmm_block):
        """Allocate a DRAM block and index it; caller guarantees space."""
        try:
            dram_block = self._alloc.alloc()
        except OutOfSpaceError:
            raise RuntimeError(
                "buffer insert without a free block; caller must reclaim first"
            ) from None
        block = BufferBlock(ino, file_block, dram_block, nvmm_block)
        index = self.shard(ino).index
        tree = index.get(ino)
        if tree is None:
            tree = BTree()
            index[ino] = tree
        tree.insert(file_block, block)
        self.policy.on_buffered(block)
        self.env.stats.bump("buffer_inserts")
        return block

    def evict(self, block):
        """Remove a block from the index/LRW and free its DRAM frame.

        The caller is responsible for having flushed or discarded the
        dirty lines first.
        """
        shard = self.shard(block.ino)
        tree = shard.index.get(block.ino)
        if tree is not None:
            tree.remove(block.file_block)
            if len(tree) == 0:
                del shard.index[block.ino]
        shard.dirty.pop((block.ino, block.file_block), None)
        self.policy.on_evict(block)
        self._alloc.free(block.dram_block)
        self.env.stats.bump("buffer_evictions")

    def file_blocks(self, ino):
        """All buffered blocks of a file, in file-offset order."""
        tree = self.shard(ino).index.get(ino)
        if tree is None:
            return []
        return [block for _, block in tree.items()]

    def all_blocks_lrw_order(self):
        """Every buffered block, best-victim first (policy order)."""
        return self.policy.iter_order()

    def shard_dirty_blocks(self, shard_id):
        """One shard's dirty blocks, first-dirtied first."""
        return list(self._shards[shard_id].dirty.values())

    def dirty_blocks(self):
        """Every dirty block, shard by shard (deterministic order)."""
        out = []
        for shard in self._shards:
            out.extend(shard.dirty.values())
        return out

    def dirty_block_count(self):
        return sum(len(shard.dirty) for shard in self._shards)

    # -- data plane ---------------------------------------------------------

    def write_into(self, ctx, block, offset_in_block, data, now_ns):
        """Store bytes into a buffered block and update its state.

        Charged per touched cacheline (``L_dram`` per line), matching the
        cost the Buffer Benefit Model's Inequality (1) attributes to a
        buffered write -- this is the "extra copy" half of the double-copy
        overhead the paper eliminates for eager-persistent writes.
        """
        self.dram.mem.write(block.dram_addr + offset_in_block, data)
        nlines = lines_spanned(len(data), offset_in_block % CACHELINE_SIZE)
        ctx.charge(
            nlines * self.dram.config.dram_store_cost_ns(CACHELINE_SIZE),
            CAT_WRITE_ACCESS,
        )
        self.env.stats.bytes_written_dram += len(data)
        block.bitmap.mark_written(offset_in_block, len(data))
        block.last_written_ns = now_ns
        self.shard(block.ino).dirty.setdefault(
            (block.ino, block.file_block), block
        )
        self.policy.on_write(block)

    def mark_clean(self, block):
        """Drop a block from its shard's dirty list (lines persisted)."""
        self.shard(block.ino).dirty.pop((block.ino, block.file_block), None)

    def read_from(self, ctx, block, offset_in_block, length):
        return self.dram.read(ctx, block.dram_addr + offset_in_block, length)

"""The Cacheline Bitmap (paper Section 3.2.1 and 3.3.1).

Each buffered DRAM block carries two 64-bit masks over its 64 cachelines:

- ``valid``: lines whose newest data is present in the DRAM block (either
  written there or fetched from NVMM by CLFW);
- ``dirty``: valid lines that have been modified and must eventually be
  written back (``dirty`` is always a subset of ``valid``).

The read path uses ``valid`` to decide, run by run, whether to copy from
DRAM or NVMM (one memcpy per run of equal bits, as the paper specifies);
the writeback path flushes only ``dirty`` runs.
"""

from repro.nvmm.config import CACHELINE_SIZE, LINES_PER_BLOCK

FULL_MASK = (1 << LINES_PER_BLOCK) - 1


def line_range_mask(offset, length):
    """Mask of the cachelines overlapping ``[offset, offset+length)``."""
    if length <= 0:
        return 0
    first = offset // CACHELINE_SIZE
    last = (offset + length - 1) // CACHELINE_SIZE
    return ((1 << (last - first + 1)) - 1) << first


def fully_covered_mask(offset, length):
    """Mask of the cachelines *fully* overwritten by the range (these need
    no fetch-before-write even when absent from DRAM)."""
    if length <= 0:
        return 0
    start = offset
    end = offset + length
    first_full = -(-start // CACHELINE_SIZE)  # ceil
    last_full = end // CACHELINE_SIZE  # exclusive
    if last_full <= first_full:
        return 0
    return ((1 << (last_full - first_full)) - 1) << first_full


def popcount(mask):
    return mask.bit_count()


def iter_runs(mask, limit=LINES_PER_BLOCK):
    """Yield ``(first_line, nlines)`` for each run of set bits.

    Whole runs at a time via bit arithmetic (``x & -x`` isolates the
    lowest set bit; ``x ^ (x + 1)`` masks the trailing ones), instead of
    testing the mask bit by bit.
    """
    mask &= (1 << limit) - 1
    line = 0
    while True:
        rest = mask >> line
        if not rest:
            return
        line += (rest & -rest).bit_length() - 1
        rest = mask >> line
        nlines = (rest ^ (rest + 1)).bit_length() - 1
        yield line, nlines
        line += nlines


def iter_valid_runs(valid_mask, limit=LINES_PER_BLOCK):
    """Yield ``(first_line, nlines, in_dram)`` runs covering every line.

    This is the paper's read-path walk: consecutive lines with the same
    bitmap value are served with a single memcpy from DRAM (bit set) or
    NVMM (bit clear).
    """
    valid_mask &= (1 << limit) - 1
    line = 0
    while line < limit:
        rest = valid_mask >> line
        if rest & 1:
            nlines = (rest ^ (rest + 1)).bit_length() - 1
            if nlines > limit - line:
                nlines = limit - line
            yield line, nlines, True
        elif rest:
            nlines = (rest & -rest).bit_length() - 1
            yield line, nlines, False
        else:
            yield line, limit - line, False
            return
        line += nlines


class CachelineBitmap:
    """valid/dirty line state for one buffered DRAM block."""

    __slots__ = ("valid", "dirty")

    def __init__(self):
        self.valid = 0
        self.dirty = 0

    def mark_written(self, offset, length):
        """Record a write to ``[offset, offset+length)``: valid + dirty."""
        mask = line_range_mask(offset, length)
        self.valid |= mask
        self.dirty |= mask
        return mask

    def mark_fetched(self, mask):
        """Record lines fetched from NVMM: valid but clean."""
        self.valid |= mask

    def fetch_needed(self, offset, length):
        """Lines that must be fetched before an unaligned write: the
        partially-covered edge lines not already valid in DRAM."""
        touched = line_range_mask(offset, length)
        full = fully_covered_mask(offset, length)
        partial = touched & ~full
        return partial & ~self.valid

    def clean(self):
        """Writeback completed: everything stays valid, nothing dirty."""
        self.dirty = 0

    @property
    def dirty_lines(self):
        return popcount(self.dirty)

    @property
    def valid_lines(self):
        return popcount(self.valid)

    def __repr__(self):
        return "CachelineBitmap(valid=%d, dirty=%d)" % (
            self.valid_lines,
            self.dirty_lines,
        )

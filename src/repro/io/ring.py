"""io_uring-style submission/completion rings in virtual time.

The ring is the *primary* I/O path of the stack: every data syscall the
VFS exposes is a batch of one submitted here, and workloads that want
the real benefit submit many :class:`SQE` s per batch.  Submission pays
the user/kernel mode switch (``T_syscall``) once per **batch**, not once
per operation -- the amortization KucoFS and io_uring are built on --
while the per-op VFS bookkeeping cost (``vfs_op_ns``) remains per SQE.

Execution is inline at submit time on the submitting thread's context
(io_uring's non-blocking fast path): each SQE is dispatched through the
VFS's single operation table, its failure becomes a CQE with
``res = -errno`` (the exception object rides along for the sync
wrappers), and linked chains (``IOSQE_IO_LINK``) cancel their remainder
with ``-ECANCELED`` when a member fails.  Operations marked
``IOSQE_ASYNC`` may return a pending
:class:`~repro.engine.locks.VCompletion` from the file system (an async
fsync whose persist lands on the device's or journal's timeline); their
CQEs materialise when the reaper :meth:`wait` s, which blocks in virtual
time exactly like a contended lock.

Trace integration: a batch of more than one SQE opens a ``ring``-layer
span carrying per-SQE ``ring.sq_wait`` (queued before execution) and
``ring.in_flight`` (executing) phases; a blocking reap opens a
``ring``-layer span with a ``ring.cq_wait`` phase.  Batches of one --
the sync syscall path -- add no spans, so plain syscall traces are
unchanged.
"""

import errno as _errno

from repro.engine.locks import VCompletion
from repro.fs.errors import FSError, InvalidArgument, MediaError
from repro.obs.trace import LAYER_RING, RING_CQ_WAIT, RING_IN_FLIGHT, \
    RING_SQ_WAIT

#: Ring opcodes (the subset of io_uring ops the VFS dispatch table
#: implements; namespace syscalls stay synchronous).
IORING_OP_READV = 1
IORING_OP_WRITEV = 2
IORING_OP_FSYNC = 3

#: SQE flags.
IOSQE_IO_LINK = 0x1    # next SQE depends on this one; failure cancels it
IOSQE_IO_DRAIN = 0x2   # barrier: previous submissions complete first
IOSQE_ASYNC = 0x4      # allow a deferred completion (async fsync)

#: fsync_flags.
IORING_FSYNC_DATASYNC = 0x1

ECANCELED = getattr(_errno, "ECANCELED", 125)

_OP_NAMES = {
    IORING_OP_READV: "readv",
    IORING_OP_WRITEV: "writev",
    IORING_OP_FSYNC: "fsync",
}


class SQE:
    """One submission-queue entry."""

    __slots__ = ("op", "fd", "offset", "iovecs", "flags", "fsync_flags",
                 "user_data", "syscall", "tenant")

    def __init__(self, op, fd, offset=None, iovecs=(), flags=0,
                 fsync_flags=0, user_data=None, syscall=None, tenant=None):
        if op not in _OP_NAMES:
            raise InvalidArgument("unknown ring opcode %r" % (op,))
        self.op = op
        self.fd = fd
        #: File offset, or None for "use and advance the descriptor's
        #: position" (read(2)/write(2) semantics, honouring O_APPEND).
        self.offset = offset
        self.iovecs = list(iovecs)
        self.flags = flags
        self.fsync_flags = fsync_flags
        #: Opaque caller cookie, copied verbatim into the CQE.
        self.user_data = user_data
        #: Syscall-breakdown bucket this SQE is accounted under.
        if syscall is None:
            syscall = _OP_NAMES[op]
            if op == IORING_OP_FSYNC and fsync_flags & IORING_FSYNC_DATASYNC:
                syscall = "fdatasync"
        self.syscall = syscall
        #: Tenant id the resulting IORequest is billed to (per-tenant SQE
        #: tagging: a server thread multiplexing many tenants over one
        #: ring tags each SQE, and QoS accounting follows the tag).
        self.tenant = tenant

    def __repr__(self):
        return "SQE(%s fd=%d off=%r flags=%#x)" % (
            self.syscall, self.fd, self.offset, self.flags,
        )


def prep_readv(fd, sizes, offset=None, **kwargs):
    """Scatter read of ``sizes`` byte counts."""
    return SQE(IORING_OP_READV, fd, offset, list(sizes), **kwargs)


def prep_read(fd, count, offset=None, **kwargs):
    """Single-buffer read (accounted as ``read``)."""
    kwargs.setdefault("syscall", "read")
    return SQE(IORING_OP_READV, fd, offset, [count], **kwargs)


def prep_writev(fd, iovecs, offset=None, **kwargs):
    """Gather write of bytes-like ``iovecs``."""
    return SQE(IORING_OP_WRITEV, fd, offset, list(iovecs), **kwargs)


def prep_write(fd, data, offset=None, **kwargs):
    """Single-buffer write (accounted as ``write``)."""
    kwargs.setdefault("syscall", "write")
    return SQE(IORING_OP_WRITEV, fd, offset, [bytes(data)], **kwargs)


def prep_fsync(fd, datasync=False, **kwargs):
    """fsync (or, with ``datasync``, fdatasync) of ``fd``."""
    return SQE(IORING_OP_FSYNC, fd,
               fsync_flags=IORING_FSYNC_DATASYNC if datasync else 0,
               **kwargs)


class CQE:
    """One completion-queue entry."""

    __slots__ = ("user_data", "res", "value", "error", "seq", "done_ns")

    def __init__(self, user_data, res, value, error, seq, done_ns):
        self.user_data = user_data
        #: io_uring result convention: >= 0 on success (bytes moved, or
        #: 0 for fsync), ``-errno`` on failure.
        self.res = res
        #: The operation's Python-level payload (read buffers, written
        #: byte count); None on failure.
        self.value = value
        #: The original exception object on failure (sync wrappers
        #: re-raise it so error classes/messages are preserved).
        self.error = error
        #: Submission sequence number (monotonic per ring).
        self.seq = seq
        #: Virtual time the operation completed.
        self.done_ns = done_ns

    @property
    def ok(self):
        return self.res >= 0

    def __repr__(self):
        return "CQE(seq=%d res=%d at=%d)" % (self.seq, self.res, self.done_ns)


class _Pending:
    """An SQE whose completion is deferred to a VCompletion."""

    __slots__ = ("seq", "sqe", "completion")

    def __init__(self, seq, sqe, completion):
        self.seq = seq
        self.sqe = sqe
        self.completion = completion


class _LinkCancelled(FSError):
    """ECANCELED: a preceding linked operation failed."""

    errno = ECANCELED


class IORing:
    """One thread's submission/completion ring over a VFS."""

    def __init__(self, vfs, ctx, sq_depth=64):
        if sq_depth <= 0:
            raise InvalidArgument("sq_depth must be positive")
        self.vfs = vfs
        self.env = vfs.env
        self.ctx = ctx
        self.sq_depth = sq_depth
        self._cq = []
        self._pending = []
        self._seq = 0
        #: True once the current batch has paid the T_syscall entry.
        self._entry_done = False
        #: Optional :class:`repro.faults.ringfault.RingFaultInjector`.
        self.faults = None
        #: Optional :class:`repro.faults.policy.RetryPolicy`: EIO from an
        #: SQE's handler is retried by resubmitting the SQE with charged
        #: backoff before the CQE carries ``-EIO``.  None (the default)
        #: fails fast, the pre-policy behaviour.
        self.retry_policy = None

    # -- accounting shared with the VFS dispatch handlers -----------------

    def charge_entry(self, ctx):
        """Charge this operation's share of the batch's entry overhead.

        The first executed op of a batch pays the full mode switch plus
        its VFS bookkeeping (exactly the old per-syscall entry); every
        later op in the same batch pays only the bookkeeping -- the
        amortization the ring exists for.
        """
        config = self.vfs.config
        if not self._entry_done:
            self._entry_done = True
            ctx.charge(config.syscall_ns + config.vfs_op_ns)
            self.env.stats.bump("vfs_syscall_entries")
        else:
            ctx.charge(config.vfs_op_ns)

    # -- submission -------------------------------------------------------

    def submit(self, sqes):
        """Validate and execute a batch; returns the number submitted.

        One ``T_syscall`` entry is charged for the whole batch.  Inline
        results land in the CQ immediately; ``IOSQE_ASYNC`` ops may stay
        pending until :meth:`wait`/:meth:`peek` reaps them.
        """
        sqes = list(sqes)
        if not sqes:
            return 0
        if len(sqes) > self.sq_depth:
            raise InvalidArgument(
                "batch of %d exceeds SQ depth %d" % (len(sqes), self.sq_depth)
            )
        ctx = self.ctx
        stats = self.env.stats
        stats.bump("ring_batches")
        stats.bump("ring_sqes", len(sqes))
        self._entry_done = False
        if len(sqes) > 1:
            with ctx.span("ring_submit", layer=LAYER_RING,
                          meta={"sqes": len(sqes)}) as sp:
                self._execute(ctx, sqes, sp)
        else:
            self._execute(ctx, sqes, None)
        return len(sqes)

    def _execute(self, ctx, sqes, sp):
        batch_start = ctx.now
        cancelling = False
        linked_prev = False
        for sqe in sqes:
            seq = self._seq
            self._seq += 1
            if not linked_prev:
                cancelling = False
            if cancelling:
                self.env.stats.bump("ring_link_cancels")
                self._complete(sqe, seq, _LinkCancelled(
                    "linked op %r cancelled by earlier failure" % sqe.syscall
                ), ctx.now)
                linked_prev = bool(sqe.flags & IOSQE_IO_LINK)
                continue
            if sqe.flags & IOSQE_IO_DRAIN:
                self._drain(ctx)
            exec_start = ctx.now
            error = None
            result = None
            try:
                handler = self.vfs.op_table.get(sqe.op)
                if handler is None:
                    raise InvalidArgument(
                        "ring opcode %r not in the dispatch table"
                        % (sqe.op,)
                    )
                result = self._dispatch(ctx, seq, sqe, handler)
            except FSError as exc:
                error = exc
            if sp is not None:
                sp.add_phase(RING_SQ_WAIT, batch_start, exec_start)
                sp.add_phase(RING_IN_FLIGHT, exec_start, ctx.now)
            if error is not None:
                self._complete(sqe, seq, error, ctx.now)
                if sqe.flags & IOSQE_IO_LINK:
                    cancelling = True
            elif isinstance(result, VCompletion):
                self._pending.append(_Pending(seq, sqe, result))
            else:
                res, value = result
                self._push(CQE(sqe.user_data, res, value, None, seq, ctx.now))
            if self.faults is not None:
                self.faults.after_op(ctx, seq, sqe)
            linked_prev = bool(sqe.flags & IOSQE_IO_LINK)

    def _dispatch(self, ctx, seq, sqe, handler):
        """Run one SQE's handler, resubmitting on EIO under the ring's
        retry policy.  Safe to re-run: a failed handler never advances
        the descriptor's position, so the resubmission repeats the same
        operation.  Injected ring faults (:attr:`faults`) fire inside the
        retry loop, so an armed fault with ``max_hits`` set models a
        transient EIO the resubmission recovers from."""
        policy = self.retry_policy
        if policy is None:
            if self.faults is not None:
                self.faults.before_op(ctx, seq, sqe)
            return handler(ctx, sqe, self)
        attempt = 0
        while True:
            try:
                if self.faults is not None:
                    self.faults.before_op(ctx, seq, sqe)
                result = handler(ctx, sqe, self)
            except MediaError:
                attempt += 1
                if not policy.allows(attempt) or policy.circuit_open(ctx.now):
                    policy.record_failure(ctx.now)
                    raise
                policy.note_retry()
                self.env.stats.bump("ring_sqe_retries")
                ctx.charge(policy.backoff_ns(attempt))
            else:
                if attempt:
                    policy.record_success()
                    self.env.stats.bump("ring_sqe_retry_successes")
                return result

    def _complete(self, sqe, seq, error, at_ns):
        res = -int(getattr(error, "errno", _errno.EIO) or _errno.EIO)
        self._push(CQE(sqe.user_data, res, None, error, seq, at_ns))

    def _push(self, cqe):
        self._cq.append(cqe)
        self.env.stats.bump("ring_cqes")

    # -- completion -------------------------------------------------------

    @property
    def in_flight(self):
        """Completions submitted but not yet reaped."""
        return len(self._cq) + len(self._pending)

    def _reap_resolved(self, ctx):
        """Materialise pending completions that resolved at or before the
        reaper's current virtual time, earliest first."""
        ready = [p for p in self._pending
                 if p.completion.resolved and p.completion.done_at <= ctx.now]
        if not ready:
            return
        ready.sort(key=lambda p: (p.completion.done_at, p.seq))
        for entry in ready:
            self._pending.remove(entry)
            self._materialise(ctx, entry)

    def _materialise(self, ctx, entry):
        comp = entry.completion
        try:
            value = comp.wait(ctx, layer=RING_CQ_WAIT)
        except FSError as exc:
            self._complete(entry.sqe, entry.seq, exc, comp.done_at)
            return
        res = value if isinstance(value, int) else 0
        self._push(CQE(entry.sqe.user_data, res, value, None, entry.seq,
                       comp.done_at))

    def _next_pending(self):
        """The pending entry to block on next: earliest resolved, else the
        oldest unresolved (which :meth:`VCompletion.wait` will force)."""
        resolved = [p for p in self._pending if p.completion.resolved]
        if resolved:
            return min(resolved, key=lambda p: (p.completion.done_at, p.seq))
        return min(self._pending, key=lambda p: p.seq)

    def _drain(self, ctx):
        """IOSQE_IO_DRAIN barrier: everything submitted earlier completes
        (in virtual time) before the draining op starts."""
        self.env.stats.bump("ring_drains")
        while self._pending:
            entry = self._next_pending()
            self._pending.remove(entry)
            self._materialise(ctx, entry)

    def peek(self):
        """Reap every completion ready *now* without blocking."""
        self._reap_resolved(self.ctx)
        cqes, self._cq = self._cq, []
        return cqes

    def wait(self, min_complete=1):
        """Reap at least ``min_complete`` completions, blocking the
        reaper's virtual clock on pending ones as needed."""
        ctx = self.ctx
        self._reap_resolved(ctx)
        if len(self._cq) < min_complete:
            if min_complete > len(self._cq) + len(self._pending):
                raise InvalidArgument(
                    "wait(%d) with only %d completion(s) in flight"
                    % (min_complete, self.in_flight)
                )
            with ctx.span("ring_wait", layer=LAYER_RING):
                while len(self._cq) < min_complete:
                    entry = self._next_pending()
                    self._pending.remove(entry)
                    self._materialise(ctx, entry)
                self._reap_resolved(ctx)
        cqes, self._cq = self._cq, []
        return cqes

    def submit_and_wait(self, sqes, min_complete=None):
        """Submit a batch and reap; returns the reaped CQEs."""
        submitted = self.submit(sqes)
        if min_complete is None:
            min_complete = submitted
        return self.wait(min_complete)

    def submit_reaping(self, sqes):
        """Submit a batch and reap exactly *its* CQEs (by sequence), in
        submission order, leaving earlier completions alone.

        This is the sync-wrapper path: a batch of one whose CQE must not
        scoop completions a concurrent async user still owns.
        """
        sqes = list(sqes)
        first_seq = self._seq
        self.submit(sqes)
        want = set(range(first_seq, first_seq + len(sqes)))
        ctx = self.ctx
        self._reap_resolved(ctx)
        while any(p.seq in want for p in self._pending):
            entry = min((p for p in self._pending if p.seq in want),
                        key=lambda p: p.seq)
            self._pending.remove(entry)
            self._materialise(ctx, entry)
        mine = [c for c in self._cq if c.seq in want]
        self._cq = [c for c in self._cq if c.seq not in want]
        mine.sort(key=lambda c: c.seq)
        return mine

    def __repr__(self):
        return "IORing(%s, cq=%d, pending=%d)" % (
            self.ctx.name, len(self._cq), len(self._pending),
        )

"""The unified I/O request pipeline.

Every data-path syscall is materialised as one :class:`IORequest` at the
VFS boundary and travels through the layers (VFS -> file system ->
buffer/writeback -> NVMM) as a single object, kiocb-style, instead of a
positional ``(ino, offset, data, eager)`` tuple.
"""

from repro.io.request import OP_READ, OP_SYNC, OP_WRITE, IORequest

__all__ = ["IORequest", "OP_READ", "OP_SYNC", "OP_WRITE"]

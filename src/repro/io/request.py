"""kiocb-style I/O request objects built at the VFS syscall boundary.

An :class:`IORequest` carries everything a data-path operation needs
across layer boundaries: the operation kind, the target inode, an iovec
list, the file offset, the originating open-flags, the sync policy
(eager vs. lazy persistence), and -- when tracing is enabled -- the
request's trace span.  File systems consume requests through
:meth:`repro.fs.base.FileSystem.submit` instead of positional
arguments, which is what lets the VFS expose vectored I/O
(``readv``/``writev``/``pwritev``) with one syscall-overhead charge and
one persistence decision per request rather than per fragment.

Iovec conventions (matching ``struct iovec`` semantics):

- **writes**: each iovec is a bytes-like fragment; fragments are
  gathered into one contiguous file range starting at ``offset``.
- **reads**: each iovec is an integer byte count; the file range
  starting at ``offset`` is scattered back into per-iovec buffers.
"""

OP_READ = "read"
OP_WRITE = "write"
#: fsync/fdatasync travelling the same pipeline as data requests: no
#: payload (empty iovec list), ``datasync`` selects the data-only
#: variant, and :meth:`repro.fs.base.FileSystem.submit` may return a
#: pending :class:`repro.engine.locks.VCompletion` instead of a result.
OP_SYNC = "sync"


class IORequest:
    """One in-flight data-path operation crossing the layer stack."""

    __slots__ = ("req_id", "op", "ino", "iovecs", "offset", "flags",
                 "eager", "datasync", "syscall", "span", "tenant")

    def __init__(self, req_id, op, ino, iovecs, offset, flags=0,
                 eager=False, datasync=False, syscall=None, tenant=None):
        if op not in (OP_READ, OP_WRITE, OP_SYNC):
            raise ValueError("unknown request op %r" % (op,))
        self.req_id = req_id
        self.op = op
        self.ino = ino
        if op == OP_WRITE:
            self.iovecs = [bytes(vec) for vec in iovecs]
        elif op == OP_READ:
            self.iovecs = [int(count) for count in iovecs]
        else:
            if iovecs:
                raise ValueError("sync requests carry no iovecs")
            self.iovecs = []
        self.offset = offset
        self.flags = flags
        #: Synchronous-persistence policy (O_SYNC / ``mount -o sync``):
        #: the whole request is durable when ``submit`` returns.  For
        #: OP_SYNC requests it means "do the flush in the foreground";
        #: without it the fs may hand back a pending completion instead.
        self.eager = eager
        #: Data-only persistence (fdatasync / O_DSYNC): metadata not
        #: needed to retrieve the data may stay volatile.
        self.datasync = datasync
        #: Syscall name this request was built for (``write``/``writev``
        #: /...); feeds the per-syscall breakdown and the trace span.
        self.syscall = syscall or op
        #: The request's trace span while tracing is enabled, else None.
        self.span = None
        #: Tenant id this request is billed to (multi-tenant QoS; see
        #: :mod:`repro.fs.qos`).  ``None`` = untenanted traffic, which
        #: the admission controller never throttles or sheds.
        self.tenant = tenant

    # -- geometry ---------------------------------------------------------

    @property
    def total_bytes(self):
        """Bytes this request covers (sum over the iovec list)."""
        if self.op == OP_WRITE:
            return sum(len(vec) for vec in self.iovecs)
        return sum(self.iovecs)

    @property
    def end_offset(self):
        return self.offset + self.total_bytes

    def coalesce(self):
        """The write payload as ONE contiguous buffer.

        Since a gather write's fragments land back to back in the file,
        joining them is semantically lossless; it is what lets HiNFS run
        a single DRAM-buffer operation per 4 KiB block and a single
        eager/lazy decision per request instead of per fragment.
        Single-fragment requests return the fragment itself (no copy).
        """
        if self.op != OP_WRITE:
            raise ValueError("coalesce() is only defined for writes")
        if len(self.iovecs) == 1:
            return self.iovecs[0]
        return b"".join(self.iovecs)

    def fragments(self):
        """Yield ``(file_offset, data)`` per write iovec, in file order."""
        if self.op != OP_WRITE:
            raise ValueError("fragments() is only defined for writes")
        pos = self.offset
        for vec in self.iovecs:
            yield pos, vec
            pos += len(vec)

    def scatter(self, data):
        """Split a flat read result back into per-iovec buffers.

        Mirrors ``readv``: earlier iovecs fill completely before later
        ones see any bytes; a short read (EOF) leaves the tail empty.
        """
        if self.op != OP_READ:
            raise ValueError("scatter() is only defined for reads")
        out = []
        pos = 0
        for count in self.iovecs:
            out.append(data[pos:pos + count])
            pos += count
        return out

    def __repr__(self):
        return "IORequest(#%d %s ino=%s off=%d len=%d iovecs=%d%s)" % (
            self.req_id, self.op, self.ino, self.offset, self.total_bytes,
            len(self.iovecs), " eager" if self.eager else "",
        )

"""Library-mode mmap data plane with per-file epoch logging (mmio).

The ring (PR 4) amortises ``T_syscall``; this module eliminates it.  A
file mapped with ``MAP_ATOMIC`` returns an :class:`MmioMapping` whose
``load``/``store``/``msync`` run entirely in the process -- no VFS
syscall entry, no dispatch, zero ``syscall_time_ns`` charges after the
one ``mmap`` setup call -- while a per-file epoch log (Libnvmmio-style)
keeps stores crash-atomic:

- **undo** policy: each store first persists the *old* bytes to the log,
  then updates NVMM in place through the CPU cache.  ``msync`` flushes
  the dirtied lines, fences, and commits the epoch with one atomic
  8-byte store.  Recovery rolls uncommitted entries back in reverse.
- **redo** policy: each store persists the *new* bytes to the log and
  stages them in a DRAM overlay; in-place NVMM is untouched until
  ``msync`` commits the epoch and applies the entries.  Recovery
  re-applies a committed-but-unapplied epoch (idempotent) and discards
  uncommitted entries.
- **auto** policy: picked per epoch from the previous epoch's load/store
  mix (read-mostly epochs want in-place data -> undo; write-mostly
  epochs want cheap stores -> redo), as Libnvmmio does per file.

Every log append is ONE ``write_persistent`` (one tearable persist
event for the crash-point explorer), every entry carries a CRC and a
per-incarnation token so recovery scans stop exactly at the torn tail,
and the epoch commit word lives alone in its cacheline so the 8-byte
store is atomic.  The log's head block is discoverable from the owning
inode: byte offset :data:`MMIO_PTR_OFFSET` of the 256-byte inode slot
(a free, cacheline-aligned u64 the inode writer never touches) holds
the head block number while -- and only while -- a mapping is live.
"""

import struct
import zlib

from repro.engine.locks import VMutex
from repro.engine.stats import CAT_WRITE_ACCESS
from repro.fs.errors import InvalidArgument, MediaError
from repro.fs.pmfs.layout import block_addr, inode_addr
from repro.fs.pmfs.mmap import MappedRegion
from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE
from repro.obs.trace import LAYER_MMIO

#: Byte offset of the mmio log head pointer inside the 256-byte on-NVMM
#: inode slot.  The inode writer uses bytes [0, 152); offset 192 is the
#: first untouched cacheline-aligned u64, so the pointer persists with
#: one atomic 8-byte store and never collides with ``write_core``/
#: ``write_pointers``.
MMIO_PTR_OFFSET = 192

LOG_MAGIC = b"MMIOLOG1"
#: Head-block header: magic, incarnation token, owning inode, payload
#: block count, policy word (policy code | checksum flag), CRC.
HEAD_FMT = "<8sQQIII28x"
#: Committed / applied epoch words: each alone in its own cacheline so
#: the commit is a single atomic 8-byte persist.
COMMITTED_OFF = 1 * CACHELINE_SIZE
APPLIED_OFF = 2 * CACHELINE_SIZE
#: Payload-block-number table starts at line 3 of the head block.
TABLE_OFF = 3 * CACHELINE_SIZE

ENTRY_MAGIC = b"MENT"
#: Entry header (one cacheline): magic, kind, payload lines, epoch,
#: file offset, payload length, payload CRC, incarnation token, CRC.
ENTRY_FMT = "<4sHHQQIIQI20x"

KIND_UNDO = 1
KIND_REDO = 2
#: Skip-to-next-block marker (an entry never spans payload blocks, so
#: its header+payload stays one contiguous ``write_persistent``).
KIND_PAD = 3

POLICY_AUTO = 0
POLICY_UNDO = 1
POLICY_REDO = 2
_POLICY_CODES = {"auto": POLICY_AUTO, "undo": POLICY_UNDO,
                 "redo": POLICY_REDO}
_CHECKSUM_FLAG = 0x100

LINES_PER_BLOCK = BLOCK_SIZE // CACHELINE_SIZE
#: Largest single-entry payload: entries never span a payload block, so
#: a block-sized store splits into two entries.
MAX_ENTRY_PAYLOAD = BLOCK_SIZE // 2


class LogFull(Exception):
    """The epoch outgrew the log; the mapping auto-commits and retries."""


def _crc_packed(blob):
    return zlib.crc32(blob) & 0xFFFFFFFF


def _pack_head(token, ino, nblocks, policy_word):
    blob = struct.pack(HEAD_FMT, LOG_MAGIC, token, ino, nblocks,
                       policy_word, 0)
    crc = _crc_packed(blob)
    return struct.pack(HEAD_FMT, LOG_MAGIC, token, ino, nblocks,
                       policy_word, crc)


def _pack_entry(kind, nlines, epoch, file_offset, length, payload_crc,
                token, checksums):
    blob = struct.pack(ENTRY_FMT, ENTRY_MAGIC, kind, nlines, epoch,
                       file_offset, length, payload_crc, token, 0)
    crc = _crc_packed(blob) if checksums else 0
    return struct.pack(ENTRY_FMT, ENTRY_MAGIC, kind, nlines, epoch,
                       file_offset, length, payload_crc, token, crc)


class LogEntry:
    """One decoded log record (recovery and tests)."""

    __slots__ = ("kind", "epoch", "file_offset", "payload")

    def __init__(self, kind, epoch, file_offset, payload):
        self.kind = kind
        self.epoch = epoch
        self.file_offset = file_offset
        self.payload = payload


class MmioLog:
    """The per-file epoch log: a head block plus N payload blocks."""

    def __init__(self, fs, ino, checksums=True):
        self.fs = fs
        self.device = fs.device
        self.ino = ino
        self.checksums = checksums
        self.token = 0
        self.head_block = 0
        self.payload_blocks = []
        self.committed = 0
        self.applied = 0
        self._tail_block = 0
        self._tail_line = 0

    # -- setup ------------------------------------------------------------

    def setup(self, ctx, log_blocks, policy_code):
        """Allocate and format the log, then make it discoverable.

        Ordering: header and table are fully persistent and fenced
        *before* the inode pointer is set, so a crash mid-setup either
        shows no log at all or a valid empty one.
        """
        self.head_block = self.fs._alloc_data_block()
        self.payload_blocks = [self.fs._alloc_data_block()
                               for _ in range(log_blocks)]
        # Per-incarnation token: stale entries from a previous life of
        # these blocks can never parse, so payload blocks need no
        # zeroing pass at setup.
        self.token = (self.fs.env.next_req_id() << 8) | 0x5A
        policy_word = policy_code | (_CHECKSUM_FLAG if self.checksums else 0)
        base = block_addr(self.head_block)
        head = _pack_head(self.token, self.ino, len(self.payload_blocks),
                          policy_word)
        table = b"".join(struct.pack("<Q", blk)
                         for blk in self.payload_blocks)
        self.device.write_persistent(ctx, base, head, CAT_WRITE_ACCESS)
        self.device.write_persistent(
            ctx, base + COMMITTED_OFF, struct.pack("<Q", 0),
            CAT_WRITE_ACCESS)
        self.device.write_persistent(
            ctx, base + APPLIED_OFF, struct.pack("<Q", 0), CAT_WRITE_ACCESS)
        self.device.write_persistent(ctx, base + TABLE_OFF, table,
                                     CAT_WRITE_ACCESS)
        self.device.fence(ctx)
        ptr = inode_addr(self.fs.sb, self.ino) + MMIO_PTR_OFFSET
        self.device.write_persistent(ctx, ptr,
                                     struct.pack("<Q", self.head_block),
                                     CAT_WRITE_ACCESS)
        self.device.fence(ctx)

    @classmethod
    def from_media(cls, fs, ino, head_block):
        """Rebuild a log from its head block at mount; None if invalid."""
        base = block_addr(head_block)
        try:
            raw = fs.device.read_media(base, struct.calcsize(HEAD_FMT))
        except MediaError:
            return None
        magic, token, owner, nblocks, policy_word, crc = struct.unpack(
            HEAD_FMT, raw)
        if magic != LOG_MAGIC or owner != ino:
            return None
        expect = _crc_packed(struct.pack(HEAD_FMT, magic, token, owner,
                                         nblocks, policy_word, 0))
        if crc != expect:
            return None
        log = cls(fs, ino, checksums=bool(policy_word & _CHECKSUM_FLAG))
        log.token = token
        log.head_block = head_block
        table = fs.device.read_media(base + TABLE_OFF, nblocks * 8)
        log.payload_blocks = [
            struct.unpack_from("<Q", table, i * 8)[0]
            for i in range(nblocks)
        ]
        log.committed = struct.unpack(
            "<Q", fs.device.read_media(base + COMMITTED_OFF, 8))[0]
        log.applied = struct.unpack(
            "<Q", fs.device.read_media(base + APPLIED_OFF, 8))[0]
        return log

    # -- appending --------------------------------------------------------

    def entry_lines(self, length):
        return 1 + (length + CACHELINE_SIZE - 1) // CACHELINE_SIZE

    def append(self, ctx, kind, epoch, file_offset, payload):
        """Persist one entry (header + payload, one contiguous persist).

        Raises :class:`LogFull` when the epoch has outgrown the log; the
        caller commits the epoch and retries.
        """
        length = len(payload)
        nlines = (length + CACHELINE_SIZE - 1) // CACHELINE_SIZE
        needed = 1 + nlines
        if needed > LINES_PER_BLOCK:
            raise InvalidArgument("mmio entry of %d bytes cannot fit one "
                                  "log block" % length)
        if self._tail_line + needed > LINES_PER_BLOCK:
            if self._tail_block + 1 >= len(self.payload_blocks):
                raise LogFull()
            self._pad_to_next_block(ctx, epoch)
        if self._tail_block >= len(self.payload_blocks):
            raise LogFull()
        payload_crc = _crc_packed(payload) if self.checksums else 0
        header = _pack_entry(kind, nlines, epoch, file_offset, length,
                             payload_crc, self.token, self.checksums)
        padded = payload + b"\0" * (nlines * CACHELINE_SIZE - length)
        addr = (block_addr(self.payload_blocks[self._tail_block])
                + self._tail_line * CACHELINE_SIZE)
        self.device.write_persistent(ctx, addr, header + padded,
                                     CAT_WRITE_ACCESS)
        self._tail_line += needed
        self.fs.env.stats.bump("mmio_log_appends")

    def _pad_to_next_block(self, ctx, epoch):
        header = _pack_entry(KIND_PAD, 0, epoch, 0, 0, 0, self.token,
                             self.checksums)
        addr = (block_addr(self.payload_blocks[self._tail_block])
                + self._tail_line * CACHELINE_SIZE)
        self.device.write_persistent(ctx, addr, header, CAT_WRITE_ACCESS)
        self._tail_block += 1
        self._tail_line = 0

    @property
    def tail_empty(self):
        return self._tail_block == 0 and self._tail_line == 0

    # -- epoch state ------------------------------------------------------

    def commit(self, ctx, epoch):
        """THE commit point: one atomic 8-byte persist of the epoch."""
        base = block_addr(self.head_block)
        self.device.fence(ctx)
        self.device.write_persistent(ctx, base + COMMITTED_OFF,
                                     struct.pack("<Q", epoch),
                                     CAT_WRITE_ACCESS)
        self.device.fence(ctx)
        self.committed = epoch

    def mark_applied(self, ctx, epoch):
        base = block_addr(self.head_block)
        self.device.write_persistent(ctx, base + APPLIED_OFF,
                                     struct.pack("<Q", epoch),
                                     CAT_WRITE_ACCESS)
        self.device.fence(ctx)
        self.applied = epoch
        self._tail_block = 0
        self._tail_line = 0

    def clear_pointer(self, ctx):
        """Detach the log from its inode (munmap, unlink, recovery)."""
        ptr = inode_addr(self.fs.sb, self.ino) + MMIO_PTR_OFFSET
        self.device.write_persistent(ctx, ptr, struct.pack("<Q", 0),
                                     CAT_WRITE_ACCESS)
        self.device.fence(ctx)

    def all_blocks(self):
        return [self.head_block] + list(self.payload_blocks)

    # -- scanning (recovery) ----------------------------------------------

    def scan_media(self):
        """Decode the valid entry chain, stopping at the first invalid
        line (a torn tail, or bytes from a previous incarnation)."""
        entries = []
        hdr_size = struct.calcsize(ENTRY_FMT)
        for blk in self.payload_blocks:
            base = block_addr(blk)
            line = 0
            next_block = False
            while line < LINES_PER_BLOCK:
                try:
                    raw = self.fs.device.read_media(
                        base + line * CACHELINE_SIZE, hdr_size)
                except MediaError:
                    return entries
                (magic, kind, nlines, epoch, file_offset, length,
                 payload_crc, token, crc) = struct.unpack(ENTRY_FMT, raw)
                if magic != ENTRY_MAGIC or token != self.token:
                    return entries
                if self.checksums:
                    expect = _crc_packed(_pack_entry(
                        kind, nlines, epoch, file_offset, length,
                        payload_crc, token, False))
                    if crc != expect:
                        return entries
                if kind == KIND_PAD:
                    next_block = True
                    break
                if kind not in (KIND_UNDO, KIND_REDO) or \
                        line + 1 + nlines > LINES_PER_BLOCK or \
                        length > nlines * CACHELINE_SIZE:
                    return entries
                try:
                    payload = self.fs.device.read_media(
                        base + (line + 1) * CACHELINE_SIZE,
                        nlines * CACHELINE_SIZE)[:length]
                except MediaError:
                    return entries
                if self.checksums and _crc_packed(payload) != payload_crc:
                    return entries
                entries.append(LogEntry(kind, epoch, file_offset, payload))
                line += 1 + nlines
            if not next_block and line < LINES_PER_BLOCK:
                return entries
        return entries


class MmioMapping(MappedRegion):
    """A ``MAP_ATOMIC`` mapping: direct loads/stores with epoch logging.

    ``load``/``store``/``msync`` are the library-mode entry points --
    they open :data:`LAYER_MMIO` spans and charge *no* syscall time.
    While the mapping is live the owning file system also routes
    conventional read/write/fsync requests through
    :meth:`handle_request`, so descriptor I/O and mapped stores stay
    POSIX-coherent and share one epoch timeline.
    """

    def __init__(self, fs, ino, length=None, policy="auto", log_blocks=4,
                 log_checksums=True):
        super().__init__(fs, ino)
        if policy not in _POLICY_CODES:
            raise InvalidArgument("unknown mmio policy %r" % (policy,))
        self.length = length
        self.policy = policy
        self.log = MmioLog(fs, ino, checksums=log_checksums)
        self.log_blocks = log_blocks
        self._mu = VMutex(fs.env, "mmio:%d" % ino)
        #: Resolved policy for the current epoch (auto re-resolves at the
        #: first store of every epoch from the previous epoch's op mix).
        self._epoch_policy = None
        #: Redo staging: (file_offset, bytes) in store order.
        self._overlay = []
        self._epoch_loads = 0
        self._epoch_stores = 0
        self._prev_loads = 0
        self._prev_stores = 0

    # -- lifecycle --------------------------------------------------------

    def setup(self, ctx):
        """Format the log and publish the inode pointer (charged to the
        ``mmap`` syscall that created the mapping)."""
        self.log.setup(ctx, self.log_blocks, _POLICY_CODES[self.policy])
        self.fs.env.stats.bump("mmio_maps")

    def invalidate(self, ctx):
        """Forcibly detach (unlink of a mapped file): nothing persists."""
        if self.closed:
            return
        self.closed = True
        self._overlay = []
        self._dirty_ranges = []
        self.log.clear_pointer(ctx)
        self.fs.balloc.free_many(self.log.all_blocks())

    def munmap(self, ctx):
        """Commit the open epoch, detach the log, release its blocks."""
        if self.closed:
            return
        with ctx.span("mmio.munmap", layer=LAYER_MMIO):
            with self._mu.held(ctx):
                self._msync_locked(ctx)
                self.log.clear_pointer(ctx)
        self.closed = True
        self.fs.balloc.free_many(self.log.all_blocks())
        self.fs.env.stats.ops_completed += 1
        self.fs.on_munmap(self.ino, self)

    # -- library-mode ops (zero syscall charges) --------------------------

    def load(self, ctx, offset, length):
        """A load through the mapping -- no syscall entry, no VFS."""
        with ctx.span("mmio.load", layer=LAYER_MMIO):
            with self._mu.held(ctx):
                data = self._load_locked(ctx, offset, length)
        self.fs.env.stats.ops_completed += 1
        return data

    def store(self, ctx, offset, data):
        """A store through the mapping: logged, then staged or applied
        per the epoch's policy.  Volatile until ``msync`` commits."""
        with ctx.span("mmio.store", layer=LAYER_MMIO):
            with self._mu.held(ctx):
                self._store_locked(ctx, offset, bytes(data))
        self.fs.env.stats.ops_completed += 1
        return len(data)

    def msync(self, ctx):
        """Commit the epoch: everything stored so far becomes durable
        and atomic -- a crash now recovers all of it or none of it."""
        with ctx.span("mmio.msync", layer=LAYER_MMIO):
            with self._mu.held(ctx):
                flushed = self._msync_locked(ctx)
        self.fs.env.stats.ops_completed += 1
        return flushed

    # Compatibility: the plain MappedRegion API maps onto the logged ops
    # so existing mmap callers get atomicity transparently.
    def read(self, ctx, offset, length):
        return self.load(ctx, offset, length)

    def write(self, ctx, offset, data):
        return self.store(ctx, offset, data)

    # -- syscall routing --------------------------------------------------

    def handle_request(self, ctx, req):
        """Serve a conventional IORequest against the mapped file.

        Called from the file system's ``submit`` while the mapping is
        live: reads see staged stores, writes join the mapping's epoch
        (durable at the next fsync/msync), fsync commits the epoch.
        The work lands as an ``mmio`` phase on the syscall's span.
        """
        from repro.io import OP_SYNC, OP_WRITE

        self.fs.env.stats.bump("mmio_routed")
        with ctx.layer(LAYER_MMIO):
            with self._mu.held(ctx):
                if req.op == OP_WRITE:
                    total = 0
                    for file_offset, vec in req.fragments():
                        self._store_locked(ctx, file_offset, bytes(vec))
                        total += len(vec)
                    if req.eager:
                        self._msync_locked(ctx)
                    return total
                if req.op == OP_SYNC:
                    self._msync_locked(ctx)
                    return 0
                size = self.fs._inode(req.ino).size
                avail = max(0, min(req.total_bytes, size - req.offset))
                if avail == 0:
                    return b""
                return self._load_locked(ctx, req.offset, avail)

    # -- internals --------------------------------------------------------

    def _faults(self, ctx, op):
        injector = getattr(self.fs, "mmio_faults", None)
        if injector is not None:
            injector.check(op, self.ino)

    def _resolve_policy(self):
        if self.policy == "undo":
            return POLICY_UNDO
        if self.policy == "redo":
            return POLICY_REDO
        # auto: a read-heavy previous epoch wants current in-place bytes
        # (undo); a store-heavy one wants the cheaper redo staging.
        if self._prev_stores > self._prev_loads:
            return POLICY_REDO
        return POLICY_UNDO

    def _load_locked(self, ctx, offset, length):
        self._require_open()
        self._faults(ctx, "load")
        self._epoch_loads += 1
        self.fs.env.stats.bump("mmio_loads")
        data = super().read(ctx, offset, length)
        if self._overlay:
            buf = bytearray(data)
            for over_off, over in self._overlay:
                lo = max(offset, over_off)
                hi = min(offset + length, over_off + len(over))
                if lo < hi:
                    buf[lo - offset:hi - offset] = \
                        over[lo - over_off:hi - over_off]
            data = bytes(buf)
        return data

    def _store_locked(self, ctx, offset, data):
        self._require_open()
        self._faults(ctx, "store")
        if not data:
            return
        if self._epoch_policy is None:
            self._epoch_policy = self._resolve_policy()
        self._epoch_stores += 1
        self.fs.env.stats.bump("mmio_stores")
        pos = 0
        while pos < len(data):
            file_offset = offset + pos
            in_block = file_offset % BLOCK_SIZE
            take = min(BLOCK_SIZE - in_block, len(data) - pos,
                       MAX_ENTRY_PAYLOAD)
            self._store_chunk(ctx, file_offset, data[pos:pos + take])
            pos += take
        inode = self.fs._inode(self.ino)
        if offset + len(data) > inode.size:
            tx = self.fs.journal.begin(ctx)
            inode.size = offset + len(data)
            inode.mtime = ctx.now
            self.fs.itable.write_core(ctx, tx, inode)
            self.fs.journal.commit(ctx, tx)

    def _store_chunk(self, ctx, file_offset, chunk):
        epoch = self.log.committed + 1
        file_block = file_offset // BLOCK_SIZE
        in_off = file_offset % BLOCK_SIZE
        # Both policies map the block now (journaled), so recovery and
        # apply always find a home for the entry's bytes.
        base = self._block_addr(ctx, file_block, allocate=True)
        if self._epoch_policy == POLICY_UNDO:
            old = self.fs.device.read(ctx, base + in_off, len(chunk))
            self._append(ctx, KIND_UNDO, epoch, file_offset, old)
            # The undo image is durable (persist-event order) before the
            # in-place store can land, so every crash state rolls back.
            self.fs.device.write_cached(ctx, base + in_off, chunk,
                                        CAT_WRITE_ACCESS)
            self._dirty_ranges.append((file_offset, base + in_off,
                                       len(chunk)))
        else:
            self._append(ctx, KIND_REDO, epoch, file_offset, chunk)
            self._overlay.append((file_offset, chunk))

    def _append(self, ctx, kind, epoch, file_offset, payload):
        self._faults(ctx, "append")
        try:
            self.log.append(ctx, kind, epoch, file_offset, payload)
        except LogFull:
            self._commit_epoch(ctx)
            self.fs.env.stats.bump("mmio_autocommits")
            self.log.append(ctx, kind, self.log.committed + 1, file_offset,
                            payload)

    def _msync_locked(self, ctx):
        self._require_open()
        self._faults(ctx, "msync")
        if self.log.tail_empty and not self._dirty_ranges \
                and not self._overlay:
            self.fs.device.fence(ctx)
            return 0
        flushed = self._commit_epoch(ctx)
        self.fs.env.stats.bump("msync_calls")
        return flushed

    def _commit_epoch(self, ctx):
        epoch = self.log.committed + 1
        if self._epoch_policy == POLICY_REDO:
            # Entries are already persistent; the commit word makes the
            # epoch recoverable, then the apply moves it in place.
            self.log.commit(ctx, epoch)
            for over_off, over in self._overlay:
                self._apply_range(ctx, over_off, over)
            self.fs.device.fence(ctx)
            self._overlay = []
        else:
            for _foff, addr, length in self._dirty_ranges:
                self.fs.device.clflush(ctx, addr, length, CAT_WRITE_ACCESS)
            self.fs.device.fence(ctx)
            self.log.commit(ctx, epoch)
            self._dirty_ranges = []
        self.log.mark_applied(ctx, epoch)
        flushed = self._epoch_stores
        self._prev_loads = self._epoch_loads
        self._prev_stores = self._epoch_stores
        self._epoch_loads = 0
        self._epoch_stores = 0
        self._epoch_policy = None
        self.fs.env.stats.bump("mmio_epochs_committed")
        return flushed

    def _apply_range(self, ctx, file_offset, data):
        """Move staged redo bytes in place, clamped to the current size
        (a truncate may have shrunk the file under the epoch)."""
        size = self.fs._inode(self.ino).size
        end = min(file_offset + len(data), size)
        pos = file_offset
        blockmap = self.fs._map(self.ino)
        while pos < end:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, end - pos)
            nvmm_block = blockmap.get(file_block)
            if nvmm_block is not None:
                start = pos - file_offset
                self.fs.device.write_persistent(
                    ctx, block_addr(nvmm_block) + in_off,
                    data[start:start + take], CAT_WRITE_ACCESS)
            pos += take

    # -- truncate coherence ----------------------------------------------

    def invalidate_past(self, new_size):
        """Drop staged state past the new EOF (called under truncate)."""
        super().invalidate_past(new_size)
        kept = []
        for over_off, over in self._overlay:
            if over_off >= new_size:
                continue
            if over_off + len(over) > new_size:
                over = over[:new_size - over_off]
            kept.append((over_off, over))
        self._overlay = kept


# -- mount-time recovery ---------------------------------------------------

def recover(fs, ctx):
    """Recover every live file's mmio log at mount.

    Runs after journal recovery and the DRAM rebuild: for each inode
    whose slot carries a log pointer, roll back uncommitted undo
    entries (reverse order), re-apply a committed-but-unapplied redo
    epoch (idempotent), then detach the log.  The log's blocks were
    never referenced by a blockmap, so the rebuilt allocator already
    counts them free; detaching before the mount serves I/O keeps them
    from ever being seen half-owned.
    """
    recovered = 0
    for inode in fs.itable.live_inodes():
        try:
            raw = fs.device.read_media(
                inode_addr(fs.sb, inode.ino) + MMIO_PTR_OFFSET, 8)
        except MediaError:
            continue
        head_block = struct.unpack("<Q", raw)[0]
        if head_block == 0:
            continue
        log = MmioLog.from_media(fs, inode.ino, head_block)
        if log is not None:
            _recover_log(fs, ctx, inode, log)
            recovered += 1
        _clear_pointer(fs, ctx, inode.ino)
    if recovered:
        fs.env.stats.bump("mmio_logs_recovered", recovered)
    return recovered


def _clear_pointer(fs, ctx, ino):
    fs.device.write_persistent(ctx, inode_addr(fs.sb, ino) + MMIO_PTR_OFFSET,
                               struct.pack("<Q", 0), CAT_WRITE_ACCESS)
    fs.device.fence(ctx)


def _recover_log(fs, ctx, inode, log):
    entries = log.scan_media()
    blockmap = fs._map(inode.ino)
    if log.applied < log.committed:
        # A redo epoch committed but its apply was cut short: re-apply
        # the whole epoch (idempotent full-image writes).
        for entry in entries:
            if entry.kind == KIND_REDO and entry.epoch == log.committed:
                _write_back(fs, ctx, blockmap, inode, entry.file_offset,
                            entry.payload)
        fs.env.stats.bump("mmio_recovered_applies")
    # Uncommitted undo entries: the in-place bytes may hold any subset
    # of the torn epoch's stores; restore the pre-images in reverse.
    active = log.committed + 1
    undo = [e for e in entries
            if e.kind == KIND_UNDO and e.epoch == active]
    for entry in reversed(undo):
        _write_back(fs, ctx, blockmap, inode, entry.file_offset,
                    entry.payload)
    if undo:
        fs.env.stats.bump("mmio_recovered_rollbacks")
    fs.device.fence(ctx)


def _write_back(fs, ctx, blockmap, inode, file_offset, data):
    """Write recovery bytes at a file range through the blockmap,
    skipping holes (the journal rolled their allocation back) and
    clamping to the recovered size."""
    end = min(file_offset + len(data), inode.size)
    pos = file_offset
    while pos < end:
        file_block, in_off = divmod(pos, BLOCK_SIZE)
        take = min(BLOCK_SIZE - in_off, end - pos)
        nvmm_block = blockmap.get(file_block)
        if nvmm_block is not None:
            start = pos - file_offset
            fs.device.write_persistent(ctx, block_addr(nvmm_block) + in_off,
                                       data[start:start + take],
                                       CAT_WRITE_ACCESS)
        pos += take

"""NVMMBD: a brd-style ramdisk backed by the NVMM performance model."""

from repro.engine.stats import CAT_OTHERS, CAT_READ_ACCESS, CAT_WRITE_ACCESS
from repro.nvmm.config import BLOCK_SIZE
from repro.nvmm.device import NVMMDevice


class NVMMBlockDevice:
    """A block interface over an :class:`NVMMDevice`.

    Every request pays the generic-block-layer software cost
    (``config.block_layer_ns``) before touching the media; writes then go
    through the NVMM write path (latency per cacheline, writer-slot
    bandwidth cap), reads at DRAM speed -- the same media model as the
    byte-addressable devices, as in the paper's emulator.
    """

    def __init__(self, env, config, size):
        self.env = env
        self.config = config
        self.nvmm = NVMMDevice(env, config, size)
        self.num_blocks = size // BLOCK_SIZE

    def _check(self, block):
        if not 0 <= block < self.num_blocks:
            raise IndexError("block %d out of range" % block)

    def read_block(self, ctx, block):
        """One 4 KiB block read request through the block layer."""
        self._check(block)
        ctx.charge(self.config.block_layer_ns, CAT_OTHERS)
        self.env.stats.bump("bio_reads")
        return self.nvmm.read(ctx, block * BLOCK_SIZE, BLOCK_SIZE,
                              CAT_READ_ACCESS)

    def write_block(self, ctx, block, data):
        """One 4 KiB block write request through the block layer."""
        self._check(block)
        if len(data) != BLOCK_SIZE:
            raise ValueError("block writes must be %d bytes" % BLOCK_SIZE)
        ctx.charge(self.config.block_layer_ns, CAT_OTHERS)
        self.env.stats.bump("bio_writes")
        self.nvmm.write_persistent(ctx, block * BLOCK_SIZE, data,
                                   CAT_WRITE_ACCESS)

    def crash(self):
        self.nvmm.crash()

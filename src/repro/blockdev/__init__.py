"""The NVMMBD block-device emulator (paper Section 5.1).

The paper compares HiNFS against traditional block-based file systems
running on a RAMDISK-like NVMM block device built from Linux's ``brd``
driver with the same NVMM latency/bandwidth model injected.  Requests go
through a *generic block layer* whose per-request software cost is the
second overhead (besides the double copy) that Figure 3(a) attributes to
the traditional stack.
"""

from repro.blockdev.nvmmbd import NVMMBlockDevice

__all__ = ["NVMMBlockDevice"]

"""The cross-layer trace spine: per-request spans in a bounded ring.

Every syscall (and every writeback batch) opens one :class:`Span`; the
layers it crosses record enter/exit *virtual* timestamps as phases on
that span (``vfs`` -> ``fs`` -> ``writeback``/``nvmm``).  Completed
spans land in a bounded :class:`TraceRing` -- old spans are evicted,
never allocated without bound -- and can be exported as Chrome
trace-event JSON (`chrome://tracing` / Perfetto's ``legacy`` loader).

This replaces the scattered per-syscall accounting call sites with ONE
instrumentation point: :meth:`repro.engine.context.ExecContext.span`
closes the span, feeds :meth:`SimStats.add_layer_time` per phase, and
records it here, so the exported per-layer durations sum exactly to the
run's ``SimStats`` totals (``layer_time_ns`` and, for the ``vfs``
layer, ``syscall_time_ns``).
"""

import json
from collections import deque

#: Canonical layer names used by the spine.
LAYER_VFS = "vfs"
LAYER_FS = "fs"
LAYER_WRITEBACK = "writeback"
LAYER_NVMM = "nvmm"
#: Contended virtual-lock waits (see :mod:`repro.engine.locks`).
LAYER_LOCK = "lock"
#: The submission/completion ring (see :mod:`repro.io.ring`): batch
#: submission spans and reaper waits.  Sub-phases break a batched SQE's
#: life down into time queued in the SQ before execution, execution
#: itself, and time the reaper spent blocked on the CQ.
LAYER_RING = "ring"
#: Background integrity scrub passes (see :mod:`repro.fs.scrub`).
LAYER_SCRUB = "scrub"
#: Per-tenant QoS at the dispatch boundary (see :mod:`repro.fs.qos`):
#: token-bucket throttle waits and admission-control backpressure.
LAYER_QOS = "qos"
#: The library-mode mmap data plane (see :mod:`repro.io.mmio`):
#: zero-syscall load/store/msync spans and their epoch-log appends.
LAYER_MMIO = "mmio"
RING_SQ_WAIT = "ring.sq_wait"
RING_IN_FLIGHT = "ring.in_flight"
RING_CQ_WAIT = "ring.cq_wait"


class Span:
    """One request's (or writeback batch's) journey through the stack."""

    __slots__ = ("req_id", "name", "layer", "thread", "start_ns", "end_ns",
                 "phases", "meta")

    def __init__(self, req_id, name, thread, start_ns, layer=LAYER_VFS,
                 meta=None):
        self.req_id = req_id
        self.name = name
        #: Layer the span's own duration is accounted under.
        self.layer = layer
        self.thread = thread
        self.start_ns = start_ns
        self.end_ns = None
        #: Sub-layer visits: ``(layer, enter_ns, exit_ns)`` in entry order.
        self.phases = []
        #: Free-form annotations exported into the Chrome event ``args``
        #: (e.g. the request ids a writeback batch flushed).
        self.meta = meta

    def add_phase(self, layer, enter_ns, exit_ns):
        self.phases.append((layer, enter_ns, exit_ns))

    def close(self, end_ns):
        self.end_ns = end_ns

    @property
    def duration_ns(self):
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def layer_totals(self):
        """``{layer: ns}`` for this span: its own duration under
        ``self.layer`` plus every recorded sub-phase."""
        totals = {self.layer: self.duration_ns}
        for layer, enter_ns, exit_ns in self.phases:
            totals[layer] = totals.get(layer, 0) + (exit_ns - enter_ns)
        return totals

    def __repr__(self):
        return "Span(#%d %s/%s %d..%s, %d phases)" % (
            self.req_id, self.layer, self.name, self.start_ns,
            self.end_ns, len(self.phases),
        )


class TraceRing:
    """Bounded ring buffer of completed spans."""

    def __init__(self, capacity=4096, layers=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._spans = deque(maxlen=capacity)
        #: Layers this ring accepts spans for; ``None`` = all.  Spans of
        #: a filtered-out layer take the instrumentation point's disabled
        #: fast path: no allocation, no ring traffic.
        self.enabled_layers = frozenset(layers) if layers is not None else None
        #: Spans recorded / evicted over the ring's lifetime.
        self.recorded = 0
        self.dropped = 0

    def __len__(self):
        return len(self._spans)

    def wants(self, layer):
        """Whether spans of ``layer`` should be materialised at all."""
        enabled = self.enabled_layers
        return enabled is None or layer in enabled

    def begin(self, name, thread, start_ns, req_id, layer=LAYER_VFS,
              meta=None):
        """Open a span.  Allocation only -- nothing is stored until the
        span completes and is handed back via :meth:`record`."""
        return Span(req_id, name, thread, start_ns, layer=layer, meta=meta)

    def record(self, span):
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)
        self.recorded += 1

    def spans(self):
        """Completed spans, oldest first."""
        return list(self._spans)

    def clear(self):
        self._spans.clear()


# -- Chrome trace-event export ------------------------------------------------


def chrome_trace_events(spans):
    """Flatten spans into Chrome trace-event dicts (``ph: "X"``).

    One complete event per span (cat = the span's own layer) plus one per
    recorded sub-phase (cat = the phase's layer).  Timestamps are
    microseconds as the format requires; the exact nanosecond duration is
    preserved in ``args.dur_ns`` so tooling can verify, without rounding
    error, that per-layer durations sum to the ``SimStats`` totals.
    """
    events = []
    tids = {}
    for span in spans:
        tid = tids.setdefault(span.thread, len(tids) + 1)
        args = {"req_id": span.req_id, "dur_ns": span.duration_ns}
        if span.meta:
            args.update(span.meta)
        events.append({
            "name": span.name,
            "cat": span.layer,
            "ph": "X",
            "ts": span.start_ns / 1e3,
            "dur": span.duration_ns / 1e3,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
        for layer, enter_ns, exit_ns in span.phases:
            events.append({
                "name": layer,
                "cat": layer,
                "ph": "X",
                "ts": enter_ns / 1e3,
                "dur": (exit_ns - enter_ns) / 1e3,
                "pid": 1,
                "tid": tid,
                "args": {"req_id": span.req_id,
                         "dur_ns": exit_ns - enter_ns},
            })
    for thread, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        })
    return events


def chrome_trace(spans):
    """The full Chrome trace-event JSON object for ``spans``."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "virtual-ns", "source": "repro.obs.trace"},
    }


def dump_chrome_trace(spans, fileobj):
    json.dump(chrome_trace(spans), fileobj, indent=1)


def layer_duration_sums(events):
    """``{layer: ns}`` summed over exported events -- the verification
    half of the trace contract (compare against ``stats.layer_time_ns``)."""
    sums = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        cat = event["cat"]
        sums[cat] = sums.get(cat, 0) + event["args"]["dur_ns"]
    return sums

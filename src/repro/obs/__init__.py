"""Observability: the cross-layer trace spine."""

from repro.obs.trace import Span, TraceRing, chrome_trace, dump_chrome_trace

__all__ = ["Span", "TraceRing", "chrome_trace", "dump_chrome_trace"]

"""Flat byte-addressable memory regions."""

CACHELINE_SIZE = 64


class MemoryRegion:
    """A bounds-checked flat byte array (the data plane of a device)."""

    def __init__(self, size):
        if size <= 0:
            raise ValueError("region size must be positive, got %d" % size)
        self.size = int(size)
        self._data = bytearray(self.size)

    def _check(self, addr, length):
        if addr < 0 or length < 0 or addr + length > self.size:
            raise IndexError(
                "access [%d, %d) outside region of %d bytes"
                % (addr, addr + length, self.size)
            )

    def read(self, addr, length):
        """Return ``length`` bytes starting at ``addr``."""
        self._check(addr, length)
        return bytes(self._data[addr : addr + length])

    def write(self, addr, data):
        """Store ``data`` at ``addr``."""
        data = bytes(data)
        self._check(addr, len(data))
        self._data[addr : addr + len(data)] = data

    def fill(self, addr, length, value=0):
        """Set ``length`` bytes at ``addr`` to ``value``."""
        self._check(addr, length)
        self._data[addr : addr + length] = bytes([value]) * length

    def snapshot(self):
        """An independent copy of the full contents."""
        return bytes(self._data)

    def __len__(self):
        return self.size

"""Flat byte-addressable memory regions.

The data plane of every simulated device is one contiguous slab.  Two
properties keep it off the simulator's own profile:

- **No per-access copies.**  ``write`` slice-assigns straight from the
  caller's buffer (bytes, bytearray, or memoryview) and ``view`` hands
  out zero-copy windows for internal consumers; only ``read`` -- whose
  contract is an independent ``bytes`` -- allocates.
- **Lazy backing for big slabs.**  Regions past a threshold sit on an
  anonymous ``mmap``: creation costs no memset (the kernel hands out
  zero pages on first touch), so a 192 MB simulated device whose
  workload touches 2 MB pays for 2 MB.  Small regions stay plain
  ``bytearray``s.  Both backings speak the buffer protocol, so every
  other path is identical.
"""

import mmap

CACHELINE_SIZE = 64

#: Regions at or above this size are mmap-backed (lazily faulted);
#: smaller ones use a bytearray (mmap below a few pages is pure waste).
_MMAP_THRESHOLD = 1 << 20

#: Shared zero slab for pattern fills; grown on demand, never shrunk.
_ZEROS = bytearray(1 << 16)


class MemoryRegion:
    """A bounds-checked flat byte slab (the data plane of a device)."""

    __slots__ = ("size", "_data", "_mv")

    def __init__(self, size):
        if size <= 0:
            raise ValueError("region size must be positive, got %d" % size)
        self.size = int(size)
        if self.size >= _MMAP_THRESHOLD:
            self._data = mmap.mmap(-1, self.size)
        else:
            self._data = bytearray(self.size)
        # One long-lived view: reads copy out of it in a single hop
        # regardless of backing (a bytearray slice would copy twice).
        self._mv = memoryview(self._data)

    def _check(self, addr, length):
        if addr < 0 or length < 0 or addr + length > self.size:
            raise IndexError(
                "access [%d, %d) outside region of %d bytes"
                % (addr, addr + length, self.size)
            )

    def read(self, addr, length):
        """Return ``length`` bytes starting at ``addr`` (an independent
        copy; use :meth:`view` for a zero-copy window)."""
        if addr < 0 or length < 0 or addr + length > self.size:
            self._check(addr, length)
        return bytes(self._mv[addr : addr + length])

    def view(self, addr, length):
        """Zero-copy read-write window onto ``[addr, addr+length)``.

        The window aliases the slab: it is only valid until the region
        is resized/closed, and writing through it bypasses any caller's
        bookkeeping -- internal consumers (the cacheline overlay, block
        copies) use it to avoid ``read``'s allocation.
        """
        self._check(addr, length)
        return self._mv[addr : addr + length]

    def write(self, addr, data):
        """Store ``data`` (any bytes-like object) at ``addr``."""
        length = len(data)
        if addr < 0 or addr + length > self.size:
            self._check(addr, length)
        self._data[addr : addr + length] = data

    def fill(self, addr, length, value=0):
        """Set ``length`` bytes at ``addr`` to ``value`` without building
        an O(length) one-off temporary per call."""
        global _ZEROS
        self._check(addr, length)
        if length == 0:
            return
        if value == 0:
            if length > len(_ZEROS):
                _ZEROS = bytearray(length)
            self._data[addr : addr + length] = memoryview(_ZEROS)[:length]
        else:
            # Non-zero fills are rare (test patterns); a one-byte seed
            # repeated by C code is the cheapest portable pattern fill.
            self._data[addr : addr + length] = bytes((value,)) * length

    def snapshot(self):
        """An independent copy of the full contents."""
        return bytes(self._data)

    def __len__(self):
        return self.size

"""A persistent region behind a volatile CPU-cache line store.

NVMM sits on the memory bus, so ordinary stores land in the (volatile)
CPU cache and reach the persistence domain only when flushed -- either
explicitly (``clflush``), via non-temporal stores (the
``copy_from_user_inatomic_nocache`` path PMFS uses for data), or
*unpredictably* when the cache evicts a line on its own.  That last
hazard is why NVMM file systems must order metadata updates with
``clflush``/``mfence``; this module models all three paths so the
journal-recovery tests can exercise real crash states.
"""

from repro.mem.region import CACHELINE_SIZE, MemoryRegion


class CachedPersistentRegion:
    """Persistent bytes fronted by a volatile write-back line cache.

    Reads always observe the newest data (cache hit first).  ``crash()``
    discards unflushed lines, optionally persisting an arbitrary subset
    first to model uncontrolled evictions.  Within one cacheline, a crash
    is all-or-nothing -- the architectural guarantee ("writes to the same
    cacheline are never reordered") that both PMFS's and HiNFS's
    valid-flag log entries rely on.
    """

    def __init__(self, size):
        self.size = int(size)
        self._persistent = MemoryRegion(size)
        # line index -> bytearray(CACHELINE_SIZE) of newest (volatile) data
        self._dirty_lines = {}

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _line_range(addr, length):
        """Indices of every cacheline overlapping [addr, addr+length)."""
        if length <= 0:
            return range(0, 0)
        first = addr // CACHELINE_SIZE
        last = (addr + length - 1) // CACHELINE_SIZE
        return range(first, last + 1)

    def _line_buf(self, line):
        """Volatile buffer for ``line``, faulting it in from persistence."""
        buf = self._dirty_lines.get(line)
        if buf is None:
            base = line * CACHELINE_SIZE
            end = min(base + CACHELINE_SIZE, self.size)
            buf = bytearray(self._persistent.read(base, end - base))
            if len(buf) < CACHELINE_SIZE:
                buf.extend(b"\0" * (CACHELINE_SIZE - len(buf)))
            self._dirty_lines[line] = buf
        return buf

    # -- store paths ------------------------------------------------------

    def write(self, addr, data):
        """An ordinary (cached, write-back) store: volatile until flushed."""
        data = bytes(data)
        if addr < 0 or addr + len(data) > self.size:
            raise IndexError("store outside region")
        pos = addr
        remaining = memoryview(data)
        while remaining:
            line = pos // CACHELINE_SIZE
            off = pos % CACHELINE_SIZE
            take = min(CACHELINE_SIZE - off, len(remaining))
            buf = self._line_buf(line)
            buf[off : off + take] = remaining[:take]
            pos += take
            remaining = remaining[take:]

    def write_nocache(self, addr, data):
        """A non-temporal store: bypasses the cache, immediately durable.

        Matches PMFS's ``copy_from_user_inatomic_nocache`` data path.
        Dirty volatile copies of partially-covered lines are flushed first
        so the store never resurrects stale bytes within a line.
        """
        data = bytes(data)
        if addr < 0 or addr + len(data) > self.size:
            raise IndexError("store outside region")
        for line in self._line_range(addr, len(data)):
            self._flush_line(line)
        self._persistent.write(addr, data)

    # -- flush / ordering ---------------------------------------------------

    def clflush(self, addr, length):
        """Flush every cacheline overlapping the range to persistence.

        Returns the number of lines actually flushed (dirty lines only),
        which the timing layer converts into emulated NVMM write delay.
        """
        flushed = 0
        for line in self._line_range(addr, length):
            if self._flush_line(line):
                flushed += 1
        return flushed

    def _flush_line(self, line):
        buf = self._dirty_lines.pop(line, None)
        if buf is None:
            return False
        base = line * CACHELINE_SIZE
        end = min(base + CACHELINE_SIZE, self.size)
        self._persistent.write(base, bytes(buf[: end - base]))
        return True

    def flush_all(self):
        """Flush every dirty line (wbinvd-style; used at unmount)."""
        flushed = 0
        for line in sorted(self._dirty_lines):
            if self._flush_line(line):
                flushed += 1
        return flushed

    # -- load path --------------------------------------------------------

    def read(self, addr, length):
        """Load ``length`` bytes, observing volatile lines first."""
        if addr < 0 or length < 0 or addr + length > self.size:
            raise IndexError("load outside region")
        if not self._dirty_lines:
            return self._persistent.read(addr, length)
        out = bytearray(self._persistent.read(addr, length))
        for line in self._line_range(addr, length):
            buf = self._dirty_lines.get(line)
            if buf is None:
                continue
            base = line * CACHELINE_SIZE
            lo = max(addr, base)
            hi = min(addr + length, base + CACHELINE_SIZE)
            out[lo - addr : hi - addr] = buf[lo - base : hi - base]
        return bytes(out)

    # -- crash modelling --------------------------------------------------

    def dirty_line_indices(self):
        """Lines currently volatile (useful for enumerating crash states)."""
        return sorted(self._dirty_lines)

    def crash(self, evict_lines=()):
        """Power failure: lose volatile lines, except ``evict_lines``.

        ``evict_lines`` models lines the cache happened to write back on
        its own before the crash; they persist, everything else volatile
        is lost.  Whole lines persist or vanish atomically.
        """
        for line in evict_lines:
            self._flush_line(line)
        self._dirty_lines.clear()

    def persistent_snapshot(self):
        """Contents as they would be read after an immediate crash."""
        return self._persistent.snapshot()

"""A persistent region behind a volatile CPU-cache line store.

NVMM sits on the memory bus, so ordinary stores land in the (volatile)
CPU cache and reach the persistence domain only when flushed -- either
explicitly (``clflush``), via non-temporal stores (the
``copy_from_user_inatomic_nocache`` path PMFS uses for data), or
*unpredictably* when the cache evicts a line on its own.  That last
hazard is why NVMM file systems must order metadata updates with
``clflush``/``mfence``; this module models all three paths so the
journal-recovery tests can exercise real crash states.
"""

from repro.mem.region import CACHELINE_SIZE, MemoryRegion


class CachedPersistentRegion:
    """Persistent bytes fronted by a volatile write-back line cache.

    Reads always observe the newest data (cache hit first).  ``crash()``
    discards unflushed lines, optionally persisting an arbitrary subset
    first to model uncontrolled evictions.  Within one cacheline, a crash
    is all-or-nothing -- the architectural guarantee ("writes to the same
    cacheline are never reordered") that both PMFS's and HiNFS's
    valid-flag log entries rely on.
    """

    def __init__(self, size):
        self.size = int(size)
        self._persistent = MemoryRegion(size)
        # line index -> bytearray(CACHELINE_SIZE) of newest (volatile) data
        self._dirty_lines = {}
        #: Optional persistence observer (crash-point exploration).  When
        #: set, it receives ``on_cached_write(addr, data)`` for volatile
        #: stores, ``on_persist(addr, data)`` for every byte range that
        #: becomes durable, ``on_flush_boundary(region)`` after each
        #: ``clflush``, and ``on_fence(region)`` at every ordering point.
        self.observer = None

    @property
    def num_lines(self):
        return -(-self.size // CACHELINE_SIZE)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _line_range(addr, length):
        """Indices of every cacheline overlapping [addr, addr+length)."""
        if length <= 0:
            return range(0, 0)
        first = addr // CACHELINE_SIZE
        last = (addr + length - 1) // CACHELINE_SIZE
        return range(first, last + 1)

    def _line_buf(self, line):
        """Volatile buffer for ``line``, faulting it in from persistence."""
        buf = self._dirty_lines.get(line)
        if buf is None:
            base = line * CACHELINE_SIZE
            end = min(base + CACHELINE_SIZE, self.size)
            buf = bytearray(self._persistent.read(base, end - base))
            if len(buf) < CACHELINE_SIZE:
                buf.extend(b"\0" * (CACHELINE_SIZE - len(buf)))
            self._dirty_lines[line] = buf
        return buf

    # -- store paths ------------------------------------------------------

    def write(self, addr, data):
        """An ordinary (cached, write-back) store: volatile until flushed."""
        data = bytes(data)
        if addr < 0 or addr + len(data) > self.size:
            raise IndexError("store outside region")
        if self.observer is not None:
            self.observer.on_cached_write(addr, data)
        pos = addr
        remaining = memoryview(data)
        while remaining:
            line = pos // CACHELINE_SIZE
            off = pos % CACHELINE_SIZE
            take = min(CACHELINE_SIZE - off, len(remaining))
            buf = self._line_buf(line)
            buf[off : off + take] = remaining[:take]
            pos += take
            remaining = remaining[take:]

    def write_nocache(self, addr, data):
        """A non-temporal store: bypasses the cache, immediately durable.

        Matches PMFS's ``copy_from_user_inatomic_nocache`` data path.
        Dirty volatile copies of partially-covered lines are flushed first
        so the store never resurrects stale bytes within a line.
        """
        data = bytes(data)
        if addr < 0 or addr + len(data) > self.size:
            raise IndexError("store outside region")
        for line in self._line_range(addr, len(data)):
            self._flush_line(line)
        self._persistent.write(addr, data)
        if self.observer is not None:
            self.observer.on_persist(addr, data)

    # -- flush / ordering ---------------------------------------------------

    def clflush(self, addr, length):
        """Flush every cacheline overlapping the range to persistence.

        Returns the number of lines actually flushed (dirty lines only),
        which the timing layer converts into emulated NVMM write delay.
        """
        flushed = 0
        for line in self._line_range(addr, length):
            if self._flush_line(line):
                flushed += 1
        if self.observer is not None:
            self.observer.on_flush_boundary(self)
        return flushed

    def fence(self):
        """mfence ordering point (a no-op for the data plane; crash-point
        exploration records it as an enumeration boundary)."""
        if self.observer is not None:
            self.observer.on_fence(self)

    def _flush_line(self, line):
        buf = self._dirty_lines.pop(line, None)
        if buf is None:
            return False
        base = line * CACHELINE_SIZE
        end = min(base + CACHELINE_SIZE, self.size)
        data = bytes(buf[: end - base])
        self._persistent.write(base, data)
        if self.observer is not None:
            self.observer.on_persist(base, data)
        return True

    def flush_all(self):
        """Flush every dirty line (wbinvd-style; used at unmount)."""
        flushed = 0
        for line in sorted(self._dirty_lines):
            if self._flush_line(line):
                flushed += 1
        if self.observer is not None:
            self.observer.on_flush_boundary(self)
        return flushed

    # -- load path --------------------------------------------------------

    def read(self, addr, length):
        """Load ``length`` bytes, observing volatile lines first."""
        if addr < 0 or length < 0 or addr + length > self.size:
            raise IndexError("load outside region")
        if not self._dirty_lines:
            return self._persistent.read(addr, length)
        out = bytearray(self._persistent.read(addr, length))
        for line in self._line_range(addr, length):
            buf = self._dirty_lines.get(line)
            if buf is None:
                continue
            base = line * CACHELINE_SIZE
            lo = max(addr, base)
            hi = min(addr + length, base + CACHELINE_SIZE)
            out[lo - addr : hi - addr] = buf[lo - base : hi - base]
        return bytes(out)

    # -- crash modelling --------------------------------------------------

    def dirty_line_indices(self):
        """Lines currently volatile (useful for enumerating crash states)."""
        return sorted(self._dirty_lines)

    def dirty_lines_snapshot(self):
        """Copy of the volatile lines: ``{line_index: line_bytes}``."""
        return {line: bytes(buf) for line, buf in self._dirty_lines.items()}

    def crash(self, evict_lines=()):
        """Power failure: lose volatile lines, except ``evict_lines``.

        ``evict_lines`` models lines the cache happened to write back on
        its own before the crash; they persist, everything else volatile
        is lost.  Whole lines persist or vanish atomically.

        Every index in ``evict_lines`` must name a currently-dirty line;
        a clean or out-of-range index raises :class:`ValueError` so a
        crash-state enumeration can never silently test the wrong state.
        """
        evict_lines = list(evict_lines)
        for line in evict_lines:
            if not 0 <= line < self.num_lines:
                raise ValueError(
                    "evict_lines index %r outside region of %d lines"
                    % (line, self.num_lines)
                )
            if line not in self._dirty_lines:
                raise ValueError(
                    "evict_lines index %r is not dirty; a clean line cannot "
                    "be written back at crash time" % (line,)
                )
        for line in evict_lines:
            self._flush_line(line)
        self._dirty_lines.clear()

    def persistent_snapshot(self):
        """Contents as they would be read after an immediate crash."""
        return self._persistent.snapshot()

    def load_snapshot(self, image):
        """Replace the persistent contents with ``image`` (crash-state
        replay); all volatile lines are discarded."""
        image = bytes(image)
        if len(image) != self.size:
            raise ValueError(
                "snapshot of %d bytes does not match region of %d bytes"
                % (len(image), self.size)
            )
        self._dirty_lines.clear()
        self._persistent.write(0, image)

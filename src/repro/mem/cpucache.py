"""A persistent region behind a volatile CPU-cache line store.

NVMM sits on the memory bus, so ordinary stores land in the (volatile)
CPU cache and reach the persistence domain only when flushed -- either
explicitly (``clflush``), via non-temporal stores (the
``copy_from_user_inatomic_nocache`` path PMFS uses for data), or
*unpredictably* when the cache evicts a line on its own.  That last
hazard is why NVMM file systems must order metadata updates with
``clflush``/``mfence``; this module models all three paths so the
journal-recovery tests can exercise real crash states.

Hot-path layout (PR 7): instead of a dict of per-line ``bytearray``
copies, the volatile state is **flat-array** -- one contiguous
*current* slab holding the newest data (what loads observe), one
*persistent* slab holding the durable image, and one dirty-line bitmap
(a ``bytearray`` of 0/1 flags) between them.  A store is a single slice
assignment plus a bitmap run; a load is a single slice copy with no
per-line merge; a flush copies ``current -> persistent`` for exactly
the dirty lines.  Nothing on the write/flush/crash paths allocates per
line.
"""

from repro.mem.region import CACHELINE_SIZE, MemoryRegion

#: Flag-run template for marking many lines dirty in one slice assign.
_ONES = b"\x01" * 4096


class CachedPersistentRegion:
    """Persistent bytes fronted by a volatile write-back line cache.

    Reads always observe the newest data (the current slab).  ``crash()``
    discards unflushed lines, optionally persisting an arbitrary subset
    first to model uncontrolled evictions.  Within one cacheline, a crash
    is all-or-nothing -- the architectural guarantee ("writes to the same
    cacheline are never reordered") that both PMFS's and HiNFS's
    valid-flag log entries rely on.
    """

    def __init__(self, size):
        self.size = int(size)
        #: Durable image: what survives a crash.
        self._persistent = MemoryRegion(size)
        #: Newest data: durable image overlaid with volatile stores.
        self._current = MemoryRegion(size)
        #: One flag byte per cacheline: 1 = line differs from the
        #: durable image (volatile).  ``_dirty_count`` caches the number
        #: of set flags so clean-path checks are O(1).
        self._flags = bytearray(self.num_lines)
        self._dirty_count = 0
        #: Optional persistence observer (crash-point exploration).  When
        #: set, it receives ``on_cached_write(addr, data)`` for volatile
        #: stores, ``on_persist(addr, data)`` for every byte range that
        #: becomes durable, ``on_flush_boundary(region)`` after each
        #: ``clflush``, and ``on_fence(region)`` at every ordering point.
        self.observer = None

    @property
    def num_lines(self):
        return -(-self.size // CACHELINE_SIZE)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _line_range(addr, length):
        """Indices of every cacheline overlapping [addr, addr+length)."""
        if length <= 0:
            return range(0, 0)
        first = addr // CACHELINE_SIZE
        last = (addr + length - 1) // CACHELINE_SIZE
        return range(first, last + 1)

    # -- store paths ------------------------------------------------------

    def write(self, addr, data):
        """An ordinary (cached, write-back) store: volatile until flushed."""
        length = len(data)
        if addr < 0 or addr + length > self.size:
            raise IndexError("store outside region")
        if length == 0:
            return
        if self.observer is not None:
            self.observer.on_cached_write(addr, bytes(data))
        self._current.write(addr, data)
        first = addr // CACHELINE_SIZE
        last = (addr + length - 1) // CACHELINE_SIZE
        nlines = last - first + 1
        flags = self._flags
        if self._dirty_count:
            already = sum(flags[first : last + 1])
            if already == nlines:
                return
            self._dirty_count += nlines - already
        else:
            self._dirty_count = nlines
        if nlines <= len(_ONES):
            flags[first : last + 1] = _ONES[:nlines]
        else:
            flags[first : last + 1] = b"\x01" * nlines

    def write_nocache(self, addr, data):
        """A non-temporal store: bypasses the cache, immediately durable.

        Matches PMFS's ``copy_from_user_inatomic_nocache`` data path.
        Dirty volatile copies of partially-covered lines are flushed first
        so the store never resurrects stale bytes within a line.
        """
        length = len(data)
        if addr < 0 or addr + length > self.size:
            raise IndexError("store outside region")
        if self._dirty_count and length:
            first = addr // CACHELINE_SIZE
            last = (addr + length - 1) // CACHELINE_SIZE
            if any(self._flags[first : last + 1]):
                for line in range(first, last + 1):
                    self._flush_line(line)
        self._persistent.write(addr, data)
        self._current.write(addr, data)
        if self.observer is not None:
            self.observer.on_persist(addr, bytes(data))

    # -- flush / ordering ---------------------------------------------------

    def clflush(self, addr, length):
        """Flush every cacheline overlapping the range to persistence.

        Returns the number of lines actually flushed (dirty lines only),
        which the timing layer converts into emulated NVMM write delay.
        """
        flushed = 0
        if self._dirty_count and length > 0:
            first = addr // CACHELINE_SIZE
            last = (addr + length - 1) // CACHELINE_SIZE
            if any(self._flags[first : last + 1]):
                for line in range(first, last + 1):
                    if self._flush_line(line):
                        flushed += 1
        if self.observer is not None:
            self.observer.on_flush_boundary(self)
        return flushed

    def fence(self):
        """mfence ordering point (a no-op for the data plane; crash-point
        exploration records it as an enumeration boundary)."""
        if self.observer is not None:
            self.observer.on_fence(self)

    def _flush_line(self, line):
        if not self._flags[line]:
            return False
        self._flags[line] = 0
        self._dirty_count -= 1
        base = line * CACHELINE_SIZE
        end = min(base + CACHELINE_SIZE, self.size)
        self._persistent.write(base, self._current.view(base, end - base))
        if self.observer is not None:
            self.observer.on_persist(base, self._current.read(base, end - base))
        return True

    def flush_all(self):
        """Flush every dirty line (wbinvd-style; used at unmount)."""
        flushed = 0
        find = self._flags.find
        line = find(1)
        while line != -1:
            if self._flush_line(line):
                flushed += 1
            line = find(1, line + 1)
        if self.observer is not None:
            self.observer.on_flush_boundary(self)
        return flushed

    # -- load path --------------------------------------------------------

    def read(self, addr, length):
        """Load ``length`` bytes, observing volatile lines first."""
        if addr < 0 or length < 0 or addr + length > self.size:
            raise IndexError("load outside region")
        return self._current.read(addr, length)

    # -- crash modelling --------------------------------------------------

    def dirty_line_indices(self):
        """Lines currently volatile (useful for enumerating crash states)."""
        out = []
        find = self._flags.find
        line = find(1)
        while line != -1:
            out.append(line)
            line = find(1, line + 1)
        return out

    def dirty_lines_snapshot(self):
        """Copy of the volatile lines: ``{line_index: line_bytes}``.

        Line buffers are always ``CACHELINE_SIZE`` long; a tail line on an
        unaligned region is zero-padded, mirroring the hardware's
        full-line granularity.
        """
        out = {}
        size = self.size
        for line in self.dirty_line_indices():
            base = line * CACHELINE_SIZE
            end = min(base + CACHELINE_SIZE, size)
            buf = self._current.read(base, end - base)
            if len(buf) < CACHELINE_SIZE:
                buf += b"\0" * (CACHELINE_SIZE - len(buf))
            out[line] = buf
        return out

    def crash(self, evict_lines=()):
        """Power failure: lose volatile lines, except ``evict_lines``.

        ``evict_lines`` models lines the cache happened to write back on
        its own before the crash; they persist, everything else volatile
        is lost.  Whole lines persist or vanish atomically.

        Every index in ``evict_lines`` must name a currently-dirty line;
        a clean or out-of-range index raises :class:`ValueError` so a
        crash-state enumeration can never silently test the wrong state.
        """
        evict_lines = list(evict_lines)
        for line in evict_lines:
            if not 0 <= line < self.num_lines:
                raise ValueError(
                    "evict_lines index %r outside region of %d lines"
                    % (line, self.num_lines)
                )
            if not self._flags[line]:
                raise ValueError(
                    "evict_lines index %r is not dirty; a clean line cannot "
                    "be written back at crash time" % (line,)
                )
        for line in evict_lines:
            self._flush_line(line)
        # Roll the current slab back to the durable image for every line
        # still volatile, then clear the bitmap.
        size = self.size
        find = self._flags.find
        line = find(1)
        while line != -1:
            base = line * CACHELINE_SIZE
            end = min(base + CACHELINE_SIZE, size)
            self._current.write(base, self._persistent.view(base, end - base))
            line = find(1, line + 1)
        if self._dirty_count:
            self._flags[:] = bytes(len(self._flags))
            self._dirty_count = 0

    def persistent_snapshot(self):
        """Contents as they would be read after an immediate crash."""
        return self._persistent.snapshot()

    def load_snapshot(self, image):
        """Replace the persistent contents with ``image`` (crash-state
        replay); all volatile lines are discarded."""
        image = bytes(image)
        if len(image) != self.size:
            raise ValueError(
                "snapshot of %d bytes does not match region of %d bytes"
                % (len(image), self.size)
            )
        if self._dirty_count:
            self._flags[:] = bytes(len(self._flags))
            self._dirty_count = 0
        self._persistent.write(0, image)
        self._current.write(0, image)

"""Byte-addressable memory substrate with persistence semantics.

The data plane of the reproduction is real: every write lands in a Python
``bytearray`` and every read returns the actual bytes, so filesystem
correctness (including crash consistency) is genuinely testable.

- :mod:`repro.mem.region` -- flat byte-addressable regions.
- :mod:`repro.mem.cpucache` -- a cacheline store modelling the volatile
  CPU cache in front of NVMM, with ``clflush``/non-temporal-store
  semantics and a ``crash()`` operation that discards unflushed lines
  (optionally persisting an arbitrary subset first, modelling uncontrolled
  cache evictions -- the very hazard PMFS's journal ordering defends
  against).
"""

from repro.mem.cpucache import CachedPersistentRegion
from repro.mem.region import CACHELINE_SIZE, MemoryRegion

__all__ = ["CACHELINE_SIZE", "CachedPersistentRegion", "MemoryRegion"]

"""The central cost model for the reproduction.

Every tunable the paper sweeps or fixes lives here:

- Table 2 fixes the emulated NVMM write latency at 200 ns and the write
  bandwidth at 1 GB/s (about 1/8 of DRAM bandwidth).
- Figure 11 sweeps the write latency from 50 ns to 800 ns.
- Section 5.1 models bandwidth by capping concurrent NVMM writers at
  ``N_w = B_nvmm * L_nvmm`` (Little's law applied to cacheline flushes).

Software-path costs (syscall entry, VFS file abstraction, the generic
block layer, page-cache management) are calibrated so that the Figure 1
breakdown fractions match the paper: with 1 read : 2 writes, the direct
write access accounts for over 80 % of time at I/O sizes >= 4 KB and
roughly 16 % at 64 B.
"""

import dataclasses

CACHELINE_SIZE = 64
BLOCK_SIZE = 4096
LINES_PER_BLOCK = BLOCK_SIZE // CACHELINE_SIZE


def lines_spanned(nbytes, offset=0):
    """Number of cachelines touched by ``nbytes`` starting at ``offset``."""
    if nbytes <= 0:
        return 0
    first = offset // CACHELINE_SIZE
    last = (offset + nbytes - 1) // CACHELINE_SIZE
    return last - first + 1


@dataclasses.dataclass(frozen=True)
class NVMMConfig:
    """All timing knobs, in nanoseconds and bytes-per-nanosecond."""

    # --- media (Table 2 defaults) ---------------------------------------
    #: Extra latency per flushed cacheline when persisting to NVMM.
    nvmm_write_latency_ns: int = 200
    #: Sustained aggregate NVMM write bandwidth, bytes per second.
    nvmm_write_bandwidth_bps: int = 1_000_000_000
    #: DRAM (and NVMM-load) copy speed, bytes per nanosecond (~8 GB/s).
    dram_bandwidth_bpns: float = 8.0
    #: Fixed DRAM access latency charged once per copy operation.
    dram_access_ns: int = 30
    #: Cost of an mfence / ordering point.
    fence_ns: int = 20

    # --- media fault handling ---------------------------------------------
    #: Persist retries attempted on a transiently-failing cacheline before
    #: the device gives up and marks the line permanently bad.
    media_retry_limit: int = 3
    #: Virtual-time backoff before the first persist retry; doubles on
    #: each subsequent attempt.
    media_retry_backoff_ns: int = 1_000

    # --- software paths ---------------------------------------------------
    #: User/kernel mode switch per syscall.
    syscall_ns: int = 350
    #: File abstraction work per syscall (fd lookup, inode locking, ...).
    vfs_op_ns: int = 250
    #: Per-index-lookup cost (B-tree/radix descent) per touched block.
    index_lookup_ns: int = 60
    #: Generic block layer + driver cost per block I/O request.
    block_layer_ns: int = 2_000
    #: Page-cache lookup/insert cost per page.
    page_cache_op_ns: int = 120

    # --- derived ---------------------------------------------------------

    @property
    def nvmm_writer_slots(self):
        """The paper's ``N_w``: concurrent NVMM writers the bandwidth allows.

        A single writer streams one cacheline per ``L_nvmm``, i.e.
        ``64 B / L`` bytes per second; the configured bandwidth divided by
        that per-writer rate gives the slot count.

        Each *resource domain* gets its own ``N_w``-slot pool: a sharded
        mount over M devices constructed with distinct ``domain`` names
        owns M independent pools (aggregate bandwidth scales with device
        count), while devices sharing the default domain share one pool
        as before.
        """
        per_writer_bps = CACHELINE_SIZE * 1e9 / self.nvmm_write_latency_ns
        slots = round(self.nvmm_write_bandwidth_bps / per_writer_bps)
        return max(1, slots)

    # --- cost helpers ----------------------------------------------------

    def load_cost_ns(self, nbytes):
        """Cost of loading ``nbytes`` from DRAM *or* NVMM (paper: equal)."""
        if nbytes <= 0:
            return 0
        return self.dram_access_ns + int(nbytes / self.dram_bandwidth_bpns)

    def dram_store_cost_ns(self, nbytes):
        """Cost of storing ``nbytes`` to DRAM (or into the CPU cache)."""
        if nbytes <= 0:
            return 0
        return self.dram_access_ns + int(nbytes / self.dram_bandwidth_bpns)

    def nvmm_persist_cost_ns(self, nlines):
        """Occupancy of one writer slot while persisting ``nlines`` lines."""
        if nlines <= 0:
            return 0
        return nlines * self.nvmm_write_latency_ns

    def replace(self, **kwargs):
        """A copy of the config with some knobs overridden (for sweeps)."""
        return dataclasses.replace(self, **kwargs)

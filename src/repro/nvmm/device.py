"""Timed NVMM and DRAM devices.

These combine the real data plane (:mod:`repro.mem`) with the cost model
(:mod:`repro.nvmm.config`).  Every access takes the :class:`ExecContext`
of the simulated thread performing it and charges that thread's clock,
tagged with a breakdown category so Figure 1 / Figure 12 can be rebuilt
from the stats.
"""

from repro.engine.stats import CAT_OTHERS, CAT_READ_ACCESS, CAT_WRITE_ACCESS
from repro.faults.policy import RetryPolicy
from repro.fs.errors import MediaError
from repro.mem.cpucache import CachedPersistentRegion
from repro.mem.region import MemoryRegion
from repro.nvmm.config import CACHELINE_SIZE, lines_spanned
from repro.obs.trace import LAYER_NVMM

NVMM_WRITE_RESOURCE = "nvmm_write_slots"


class NVMMDevice:
    """Byte-addressable NVMM with slow, bandwidth-capped writes.

    Three store paths mirror the hardware:

    - :meth:`write_persistent` -- non-temporal store; pays the NVMM write
      latency per cacheline while holding a writer slot (PMFS data path,
      HiNFS writeback path).
    - :meth:`write_cached` -- ordinary store into the CPU cache; cheap and
      volatile until :meth:`clflush` (journal entries before their flush).
    - :meth:`clflush` + :meth:`fence` -- flush dirty lines, paying NVMM
      write cost for each, then order.
    """

    def __init__(self, env, config, size, domain=None):
        self.env = env
        self.config = config
        #: Resource-domain name for multi-device (sharded) stacks.  None
        #: keeps the historical behaviour: every device in the env shares
        #: one ``nvmm_write_slots`` pool.  A named domain gives this
        #: device its *own* writer-slot FCFS pool plus per-domain slot
        #: grant counters, so independent devices never queue behind each
        #: other's media.
        self.domain = domain
        self.mem = CachedPersistentRegion(size)
        #: Optional :class:`~repro.faults.media.MediaFaultModel`; when
        #: attached, reads and persists of registered lines fail with
        #: :class:`~repro.fs.errors.MediaError` (EIO).
        self.fault_model = None
        #: Transient-persist retry schedule.  Jitter stays off here so the
        #: charged backoff is exactly ``media_retry_backoff_ns * 2**(n-1)``
        #: and identical across devices; layers that want jitter or a
        #: breaker (writeback, ring) construct their own policies.
        self.retry_policy = RetryPolicy(
            max_retries=config.media_retry_limit,
            base_backoff_ns=config.media_retry_backoff_ns,
            multiplier=2.0, jitter_frac=0.0,
        )
        if domain is None:
            slot_name = NVMM_WRITE_RESOURCE
        else:
            slot_name = "%s@%s" % (NVMM_WRITE_RESOURCE, domain)
        if env.has_resource(slot_name):
            self.write_slots = env.resource(slot_name)
        else:
            self.write_slots = env.add_resource(
                slot_name, config.nvmm_writer_slots
            )

    @property
    def size(self):
        return self.mem.size

    def attach_faults(self, fault_model):
        """Install a media-fault model; returns it for chaining."""
        self.fault_model = fault_model.bind(self.env)
        return fault_model

    # -- fault guards ------------------------------------------------------

    def _trace_fault(self, ctx, kind, lines):
        """Drop a zero-duration marker span onto the trace spine.

        Zero duration keeps the exported per-layer sums equal to the
        ``SimStats`` totals (the spine's core invariant) while still
        making fault sites visible in `hinfs-bench trace`.

        Guards first -- tracing off, or the ``nvmm`` layer filtered out
        of the ring -- so the fault path shares the instrumentation
        point's disabled fast path: no span allocation, no ring traffic.
        """
        ring = self.env.trace
        if ring is None or not ring.wants(LAYER_NVMM):
            return
        now = ctx.now if ctx is not None else 0
        req = getattr(ctx, "trace_span", None)
        sp = ring.begin(
            "media_error:%s" % kind,
            getattr(ctx, "name", "device"), now,
            req_id=req.req_id if req is not None else 0,
            layer=LAYER_NVMM,
            meta={"lines": sorted(lines)},
        )
        sp.close(now)
        ring.record(sp)

    def _guard_read(self, addr, length, ctx=None):
        if self.fault_model is None:
            return
        bad = self.fault_model.failing_read_lines(addr, length)
        if bad:
            self._trace_fault(ctx, "read", bad)
            raise MediaError(
                "uncorrectable NVMM read error at lines %s" % (bad,),
                addr=addr, length=length, lines=bad,
            )

    def _guard_persist(self, ctx, addr, length):
        """Fail, or retry-with-backoff, persists touching faulty lines.

        Transient faults are retried under :class:`RetryPolicy` (budget
        ``media_retry_limit``, exponential backoff charged in virtual
        time); lines still failing afterwards are marked permanently bad
        and the persist raises :class:`MediaError`.  Permanent faults
        raise immediately.  Runs *before* the data plane mutates, so a
        failed persist leaves nothing durable.
        """
        model = self.fault_model
        if model is None:
            return
        policy = self.retry_policy
        attempt = 0
        while True:
            permanent, transient = model.probe_persist(addr, length)
            if permanent:
                self._trace_fault(ctx, "persist", permanent)
                raise MediaError(
                    "NVMM persist failed on bad lines %s" % (permanent,),
                    addr=addr, length=length, lines=permanent,
                )
            if not transient:
                if attempt:
                    policy.record_success()
                return
            attempt += 1
            if not policy.allows(attempt):
                for line in transient:
                    model.mark_bad(line)
                policy.record_failure(ctx.now if ctx is not None else 0)
                self._trace_fault(ctx, "retries_exhausted", transient)
                raise MediaError(
                    "NVMM persist retries exhausted; lines %s marked bad"
                    % (transient,),
                    addr=addr, length=length, lines=transient,
                )
            model.note_retry()
            policy.note_retry()
            self.env.stats.bump("media_persist_retries")
            if ctx is not None:
                ctx.charge(policy.backoff_ns(attempt), CAT_WRITE_ACCESS)

    # -- loads ------------------------------------------------------------

    def read(self, ctx, addr, length, category=CAT_READ_ACCESS):
        """Load bytes; NVMM reads cost the same as DRAM reads."""
        # getattr: recovery/mkfs contexts (_FreeContext) carry no span.
        span = getattr(ctx, "trace_span", None)
        start = ctx.now if span is not None else 0
        ctx.charge(self.config.load_cost_ns(length), category)
        self._guard_read(addr, length, ctx)
        data = self.mem.read(addr, length)
        self.env.stats.bytes_read_nvmm += length
        if span is not None:
            span.add_phase(LAYER_NVMM, start, ctx.now)
        return data

    def read_media(self, addr, length):
        """Fault-checked, untimed load (recovery scans: the data plane
        must still observe bad lines, but mount setup is not charged)."""
        self._guard_read(addr, length)
        return self.mem.read(addr, length)

    # -- stores -----------------------------------------------------------

    def _persist_lines(self, ctx, nlines, category):
        """Occupy a writer slot for ``nlines`` cacheline persists.

        Contexts marked ``free`` (mkfs, recovery setup) neither pay nor
        pollute the shared slot timeline.
        """
        if nlines <= 0 or getattr(ctx, "free", False):
            return
        duration = self.config.nvmm_persist_cost_ns(nlines)
        grant = self.write_slots.reserve(ctx.now, duration)
        self._note_slot_grant()
        ctx.sync_to(grant.end_ns, category)

    def _note_slot_grant(self):
        """Per-domain slot-grant ledger for sharded stacks.

        Single-device stacks (domain None) skip it entirely so their
        counter dicts -- and the golden-seed fingerprints pinned on them
        -- stay byte-identical."""
        if self.domain is not None:
            self.env.stats.bump("nvmm_slot_grants@%s" % self.domain)
            self.env.stats.bump("nvmm_slot_grants_total")

    def write_persistent(self, ctx, addr, data, category=CAT_WRITE_ACCESS):
        """Non-temporal store: durable on return, pays full NVMM cost.

        ``data`` may be any bytes-like object; the slab consumes it via
        the buffer protocol without an intermediate copy."""
        length = len(data)
        span = getattr(ctx, "trace_span", None)
        start = ctx.now if span is not None else 0
        self._guard_persist(ctx, addr, length)
        self.mem.write_nocache(addr, data)
        nlines = lines_spanned(length, addr % CACHELINE_SIZE)
        self._persist_lines(ctx, nlines, category)
        if not getattr(ctx, "free", False):
            self.env.stats.bytes_written_nvmm += length
        if span is not None:
            span.add_phase(LAYER_NVMM, start, ctx.now)

    def write_persistent_async(self, ctx, addr, data, category=CAT_WRITE_ACCESS):
        """Book a persistent store without waiting for it.

        Reserves writer-slot time starting at ``ctx.now`` and returns the
        completion timestamp instead of advancing the clock, so a caller
        flushing many blocks can overlap them across the ``N_w`` slots --
        the paper's HiNFS runs *multiple* writeback threads (Section 3.2)
        and this is their aggregate effect.  The caller must
        ``ctx.sync_to(max(end))`` before acting on the data's durability.
        """
        length = len(data)
        self._guard_persist(ctx, addr, length)
        self.mem.write_nocache(addr, data)
        if getattr(ctx, "free", False):
            return ctx.now
        nlines = lines_spanned(length, addr % CACHELINE_SIZE)
        if nlines <= 0:
            return ctx.now
        duration = self.config.nvmm_persist_cost_ns(nlines)
        grant = self.write_slots.reserve(ctx.now, duration)
        self._note_slot_grant()
        self.env.stats.bytes_written_nvmm += length
        return grant.end_ns

    def write_cached(self, ctx, addr, data, category=CAT_OTHERS):
        """Ordinary store: lands in the CPU cache, volatile until flushed."""
        self.mem.write(addr, data)
        ctx.charge(self.config.dram_store_cost_ns(len(data)), category)

    def clflush(self, ctx, addr, length, category=CAT_WRITE_ACCESS):
        """Flush the lines covering the range; pays NVMM cost per dirty line."""
        span = getattr(ctx, "trace_span", None)
        start = ctx.now if span is not None else 0
        self._guard_persist(ctx, addr, length)
        flushed = self.mem.clflush(addr, length)
        self._persist_lines(ctx, flushed, category)
        if not getattr(ctx, "free", False):
            self.env.stats.bytes_written_nvmm += flushed * CACHELINE_SIZE
        if span is not None:
            span.add_phase(LAYER_NVMM, start, ctx.now)
        return flushed

    def fence(self, ctx, category=CAT_OTHERS):
        """mfence: an ordering point."""
        ctx.charge(self.config.fence_ns, category)
        self.mem.fence()

    # -- crash ------------------------------------------------------------

    def crash(self, evict_lines=()):
        """Drop volatile lines (power failure); see CachedPersistentRegion."""
        self.mem.crash(evict_lines)

    def flush_all(self, ctx=None, category=CAT_WRITE_ACCESS):
        """Flush the whole cache (unmount); charged if a context is given."""
        if self.fault_model is not None:
            for line in self.mem.dirty_line_indices():
                self._guard_persist(ctx, line * CACHELINE_SIZE, CACHELINE_SIZE)
        flushed = self.mem.flush_all()
        if ctx is not None:
            self._persist_lines(ctx, flushed, category)
        return flushed


class DRAMDevice:
    """Plain DRAM: fast, volatile, uncapped in concurrency.

    Backs HiNFS's write buffer and the page cache of the block-based file
    systems.  Contents do not survive :meth:`crash`.
    """

    def __init__(self, env, config, size):
        self.env = env
        self.config = config
        self.mem = MemoryRegion(size)

    @property
    def size(self):
        return self.mem.size

    def read(self, ctx, addr, length, category=CAT_READ_ACCESS):
        data = self.mem.read(addr, length)
        ctx.charge(self.config.load_cost_ns(length), category)
        return data

    def write(self, ctx, addr, data, category=CAT_WRITE_ACCESS):
        length = len(data)
        self.mem.write(addr, data)
        ctx.charge(self.config.dram_store_cost_ns(length), category)
        self.env.stats.bytes_written_dram += length

    def crash(self):
        """DRAM loses everything on power failure."""
        self.mem.fill(0, self.mem.size, 0)

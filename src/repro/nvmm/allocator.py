"""Bitmap block allocator shared by every storage substrate."""


class OutOfSpaceError(Exception):
    """Raised when an allocation cannot be satisfied."""


class BlockAllocator:
    """First-fit bitmap allocator over a fixed population of blocks.

    Used for NVMM data blocks (PMFS/HiNFS), DRAM buffer blocks (HiNFS),
    and extfs block groups.  Keeps a rotating cursor so sequential
    allocations tend to be contiguous, which matters for the extent-ish
    behaviour of the block-based file systems.
    """

    def __init__(self, num_blocks, first_block=0):
        if num_blocks <= 0:
            raise ValueError("allocator needs at least one block")
        self.num_blocks = int(num_blocks)
        self.first_block = int(first_block)
        self._free = set(range(first_block, first_block + num_blocks))
        self._cursor = first_block
        #: Blocks pulled from circulation because their media went bad
        #: (the scrubber's badblocks list).  Quarantined blocks count as
        #: allocated and are never handed out again.
        self.quarantined = set()

    @property
    def free_count(self):
        return len(self._free)

    @property
    def used_count(self):
        return self.num_blocks - len(self._free)

    def is_allocated(self, block):
        self._check(block)
        return block not in self._free

    def _check(self, block):
        if not self.first_block <= block < self.first_block + self.num_blocks:
            raise ValueError("block %d outside allocator range" % block)

    def alloc(self):
        """Allocate one block, scanning forward from the rotating cursor."""
        if not self._free:
            raise OutOfSpaceError("no free blocks")
        limit = self.first_block + self.num_blocks
        for candidate in range(self._cursor, limit):
            if candidate in self._free:
                return self._take(candidate)
        for candidate in range(self.first_block, self._cursor):
            if candidate in self._free:
                return self._take(candidate)
        raise OutOfSpaceError("no free blocks")  # pragma: no cover

    def _take(self, block):
        self._free.remove(block)
        self._cursor = block + 1
        if self._cursor >= self.first_block + self.num_blocks:
            self._cursor = self.first_block
        return block

    def alloc_many(self, count):
        """Allocate ``count`` blocks (not necessarily contiguous)."""
        if count > len(self._free):
            raise OutOfSpaceError(
                "asked for %d blocks, only %d free" % (count, len(self._free))
            )
        return [self.alloc() for _ in range(count)]

    def free(self, block):
        self._check(block)
        if block in self._free:
            raise ValueError("double free of block %d" % block)
        if block in self.quarantined:
            return
        self._free.add(block)

    def free_many(self, blocks):
        for block in blocks:
            self.free(block)

    def mark_allocated(self, block):
        """Claim a specific block (used when rebuilding state at recovery)."""
        self._check(block)
        self._free.discard(block)

    def quarantine(self, block):
        """Pull ``block`` out of circulation permanently (bad media).

        Works on both free and allocated blocks; a later :meth:`free` of
        a quarantined block is a silent no-op instead of returning it to
        the pool.
        """
        self._check(block)
        self._free.discard(block)
        self.quarantined.add(block)

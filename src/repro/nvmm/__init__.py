"""NVMM and DRAM device models.

Implements the paper's emulation model (Section 5.1) in virtual time:

- NVMM stores cost the configured write latency per flushed cacheline
  (the paper injects the delay after each ``clflush``); 200 ns default.
- NVMM write *bandwidth* is modelled as ``N_w`` concurrent writer slots
  (``N_w = B_nvmm / (1 / L_nvmm)``, the paper's formula); a writer queues
  when all slots are busy.  1 GB/s default.
- NVMM loads cost the same as DRAM loads (the paper's read assumption).
- DRAM copies run at 8x the NVMM write bandwidth (the paper's ratio).
"""

from repro.nvmm.allocator import BlockAllocator, OutOfSpaceError
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import DRAMDevice, NVMMDevice

__all__ = [
    "BlockAllocator",
    "DRAMDevice",
    "NVMMConfig",
    "NVMMDevice",
    "OutOfSpaceError",
]

"""Command-line entry point: regenerate the paper's figures.

Examples::

    hinfs-bench --list
    hinfs-bench fig7
    hinfs-bench fig9 fig12 --scale medium
    hinfs-bench all --no-check
    hinfs-bench fig7 --json BENCH_fig07.json
    hinfs-bench tenants --json BENCH_tenants.json
    hinfs-bench shard --json BENCH_shard.json
    hinfs-bench crashcheck --fs all --seed 7 --samples 64
    hinfs-bench trace --fs hinfs --workload fileserver -o trace.json
"""

import argparse
import json
import sys

from repro.bench.experiments.common import SCALES
from repro.bench.registry import EXPERIMENTS, run_experiment


def crashcheck_main(argv):
    """``crashcheck``: enumerate crash states and verify the invariants."""
    from repro.faults.crashpoints import run_crashcheck

    parser = argparse.ArgumentParser(
        prog="hinfs-bench crashcheck",
        description="Explore every flush/fence crash state of a mixed "
        "operation sequence (plus sampled uncontrolled-eviction states) "
        "and verify recovery invariants.",
    )
    parser.add_argument("--fs", choices=["pmfs", "hinfs", "all"],
                        default="all", help="file system(s) to explore")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for eviction-subset sampling")
    parser.add_argument("--samples", type=int, default=64,
                        help="eviction subsets sampled per operation")
    args = parser.parse_args(argv)

    kinds = ["pmfs", "hinfs"] if args.fs == "all" else [args.fs]
    failures = 0
    for report in run_crashcheck(kinds, seed=args.seed,
                                 eviction_samples_per_op=args.samples):
        print(report.summary())
        for violation in report.failures:
            print("  %s" % violation, file=sys.stderr)
        failures += len(report.failures)
    if failures:
        print("crashcheck: %d invariant violation(s)" % failures,
              file=sys.stderr)
        return 1
    print("crashcheck: all crash states recovered consistently")
    return 0


def trace_main(argv):
    """``trace``: run one workload with the trace spine on and export the
    per-request spans as Chrome trace-event JSON."""
    from repro.bench.experiments.common import SCALES, personality_kwargs
    from repro.bench.runner import FS_NAMES, run_workload
    from repro.obs.trace import chrome_trace, layer_duration_sums
    from repro.workloads.filebench import (
        Fileserver, Varmail, Webproxy, Webserver,
    )

    personalities = {
        "fileserver": Fileserver,
        "webserver": Webserver,
        "webproxy": Webproxy,
        "varmail": Varmail,
    }
    parser = argparse.ArgumentParser(
        prog="hinfs-bench trace",
        description="Run a filebench personality with per-request tracing "
        "and write a Chrome trace-event JSON file (load it in "
        "chrome://tracing or Perfetto).",
    )
    parser.add_argument("--fs", choices=FS_NAMES, default="hinfs",
                        help="file system to run (default: hinfs)")
    parser.add_argument("--workload", choices=sorted(personalities),
                        default="fileserver",
                        help="filebench personality (default: fileserver)")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="scale preset (default: small)")
    parser.add_argument("--capacity", type=int, default=65536,
                        help="trace ring capacity in spans (default: 65536)")
    parser.add_argument("-o", "--output", default="trace.json",
                        help="output path (default: trace.json)")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    cls = personalities[args.workload]
    workload = cls(threads=scale.threads, duration_ops=100_000,
                   **personality_kwargs(scale, args.workload))
    result = run_workload(
        args.fs, workload,
        device_size=scale.device_size,
        duration_ns=scale.duration_ns,
        hinfs_config=scale.hinfs_config(),
        cache_pages=scale.cache_pages,
        trace_capacity=args.capacity,
    )
    ring = result.trace
    doc = chrome_trace(ring.spans())
    with open(args.output, "w") as fileobj:
        json.dump(doc, fileobj, indent=1)
    print("%s/%s: %d ops, %d spans recorded (%d dropped) -> %s"
          % (result.fs_name, result.workload_name, result.ops,
             ring.recorded, ring.dropped, args.output))
    sums = layer_duration_sums(doc["traceEvents"])
    for layer in sorted(set(sums) | set(result.stats.layer_time_ns)):
        trace_ns = sums.get(layer, 0)
        stats_ns = result.stats.layer_time_ns.get(layer, 0)
        marker = "ok" if trace_ns == stats_ns else "MISMATCH"
        print("  %-10s trace %12d ns   stats %12d ns   %s"
              % (layer, trace_ns, stats_ns, marker))
    if ring.dropped:
        print("  (ring evicted %d spans; totals above still cover the "
              "whole run because stats are fed at span close)"
              % ring.dropped)
    return 0


def simspeed_main(argv):
    """``simspeed``: wall-clock engine self-benchmark with optional
    cProfile capture and a perf-regression gate against a baseline."""
    from repro.bench.experiments import simspeed

    parser = argparse.ArgumentParser(
        prog="hinfs-bench simspeed",
        description="Measure wall-clock simulation speed (sim-ops/sec) "
        "per stack for write/mixed/ring workloads; optionally profile "
        "the run or gate against a recorded baseline.",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="scale preset (default: small)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="wall-clock repeats per cell, best kept "
                        "(default: 2)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="dump the raw measurements as JSON "
                        "(CI archives this as BENCH_simspeed.json)")
    parser.add_argument("--profile", nargs="?", const="simspeed.pstats",
                        default=None, metavar="PATH",
                        help="wrap the run in cProfile; writes a pstats "
                        "dump to PATH (default: simspeed.pstats) and "
                        "prints the top-20 cumulative functions")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="gate against a previously recorded "
                        "BENCH_simspeed.json: fail if the headline "
                        "mixed-workload sim-ops/sec regresses")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional drop below the baseline "
                        "headline before the gate fails (default: 0.30)")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    # Load the baseline *before* the run so ``--json`` and ``--baseline``
    # may name the same file (gate against the old numbers, then refresh).
    baseline = None
    if args.baseline is not None:
        with open(args.baseline) as fileobj:
            baseline = json.load(fileobj)
    profiler = None
    if args.profile is not None:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    tables, data = simspeed.run(scale=scale, repeats=args.repeats)
    if profiler is not None:
        profiler.disable()
    simspeed.check_shape(data)
    for table in tables:
        print(table)
        print()
    if profiler is not None:
        import pstats
        profiler.dump_stats(args.profile)
        print("wrote profile %s" % args.profile)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(20)
    if args.json is not None:
        with open(args.json, "w") as fileobj:
            json.dump(data, fileobj, indent=1, sort_keys=True)
        print("wrote %s" % args.json)
    if baseline is not None:
        # Prefer the interpreter-normalized headline (machine-portable);
        # fall back to the raw rate for baselines predating calibration.
        if baseline.get("headline_mixed_normalized"):
            metric = "headline_mixed_normalized"
            unit = "sim-ops/cal-unit"
        else:
            metric = "headline_mixed_ops_per_sec"
            unit = "sim-ops/s"
        base = baseline.get(metric, 0.0)
        now = data[metric]
        floor = base * (1.0 - args.max_regression)
        verdict = "ok" if now >= floor else "REGRESSION"
        print("simspeed gate: mixed %.4f %s vs baseline %.4f "
              "(floor %.4f at -%d%%): %s"
              % (now, unit, base, floor, round(args.max_regression * 100),
                 verdict))
        if now < floor:
            print("simspeed gate FAILED: headline mixed-workload rate "
                  "dropped more than %.0f%% below the checked-in baseline"
                  % (args.max_regression * 100), file=sys.stderr)
            return 1
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "crashcheck":
        return crashcheck_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "simspeed":
        return simspeed_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="hinfs-bench",
        description="Regenerate the HiNFS paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="figure ids (e.g. fig7), or 'all'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="experiment scale preset (default: small)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the shape assertions")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump the experiments' raw data as JSON "
                        "(used by CI to archive the fig7 baseline)")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in sorted(EXPERIMENTS.items(),
                                   key=lambda kv: (len(kv[0]), kv[0])):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print("%-6s  %s" % (name, doc))
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    scale = SCALES[args.scale]
    failures = 0
    collected = {}
    for name in names:
        if name not in EXPERIMENTS:
            print("unknown experiment %r (try --list)" % name, file=sys.stderr)
            return 2
        print("== %s (scale=%s) ==" % (name, scale.name))
        try:
            tables, data = run_experiment(name, scale=scale,
                                          check=not args.no_check)
        except AssertionError as exc:
            print("SHAPE CHECK FAILED: %s" % exc, file=sys.stderr)
            failures += 1
            continue
        collected[name] = data
        for table in tables:
            print(table)
            print()
    if args.json is not None:
        with open(args.json, "w") as fileobj:
            json.dump({"scale": scale.name, "experiments": collected},
                      fileobj, indent=1, sort_keys=True, default=repr)
        print("wrote %s" % args.json)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate the paper's figures.

Examples::

    hinfs-bench --list
    hinfs-bench fig7
    hinfs-bench fig9 fig12 --scale medium
    hinfs-bench all --no-check
    hinfs-bench crashcheck --fs all --seed 7 --samples 64
"""

import argparse
import sys

from repro.bench.experiments.common import SCALES
from repro.bench.registry import EXPERIMENTS, run_experiment


def crashcheck_main(argv):
    """``crashcheck``: enumerate crash states and verify the invariants."""
    from repro.faults.crashpoints import run_crashcheck

    parser = argparse.ArgumentParser(
        prog="hinfs-bench crashcheck",
        description="Explore every flush/fence crash state of a mixed "
        "operation sequence (plus sampled uncontrolled-eviction states) "
        "and verify recovery invariants.",
    )
    parser.add_argument("--fs", choices=["pmfs", "hinfs", "all"],
                        default="all", help="file system(s) to explore")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for eviction-subset sampling")
    parser.add_argument("--samples", type=int, default=64,
                        help="eviction subsets sampled per operation")
    args = parser.parse_args(argv)

    kinds = ["pmfs", "hinfs"] if args.fs == "all" else [args.fs]
    failures = 0
    for report in run_crashcheck(kinds, seed=args.seed,
                                 eviction_samples_per_op=args.samples):
        print(report.summary())
        for violation in report.failures:
            print("  %s" % violation, file=sys.stderr)
        failures += len(report.failures)
    if failures:
        print("crashcheck: %d invariant violation(s)" % failures,
              file=sys.stderr)
        return 1
    print("crashcheck: all crash states recovered consistently")
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "crashcheck":
        return crashcheck_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="hinfs-bench",
        description="Regenerate the HiNFS paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="figure ids (e.g. fig7), or 'all'")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small",
                        help="experiment scale preset (default: small)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--no-check", action="store_true",
                        help="skip the shape assertions")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, module in sorted(EXPERIMENTS.items(),
                                   key=lambda kv: (len(kv[0]), kv[0])):
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print("%-6s  %s" % (name, doc))
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    scale = SCALES[args.scale]
    failures = 0
    for name in names:
        if name not in EXPERIMENTS:
            print("unknown experiment %r (try --list)" % name, file=sys.stderr)
            return 2
        print("== %s (scale=%s) ==" % (name, scale.name))
        try:
            tables, _ = run_experiment(name, scale=scale,
                                       check=not args.no_check)
        except AssertionError as exc:
            print("SHAPE CHECK FAILED: %s" % exc, file=sys.stderr)
            failures += 1
            continue
        for table in tables:
            print(table)
            print()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

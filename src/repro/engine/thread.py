"""Simulated foreground threads.

A :class:`SimThread` wraps a Python generator (the workload body).  The
generator performs exactly one logical operation -- typically one syscall
or one workload transaction -- per ``yield``, charging its cost to the
thread's :class:`~repro.engine.context.ExecContext`.  The scheduler
interleaves threads by always resuming the one with the smallest virtual
clock, which is the conservative-time analogue of the kernel running the
least-advanced runnable thread.
"""

from repro.engine.context import ExecContext


class SimThread:
    """One simulated workload thread."""

    def __init__(self, env, name, body, record_latencies=False):
        """``body`` is a callable taking the thread's context and returning
        a generator that yields once per completed operation.  With
        ``record_latencies`` every step's virtual duration is appended to
        :attr:`op_latencies_ns` (exact per-op latency samples for
        percentile reporting); off by default, so the hot path pays one
        ``is None`` check and nothing else.
        """
        self.env = env
        self.name = name
        self.ctx = ExecContext(env, name)
        self._gen = body(self.ctx)
        self.finished = False
        self.ops = 0
        #: Per-operation virtual latencies (ns, one per completed step)
        #: when sampling is enabled, else None.
        self.op_latencies_ns = [] if record_latencies else None

    @property
    def now(self):
        return self.ctx.now

    def step(self):
        """Run one operation; returns False when the thread is done."""
        if self.finished:
            return False
        samples = self.op_latencies_ns
        if samples is not None:
            start_ns = self.ctx.clock.now
            try:
                next(self._gen)
            except StopIteration:
                self.finished = True
                return False
            samples.append(self.ctx.clock.now - start_ns)
            self.ops += 1
            return True
        try:
            next(self._gen)
            self.ops += 1
            return True
        except StopIteration:
            self.finished = True
            return False

    def __repr__(self):
        return "SimThread(name=%r, now=%d, ops=%d, finished=%s)" % (
            self.name,
            self.ctx.now,
            self.ops,
            self.finished,
        )

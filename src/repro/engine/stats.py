"""Counters and time breakdowns collected during a simulation run.

Two of the paper's figures are pure accounting artifacts:

- Figure 1 breaks PMFS run time into *Read Access*, *Write Access*, and
  *Others*; :class:`TimeBreakdown` accumulates exactly those categories.
- Figure 12 breaks trace-replay time into per-syscall buckets (read,
  write, unlink, fsync); the VFS layer records those through
  :meth:`SimStats.add_syscall_time`.
"""

from collections import defaultdict

from repro.engine.clock import format_ns

# Canonical breakdown categories used by Figure 1.
CAT_READ_ACCESS = "read_access"
CAT_WRITE_ACCESS = "write_access"
CAT_OTHERS = "others"


# -- exact percentiles and fairness metrics -----------------------------------


def percentile(samples, p):
    """Exact nearest-rank percentile of ``samples``.

    Deterministic and interpolation-free: the value at 1-based rank
    ``ceil(p/100 * n)`` of the sorted samples (the classic nearest-rank
    definition), so the result is always an element of ``samples`` and
    identical across platforms for identical inputs.  ``p`` in (0, 100];
    ``p=100`` is the maximum.  Raises ``ValueError`` on empty input.
    """
    return percentiles(samples, (p,))[p]


def percentiles(samples, ps=(50, 99, 99.9)):
    """``{p: nearest-rank value}`` for each ``p`` over one sort.

    The shared helper behind every latency report (tail-latency SLOs,
    fig11, the scale experiment): one deterministic definition instead
    of per-experiment ad-hoc math.
    """
    if not samples:
        raise ValueError("percentiles of empty sample set")
    ordered = sorted(samples)
    n = len(ordered)
    out = {}
    for p in ps:
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100], got %r" % (p,))
        # Scale float ps (99.9, 99.99) to thousandths so the ceil stays
        # pure integer math: rank = ceil(p * n / 100).
        rank = -((-int(round(p * 1000)) * n) // 100_000)
        out[p] = ordered[max(1, rank) - 1]
    return out


def fairness_spread(values):
    """max/min ratio over per-tenant allocations (1.0 = perfectly fair).

    ``inf`` when any tenant got nothing while another got something;
    1.0 for the empty or all-zero set (nobody is ahead of anybody).
    """
    values = list(values)
    if not values:
        return 1.0
    hi, lo = max(values), min(values)
    if hi == 0:
        return 1.0
    if lo == 0:
        return float("inf")
    return hi / lo


def jain_index(values):
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1].

    1.0 when every tenant received the same amount; ``1/n`` when one
    tenant received everything.
    """
    values = list(values)
    n = len(values)
    if n == 0:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (n * squares)


class TimeBreakdown:
    """Accumulates nanoseconds per category."""

    def __init__(self):
        self._ns = defaultdict(int)

    def add(self, category, ns):
        if ns:
            self._ns[category] += int(ns)

    def get(self, category):
        return self._ns.get(category, 0)

    def total(self):
        return sum(self._ns.values())

    def fractions(self):
        """Return ``{category: fraction_of_total}`` (empty if no time)."""
        total = self.total()
        if total == 0:
            return {}
        return {cat: ns / total for cat, ns in self._ns.items()}

    def as_dict(self):
        return dict(self._ns)

    def merge(self, other):
        for cat, ns in other.as_dict().items():
            self._ns[cat] += ns

    def __repr__(self):
        parts = ", ".join(
            "%s=%s" % (cat, format_ns(ns)) for cat, ns in sorted(self._ns.items())
        )
        return "TimeBreakdown(%s)" % parts


class SimStats:
    """All statistics gathered during one simulation run."""

    def __init__(self):
        self.counters = defaultdict(int)
        self.bytes_written_nvmm = 0
        self.bytes_read_nvmm = 0
        self.bytes_written_dram = 0
        self.breakdown = TimeBreakdown()
        self.syscall_time_ns = defaultdict(int)
        self.syscall_counts = defaultdict(int)
        #: Nanoseconds per pipeline layer (vfs/fs/writeback/nvmm), fed by
        #: the trace spine's single instrumentation point at span close.
        self.layer_time_ns = defaultdict(int)
        self.ops_completed = 0

    # -- counters -------------------------------------------------------

    def bump(self, name, amount=1):
        self.counters[name] += amount

    def count(self, name):
        return self.counters.get(name, 0)

    # -- time accounting --------------------------------------------------

    def add_time(self, category, ns):
        self.breakdown.add(category, ns)

    def add_syscall_time(self, syscall, ns):
        self.syscall_time_ns[syscall] += int(ns)
        self.syscall_counts[syscall] += 1

    def add_layer_time(self, layer, ns):
        if ns:
            self.layer_time_ns[layer] += int(ns)

    # -- reporting ------------------------------------------------------

    def throughput_ops_per_sec(self, elapsed_ns):
        if elapsed_ns <= 0:
            return 0.0
        return self.ops_completed * 1e9 / elapsed_ns

    def summary(self):
        """A plain-dict snapshot suitable for printing or asserting on."""
        return {
            "ops_completed": self.ops_completed,
            "bytes_written_nvmm": self.bytes_written_nvmm,
            "bytes_read_nvmm": self.bytes_read_nvmm,
            "bytes_written_dram": self.bytes_written_dram,
            "breakdown": self.breakdown.as_dict(),
            "syscall_time_ns": dict(self.syscall_time_ns),
            "syscall_counts": dict(self.syscall_counts),
            "layer_time_ns": dict(self.layer_time_ns),
            "counters": dict(self.counters),
        }

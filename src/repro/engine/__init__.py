"""Discrete-event simulation engine underlying the HiNFS reproduction.

The paper evaluates HiNFS on real hardware with a software NVMM emulator
(DRAM plus an injected per-``clflush`` delay, and a writer-concurrency cap
for bandwidth).  This package provides the virtual-time equivalent:

- :mod:`repro.engine.clock` -- virtual nanosecond clocks.
- :mod:`repro.engine.context` -- execution contexts that charge simulated
  time to the simulated thread performing an operation.
- :mod:`repro.engine.resources` -- FCFS multi-server timed resources used
  to model the NVMM write-bandwidth cap (the paper's ``N_w`` writer slots).
- :mod:`repro.engine.thread` / :mod:`repro.engine.scheduler` -- simulated
  foreground threads and a min-clock-first scheduler.
- :mod:`repro.engine.background` -- lazily-advanced background timelines
  (HiNFS's writeback threads live here).
- :mod:`repro.engine.locks` -- virtual-time mutexes and reader/writer
  locks; contended acquisition advances the waiter's clock to the
  release point (per-inode VFS locking is built on these).
- :mod:`repro.engine.stats` -- counters and time breakdowns that feed the
  paper's figures.
"""

from repro.engine.background import BackgroundRegistry, BackgroundTask
from repro.engine.clock import NS_PER_SEC, VirtualClock, format_ns
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.engine.errors import DeadlockError, SimulationError, ThreadDiagnostic
from repro.engine.locks import InodeLockTable, VMutex, VRWLock
from repro.engine.resources import FCFSServers
from repro.engine.scheduler import Scheduler
from repro.engine.stats import SimStats, TimeBreakdown
from repro.engine.thread import SimThread

__all__ = [
    "NS_PER_SEC",
    "BackgroundRegistry",
    "BackgroundTask",
    "DeadlockError",
    "ExecContext",
    "FCFSServers",
    "InodeLockTable",
    "Scheduler",
    "SimEnv",
    "SimStats",
    "SimThread",
    "SimulationError",
    "ThreadDiagnostic",
    "TimeBreakdown",
    "VMutex",
    "VRWLock",
    "VirtualClock",
    "format_ns",
]

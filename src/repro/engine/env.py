"""Simulation environment: the bag of shared state for one run.

A :class:`SimEnv` owns the statistics sink, the background-task registry,
and any named timed resources (the NVMM device registers its writer-slot
pool here).  Devices, file systems, workloads, and the scheduler all hang
off one environment, so constructing a fresh ``SimEnv`` gives a fully
isolated, reproducible run.
"""

import itertools

from repro.engine.background import BackgroundRegistry
from repro.engine.errors import SimulationError
from repro.engine.resources import FCFSServers
from repro.engine.stats import SimStats


class SimEnv:
    """Shared state for one simulation run."""

    def __init__(self):
        self.stats = SimStats()
        self.background = BackgroundRegistry()
        self._resources = {}
        #: Monotonic id source for :class:`repro.io.IORequest` objects.
        self._req_ids = itertools.count(1)
        #: Trace spine (:class:`repro.obs.trace.TraceRing`) when tracing
        #: is enabled, else None -- the data path checks this once per
        #: request, so the default costs nothing.
        self.trace = None

    def next_req_id(self):
        """Allocate the next request id (unique within this run)."""
        return next(self._req_ids)

    def enable_tracing(self, capacity=4096, layers=None):
        """Attach a bounded trace ring; returns it.

        Idempotent: a second call with the *same* ``capacity`` and
        ``layers`` returns the existing ring untouched -- spans already
        recorded survive, so two layers can both call this defensively
        without one silently discarding the other's history.  A call
        with a *different* configuration is an explicit reset: the old
        ring (and its spans) is replaced by a fresh one.

        ``layers`` restricts the ring to a subset of span layers --
        spans of other layers skip allocation entirely (the
        disabled-layer fast path).
        """
        from repro.obs.trace import TraceRing

        wanted = frozenset(layers) if layers is not None else None
        ring = self.trace
        if (ring is not None and ring.capacity == capacity
                and ring.enabled_layers == wanted):
            return ring
        self.trace = TraceRing(capacity, layers=layers)
        return self.trace

    def quiesce(self):
        """Rewind timed resources and background timelines to idle t=0.

        Benchmark runners call this between the free pre-allocation
        phase and the measured run (after unmount/drop_caches, so
        nothing holds in-flight state): pre-allocating a fileset larger
        than the DRAM buffer makes the background flushers book NVMM
        writer-slot time at the head of the timeline, and without this
        the measured run starts queued behind its own setup.
        """
        for resource in self._resources.values():
            resource.reset()
        self.background.quiesce()

    def add_resource(self, name, capacity):
        if name in self._resources:
            raise SimulationError("resource %r already registered" % name)
        resource = FCFSServers(capacity, name=name)
        self._resources[name] = resource
        return resource

    def resource(self, name):
        try:
            return self._resources[name]
        except KeyError:
            raise SimulationError("unknown resource %r" % name) from None

    def has_resource(self, name):
        return name in self._resources

    def resources(self):
        """Snapshot of the named-resource table (name -> FCFSServers).

        Benchmarks use this to cross-check per-device slot ledgers
        against the resource pools' own grant counters without poking at
        the private dict."""
        return dict(self._resources)

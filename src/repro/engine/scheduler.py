"""Min-virtual-clock-first scheduler for simulated threads.

The scheduler repeatedly picks the unfinished thread with the smallest
virtual clock, advances all background timelines up to that clock, and
lets the thread execute one operation.  Operations are atomic with
respect to other *foreground* threads (sub-operation interleavings are
approximated by the FCFS timed resources), which is sufficient for the
contention effects the paper reports: NVMM write-bandwidth queueing and
DRAM-buffer pressure.
"""

import heapq
import itertools

from repro.engine.errors import DeadlockError, ThreadDiagnostic
from repro.engine.thread import SimThread


class Scheduler:
    """Runs a set of :class:`SimThread` objects to completion or a deadline."""

    def __init__(self, env):
        self.env = env
        self.threads = []
        self._counter = itertools.count()

    def spawn(self, name, body, record_latencies=False):
        thread = SimThread(self.env, name, body,
                           record_latencies=record_latencies)
        self.threads.append(thread)
        return thread

    def op_latencies_ns(self):
        """All recorded per-op latency samples across threads (those
        spawned with ``record_latencies=True``), in thread order."""
        out = []
        for thread in self.threads:
            if thread.op_latencies_ns:
                out.extend(thread.op_latencies_ns)
        return out

    def run(self, until_ns=None):
        """Interleave threads min-clock-first.

        Stops when every thread finishes, or -- if ``until_ns`` is given --
        when the minimum clock passes the deadline (the filebench-style
        "run for N simulated seconds" mode).  Returns the largest virtual
        time reached by any thread (the elapsed makespan).
        """
        heap = [
            (t.now, next(self._counter), t) for t in self.threads if not t.finished
        ]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        counter = self._counter
        advance_to = self.env.background.advance_to
        batch = []
        while heap:
            now, _, thread = heappop(heap)
            if thread.finished:
                continue
            if until_ns is not None and now >= until_ns:
                # This is the minimum clock: every other thread is at or
                # past the deadline too, so the run is over.
                break
            # Batch wakeups: every thread parked at this same instant
            # steps this round anyway (clocks only move forward, so a
            # step can never re-park *below* ``now``), and heap order
            # within one timestamp is insertion-counter order.  Draining
            # them in one pass preserves that exact order while skipping
            # the sift-down each intermediate pop would redo.
            batch.append(thread)
            while heap and heap[0][0] == now:
                other = heappop(heap)[2]
                if not other.finished:
                    batch.append(other)
            for thread in batch:
                # Per-step, not per-batch: an earlier step in this batch
                # may have made background work due *at* ``now`` (buffer
                # pressure), and that work precedes the next step.  The
                # registry's cached min-due makes the idle case O(1).
                advance_to(thread.now)
                try:
                    stepped = thread.step()
                except DeadlockError as exc:
                    # Enrich with the whole fleet's state: the blocked
                    # thread alone rarely explains a deadlock.
                    raise exc.attach(
                        self.diagnostics(exclude=exc.diagnostics))
                if stepped:
                    heappush(heap, (thread.now, next(counter), thread))
            batch.clear()
        return self.elapsed_ns()

    def diagnostics(self, exclude=()):
        """Per-thread :class:`ThreadDiagnostic` list for deadlock reports."""
        seen = {d.name for d in exclude}
        out = []
        for thread in self.threads:
            if thread.finished or thread.name in seen:
                continue
            out.append(ThreadDiagnostic.of(thread.ctx))
        return out

    def elapsed_ns(self):
        """Makespan across foreground threads (0 if none ran)."""
        if not self.threads:
            return 0
        return max(t.now for t in self.threads)

    def total_ops(self):
        return sum(t.ops for t in self.threads)

"""Lazily-advanced background timelines.

HiNFS runs writeback threads that wake up periodically (every 5 s), on
buffer pressure (fewer than ``Low_f`` free blocks), and to expire blocks
dirty for more than 30 s.  In the reproduction these threads are
*timelines*: objects with their own virtual clock whose due work is
materialised whenever the foreground scheduler's minimum clock passes a
due time, or synchronously when a foreground thread must wait for them
(buffer exhaustion).  That is exactly the paper's semantics -- background
work is off the critical path unless the buffer runs dry.
"""

from repro.engine.context import ExecContext
from repro.engine.errors import DeadlockError, SimulationError, ThreadDiagnostic

#: Returned by :meth:`BackgroundTask.next_due_ns` when the task has no
#: scheduled work.
NEVER = float("inf")


class BackgroundTask:
    """Base class for a background timeline with its own virtual clock."""

    def __init__(self, env, name):
        self.env = env
        self.name = name
        self.ctx = ExecContext(env, name)

    def next_due_ns(self):
        """Earliest virtual time at which this task has work to do."""
        raise NotImplementedError

    def run_due(self, horizon_ns):
        """Perform all work due at or before ``horizon_ns``.

        Implementations must guarantee forward progress: after returning,
        ``next_due_ns()`` must be strictly greater than it was, or
        ``NEVER``.
        """
        raise NotImplementedError

    def quiesce(self):
        """Rewind this timeline to an idle t=0 state.

        Called between a free pre-allocation phase and the measured run,
        after the file system has been unmounted (so the task holds no
        pending work).  Subclasses with their own wakeup state must
        override and also reset that.
        """
        self.ctx.clock.reset()


class BackgroundRegistry:
    """All background timelines attached to a simulation environment.

    ``advance_to`` is called once per scheduler step, so its idle path is
    hot: the registry caches the minimum due time across its tasks and
    returns without touching any task while the horizon stays below it.
    Due times move *forward* only inside ``run_due`` (where the cache is
    refreshed); the one place they move *backward* from outside is
    :meth:`~repro.core.writeback.WritebackPool.signal_pressure`, which
    calls :meth:`note_earlier` to pull the cached minimum down in place.
    """

    # Safety valve against a task failing to make forward progress.
    _MAX_ROUNDS = 1_000_000

    def __init__(self):
        self._tasks = []
        self._min_due_ns = NEVER
        self._min_due_stale = False

    def register(self, task):
        self._tasks.append(task)
        self._min_due_stale = True
        return task

    def tasks(self):
        return list(self._tasks)

    def invalidate(self):
        """A task's due time changed outside ``run_due`` (it may now be
        *earlier* than the cached minimum); recompute on next use."""
        self._min_due_stale = True

    def note_earlier(self, due_ns):
        """A task's due time moved to ``due_ns`` at the earliest.

        Cheaper than :meth:`invalidate` for the pressure-signal path: the
        cached minimum only ever needs to be a *lower bound* for the
        ``advance_to`` fast path to stay correct, so pulling it down in
        place keeps the cache warm instead of forcing a full recompute
        across every task.  With the cache already stale, the pending
        recompute will see the new due time anyway.
        """
        if self._min_due_stale:
            return
        if due_ns < self._min_due_ns:
            self._min_due_ns = due_ns

    def quiesce(self):
        """Rewind every registered timeline to idle t=0."""
        for task in self._tasks:
            task.quiesce()
        self._min_due_stale = True

    def advance_to(self, horizon_ns):
        """Run every task's work due at or before ``horizon_ns``."""
        if self._min_due_stale:
            self._min_due_ns = min(
                (t.next_due_ns() for t in self._tasks), default=NEVER
            )
            self._min_due_stale = False
        if horizon_ns < self._min_due_ns:
            return
        rounds = 0
        while True:
            due = [t for t in self._tasks if t.next_due_ns() <= horizon_ns]
            if not due:
                self._min_due_ns = min(
                    (t.next_due_ns() for t in self._tasks), default=NEVER
                )
                return
            for task in sorted(due, key=lambda t: t.next_due_ns()):
                before = task.next_due_ns()
                task.run_due(horizon_ns)
                after = task.next_due_ns()
                if after <= before:
                    raise DeadlockError(
                        "background task %r made no progress (due %r -> %r)"
                        % (task.name, before, after),
                        diagnostics=self._diagnostics(),
                    )
            rounds += 1
            if rounds > self._MAX_ROUNDS:
                raise DeadlockError(
                    "background registry livelock",
                    diagnostics=self._diagnostics(),
                )

    def _diagnostics(self):
        return [
            ThreadDiagnostic(
                task.name,
                task.ctx.now,
                getattr(task.ctx, "waiting_on", None)
                or "next wakeup due at %r ns" % (task.next_due_ns(),),
            )
            for task in self._tasks
        ]

"""Timed shared resources with gap-aware FCFS reservation semantics.

The paper models NVMM's limited write bandwidth by capping the number of
concurrent NVMM-writing threads at ``N_w = B_nvmm * L_nvmm`` (Section 5.1:
a writer queues when all slots are busy and is woken when one completes).
:class:`FCFSServers` is the virtual-time version of that model: a fixed
pool of servers, each holding a timeline of busy intervals, handing out
the earliest feasible slice at or after the requested time.

Timelines are *gap-aware*: a background writeback thread that has booked
slot time far in the virtual future does not block a tiny foreground
cacheline flush happening "now" -- the foreground request slots into the
earlier gap, exactly as real hardware would interleave the streams.
"""

import bisect

from repro.engine.errors import SimulationError

#: Busy intervals kept per server; older ones are coalesced away.  All
#: simulated clocks advance roughly together, so a deep history is never
#: probed again.
_MAX_INTERVALS = 128


class Reservation:
    """A granted slice of a timed resource."""

    __slots__ = ("start_ns", "end_ns", "wait_ns")

    def __init__(self, start_ns, end_ns, wait_ns):
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.wait_ns = wait_ns

    @property
    def duration_ns(self):
        return self.end_ns - self.start_ns

    def __repr__(self):
        return "Reservation(start=%d, end=%d, wait=%d)" % (
            self.start_ns,
            self.end_ns,
            self.wait_ns,
        )


class _ServerTimeline:
    """Sorted, non-overlapping busy intervals of one server."""

    __slots__ = ("starts", "ends")

    def __init__(self):
        self.starts = []
        self.ends = []

    def earliest_start(self, request_ns, duration_ns):
        """Earliest t >= request_ns with [t, t+duration) free."""
        starts, ends = self.starts, self.ends
        n = len(starts)
        # First interval that could conflict: the one before the request
        # (it may still be running) onwards.
        i = bisect.bisect_right(ends, request_ns)
        candidate = request_ns
        while i < n:
            if candidate + duration_ns <= starts[i]:
                return candidate
            candidate = max(candidate, ends[i])
            i += 1
        return candidate

    def book(self, start_ns, end_ns):
        """Insert a busy interval (must not overlap existing ones)."""
        i = bisect.bisect_left(self.starts, start_ns)
        # Coalesce with neighbours when exactly adjacent.
        if i > 0 and self.ends[i - 1] == start_ns:
            self.ends[i - 1] = end_ns
            if i < len(self.starts) and self.starts[i] == end_ns:
                self.ends[i - 1] = self.ends[i]
                del self.starts[i], self.ends[i]
        elif i < len(self.starts) and self.starts[i] == end_ns:
            self.starts[i] = start_ns
        else:
            self.starts.insert(i, start_ns)
            self.ends.insert(i, end_ns)
        if len(self.starts) > _MAX_INTERVALS:
            # Merge the two oldest intervals (the gap between them is in
            # the distant past of every clock).
            self.ends[0] = self.ends[1]
            del self.starts[1], self.ends[1]

    def next_free(self):
        return self.ends[-1] if self.ends else 0


class FCFSServers:
    """``capacity`` identical servers granting gap-aware reservations."""

    def __init__(self, capacity, name="resource"):
        if capacity < 1:
            raise SimulationError("resource %r needs capacity >= 1" % name)
        self.name = name
        self.capacity = int(capacity)
        self._servers = [_ServerTimeline() for _ in range(self.capacity)]
        self.total_busy_ns = 0
        self.total_wait_ns = 0
        self.total_grants = 0

    def reserve(self, request_ns, duration_ns):
        """Grant ``duration_ns`` of exclusive server time at/after
        ``request_ns`` on the server that can start earliest."""
        if duration_ns < 0:
            raise SimulationError("negative reservation on %r" % self.name)
        request_ns = int(request_ns)
        duration_ns = int(duration_ns)
        server0 = self._servers[0]
        ends0 = server0.ends
        if not ends0 or ends0[-1] <= request_ns:
            # Uncontended fast path: server 0 is idle at the request time,
            # so its earliest start *is* the request time -- and the scan
            # below always stops at the first server that achieves that,
            # which it visits first.  Same grant, no per-server probing;
            # the booking lands at the tail of the timeline, so the
            # general insert's bisect reduces to append-or-coalesce.
            end = request_ns + duration_ns
            if duration_ns > 0:
                if ends0 and ends0[-1] == request_ns:
                    ends0[-1] = end
                else:
                    server0.starts.append(request_ns)
                    ends0.append(end)
                    if len(ends0) > _MAX_INTERVALS:
                        server0.ends[0] = server0.ends[1]
                        del server0.starts[1], server0.ends[1]
            self.total_busy_ns += duration_ns
            self.total_grants += 1
            return Reservation(request_ns, end, 0)
        else:
            best_server = None
            best_start = None
            for server in self._servers:
                start = server.earliest_start(request_ns, duration_ns)
                if best_start is None or start < best_start:
                    best_start = start
                    best_server = server
                    if start == request_ns:
                        break  # cannot do better
        end = best_start + duration_ns
        if duration_ns > 0:
            best_server.book(best_start, end)
        wait = best_start - request_ns
        self.total_busy_ns += duration_ns
        self.total_wait_ns += wait
        self.total_grants += 1
        return Reservation(best_start, end, wait)

    def earliest_free_ns(self):
        """Earliest end-of-timeline across servers (legacy metric)."""
        return min(server.next_free() for server in self._servers)

    def utilisation(self, horizon_ns):
        """Fraction of aggregate server time busy up to ``horizon_ns``."""
        if horizon_ns <= 0:
            return 0.0
        return min(1.0, self.total_busy_ns / (horizon_ns * self.capacity))

    def reset(self):
        """Forget all reservations (used between benchmark repetitions)."""
        self._servers = [_ServerTimeline() for _ in range(self.capacity)]
        self.total_busy_ns = 0
        self.total_wait_ns = 0
        self.total_grants = 0

    def __repr__(self):
        return "FCFSServers(name=%r, capacity=%d)" % (self.name, self.capacity)

"""Virtual-time synchronization primitives.

The scheduler (:mod:`repro.engine.scheduler`) interleaves simulated
threads min-clock-first and runs each logical operation atomically, so
locks here do not need to suspend a Python generator: *blocking* means
advancing the acquiring thread's virtual clock to the moment the lock
becomes free -- the exact analogue of the kernel parking a task and
waking it at release time.  Because the scheduler always resumes the
least-advanced thread, acquisition order is FCFS in virtual time: a
thread that reaches the lock at t=10 is granted it before one arriving
at t=20, and the later thread's clock is pushed past the earlier one's
release point.

Contended waits are charged to the waiting thread's clock, counted in
``SimStats`` (``lock_acquisitions`` / ``lock_contentions`` /
``lock_wait_ns``), and -- when the trace spine is enabled -- recorded as
a ``lock``-layer phase on the thread's in-flight request span, so lock
pressure shows up in ``layer_time_ns`` next to fs/writeback/nvmm time.

:class:`InodeLockTable` adds lockdep-style ordering enforcement: inode
locks must be taken lowest-inode-first; an acquisition that inverts the
order of a lock already held by the same context raises
:class:`~repro.engine.errors.DeadlockError` at the acquisition site
(the ABBA pair would hang a real kernel; here it is diagnosed eagerly).
"""

from repro.engine.errors import DeadlockError, ThreadDiagnostic
from repro.engine.stats import CAT_OTHERS
from repro.obs.trace import LAYER_LOCK


class _HeldCM:
    """Release-on-exit guard returned by the lock ``held`` helpers.

    ``acquire``/``release`` are bound methods, so one small class covers
    the mutex, both rwlock modes, and the inode-table variants without a
    ``contextlib`` generator per acquisition (these guards are entered
    once per simulated operation).
    """

    __slots__ = ("lock", "ctx", "_acquire", "_release")

    def __init__(self, lock, ctx, acquire, release):
        self.lock = lock
        self.ctx = ctx
        self._acquire = acquire
        self._release = release

    def __enter__(self):
        self._acquire(self.ctx)
        return self.lock

    def __exit__(self, exc_type, exc, tb):
        self._release(self.ctx)
        return False


class _VLockBase:
    """Shared wait/accounting machinery of the virtual locks."""

    def __init__(self, env, name):
        self.env = env
        self.name = name
        #: Contended acquisitions and total virtual wait, per lock.
        self.contentions = 0
        self.wait_ns_total = 0

    def _wait_until(self, ctx, free_at, what):
        """Advance ``ctx`` to ``free_at`` if the lock is busy until then.

        The wait is charged as *Others* time (lock spinning is neither a
        data copy nor media access), tagged as a ``lock`` phase on the
        enclosing trace span, and labelled for deadlock diagnostics.
        """
        stats = self.env.stats
        stats.counters["lock_acquisitions"] += 1
        wait = free_at - ctx.now
        if wait <= 0:
            return 0
        self.contentions += 1
        self.wait_ns_total += wait
        stats.counters["lock_contentions"] += 1
        stats.counters["lock_wait_ns"] += wait
        with ctx.waiting("%s of %r" % (what, self.name)):
            with ctx.layer(LAYER_LOCK):
                ctx.sync_to(free_at, CAT_OTHERS)
        return wait


class VCompletion:
    """A one-shot completion on the virtual timeline (``struct completion``).

    A producer (file system, journal, writeback worker) resolves it with
    a virtual timestamp and a value -- possibly a timestamp in the
    *waiter's* future, e.g. the device-side end of an asynchronously
    issued flush.  A consumer (the CQ reaper) calls :meth:`wait`, which
    advances its clock to the resolve point exactly like a contended
    lock: charged as *Others*, labelled for deadlock diagnostics, and
    recorded as a phase on the enclosing trace span.

    ``force_fn`` covers the io_uring-style progress guarantee: when a
    reaper waits on a completion nobody has resolved yet (e.g. an async
    fsync whose jbd2 commit is still pending), the force hook performs
    the work inline on the waiter's context -- the analogue of a blocked
    ``io_uring_enter`` driving the work itself rather than sleeping
    forever.
    """

    __slots__ = ("env", "name", "done_at", "value", "error", "force_fn")

    def __init__(self, env, name="vcompletion", force_fn=None):
        self.env = env
        self.name = name
        #: Virtual time the completion resolved, or None while pending.
        self.done_at = None
        self.value = None
        self.error = None
        self.force_fn = force_fn

    @property
    def resolved(self):
        return self.done_at is not None

    def resolve(self, at_ns, value=None):
        """Complete successfully at virtual time ``at_ns``."""
        if self.done_at is None or at_ns > self.done_at:
            self.done_at = at_ns
        self.value = value
        return self

    def fail(self, at_ns, error):
        """Complete with ``error`` at virtual time ``at_ns``."""
        self.resolve(at_ns)
        self.error = error
        return self

    def wait(self, ctx, layer=LAYER_LOCK):
        """Block ``ctx`` (in virtual time) until resolved; returns the
        value or raises the recorded error."""
        if self.done_at is None and self.force_fn is not None:
            fn, self.force_fn = self.force_fn, None
            fn(ctx)
        if self.done_at is None:
            raise RuntimeError(
                "wait on unresolved completion %r with no force hook"
                % self.name
            )
        if self.done_at > ctx.now:
            self.env.stats.bump("completion_waits")
            self.env.stats.bump("completion_wait_ns", self.done_at - ctx.now)
            with ctx.waiting("completion of %r" % self.name):
                with ctx.layer(layer):
                    ctx.sync_to(self.done_at, CAT_OTHERS)
        if self.error is not None:
            raise self.error
        return self.value


class VMutex(_VLockBase):
    """A mutual-exclusion lock on the virtual timeline."""

    def __init__(self, env, name="vmutex"):
        super().__init__(env, name)
        #: Virtual time at which the last holder released.
        self._free_at = 0
        #: Name of the current holder (diagnostics only).
        self.owner = None

    def acquire(self, ctx):
        self._wait_until(ctx, self._free_at, "acquire")
        self.owner = ctx.name
        return ctx.now

    def release(self, ctx):
        if ctx.now > self._free_at:
            self._free_at = ctx.now
        self.owner = None

    def held(self, ctx):
        return _HeldCM(self, ctx, self.acquire, self.release)

    def __repr__(self):
        return "VMutex(%r, free_at=%d, owner=%r)" % (
            self.name, self._free_at, self.owner,
        )


class VRWLock(_VLockBase):
    """A reader/writer lock on the virtual timeline.

    Readers overlap freely; a writer excludes both readers and writers.
    ``_write_free_at`` is when the last writer finished, ``_read_free_at``
    when the last reader finished -- a new reader only waits out writers,
    a new writer waits out both.
    """

    def __init__(self, env, name="vrwlock"):
        super().__init__(env, name)
        self._write_free_at = 0
        self._read_free_at = 0
        #: Name of the current writer (diagnostics only).
        self.writer = None

    def acquire_read(self, ctx):
        self._wait_until(ctx, self._write_free_at, "read acquire")
        return ctx.now

    def release_read(self, ctx):
        if ctx.now > self._read_free_at:
            self._read_free_at = ctx.now

    def acquire_write(self, ctx):
        free_at = max(self._write_free_at, self._read_free_at)
        self._wait_until(ctx, free_at, "write acquire")
        self.writer = ctx.name
        return ctx.now

    def release_write(self, ctx):
        if ctx.now > self._write_free_at:
            self._write_free_at = ctx.now
        self.writer = None

    def read_held(self, ctx):
        return _HeldCM(self, ctx, self.acquire_read, self.release_read)

    def write_held(self, ctx):
        return _HeldCM(self, ctx, self.acquire_write, self.release_write)

    def __repr__(self):
        return "VRWLock(%r, wfree=%d, rfree=%d, writer=%r)" % (
            self.name, self._write_free_at, self._read_free_at, self.writer,
        )


class InodeLockTable:
    """Per-inode :class:`VRWLock` instances with lock-order enforcement.

    The canonical order is *lowest inode number first*.  Every
    acquisition is checked against the locks the context already holds
    (``ctx.held_locks``); taking an inode lock while holding one with a
    higher number is the ABBA pattern and raises
    :class:`DeadlockError` immediately, with the holder's full lock set
    in the diagnostics.  Multi-inode operations (``rename``, ``unlink``)
    therefore go through :meth:`write_locked_many`, which sorts.
    """

    def __init__(self, env, name="inode"):
        self.env = env
        self.name = name
        self._locks = {}

    def lock(self, ino):
        """The (lazily created) lock of one inode."""
        lock = self._locks.get(ino)
        if lock is None:
            lock = VRWLock(self.env, "%s:%d" % (self.name, ino))
            self._locks[ino] = lock
        return lock

    def drop(self, ino):
        """Forget a deleted inode's lock (its number may be reused)."""
        self._locks.pop(ino, None)

    # -- lockdep ---------------------------------------------------------

    def _check_order(self, ctx, ino, mode):
        held = getattr(ctx, "held_locks", None)
        if not held:
            return
        for held_ino, held_mode in held:
            if held_ino == ino:
                raise DeadlockError(
                    "recursive inode lock: %r re-acquiring inode %d (%s) "
                    "while already holding it (%s)"
                    % (ctx.name, ino, mode, held_mode),
                    diagnostics=[ThreadDiagnostic.of(ctx)],
                )
            if held_ino > ino:
                raise DeadlockError(
                    "inode lock-order violation (ABBA risk): %r acquiring "
                    "inode %d (%s) while holding inode %d (%s); canonical "
                    "order is lowest-inode-first"
                    % (ctx.name, ino, mode, held_ino, held_mode),
                    diagnostics=[ThreadDiagnostic.of(ctx)],
                    notes=["held inode locks: %s"
                           % ", ".join("%d(%s)" % h for h in held)],
                )

    def _push(self, ctx, ino, mode):
        self._check_order(ctx, ino, mode)
        ctx.held_locks.append((ino, mode))

    def _pop(self, ctx, ino, mode):
        try:
            ctx.held_locks.remove((ino, mode))
        except ValueError:
            pass

    # -- acquisition context managers ------------------------------------

    def read_locked(self, ctx, ino):
        return _InodeGuard(self, ctx, ino, "read")

    def write_locked(self, ctx, ino):
        return _InodeGuard(self, ctx, ino, "write")

    def write_locked_many(self, ctx, inos):
        """Write-lock a set of inodes in the canonical (ascending) order."""
        return _InodeManyGuard(self, ctx, inos)


class _InodeGuard:
    """One inode lock held for a ``with`` block (lockdep-tracked)."""

    __slots__ = ("table", "ctx", "ino", "mode", "lock")

    def __init__(self, table, ctx, ino, mode):
        self.table = table
        self.ctx = ctx
        self.ino = ino
        self.mode = mode

    def __enter__(self):
        table, ctx, ino = self.table, self.ctx, self.ino
        lock = table.lock(ino)
        self.lock = lock
        if self.mode == "read":
            table._push(ctx, ino, "read")
            lock.acquire_read(ctx)
        else:
            table._push(ctx, ino, "write")
            lock.acquire_write(ctx)
        return lock

    def __exit__(self, exc_type, exc, tb):
        table, ctx, ino = self.table, self.ctx, self.ino
        if self.mode == "read":
            self.lock.release_read(ctx)
            table._pop(ctx, ino, "read")
        else:
            self.lock.release_write(ctx)
            table._pop(ctx, ino, "write")
        return False


class _InodeManyGuard:
    """Write locks over an inode set, canonical (ascending) order."""

    __slots__ = ("table", "ctx", "inos", "held")

    def __init__(self, table, ctx, inos):
        self.table = table
        self.ctx = ctx
        self.inos = inos

    def __enter__(self):
        table, ctx = self.table, self.ctx
        self.held = []
        try:
            for ino in sorted(set(self.inos)):
                lock = table.lock(ino)
                table._push(ctx, ino, "write")
                lock.acquire_write(ctx)
                self.held.append((ino, lock))
        except BaseException:
            self.__exit__(None, None, None)
            raise
        return None

    def __exit__(self, exc_type, exc, tb):
        # Unwind in reverse acquisition order, like ExitStack.
        table, ctx = self.table, self.ctx
        while self.held:
            ino, lock = self.held.pop()
            lock.release_write(ctx)
            table._pop(ctx, ino, "write")
        return False

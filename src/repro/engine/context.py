"""Execution contexts: where simulated time is charged.

Every syscall issued by a simulated thread runs under an
:class:`ExecContext`.  The context owns the thread's virtual clock;
devices charge data-copy time to it (tagged with a breakdown category so
Figure 1 can be regenerated), the VFS records per-syscall durations on it
(for Figure 12), and timed resources synchronise it forward when the
thread has to queue for an NVMM writer slot.
"""

from contextlib import contextmanager

from repro.engine.clock import VirtualClock
from repro.engine.stats import CAT_OTHERS


class ExecContext:
    """The simulated-time identity of one simulated thread."""

    def __init__(self, env, name="ctx", start_ns=0):
        self.env = env
        self.name = name
        self.clock = VirtualClock(start_ns)
        #: Human-readable description of what this thread is currently
        #: blocked on (set around waits; read by deadlock diagnostics).
        self.waiting_on = None

    @property
    def now(self):
        return self.clock.now

    # -- time charging --------------------------------------------------

    def charge(self, ns, category=CAT_OTHERS):
        """Spend ``ns`` of this thread's virtual time under ``category``."""
        if ns <= 0:
            return self.clock.now
        self.clock.advance(ns)
        self.env.stats.add_time(category, ns)
        return self.clock.now

    def sync_to(self, target_ns, category=CAT_OTHERS):
        """Wait (advance the clock) until ``target_ns`` if it is ahead.

        Used when a resource grant or a background-writeback completion
        lands in this thread's future.  The waited time is charged to
        ``category`` so queueing shows up in the breakdown figures.
        """
        wait = target_ns - self.clock.now
        if wait > 0:
            self.charge(wait, category)
        return self.clock.now

    @contextmanager
    def waiting(self, what):
        """Label this thread as blocked on ``what`` for the duration.

        Purely diagnostic: if a deadlock is detected while the label is
        set, the resulting :class:`~repro.engine.errors.DeadlockError`
        reports it per thread.
        """
        previous = self.waiting_on
        self.waiting_on = what
        try:
            yield self
        finally:
            self.waiting_on = previous

    # -- syscall accounting ---------------------------------------------

    @contextmanager
    def syscall(self, name):
        """Record the duration of one syscall for per-syscall breakdowns."""
        start = self.clock.now
        try:
            yield self
        finally:
            self.env.stats.add_syscall_time(name, self.clock.now - start)

    def __repr__(self):
        return "ExecContext(name=%r, now=%d)" % (self.name, self.clock.now)

"""Execution contexts: where simulated time is charged.

Every syscall issued by a simulated thread runs under an
:class:`ExecContext`.  The context owns the thread's virtual clock;
devices charge data-copy time to it (tagged with a breakdown category so
Figure 1 can be regenerated), the VFS records per-syscall durations on it
(for Figure 12), and timed resources synchronise it forward when the
thread has to queue for an NVMM writer slot.
"""

from contextlib import contextmanager

from repro.engine.clock import VirtualClock
from repro.engine.stats import CAT_OTHERS
from repro.obs.trace import LAYER_VFS


class ExecContext:
    """The simulated-time identity of one simulated thread."""

    def __init__(self, env, name="ctx", start_ns=0):
        self.env = env
        self.name = name
        self.clock = VirtualClock(start_ns)
        #: Human-readable description of what this thread is currently
        #: blocked on (set around waits; read by deadlock diagnostics).
        self.waiting_on = None
        #: The open trace span while this thread is inside one (tracing
        #: enabled), else None.  Lower layers attach phases to it.
        self.trace_span = None
        #: ``(ino, mode)`` pairs of inode locks this context currently
        #: holds, in acquisition order (see :mod:`repro.engine.locks`);
        #: lockdep checks new acquisitions against this list.
        self.held_locks = []

    @property
    def now(self):
        return self.clock.now

    # -- time charging --------------------------------------------------

    def charge(self, ns, category=CAT_OTHERS):
        """Spend ``ns`` of this thread's virtual time under ``category``."""
        if ns <= 0:
            return self.clock.now
        self.clock.advance(ns)
        self.env.stats.add_time(category, ns)
        return self.clock.now

    def sync_to(self, target_ns, category=CAT_OTHERS):
        """Wait (advance the clock) until ``target_ns`` if it is ahead.

        Used when a resource grant or a background-writeback completion
        lands in this thread's future.  The waited time is charged to
        ``category`` so queueing shows up in the breakdown figures.
        """
        wait = target_ns - self.clock.now
        if wait > 0:
            self.charge(wait, category)
        return self.clock.now

    @contextmanager
    def waiting(self, what):
        """Label this thread as blocked on ``what`` for the duration.

        Purely diagnostic: if a deadlock is detected while the label is
        set, the resulting :class:`~repro.engine.errors.DeadlockError`
        reports it per thread.
        """
        previous = self.waiting_on
        self.waiting_on = what
        try:
            yield self
        finally:
            self.waiting_on = previous

    # -- the trace spine's single instrumentation point -------------------

    @contextmanager
    def span(self, name, layer=LAYER_VFS, req=None, meta=None):
        """Open one pipeline span for the duration of the block.

        This is THE instrumentation point of the request pipeline: at
        close it feeds the per-syscall breakdown (for ``vfs``-layer
        spans), the per-layer :meth:`SimStats.add_layer_time` totals,
        and -- when tracing is enabled -- records the span into the
        bounded trace ring, all from the same measurement, so exported
        per-layer trace durations sum to the stats totals by
        construction.  Untraced runs skip all span allocation.
        """
        ring = self.env.trace
        start = self.clock.now
        sp = None
        if ring is not None:
            req_id = req.req_id if req is not None else self.env.next_req_id()
            sp = ring.begin(name, self.name, start, req_id, layer=layer,
                            meta=meta)
            if req is not None:
                req.span = sp
        previous = self.trace_span
        self.trace_span = sp
        try:
            yield sp
        finally:
            self.trace_span = previous
            duration = self.clock.now - start
            if layer == LAYER_VFS:
                self.env.stats.add_syscall_time(name, duration)
            if sp is not None:
                sp.close(self.clock.now)
                for span_layer, ns in sp.layer_totals().items():
                    self.env.stats.add_layer_time(span_layer, ns)
                ring.record(sp)

    @contextmanager
    def syscall(self, name, req=None):
        """Record the duration of one syscall for per-syscall breakdowns
        (and, when tracing, as a ``vfs``-layer span carrying ``req``)."""
        with self.span(name, layer=LAYER_VFS, req=req) as sp:
            yield sp

    @contextmanager
    def layer(self, name):
        """Record a sub-layer visit (``fs``/``writeback``/``nvmm``) as a
        phase on the enclosing span.  No-op when untraced."""
        sp = self.trace_span
        if sp is None:
            yield self
            return
        enter = self.clock.now
        try:
            yield self
        finally:
            sp.add_phase(name, enter, self.clock.now)

    def __repr__(self):
        return "ExecContext(name=%r, now=%d)" % (self.name, self.clock.now)

"""Execution contexts: where simulated time is charged.

Every syscall issued by a simulated thread runs under an
:class:`ExecContext`.  The context owns the thread's virtual clock;
devices charge data-copy time to it (tagged with a breakdown category so
Figure 1 can be regenerated), the VFS records per-syscall durations on it
(for Figure 12), and timed resources synchronise it forward when the
thread has to queue for an NVMM writer slot.

The context managers here (``span``/``syscall``/``layer``/``waiting``)
sit on the hot path of every simulated operation, so they are small
``__slots__`` classes rather than ``contextlib`` generators: entering a
generator-based manager costs a generator frame plus two ``next`` calls,
which at millions of spans per run is real wall-clock time.
"""

from repro.engine.clock import VirtualClock
from repro.engine.stats import CAT_OTHERS
from repro.obs.trace import LAYER_VFS


class _WaitingCM:
    """Sets ``ctx.waiting_on`` for the duration (deadlock diagnostics)."""

    __slots__ = ("ctx", "what", "previous")

    def __init__(self, ctx, what):
        self.ctx = ctx
        self.what = what

    def __enter__(self):
        ctx = self.ctx
        self.previous = ctx.waiting_on
        ctx.waiting_on = self.what
        return ctx

    def __exit__(self, exc_type, exc, tb):
        self.ctx.waiting_on = self.previous
        return False


class _SpanCM:
    """Closes one pipeline span: feeds stats and (if traced) the ring."""

    __slots__ = ("ctx", "name", "layer", "sp", "start_ns", "previous")

    def __init__(self, ctx, name, layer, sp, start_ns):
        self.ctx = ctx
        self.name = name
        self.layer = layer
        self.sp = sp
        self.start_ns = start_ns

    def __enter__(self):
        ctx = self.ctx
        self.previous = ctx.trace_span
        ctx.trace_span = self.sp
        return self.sp

    def __exit__(self, exc_type, exc, tb):
        ctx = self.ctx
        ctx.trace_span = self.previous
        end_ns = ctx.clock.now
        if self.layer == LAYER_VFS:
            ctx.env.stats.add_syscall_time(self.name, end_ns - self.start_ns)
        sp = self.sp
        if sp is not None:
            sp.close(end_ns)
            add_layer_time = ctx.env.stats.add_layer_time
            for span_layer, ns in sp.layer_totals().items():
                add_layer_time(span_layer, ns)
            ctx.env.trace.record(sp)
        return False


class _PhaseCM:
    """Attaches a sub-layer phase to the enclosing span (no-op untraced)."""

    __slots__ = ("ctx", "name", "sp", "enter_ns")

    def __init__(self, ctx, name):
        self.ctx = ctx
        self.name = name

    def __enter__(self):
        ctx = self.ctx
        sp = ctx.trace_span
        self.sp = sp
        if sp is not None:
            self.enter_ns = ctx.clock.now
        return ctx

    def __exit__(self, exc_type, exc, tb):
        sp = self.sp
        if sp is not None:
            sp.add_phase(self.name, self.enter_ns, self.ctx.clock.now)
        return False


class ExecContext:
    """The simulated-time identity of one simulated thread."""

    __slots__ = ("env", "name", "clock", "waiting_on", "trace_span",
                 "held_locks")

    def __init__(self, env, name="ctx", start_ns=0):
        self.env = env
        self.name = name
        self.clock = VirtualClock(start_ns)
        #: Human-readable description of what this thread is currently
        #: blocked on (set around waits; read by deadlock diagnostics).
        self.waiting_on = None
        #: The open trace span while this thread is inside one (tracing
        #: enabled), else None.  Lower layers attach phases to it.
        self.trace_span = None
        #: ``(ino, mode)`` pairs of inode locks this context currently
        #: holds, in acquisition order (see :mod:`repro.engine.locks`);
        #: lockdep checks new acquisitions against this list.
        self.held_locks = []

    @property
    def now(self):
        return self.clock.now

    # -- time charging --------------------------------------------------

    def charge(self, ns, category=CAT_OTHERS):
        """Spend ``ns`` of this thread's virtual time under ``category``.

        Inlines the clock bump and the breakdown-bucket add (every device
        access lands here, several times per op): ``ns`` is known
        non-negative past the guard, so the clock's monotonicity check is
        redundant, and the breakdown is a plain int bucket.
        """
        clock = self.clock
        if ns <= 0:
            return clock._now
        ns = int(ns)
        clock._now += ns
        self.env.stats.breakdown._ns[category] += ns
        return clock._now

    def sync_to(self, target_ns, category=CAT_OTHERS):
        """Wait (advance the clock) until ``target_ns`` if it is ahead.

        Used when a resource grant or a background-writeback completion
        lands in this thread's future.  The waited time is charged to
        ``category`` so queueing shows up in the breakdown figures.
        """
        clock = self.clock
        wait = target_ns - clock._now
        if wait <= 0:
            return clock._now
        wait = int(wait)
        clock._now += wait
        self.env.stats.breakdown._ns[category] += wait
        return clock._now

    def waiting(self, what):
        """Label this thread as blocked on ``what`` for the duration.

        Purely diagnostic: if a deadlock is detected while the label is
        set, the resulting :class:`~repro.engine.errors.DeadlockError`
        reports it per thread.
        """
        return _WaitingCM(self, what)

    # -- the trace spine's single instrumentation point -------------------

    def span(self, name, layer=LAYER_VFS, req=None, meta=None):
        """Open one pipeline span for the duration of the block.

        This is THE instrumentation point of the request pipeline: at
        close it feeds the per-syscall breakdown (for ``vfs``-layer
        spans), the per-layer :meth:`SimStats.add_layer_time` totals,
        and -- when tracing is enabled -- records the span into the
        bounded trace ring, all from the same measurement, so exported
        per-layer trace durations sum to the stats totals by
        construction.

        Disabled fast path: with tracing off, or the span's layer
        filtered out of the ring (``enable_tracing(layers=...)``), no
        Span is allocated, no request id is drawn here, and the ring is
        never touched -- only the always-on per-syscall accounting runs.
        """
        ring = self.env.trace
        sp = None
        if ring is not None and ring.wants(layer):
            req_id = req.req_id if req is not None else self.env.next_req_id()
            sp = ring.begin(name, self.name, self.clock.now, req_id,
                            layer=layer, meta=meta)
            if req is not None:
                req.span = sp
        return _SpanCM(self, name, layer, sp, self.clock.now)

    def syscall(self, name, req=None):
        """Record the duration of one syscall for per-syscall breakdowns
        (and, when tracing, as a ``vfs``-layer span carrying ``req``)."""
        return self.span(name, layer=LAYER_VFS, req=req)

    def layer(self, name):
        """Record a sub-layer visit (``fs``/``writeback``/``nvmm``) as a
        phase on the enclosing span.  No-op when untraced."""
        return _PhaseCM(self, name)

    def __repr__(self):
        return "ExecContext(name=%r, now=%d)" % (self.name, self.clock.now)

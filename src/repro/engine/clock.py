"""Virtual nanosecond clocks.

All simulated time in the reproduction is integer nanoseconds.  The paper's
emulator injects delays measured with ``RDTSCP``; our equivalent is a
monotonic virtual clock that each simulated thread advances as it pays for
memory traffic, syscall overhead, and resource waits.
"""

from repro.engine.errors import ClockError

NS_PER_USEC = 1_000
NS_PER_MSEC = 1_000_000
NS_PER_SEC = 1_000_000_000


def format_ns(ns):
    """Render a nanosecond quantity with a human-friendly unit.

    >>> format_ns(1234)
    '1.234us'
    >>> format_ns(2_500_000_000)
    '2.500s'
    """
    if ns >= NS_PER_SEC:
        return "%.3fs" % (ns / NS_PER_SEC)
    if ns >= NS_PER_MSEC:
        return "%.3fms" % (ns / NS_PER_MSEC)
    if ns >= NS_PER_USEC:
        return "%.3fus" % (ns / NS_PER_USEC)
    return "%dns" % ns


class VirtualClock:
    """A monotonic virtual clock measured in integer nanoseconds."""

    __slots__ = ("_now",)

    def __init__(self, start_ns=0):
        self._now = int(start_ns)

    @property
    def now(self):
        """Current virtual time in nanoseconds."""
        return self._now

    def advance(self, delta_ns):
        """Move the clock forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ClockError("cannot advance clock by negative %d ns" % delta_ns)
        self._now += int(delta_ns)
        return self._now

    def advance_to(self, target_ns):
        """Move the clock forward to ``target_ns`` if it is in the future.

        Moving to a time at or before ``now`` is a no-op; this makes the
        clock safe to synchronise against resource-grant timestamps that
        may already have passed.
        """
        if target_ns > self._now:
            self._now = int(target_ns)
        return self._now

    def reset(self, start_ns=0):
        """Rewind to ``start_ns``.

        The one sanctioned break in monotonicity: benchmark runners call
        it (via :meth:`repro.engine.env.SimEnv.quiesce`) to restart
        background timelines at t=0 after a free pre-allocation phase,
        so the measured run starts on an idle system.
        """
        self._now = int(start_ns)

    def __repr__(self):
        return "VirtualClock(%s)" % format_ns(self._now)

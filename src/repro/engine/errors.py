"""Exceptions raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for engine-level failures."""


class DeadlockError(SimulationError):
    """Raised when every runnable simulated thread is blocked.

    This indicates a modelling bug (for example a foreground thread
    waiting on buffer space while no writeback timeline can make
    progress), never a legitimate simulation outcome.
    """


class ClockError(SimulationError):
    """Raised when a virtual clock would be moved backwards."""

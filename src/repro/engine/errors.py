"""Exceptions raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for engine-level failures."""


class ThreadDiagnostic:
    """One blocked thread's state at deadlock time.

    Captures the thread (or background timeline) name, its virtual clock,
    and the resource or buffer condition it is waiting on, so a deadlock
    report reads like a kernel hung-task dump instead of a bare message.
    """

    __slots__ = ("name", "clock_ns", "waiting_on")

    def __init__(self, name, clock_ns, waiting_on):
        self.name = name
        self.clock_ns = clock_ns
        self.waiting_on = waiting_on

    @classmethod
    def of(cls, ctx):
        """Diagnostic for an :class:`~repro.engine.context.ExecContext`."""
        return cls(ctx.name, ctx.now, getattr(ctx, "waiting_on", None) or "nothing")

    def __str__(self):
        return "thread %r at t=%dns waiting on %s" % (
            self.name,
            self.clock_ns,
            self.waiting_on,
        )

    def __repr__(self):
        return "ThreadDiagnostic(%r, %d, %r)" % (
            self.name,
            self.clock_ns,
            self.waiting_on,
        )


class DeadlockError(SimulationError):
    """Raised when every runnable simulated thread is blocked.

    This indicates a modelling bug (for example a foreground thread
    waiting on buffer space while no writeback timeline can make
    progress), never a legitimate simulation outcome.  ``diagnostics``
    carries a :class:`ThreadDiagnostic` per involved thread; ``notes``
    carries environment facts (e.g. NVMM lines marked bad by fault
    injection) that explain *why* no progress is possible.
    """

    def __init__(self, message, diagnostics=(), notes=()):
        self.reason = message
        self.diagnostics = list(diagnostics)
        self.notes = list(notes)
        super().__init__(self._render())

    def _render(self):
        parts = [self.reason]
        for diag in self.diagnostics:
            parts.append("  - %s" % diag)
        for note in self.notes:
            parts.append("  note: %s" % note)
        return "\n".join(parts)

    def attach(self, diagnostics=(), notes=()):
        """Add context discovered further up the stack (the scheduler
        appends every foreground thread's state here); returns self."""
        self.diagnostics.extend(diagnostics)
        self.notes.extend(notes)
        self.args = (self._render(),)
        return self


class ClockError(SimulationError):
    """Raised when a virtual clock would be moved backwards."""

"""One VFS mount fanned out across M NVMM devices.

The paper treats NVMM as a single memory-bus device; production storage
scales out.  :class:`ShardedFS` keeps the dispatch layer untouched (the
formal VFS-switch model's argument): it implements the same inode-level
:class:`~repro.fs.base.FileSystem` interface the VFS already speaks,
composing M *shards* -- independent PMFS/HiNFS instances, one per
:class:`~repro.nvmm.device.NVMMDevice`, each device constructed with its
own resource ``domain`` so writer slots, media faults, errseq logs, and
(for HiNFS) write buffer + writeback pool are all per-device.

Layout
------

- **Global inode numbers** interleave the per-shard local spaces:
  ``global = (local - 1) * M + shard + 1``.  Shard 0's local root (1)
  maps to the global root (1); with M=1 the encoding is the identity.
- **Directories are mirrored** on every shard (each shard holds the
  directory *skeleton* plus the dirents of its own files); shard 0 is
  canonical.  A directory's global ino is its shard-0 mirror's encoding,
  and ``_dir_locals`` translates it to the per-shard local inos.
- **Files live on exactly one shard**, chosen by hashing the file name
  (``crc32(name) % M``).  Lookup probes the hash owner first and falls
  back to the other shards -- a file renamed in place (because it had
  live mappings) may be *misplaced* relative to its current name.

Cross-shard rename protocol
---------------------------

``rename(2)`` whose source and destination hash to different shards
cannot be one journal transaction -- the two shards have independent
journals.  Instead it is journaled as an *intent* in a hidden shard-0
file (``.__shard_intents__``), each record length+CRC framed so a torn
tail parses as absent:

1. ``begin`` record (all locals + names), durable before anything moves;
2. copy the source bytes into a hidden temp on the target shard, fsync;
3. ``copied`` record naming the temp's local ino;
4. target-shard inner rename temp -> new name (THE commit point; an
   existing same-shard victim is replaced atomically by the inner
   journal);
5. source-shard unlink of the old name;
6. ``done`` record.

Recovery (at :meth:`ShardedFS.mount`) replays incomplete intents: before
``copied`` it rolls back (drops the temp; the source never moved); after
``copied`` it decides by looking at the target dirent -- if the commit
rename landed (or a cross-shard victim's dirent is already gone) it
rolls forward, else back.  Every crash point therefore recovers to
*exactly one name* for the moved file.  Directory renames are journaled
the same way (``dirmv``) with shard 0 as the commit shard.

Health is per shard: each shard owns a
:class:`~repro.fs.health.MountHealth`; async writeback errors feed only
the owning shard's FSM, so one shard entering DEGRADED_RO refuses writes
to *its* files while the mount -- and every other shard -- stays
writable.
"""

import json
import struct
import zlib

from repro.fs.base import FileStat, FileSystem, ROOT_INO
from repro.fs.errors import NotADirectory, ReadOnly
from repro.fs.health import DEGRADED_RO, HEALTHY, ISOLATED, MountHealth, OVERLOADED
from repro.fs.pmfs.pmfs import _FreeContext
from repro.io import OP_WRITE

#: Namespace entries the shard layer keeps for itself (never listed).
HIDDEN_PREFIX = ".__"
INTENT_LOG_NAME = ".__shard_intents__"
_FRAME_HDR = struct.Struct("<II")


def shard_of(name, nshards, parent=ROOT_INO):
    """The hash-placement owner shard for a directory entry.

    The key is ``(parent global ino, name)`` -- hashing the name alone
    would pin every same-named file to one device (e.g. the tenant
    fleet's per-tenant ``/tNNNN/data`` files), defeating the scale-out.
    The parent's *global* ino is stable across remounts (directory
    globals always encode the canonical shard-0 local), so placement is
    deterministic and recoverable.
    """
    key = "%d/%s" % (parent, name)
    return zlib.crc32(key.encode("utf-8")) % nshards


class _ShardedErrseq:
    """Routes the VFS's errseq probes (global inos) to the owning
    shard's per-device map."""

    def __init__(self, owner):
        self._owner = owner

    def _route(self, gino):
        shard, local = self._owner._dec(gino)
        return self._owner.shards[shard].wb_err, local

    def sample(self, gino):
        errs, local = self._route(gino)
        return errs.sample(local)

    def check(self, gino, cursor):
        errs, local = self._route(gino)
        return errs.check(local, cursor)

    def record(self, gino):
        errs, local = self._route(gino)
        return errs.record(local)

    def drop(self, gino):
        errs, local = self._route(gino)
        return errs.drop(local)


class _CrashRequested(BaseException):
    """Raised by a crash-point hook to stop a rename mid-protocol.

    BaseException so no fs/VFS handler swallows it on the way out."""


class ShardedFS(FileSystem):
    """M per-device file systems behind one FileSystem interface."""

    name = "sharded"

    def __init__(self, env, shards, mounted=False):
        if not shards:
            raise ValueError("need at least one shard")
        self.env = env
        self.shards = list(shards)
        self.nshards = len(self.shards)
        self.name = "%s@%d" % (self.shards[0].name, self.nshards)
        #: Per-shard health FSMs (satellite: one shard degrading must not
        #: flip the whole mount).
        self.shard_health = [MountHealth(env) for _ in self.shards]
        self._wb_err_view = _ShardedErrseq(self)
        for s, inner in enumerate(self.shards):
            inner.wb_error_hook = self._shard_error_hook(s)
        #: global dir ino -> [local ino of the mirror on each shard].
        self._dir_locals = {}
        #: (shard, local ino) -> global dir ino, for every mirror.
        self._dir_gino = {}
        self._intent_seq = 0
        #: Crash-point hook for the explorer: called with a boundary name
        #: at each step of the cross-shard protocol.
        self._xmv_hook = None
        free = _FreeContext(env)
        if mounted:
            self._mount(free)
        else:
            self._register_dir(ROOT_INO, [ROOT_INO] * self.nshards)
            self._intent_ino = self.shards[0].create_file(
                free, ROOT_INO, INTENT_LOG_NAME)
        self._intent_off = 0

    # -- construction helpers ---------------------------------------------

    def _register_dir(self, gino, locals_):
        self._dir_locals[gino] = locals_
        for s, local in enumerate(locals_):
            self._dir_gino[(s, local)] = gino

    def _shard_error_hook(self, s):
        def hook(_local_ino):
            # Async writeback EIO: bill the owning shard's FSM only --
            # the other shards (and the mount) stay writable.
            self.shard_health[s].count_media_error(
                0, reason="dev%d writeback error" % s)
            self.env.stats.bump("shard_wb_errors@dev%d" % s)
        return hook

    # -- inode number codec -------------------------------------------------

    def _enc(self, local, shard):
        return (local - 1) * self.nshards + shard + 1

    def _dec(self, gino):
        return (gino - 1) % self.nshards, (gino - 1) // self.nshards + 1

    def _plocals(self, parent_gino):
        locals_ = self._dir_locals.get(parent_gino)
        if locals_ is None:
            raise NotADirectory("inode %d" % parent_gino)
        return locals_

    def _check_shard_writable(self, s, what):
        health = self.shard_health[s]
        if not health.writable:
            raise ReadOnly("%s on %s shard dev%d (%s)"
                           % (what, health.state, s, health.reason))

    # -- mount / recovery ---------------------------------------------------

    def _mount(self, free):
        from repro.fs.errors import MediaError

        shard0 = self.shards[0]
        if shard0.degraded_reason:
            # The canonical shard could not recover: the whole namespace
            # is suspect, so the mount comes up degraded (VFS serves RO).
            self.degraded_reason = shard0.degraded_reason
        self._register_dir(ROOT_INO, [ROOT_INO] * self.nshards)
        try:
            self._intent_ino = shard0.lookup(free, ROOT_INO, INTENT_LOG_NAME)
            if self._intent_ino is None:
                if not self.degraded_reason:
                    self._intent_ino = shard0.create_file(
                        free, ROOT_INO, INTENT_LOG_NAME)
            elif not self.degraded_reason:
                self._recover_intents(free)
            self._reconcile(free)
            if not self.degraded_reason:
                shard0.truncate(free, self._intent_ino, 0)
        except MediaError as exc:
            # Recovery/reconcile walked onto bad media: serve what can be
            # read, read-only, rather than failing the mount outright.
            self.degraded_reason = "shard recovery hit bad media: %s" % exc
            self.env.stats.bump("mount_degraded")
        for s, inner in enumerate(self.shards):
            if s and inner.degraded_reason:
                self.shard_health[s].force_degraded(0, inner.degraded_reason)

    @classmethod
    def mount(cls, env, shards):
        """Assemble a sharded mount from already-mounted shards: replay
        incomplete cross-shard intents, then reconcile the mirrored
        directory skeleton against canonical shard 0."""
        return cls(env, shards, mounted=True)

    def _recover_intents(self, free):
        pending = {}
        for rec in self._read_intents(free):
            kind = rec.get("kind")
            seq = rec.get("seq")
            if kind == "begin":
                pending[seq] = rec
            elif kind == "copied" and seq in pending:
                pending[seq]["tl"] = rec["tl"]
            elif kind == "done":
                pending.pop(seq, None)
        for seq in sorted(pending):
            rec = pending[seq]
            if rec.get("op") == "dirmv":
                self._recover_dirmv(free, rec)
            elif rec.get("op") == "swap":
                self._recover_swap(free, rec)
            else:
                self._recover_xmv(free, rec)
            self.env.stats.bump("shard_intents_recovered")

    def _recover_xmv(self, free, rec):
        """Finish or undo one interrupted cross-shard file migration."""
        s1fs = self.shards[rec["s1"]]
        s2fs = self.shards[rec["s2"]]
        p1l, p2l = rec["p1l"], rec["p2l"]
        tmp, tl = rec["tmp"], rec.get("tl")
        if tl is None:
            # Crashed before the copy was recorded: the source never
            # moved; drop the (possibly half-written) temp.
            t = s2fs.lookup(free, p2l, tmp)
            if t is not None:
                s2fs.unlink(free, p2l, tmp, t)
            return
        lr, sr = rec.get("lr"), rec.get("sr")
        forward = s2fs.lookup(free, p2l, rec["new"]) == tl
        if not forward and lr is not None and sr != rec["s2"]:
            # A cross-shard victim whose dirent is already gone means the
            # protocol passed its point of no return before the crash.
            if self.shards[sr].lookup(free, rec["rp2l"], rec["new"]) is None:
                forward = True
        if forward:
            if lr is not None and sr != rec["s2"]:
                victim = self.shards[sr].lookup(free, rec["rp2l"], rec["new"])
                if victim == lr:
                    self.shards[sr].unlink(free, rec["rp2l"], rec["new"], lr)
            if s2fs.lookup(free, p2l, rec["new"]) != tl:
                t = s2fs.lookup(free, p2l, tmp)
                if t is not None:
                    same_shard_victim = None
                    if lr is not None and sr == rec["s2"]:
                        if s2fs.lookup(free, p2l, rec["new"]) == lr:
                            same_shard_victim = lr
                    s2fs.rename(free, p2l, tmp, p2l, rec["new"], t,
                                replaced_ino=same_shard_victim)
            old = s1fs.lookup(free, p1l, rec["old"])
            if old == rec["l1"]:
                s1fs.unlink(free, p1l, rec["old"], old)
        else:
            t = s2fs.lookup(free, p2l, tmp)
            if t is not None:
                s2fs.unlink(free, p2l, tmp, t)

    def _recover_swap(self, free, rec):
        """In-place rename whose cross-shard victim unlink got split off."""
        s1fs = self.shards[rec["s1"]]
        srfs = self.shards[rec["sr"]]
        if s1fs.lookup(free, rec["p2l"], rec["new"]) == rec["l1"]:
            victim = srfs.lookup(free, rec["rp2l"], rec["new"])
            if victim == rec["lr"]:
                srfs.unlink(free, rec["rp2l"], rec["new"], victim)
            return
        victim = srfs.lookup(free, rec["rp2l"], rec["new"])
        if victim == rec["lr"]:
            return  # nothing moved yet: roll back (keep both names)
        old = s1fs.lookup(free, rec["p1l"], rec["old"])
        if old == rec["l1"]:
            s1fs.rename(free, rec["p1l"], rec["old"], rec["p2l"], rec["new"],
                        rec["l1"])

    def _recover_dirmv(self, free, rec):
        """Directory rename: shard 0 committed first; align the mirrors."""
        p1s, p2s, locs = rec["p1s"], rec["p2s"], rec["ds"]
        if self.shards[0].lookup(free, p2s[0], rec["new"]) != locs[0]:
            return  # shard 0 never committed -> no mirror moved either
        for s in range(1, self.nshards):
            if self.shards[s].lookup(free, p2s[s], rec["new"]) != locs[s]:
                self.shards[s].rename(free, p1s[s], rec["old"], p2s[s],
                                      rec["new"], locs[s])

    def _reconcile(self, free):
        """Rebuild the dir maps by walking canonical shard 0, creating
        missing mirrors and dropping empty orphan mirrors (the residue of
        a mkdir/rmdir that crashed between shards)."""
        visited = [set([ROOT_INO]) for _ in range(self.nshards)]
        queue = [ROOT_INO]
        while queue:
            gino = queue.pop()
            locals_ = self._dir_locals[gino]
            for name, l0 in self.shards[0].readdir(free, locals_[0]):
                if name.startswith(HIDDEN_PREFIX):
                    continue
                if not self.shards[0].getattr(free, l0).is_dir:
                    continue
                child = [l0] + [0] * (self.nshards - 1)
                visited[0].add(l0)
                for s in range(1, self.nshards):
                    local = self.shards[s].lookup(free, locals_[s], name)
                    if local is None:
                        local = self.shards[s].mkdir(free, locals_[s], name)
                        self.env.stats.bump("shard_mirrors_repaired")
                    child[s] = local
                    visited[s].add(local)
                cg = self._enc(l0, 0)
                self._register_dir(cg, child)
                queue.append(cg)
        for s in range(1, self.nshards):
            self._drop_orphans(free, s, ROOT_INO, visited[s])

    def _drop_orphans(self, free, s, dir_local, keep):
        inner = self.shards[s]
        for name, local in list(inner.readdir(free, dir_local)):
            if name.startswith(HIDDEN_PREFIX):
                continue
            if not inner.getattr(free, local).is_dir:
                continue
            self._drop_orphans(free, s, local, keep)
            if local not in keep and not inner.readdir(free, local):
                inner.rmdir(free, dir_local, name, local)
                self.env.stats.bump("shard_orphans_dropped")

    # -- the intent log -----------------------------------------------------

    def _append_intent(self, ctx, rec):
        payload = json.dumps(rec, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        frame = _FRAME_HDR.pack(len(payload),
                                zlib.crc32(payload) & 0xFFFFFFFF) + payload
        offset = self._intent_off
        self._intent_off = offset + len(frame)
        self.shards[0].write(ctx, self._intent_ino, offset, frame, eager=True)
        self.shards[0].fsync(ctx, self._intent_ino)

    def _read_intents(self, free):
        size = self.shards[0].getattr(free, self._intent_ino).size
        raw = self.shards[0].read(free, self._intent_ino, 0, size) \
            if size else b""
        records = []
        offset = 0
        while offset + _FRAME_HDR.size <= len(raw):
            length, crc = _FRAME_HDR.unpack_from(raw, offset)
            payload = raw[offset + _FRAME_HDR.size:
                          offset + _FRAME_HDR.size + length]
            if len(payload) < length or \
                    zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break  # torn tail: the record never fully landed
            try:
                records.append(json.loads(payload.decode("utf-8")))
            except ValueError:
                break
            offset += _FRAME_HDR.size + length
        return records

    def _crash_point(self, point):
        hook = self._xmv_hook
        if hook is not None:
            hook(point)

    # -- namespace ----------------------------------------------------------

    def lookup(self, ctx, parent_ino, name):
        locals_ = self._plocals(parent_ino)
        owner = shard_of(name, self.nshards, parent=parent_ino)
        for s in self._probe_order(owner):
            local = self.shards[s].lookup(ctx, locals_[s], name)
            if local is not None:
                return self._dir_gino.get((s, local), self._enc(local, s))
        return None

    def _probe_order(self, owner):
        """Hash owner first, then the fallback probe of the other shards
        (misplaced files keep global lookup correct)."""
        yield owner
        for s in range(self.nshards):
            if s != owner:
                yield s

    def create_file(self, ctx, parent_ino, name):
        locals_ = self._plocals(parent_ino)
        owner = shard_of(name, self.nshards, parent=parent_ino)
        self._check_shard_writable(owner, "create of %r" % name)
        local = self.shards[owner].create_file(ctx, locals_[owner], name)
        return self._enc(local, owner)

    def mkdir(self, ctx, parent_ino, name):
        locals_ = self._plocals(parent_ino)
        for s in range(self.nshards):
            self._check_shard_writable(s, "mkdir of %r" % name)
        # Mirrors first, canonical shard 0 LAST: an interrupted mkdir
        # leaves only orphan mirrors, which reconcile drops.
        child = [0] * self.nshards
        for s in range(self.nshards - 1, -1, -1):
            child[s] = self.shards[s].mkdir(ctx, locals_[s], name)
        gino = self._enc(child[0], 0)
        self._register_dir(gino, child)
        return gino

    def unlink(self, ctx, parent_ino, name, ino):
        locals_ = self._plocals(parent_ino)
        s, local = self._dec(ino)
        self._check_shard_writable(s, "unlink of %r" % name)
        self.shards[s].unlink(ctx, locals_[s], name, local)

    def rmdir(self, ctx, parent_ino, name, ino):
        from repro.fs.errors import NotEmpty

        locals_ = self._plocals(parent_ino)
        child = self._plocals(ino)
        for s in range(self.nshards):
            for entry, _local in self.shards[s].readdir(ctx, child[s]):
                if not entry.startswith(HIDDEN_PREFIX):
                    raise NotEmpty(name)
        # Canonical shard 0 FIRST (the removal's commit point), mirrors
        # after: an interrupted rmdir leaves empty orphan mirrors only.
        for s in range(self.nshards):
            self.shards[s].rmdir(ctx, locals_[s], name, child[s])
        for s, local in enumerate(child):
            self._dir_gino.pop((s, local), None)
        del self._dir_locals[ino]

    def rename(self, ctx, old_parent, old_name, new_parent, new_name, ino,
               replaced_ino=None):
        """Returns the file's *new global ino* when the rename migrated
        it to another shard, else None (the VFS remaps open descriptors
        and its dcache from the return value)."""
        p1 = self._plocals(old_parent)
        p2 = self._plocals(new_parent)
        if ino in self._dir_locals:
            self._rename_dir(ctx, p1, old_name, p2, new_name,
                             self._dir_locals[ino])
            return None
        s1, l1 = self._dec(ino)
        s2 = shard_of(new_name, self.nshards, parent=new_parent)
        sr = lr = None
        if replaced_ino is not None:
            sr, lr = self._dec(replaced_ino)
        self._check_shard_writable(s1, "rename of %r" % old_name)
        self._check_shard_writable(s2, "rename to %r" % new_name)
        if sr is not None:
            self._check_shard_writable(sr, "replace of %r" % new_name)
        if s1 == s2 or self._has_live_mappings(s1, l1):
            # Stays on its shard -- possibly *misplaced* relative to the
            # new name's hash owner (live mappings must keep addressing
            # the same local inode); lookup's probe fallback finds it.
            if lr is None or sr == s1:
                self.shards[s1].rename(ctx, p1[s1], old_name, p2[s1],
                                       new_name, l1, replaced_ino=lr)
                return None
            self._rename_swap(ctx, s1, l1, p1, old_name, p2, new_name,
                              sr, lr)
            return None
        return self._rename_migrate(ctx, s1, l1, p1, old_name, s2, p2,
                                    new_name, sr, lr)

    def _has_live_mappings(self, s, local):
        live = getattr(self.shards[s], "_live_mappings", None)
        return bool(live is not None and live(local))

    def _next_intent_seq(self):
        self._intent_seq += 1
        return self._intent_seq

    def _rename_dir(self, ctx, p1, old_name, p2, new_name, locs):
        seq = self._next_intent_seq()
        self._append_intent(ctx, {
            "kind": "begin", "op": "dirmv", "seq": seq, "old": old_name,
            "new": new_name, "p1s": list(p1), "p2s": list(p2),
            "ds": list(locs),
        })
        # Shard 0 commits the move; mirrors follow; recovery rolls the
        # stragglers forward iff shard 0's rename landed.
        for s in range(self.nshards):
            self.shards[s].rename(ctx, p1[s], old_name, p2[s], new_name,
                                  locs[s])
        self._append_intent(ctx, {"kind": "done", "seq": seq})

    def _rename_swap(self, ctx, s1, l1, p1, old_name, p2, new_name, sr, lr):
        """In-place rename over a victim living on a different shard."""
        seq = self._next_intent_seq()
        self._append_intent(ctx, {
            "kind": "begin", "op": "swap", "seq": seq, "s1": s1, "l1": l1,
            "p1l": p1[s1], "old": old_name, "p2l": p2[s1], "new": new_name,
            "sr": sr, "lr": lr, "rp2l": p2[sr],
        })
        self.shards[sr].unlink(ctx, p2[sr], new_name, lr)
        self.shards[s1].rename(ctx, p1[s1], old_name, p2[s1], new_name, l1)
        self._append_intent(ctx, {"kind": "done", "seq": seq})

    def _rename_migrate(self, ctx, s1, l1, p1, old_name, s2, p2, new_name,
                        sr, lr):
        """The journaled cross-shard migration; returns the new global ino."""
        src, dst = self.shards[s1], self.shards[s2]
        seq = self._next_intent_seq()
        tmp = "%smig_%d" % (HIDDEN_PREFIX, seq)
        rec = {
            "kind": "begin", "op": "xmv", "seq": seq, "s1": s1, "l1": l1,
            "p1l": p1[s1], "old": old_name, "s2": s2, "p2l": p2[s2],
            "new": new_name, "tmp": tmp, "sr": sr, "lr": lr,
            "rp2l": p2[sr] if sr is not None else None,
        }
        self._append_intent(ctx, rec)
        self._crash_point("intent")
        size = src.getattr(ctx, l1).size
        data = src.read(ctx, l1, 0, size) if size else b""
        tl = dst.create_file(ctx, p2[s2], tmp)
        if data:
            dst.write(ctx, tl, 0, data, eager=True)
        dst.fsync(ctx, tl)
        self._crash_point("copy")
        self._append_intent(ctx, {"kind": "copied", "seq": seq, "tl": tl})
        self._crash_point("copied")
        if lr is not None and sr != s2:
            self.shards[sr].unlink(ctx, p2[sr], new_name, lr)
            self._crash_point("victim-unlinked")
        dst.rename(ctx, p2[s2], tmp, p2[s2], new_name, tl,
                   replaced_ino=lr if (lr is not None and sr == s2) else None)
        self._crash_point("linked")
        src.unlink(ctx, p1[s1], old_name, l1)
        self._crash_point("unlinked")
        self._append_intent(ctx, {"kind": "done", "seq": seq})
        self.env.stats.bump("shard_cross_renames")
        return self._enc(tl, s2)

    def readdir(self, ctx, ino):
        locals_ = self._plocals(ino)
        merged = {}
        for s, inner in enumerate(self.shards):
            for name, local in inner.readdir(ctx, locals_[s]):
                if name.startswith(HIDDEN_PREFIX):
                    continue
                gino = self._dir_gino.get((s, local))
                if gino is not None:
                    merged[name] = gino  # same from every mirror
                else:
                    merged[name] = self._enc(local, s)
        return sorted(merged.items())

    def getattr(self, ctx, ino):
        s, local = self._dec(ino)
        st = self.shards[s].getattr(ctx, local)
        return FileStat(ino, st.kind, st.size, st.nlink, st.mtime_ns,
                        st.ctime_ns)

    # -- data path -----------------------------------------------------------

    def submit(self, ctx, req):
        s, local = self._dec(req.ino)
        if req.op == OP_WRITE:
            self._check_shard_writable(s, "write to inode %d" % req.ino)
        stats = self.env.stats
        stats.bump("sharded_reqs@dev%d" % s)
        stats.bump("sharded_reqs_total")
        gino = req.ino
        req.ino = local
        try:
            return self.shards[s].submit(ctx, req)
        finally:
            req.ino = gino

    def write_iter(self, ctx, req):
        return self.submit(ctx, req)

    def read_iter(self, ctx, req):
        return self.submit(ctx, req)

    def sync_iter(self, ctx, req):
        return self.submit(ctx, req)

    def fsync(self, ctx, ino):
        s, local = self._dec(ino)
        self.shards[s].fsync(ctx, local)

    def fdatasync(self, ctx, ino):
        s, local = self._dec(ino)
        self.shards[s].fdatasync(ctx, local)

    def truncate(self, ctx, ino, new_size):
        s, local = self._dec(ino)
        self._check_shard_writable(s, "truncate of inode %d" % ino)
        self.shards[s].truncate(ctx, local, new_size)

    # -- memory-mapped I/O ---------------------------------------------------

    def mmap(self, ctx, ino):
        s, local = self._dec(ino)
        return self.shards[s].mmap(ctx, local)

    def mmap_atomic(self, ctx, ino, length=None, policy="auto",
                    log_blocks=4, log_checksums=True):
        s, local = self._dec(ino)
        self._check_shard_writable(s, "atomic mmap of inode %d" % ino)
        return self.shards[s].mmap_atomic(
            ctx, local, length=length, policy=policy, log_blocks=log_blocks,
            log_checksums=log_checksums)

    def atomic_mapping(self, ino):
        s, local = self._dec(ino)
        mapping = getattr(self.shards[s], "atomic_mapping", None)
        return mapping(local) if mapping is not None else None

    # -- health / errors -----------------------------------------------------

    @property
    def wb_err(self):
        return self._wb_err_view

    @property
    def shard_states(self):
        """Per-device observable health states, in shard order."""
        return [h.observable_state for h in self.shard_health]

    @property
    def aggregate_observable(self):
        """What fleet monitoring reports for the mount: the *worst*
        shard state, with the whole mount only as unhealthy as its most
        degraded device."""
        worst = HEALTHY
        rank = {HEALTHY: 0, OVERLOADED: 1, DEGRADED_RO: 2, ISOLATED: 3}
        for state in self.shard_states:
            if rank[state] > rank[worst]:
                worst = state
        return worst

    def shard_mttr_ns(self):
        """Per-device mean-time-to-recovery, in shard order (None for
        shards that never degraded or never recovered)."""
        return [h.mttr_ns() for h in self.shard_health]

    def scrub(self, ctx):
        from repro.fs.scrub import ScrubReport

        merged = ScrubReport(self.name, started_ns=ctx.now)
        for s, inner in enumerate(self.shards):
            report = inner.scrub(ctx)
            self.shard_health[s].scrub_result(ctx.now, report)
            merged.scanned_lines += report.scanned_lines
            merged.bad_lines_found += report.bad_lines_found
            merged.repaired_lines += report.repaired_lines
            merged.isolated_lines += report.isolated_lines
            merged.quarantined_blocks.extend(report.quarantined_blocks)
            merged.unrecovered_lines += report.unrecovered_lines
        merged.finished_ns = ctx.now
        return merged

    # -- lifecycle -----------------------------------------------------------

    def unmount(self, ctx):
        for inner in self.shards:
            inner.unmount(ctx)

    def drop_caches(self):
        for inner in self.shards:
            inner.drop_caches()

    def free_data_bytes(self, ctx):
        total = 0
        for inner in self.shards:
            free = inner.free_data_bytes(ctx)
            if free is None:
                return None
            total += free
        return total


def build_sharded(env, base_name, config, device_size, hinfs_config=None,
                  nshards=2):
    """Fresh M-device stack: one domain'd NVMMDevice + inner fs per shard.

    ``device_size`` is *per device* -- capacity and writer-slot bandwidth
    both scale with the shard count, which is the point of the refactor.
    """
    from repro.nvmm.device import NVMMDevice

    factory = _shard_factory(base_name)
    shards = []
    for s in range(nshards):
        device = NVMMDevice(env, config, device_size, domain="dev%d" % s)
        shards.append(factory(env, device, config, hinfs_config))
    return ShardedFS(env, shards)


def mount_sharded(env, devices, base_name, config, hinfs_config=None):
    """Remount a sharded stack from M existing (crashed) devices."""
    from repro.core.hinfs import HiNFS
    from repro.fs.pmfs import PMFS

    shards = []
    for device in devices:
        if base_name.startswith("hinfs"):
            shards.append(HiNFS.mount(env, device, config,
                                      hconfig=hinfs_config))
        else:
            shards.append(PMFS.mount(env, device, config))
    return ShardedFS.mount(env, shards)


def _shard_factory(base_name):
    from repro.core.hinfs import HiNFS, make_hinfs_nclfw, make_hinfs_wb
    from repro.fs.pmfs import PMFS

    if base_name in ("hinfs", "hinfs-nclfw", "hinfs-wb"):
        hfactory = {"hinfs": HiNFS, "hinfs-nclfw": make_hinfs_nclfw,
                    "hinfs-wb": make_hinfs_wb}[base_name]

        def make(env, device, config, hconfig):
            return hfactory(env, device, config, hconfig=hconfig)
    elif base_name == "pmfs":
        def make(env, device, config, _hconfig):
            return PMFS(env, device, config)
    else:
        raise ValueError("cannot shard %r (direct-access stacks only)"
                         % base_name)
    return make

"""File systems of the reproduction.

Five concrete file systems, matching the paper's Table 3 plus HiNFS:

- :mod:`repro.fs.pmfs` -- PMFS: direct access to NVMM, cacheline-granular
  metadata undo journal (the paper's primary baseline; HiNFS is built on
  top of its structures).
- :mod:`repro.fs.ext4dax` -- EXT4 with the DAX patch: direct data access,
  cache-oriented journaled metadata.
- :mod:`repro.fs.extfs` -- EXT2/EXT4 on the NVMMBD block-device emulator,
  going through the page cache and the generic block layer.
- :mod:`repro.core` -- HiNFS itself (the paper's contribution).

All of them sit under :class:`repro.fs.vfs.VFS`, the syscall surface that
workloads drive.
"""

from repro.fs.base import FileSystem
from repro.fs.errors import (
    FSError,
    BadFileDescriptor,
    ExistsError,
    IsADirectory,
    NoSpace,
    NotADirectory,
    NotFound,
)
from repro.fs.flags import O_CREAT, O_RDONLY, O_RDWR, O_SYNC, O_TRUNC, O_WRONLY
from repro.fs.vfs import VFS

__all__ = [
    "BadFileDescriptor",
    "ExistsError",
    "FSError",
    "FileSystem",
    "IsADirectory",
    "NoSpace",
    "NotADirectory",
    "NotFound",
    "O_CREAT",
    "O_RDONLY",
    "O_RDWR",
    "O_SYNC",
    "O_TRUNC",
    "O_WRONLY",
    "VFS",
]

"""The inode-level interface every concrete file system implements.

The :class:`repro.fs.vfs.VFS` handles paths, file descriptors, and
syscall-overhead accounting, then calls into this interface.  Inode
numbers are opaque positive integers; inode 1 is always the root
directory.

Data-path operations travel as :class:`repro.io.IORequest` objects
through :meth:`FileSystem.submit`, which dispatches to the per-fs
``write_iter``/``read_iter`` hooks; the positional ``read``/``write``
methods remain as compatibility shims that build a single-iovec request.
"""

from repro.io import OP_READ, OP_SYNC, OP_WRITE, IORequest

ROOT_INO = 1

S_IFREG = 1
S_IFDIR = 2


class FileStat:
    """stat(2)-style attributes returned by :meth:`FileSystem.getattr`."""

    __slots__ = ("ino", "kind", "size", "nlink", "mtime_ns", "ctime_ns")

    def __init__(self, ino, kind, size, nlink=1, mtime_ns=0, ctime_ns=0):
        self.ino = ino
        self.kind = kind
        self.size = size
        self.nlink = nlink
        self.mtime_ns = mtime_ns
        self.ctime_ns = ctime_ns

    @property
    def is_dir(self):
        return self.kind == S_IFDIR

    def __repr__(self):
        return "FileStat(ino=%d, kind=%d, size=%d)" % (self.ino, self.kind, self.size)


class FileSystem:
    """Abstract inode-level file system.

    Every method takes the calling simulated thread's ``ctx`` first and
    charges all media and software costs to it.  Implementations must be
    functionally correct (reads return the newest written bytes).
    """

    name = "abstract"

    #: Set by :meth:`mount` implementations when the image could not be
    #: recovered cleanly (e.g. the journal region has bad media lines).
    #: The VFS flips such a mount read-only (``errors=remount-ro``).
    degraded_reason = None

    # -- namespace ------------------------------------------------------

    def lookup(self, ctx, parent_ino, name):
        """Return the inode number for ``name`` in directory ``parent_ino``
        or ``None`` when absent."""
        raise NotImplementedError

    def create_file(self, ctx, parent_ino, name):
        """Create an empty regular file; returns the new inode number."""
        raise NotImplementedError

    def mkdir(self, ctx, parent_ino, name):
        """Create a directory; returns the new inode number."""
        raise NotImplementedError

    def unlink(self, ctx, parent_ino, name, ino):
        """Remove a regular file."""
        raise NotImplementedError

    def rmdir(self, ctx, parent_ino, name, ino):
        """Remove an (empty) directory."""
        raise NotImplementedError

    def rename(self, ctx, old_parent, old_name, new_parent, new_name, ino,
               replaced_ino=None):
        """Move ``ino`` from one dirent to another, atomically.

        ``replaced_ino`` is the inode currently at the destination (to be
        released), or ``None`` when the destination is free.
        """
        raise NotImplementedError

    def readdir(self, ctx, ino):
        """Return a list of ``(name, ino)`` pairs."""
        raise NotImplementedError

    def getattr(self, ctx, ino):
        """Return a :class:`FileStat`."""
        raise NotImplementedError

    # -- file I/O ---------------------------------------------------------

    #: Request-targeted fault injector
    #: (:class:`repro.faults.reqfault.RequestFaultInjector`) or None.
    request_faults = None

    def submit(self, ctx, req):
        """Execute one :class:`~repro.io.IORequest` against this fs.

        Dispatches to :meth:`write_iter`/:meth:`read_iter`/
        :meth:`sync_iter`.  Writes return the number of bytes written;
        reads return the flat bytes (the VFS scatters them back into the
        caller's iovecs); sync requests return 0 -- or, when the request
        allows it (``eager=False``), a pending
        :class:`~repro.engine.locks.VCompletion` the submission ring
        resolves into a CQE when the persist actually lands.
        """
        if req.op == OP_WRITE:
            return self.write_iter(ctx, req)
        if req.op == OP_SYNC:
            return self.sync_iter(ctx, req)
        return self.read_iter(ctx, req)

    def write_iter(self, ctx, req):
        """Write the request's gathered payload at ``req.offset``.

        ``req.eager`` requests synchronous persistence (O_SYNC / sync
        mount): the bytes must be durable when the call returns.  Returns
        the number of bytes written.
        """
        raise NotImplementedError

    def read_iter(self, ctx, req):
        """Return up to ``req.total_bytes`` bytes from ``req.offset``
        (short at EOF) as one flat buffer."""
        raise NotImplementedError

    # Compatibility shims: internal callers (recovery, crash checking,
    # tests) that address the fs below the VFS still use the positional
    # signatures; each builds a single-iovec request.

    def read(self, ctx, ino, offset, count):
        """Return up to ``count`` bytes from ``offset`` (short at EOF)."""
        req = IORequest(self.env.next_req_id(), OP_READ, ino, [count], offset)
        return self.read_iter(ctx, req)

    def write(self, ctx, ino, offset, data, eager=False):
        """Write ``data`` at ``offset``.

        ``eager=True`` requests synchronous persistence (O_SYNC / sync
        mount): the bytes must be durable when the call returns.  Returns
        the number of bytes written.
        """
        req = IORequest(self.env.next_req_id(), OP_WRITE, ino, [data], offset,
                        eager=eager)
        return self.write_iter(ctx, req)

    def sync_iter(self, ctx, req):
        """Execute one OP_SYNC request.

        The base behaviour is fully synchronous: the fsync (or, with
        ``req.datasync``, the fdatasync) work happens in the foreground
        and 0 is returned.  File systems whose persist point genuinely
        lands later (HiNFS async flushes, jbd2 commits) may -- when
        ``req.eager`` is False -- return a pending
        :class:`~repro.engine.locks.VCompletion` instead, letting the
        ring complete the CQE at the persist's virtual time.
        """
        if req.datasync:
            self.fdatasync(ctx, req.ino)
        else:
            self.fsync(ctx, req.ino)
        return 0

    def fsync(self, ctx, ino):
        """Make all of the inode's data and metadata durable."""
        raise NotImplementedError

    def fdatasync(self, ctx, ino):
        """fdatasync(2): make the inode's *data* (and any metadata needed
        to retrieve it, e.g. its size) durable; other metadata -- and on
        the journaling stacks the metadata commit for pure overwrites --
        may persist lazily.  The default is a full fsync."""
        self.fsync(ctx, ino)

    def truncate(self, ctx, ino, new_size):
        """Grow or shrink the file to ``new_size`` bytes."""
        raise NotImplementedError

    # -- deferred writeback errors ----------------------------------------

    @property
    def wb_err(self):
        """The file system's errseq-style writeback-error map (lazy).

        The map is owned by the underlying device, not the mount, so an
        unreported writeback error survives unmount/remount -- the model
        of a persistent media error log (NVDIMM address-range-scrub
        badblock records): remounting the same device cannot make an
        unacknowledged loss disappear.
        """
        errs = getattr(self, "_wb_err_map", None)
        if errs is None:
            from repro.faults.errseq import ErrseqMap

            dev = getattr(self, "device", None)
            if dev is None:
                dev = getattr(getattr(self, "bdev", None), "nvmm", None)
            if dev is not None:
                errs = getattr(dev, "wb_err_log", None)
                if errs is None:
                    errs = dev.wb_err_log = ErrseqMap()
            else:
                errs = ErrseqMap()
            self._wb_err_map = errs
        return errs

    def note_wb_error(self, ino):
        """Record an asynchronous writeback failure against ``ino``.

        Called by background flushers when a persist fails after the
        write was already acknowledged; the next ``fsync``/``close`` of
        the file reports EIO exactly once per fd.  ``wb_error_hook`` (set
        by the VFS) also fires, feeding the remount-ro error threshold.
        """
        self.wb_err.record(ino)
        hook = getattr(self, "wb_error_hook", None)
        if hook is not None:
            hook(ino)

    # -- integrity ---------------------------------------------------------

    def scrub(self, ctx):
        """Walk allocated extents, verify/repair bad media, return a
        :class:`~repro.fs.scrub.ScrubReport`.

        The base implementation builds the right scrubber for this fs
        (:func:`repro.fs.scrub.scrubber_for`) and runs one pass; file
        systems with no scrubbable substrate return a clean empty report.
        """
        from repro.fs.scrub import scrubber_for

        scrubber = scrubber_for(self)
        return scrubber.run(ctx)

    # -- lifecycle --------------------------------------------------------

    def unmount(self, ctx):
        """Flush all volatile state (HiNFS flushes its DRAM buffer here)."""

    def drop_caches(self):
        """Discard clean cached state (the paper clears the OS page cache
        before every measured run).  Flush first via :meth:`unmount`."""

    def free_data_bytes(self, ctx):
        """Remaining data capacity, for workload sizing (optional)."""
        return None

"""File-system error hierarchy (errno-style).

Each class carries its ``errno`` so the submission/completion ring can
report failures as io_uring does (CQE ``res = -errno``) while the sync
wrappers keep raising the exception object itself.
"""

import errno as _errno


class FSError(Exception):
    """Base class for all file-system errors."""

    errno = _errno.EIO


class NotFound(FSError):
    """ENOENT: path or inode does not exist."""

    errno = _errno.ENOENT


class ExistsError(FSError):
    """EEXIST: attempt to create something that already exists."""

    errno = _errno.EEXIST


class NotADirectory(FSError):
    """ENOTDIR: a path component is not a directory."""

    errno = _errno.ENOTDIR


class IsADirectory(FSError):
    """EISDIR: file operation applied to a directory."""

    errno = _errno.EISDIR


class BadFileDescriptor(FSError):
    """EBADF: unknown, closed, or wrongly-opened file descriptor."""

    errno = _errno.EBADF


class NoSpace(FSError):
    """ENOSPC: the device ran out of blocks or inodes."""

    errno = _errno.ENOSPC


class InvalidArgument(FSError):
    """EINVAL: malformed offset, count, or flag combination."""

    errno = _errno.EINVAL


class NotEmpty(FSError):
    """ENOTEMPTY: directory removal with remaining entries."""

    errno = _errno.ENOTEMPTY


class ReadOnly(FSError):
    """EROFS / EBADF for writes: descriptor not opened for writing, or
    the mount has degraded to read-only (``errors=remount-ro``)."""

    errno = _errno.EROFS


class TryAgain(FSError):
    """EAGAIN: the admission controller shed this request under overload.

    The serving layer is saturated (DRAM buffer occupancy or NVMM writer
    slots past their high watermark) and the request's tenant is in the
    shed class; the client is expected to back off and retry (see
    :class:`repro.faults.policy.RetryPolicy`) rather than queue behind a
    collapsing backlog.
    """

    errno = _errno.EAGAIN


class MediaError(FSError):
    """EIO: the NVMM media failed a read or a persist.

    Raised when an access touches a cacheline the fault model has marked
    bad (uncorrectable), or when a transiently-failing line exhausted its
    retry budget.  ``addr``/``length`` locate the failed access; ``lines``
    lists the failing cacheline indices when known.
    """

    def __init__(self, message, addr=None, length=None, lines=()):
        super().__init__(message)
        self.addr = addr
        self.length = length
        self.lines = tuple(lines)

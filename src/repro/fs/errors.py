"""File-system error hierarchy (errno-style)."""


class FSError(Exception):
    """Base class for all file-system errors."""


class NotFound(FSError):
    """ENOENT: path or inode does not exist."""


class ExistsError(FSError):
    """EEXIST: attempt to create something that already exists."""


class NotADirectory(FSError):
    """ENOTDIR: a path component is not a directory."""


class IsADirectory(FSError):
    """EISDIR: file operation applied to a directory."""


class BadFileDescriptor(FSError):
    """EBADF: unknown, closed, or wrongly-opened file descriptor."""


class NoSpace(FSError):
    """ENOSPC: the device ran out of blocks or inodes."""


class InvalidArgument(FSError):
    """EINVAL: malformed offset, count, or flag combination."""


class NotEmpty(FSError):
    """ENOTEMPTY: directory removal with remaining entries."""


class ReadOnly(FSError):
    """EROFS / EBADF for writes: descriptor not opened for writing, or
    the mount has degraded to read-only (``errors=remount-ro``)."""


class MediaError(FSError):
    """EIO: the NVMM media failed a read or a persist.

    Raised when an access touches a cacheline the fault model has marked
    bad (uncorrectable), or when a transiently-failing line exhausted its
    retry budget.  ``addr``/``length`` locate the failed access; ``lines``
    lists the failing cacheline indices when known.
    """

    def __init__(self, message, addr=None, length=None, lines=()):
        super().__init__(message)
        self.addr = addr
        self.length = length
        self.lines = tuple(lines)

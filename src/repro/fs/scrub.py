"""Background integrity scrubbing: verify, repair, or isolate bad media.

The media fault model leaves poisoned cachelines behind (uncorrectable
errors, exhausted persist retries).  Left alone they degrade the mount
(errors=remount-ro) and eventually isolate it.  The scrubber is the
recovery half of that state machine: it walks the file system's
allocated extents, finds every line the :class:`~repro.faults.media.
MediaFaultModel` marks bad, and handles each one:

- **Repair**: metadata regions are replicated in DRAM (the superblock
  object, the journal generation header, the inode-table mirror, the
  block-map mirrors, the directory mirrors) and file data may live in
  the DRAM write buffer (HiNFS) or the OS page cache (the ext stacks).
  When a replica exists the line is healed and rewritten in place --
  writing PMEM clears the poison, exactly like a controller-level ECC
  scrub.  Journal slots are regenerable by construction (stale
  generations are ignored at scan time), so bad slots heal to zero.
- **Isolate**: file data with no DRAM copy is genuinely lost.  The
  readable lines of the block are salvaged into a freshly allocated
  block, the lost lines read back as zeros, the block map is remapped
  (journaled), the failing block is quarantined in the allocator's
  badblocks list, and the loss is recorded against the inode's errseq
  so the next fsync/close reports EIO -- data lost, error not.

A pass that accounts for every bad line returns a *clean*
:class:`ScrubReport`; the VFS feeds it to the mount-health FSM, whose
recovery edge returns a degraded mount to HEALTHY.  The badblocks list
is surfaced through the trace spine as a zero-duration ``scrub``-layer
marker span.
"""

from contextlib import contextmanager

from repro.engine.clock import NS_PER_SEC
from repro.engine.background import BackgroundTask
from repro.engine.stats import CAT_OTHERS, CAT_READ_ACCESS
from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE
from repro.obs.trace import LAYER_SCRUB

LINES_PER_BLOCK = BLOCK_SIZE // CACHELINE_SIZE


class ScrubReport:
    """Outcome of one scrub pass over one file system."""

    __slots__ = ("fs_name", "started_ns", "finished_ns", "scanned_lines",
                 "bad_lines_found", "repaired_lines", "isolated_lines",
                 "quarantined_blocks", "unrecovered_lines")

    def __init__(self, fs_name, started_ns=0):
        self.fs_name = fs_name
        self.started_ns = started_ns
        self.finished_ns = started_ns
        self.scanned_lines = 0
        self.bad_lines_found = 0
        #: Lines healed and rewritten from a DRAM replica, in place.
        self.repaired_lines = 0
        #: Lines whose content was lost; their block was remapped or
        #: quarantined and the loss recorded (errseq).
        self.isolated_lines = 0
        #: The badblocks list this pass grew: blocks pulled from
        #: circulation, in block order.
        self.quarantined_blocks = []
        #: Bad lines the pass could not account for (should be zero).
        self.unrecovered_lines = 0

    @property
    def clean(self):
        """Every bad line was repaired or isolated: nothing is left that
        could fail again, so the mount may recover to HEALTHY."""
        return self.unrecovered_lines == 0

    @property
    def duration_ns(self):
        return self.finished_ns - self.started_ns

    def as_dict(self):
        return {
            "fs": self.fs_name,
            "scanned_lines": self.scanned_lines,
            "bad_lines_found": self.bad_lines_found,
            "repaired_lines": self.repaired_lines,
            "isolated_lines": self.isolated_lines,
            "quarantined_blocks": list(self.quarantined_blocks),
            "unrecovered_lines": self.unrecovered_lines,
            "clean": self.clean,
            "duration_ns": self.duration_ns,
        }

    def __repr__(self):
        return ("ScrubReport(%s, bad=%d, repaired=%d, isolated=%d, "
                "clean=%s)" % (self.fs_name, self.bad_lines_found,
                               self.repaired_lines, self.isolated_lines,
                               self.clean))


def scrubber_for(fs):
    """Build the right scrubber for a concrete file system."""
    if hasattr(fs, "sb") and hasattr(fs, "journal") and hasattr(fs, "itable"):
        return PmfsScrubber(fs)
    if getattr(fs, "bdev", None) is not None:
        return ExtScrubber(fs)
    return NullScrubber(fs)


class _ScrubberBase:
    """Shared walk/report plumbing; subclasses implement the regions."""

    def __init__(self, fs):
        self.fs = fs
        self.env = fs.env

    def _device(self):
        raise NotImplementedError

    def run(self, ctx):
        device = self._device()
        report = ScrubReport(self.fs.name, getattr(ctx, "now", 0))
        model = getattr(device, "fault_model", None)
        with self._span(ctx, model):
            self._walk(ctx, device, model, report)
        report.finished_ns = getattr(ctx, "now", report.started_ns)
        self.env.stats.bump("scrub_passes")
        self.env.stats.bump("scrub_repaired_lines", report.repaired_lines)
        self.env.stats.bump("scrub_isolated_lines", report.isolated_lines)
        self.env.stats.bump("scrub_quarantined_blocks",
                            len(report.quarantined_blocks))
        self._trace_badblocks(ctx, report)
        return report

    @contextmanager
    def _span(self, ctx, model):
        span = getattr(ctx, "span", None)
        if span is None or getattr(ctx, "free", False):
            yield None
            return
        meta = None
        if self.env.trace is not None:
            meta = {"bad_lines": len(model.bad_lines) if model else 0}
        with span("scrub", layer=LAYER_SCRUB, meta=meta) as sp:
            yield sp

    def _trace_badblocks(self, ctx, report):
        """Surface the grown badblocks list as a zero-duration marker."""
        ring = self.env.trace
        if ring is None or not report.quarantined_blocks:
            return
        now = getattr(ctx, "now", 0)
        sp = ring.begin("scrub:badblocks", getattr(ctx, "name", "scrub"),
                        now, req_id=0, layer=LAYER_SCRUB,
                        meta={"blocks": list(report.quarantined_blocks)})
        sp.close(now)
        ring.record(sp)

    def _walk(self, ctx, device, model, report):
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------

    @staticmethod
    def _lines_of_block(block):
        first = block * LINES_PER_BLOCK
        return range(first, first + LINES_PER_BLOCK)

    def _charge_scan(self, ctx, report, nlines):
        report.scanned_lines += nlines
        ctx.charge(self.fs.config.load_cost_ns(nlines * CACHELINE_SIZE),
                   CAT_READ_ACCESS)

    def _salvage_block(self, device, model, block, overlay=None):
        """Raw block content with bad lines zeroed (or overlaid from a
        DRAM replica); returns ``(bytes, lost_relative_lines)``."""
        base = block * BLOCK_SIZE
        out = bytearray(device.mem.read(base, BLOCK_SIZE))
        lost = []
        for r in range(LINES_PER_BLOCK):
            line = block * LINES_PER_BLOCK + r
            if line not in model.bad_lines:
                continue
            lo = r * CACHELINE_SIZE
            replica = overlay(r) if overlay is not None else None
            if replica is not None:
                out[lo:lo + CACHELINE_SIZE] = replica
            else:
                out[lo:lo + CACHELINE_SIZE] = b"\0" * CACHELINE_SIZE
                lost.append(r)
        return bytes(out), lost


class NullScrubber(_ScrubberBase):
    """For file systems with no scrubbable substrate: trivially clean."""

    def run(self, ctx):
        report = ScrubReport(self.fs.name, getattr(ctx, "now", 0))
        self.env.stats.bump("scrub_passes")
        return report


class PmfsScrubber(_ScrubberBase):
    """Scrubber for the PMFS on-NVMM layout (PMFS, HiNFS, EXT4-DAX).

    Every metadata region has an exact DRAM replica, so metadata always
    repairs in place; file data repairs from the HiNFS write buffer when
    the bad line is DRAM-valid there and is isolated otherwise.
    """

    def _device(self):
        return self.fs.device

    def _walk(self, ctx, device, model, report):
        fs = self.fs
        sb = fs.sb
        # Scan cost: the allocated extents (metadata regions + allocated
        # data blocks) are read end to end.
        allocated = sb.data_start + fs.balloc.used_count
        self._charge_scan(ctx, report, allocated * LINES_PER_BLOCK)
        if model is None or not model.bad_lines:
            return
        bad = sorted(model.bad_lines)
        report.bad_lines_found = len(bad)
        owners = self._owner_maps()
        by_block = {}
        for line in bad:
            by_block.setdefault(line // LINES_PER_BLOCK, []).append(line)
        for block in sorted(by_block):
            lines = by_block[block]
            if block == 0:
                self._repair_superblock(ctx, device, model, lines, report)
            elif sb.journal_start <= block < sb.inode_table_start:
                self._repair_journal(ctx, device, model, lines, report)
            elif sb.inode_table_start <= block < sb.data_start:
                self._repair_itable(ctx, device, model, lines, report)
            elif sb.data_start <= block < sb.total_blocks:
                self._handle_data_block(ctx, device, model, block, lines,
                                        owners, report)
            else:
                report.unrecovered_lines += len(lines)

    # -- metadata replicas ----------------------------------------------

    def _repair_superblock(self, ctx, device, model, lines, report):
        for line in lines:
            model.heal_line(line)
        device.write_persistent(
            ctx, 0, self.fs.sb.pack().ljust(BLOCK_SIZE, b"\0"), CAT_OTHERS)
        report.repaired_lines += len(lines)

    def _repair_journal(self, ctx, device, model, lines, report):
        """Journal slots are regenerable: stale-generation entries are
        ignored at scan time, so a bad slot heals to zero; the header
        line rewrites from the in-DRAM generation."""
        journal = self.fs.journal
        for line in lines:
            model.heal_line(line)
            addr = line * CACHELINE_SIZE
            if addr == journal.base_addr:
                device.write_persistent(ctx, addr, journal._header_bytes(),
                                        CAT_OTHERS)
            else:
                device.write_persistent(ctx, addr, b"\0" * CACHELINE_SIZE,
                                        CAT_OTHERS)
        report.repaired_lines += len(lines)

    def _repair_itable(self, ctx, device, model, lines, report):
        """Rebuild inode-table lines from the DRAM mirror.  An inode slot
        is 256 B = 4 lines, so each bad line falls inside exactly one
        slot; free slots rebuild as zeros."""
        from repro.fs.pmfs.layout import INODE_SIZE
        itable = self.fs.itable
        table_base = self.fs.sb.inode_table_start * BLOCK_SIZE
        for line in lines:
            model.heal_line(line)
            addr = line * CACHELINE_SIZE
            index = (addr - table_base) // INODE_SIZE
            ino = index + 1
            inode = itable._mirror.get(ino)
            if inode is None:
                slot = b"\0" * INODE_SIZE
            else:
                slot = (inode.pack_core()
                        + inode.pack_pointers()).ljust(INODE_SIZE, b"\0")
            off = (addr - table_base) % INODE_SIZE
            device.write_persistent(
                ctx, addr, slot[off:off + CACHELINE_SIZE], CAT_OTHERS)
        report.repaired_lines += len(lines)

    # -- data region ----------------------------------------------------

    def _owner_maps(self):
        """``nvmm_block -> owner`` over every live inode's block map."""
        fs = self.fs
        data, pointer = {}, {}
        for inode in fs.itable.live_inodes():
            blockmap = fs._map(inode.ino)
            for file_block, nvmm_block in sorted(blockmap.mapped_blocks()):
                data[nvmm_block] = (inode.ino, file_block)
            if inode.indirect:
                pointer[inode.indirect] = ("indirect", inode.ino)
            if inode.dindirect:
                pointer[inode.dindirect] = ("dindirect", inode.ino)
            for l1_index, l2 in sorted(blockmap._l2_blocks.items()):
                pointer[l2] = ("l2", inode.ino, l1_index)
        return {"data": data, "pointer": pointer}

    def _handle_data_block(self, ctx, device, model, block, lines, owners,
                           report):
        fs = self.fs
        pointer_owner = owners["pointer"].get(block)
        if pointer_owner is not None:
            self._repair_pointer_block(ctx, device, model, block, lines,
                                       pointer_owner, report)
            return
        data_owner = owners["data"].get(block)
        if data_owner is None:
            # Free block: nothing references it; heal the lines so raw
            # tools can touch it, but never trust it again.
            for line in lines:
                model.heal_line(line)
            device.write_persistent(ctx, block * BLOCK_SIZE,
                                    b"\0" * BLOCK_SIZE, CAT_OTHERS)
            fs.balloc.quarantine(block)
            report.quarantined_blocks.append(block)
            report.isolated_lines += len(lines)
            return
        ino, file_block = data_owner
        inode = fs.itable.get(ino)
        if inode is not None and inode.is_dir:
            self._repair_dirent_block(ctx, device, model, block, lines,
                                      ino, file_block, report)
            return
        self._repair_or_isolate_file_block(ctx, device, model, block, lines,
                                           ino, file_block, report)

    def _repair_pointer_block(self, ctx, device, model, block, lines, owner,
                              report):
        """Indirect/L1/L2 pointer blocks rebuild exactly from the block
        map's DRAM mirror."""
        from repro.fs.pmfs.layout import N_DIRECT, PTRS_PER_BLOCK
        import struct
        kind, ino = owner[0], owner[1]
        blockmap = self.fs._map(ino)
        ptrs = [0] * PTRS_PER_BLOCK
        if kind == "indirect":
            for i in range(PTRS_PER_BLOCK):
                ptrs[i] = blockmap._mirror.get(N_DIRECT + i, 0)
        elif kind == "dindirect":
            for i, l2 in blockmap._l2_blocks.items():
                ptrs[i] = l2
        else:
            l1_index = owner[2]
            base = N_DIRECT + PTRS_PER_BLOCK + l1_index * PTRS_PER_BLOCK
            for j in range(PTRS_PER_BLOCK):
                ptrs[j] = blockmap._mirror.get(base + j, 0)
        for line in lines:
            model.heal_line(line)
        device.write_persistent(
            ctx, block * BLOCK_SIZE,
            struct.pack("<%dQ" % PTRS_PER_BLOCK, *ptrs), CAT_OTHERS)
        report.repaired_lines += len(lines)

    def _repair_dirent_block(self, ctx, device, model, block, lines, ino,
                             file_block, report):
        """Dirent blocks rebuild exactly from the directory's DRAM mirror
        (``name -> (child_ino, slot)``)."""
        from repro.fs.pmfs.layout import (DIRENTS_PER_BLOCK, pack_dirent,
                                          pack_empty_dirent)
        directory = self.fs._dir(ino)
        by_slot = {slot: (name, child)
                   for name, (child, slot) in directory._entries.items()}
        out = bytearray()
        first_slot = file_block * DIRENTS_PER_BLOCK
        for s in range(DIRENTS_PER_BLOCK):
            entry = by_slot.get(first_slot + s)
            if entry is None:
                out.extend(pack_empty_dirent())
            else:
                name, child = entry
                out.extend(pack_dirent(child, name))
        for line in lines:
            model.heal_line(line)
        device.write_persistent(ctx, block * BLOCK_SIZE, bytes(out),
                                CAT_OTHERS)
        report.repaired_lines += len(lines)

    def _repair_or_isolate_file_block(self, ctx, device, model, block, lines,
                                      ino, file_block, report):
        """File data: repair lines the HiNFS write buffer still holds;
        salvage-and-remap the block when any line is genuinely lost."""
        fs = self.fs
        buffer = getattr(fs, "buffer", None)
        buffered = buffer.lookup(ino, file_block) if buffer is not None \
            else None

        def overlay(r):
            if buffered is None or not (buffered.bitmap.valid >> r) & 1:
                return None
            return buffer.read_from(ctx, buffered, r * CACHELINE_SIZE,
                                    CACHELINE_SIZE)

        content, lost = self._salvage_block(device, model, block,
                                            overlay=overlay)
        repaired = len(lines) - len(lost)
        if not lost:
            # Every bad line had a DRAM-valid copy: heal and rewrite in
            # place, like a controller ECC scrub.
            for line in lines:
                model.heal_line(line)
            device.write_persistent(ctx, block * BLOCK_SIZE, content,
                                    CAT_OTHERS)
            report.repaired_lines += repaired
            return
        # Data lost: move the salvageable bytes to a fresh block, remap
        # (journaled), quarantine the failing block, record the loss.
        new_block = fs._alloc_data_block()
        device.write_persistent(ctx, new_block * BLOCK_SIZE, content,
                                CAT_OTHERS)
        blockmap = fs._map(ino)
        tx = fs.journal.begin(ctx)
        blockmap.set(ctx, tx, file_block, new_block)
        fs.journal.commit(ctx, tx)
        if buffered is not None:
            buffered.nvmm_block = new_block
        for line in lines:
            model.heal_line(line)
        fs.balloc.quarantine(block)
        report.quarantined_blocks.append(block)
        report.repaired_lines += repaired
        report.isolated_lines += len(lost)
        fs.note_wb_error(ino)


class ExtScrubber(_ScrubberBase):
    """Scrubber for the block-based stacks (EXT2/EXT4 over NVMMBD).

    All namespace metadata lives in DRAM and metadata disk blocks carry
    regenerable content, so the reserved region always repairs; file
    data repairs from the OS page cache when the page is resident and is
    isolated (salvage + remap + quarantine + errseq) otherwise.
    """

    def _device(self):
        return self.fs.bdev.nvmm

    def _walk(self, ctx, device, model, report):
        fs = self.fs
        allocated = fs._reserved + fs.balloc.used_count
        self._charge_scan(ctx, report, allocated * LINES_PER_BLOCK)
        if model is None or not model.bad_lines:
            return
        bad = sorted(model.bad_lines)
        report.bad_lines_found = len(bad)
        owners = {}
        for ino in sorted(fs._inodes):
            inode = fs._inodes[ino]
            for file_block, disk in sorted(inode.blocks.items()):
                owners[disk] = (ino, file_block)
        by_block = {}
        for line in bad:
            by_block.setdefault(line // LINES_PER_BLOCK, []).append(line)
        for block in sorted(by_block):
            lines = by_block[block]
            if block >= fs.bdev.num_blocks:
                report.unrecovered_lines += len(lines)
            elif block < fs._reserved:
                # Metadata/journal area: content is regenerable (the
                # DRAM structures are authoritative); heal to zero.
                for line in lines:
                    model.heal_line(line)
                device.write_persistent(ctx, block * BLOCK_SIZE,
                                        b"\0" * BLOCK_SIZE, CAT_OTHERS)
                report.repaired_lines += len(lines)
            else:
                self._handle_data_block(ctx, device, model, block, lines,
                                        owners, report)

    def _handle_data_block(self, ctx, device, model, block, lines, owners,
                           report):
        fs = self.fs
        owner = owners.get(block)
        if owner is None:
            for line in lines:
                model.heal_line(line)
            device.write_persistent(ctx, block * BLOCK_SIZE,
                                    b"\0" * BLOCK_SIZE, CAT_OTHERS)
            fs.balloc.quarantine(block)
            report.quarantined_blocks.append(block)
            report.isolated_lines += len(lines)
            return
        ino, file_block = owner
        page = fs.cache.lookup(ctx, ino, file_block)
        if page is not None:
            # The whole page is resident: rewrite the block from it.
            for line in lines:
                model.heal_line(line)
            fs.bdev.write_block(ctx, block, bytes(page.data))
            report.repaired_lines += len(lines)
            return
        content, lost = self._salvage_block(device, model, block)
        try:
            new_block = fs.balloc.alloc()
        except Exception:
            # No room to remap: heal in place with the lost lines zeroed.
            new_block = None
        for line in lines:
            model.heal_line(line)
        if new_block is None:
            device.write_persistent(ctx, block * BLOCK_SIZE, content,
                                    CAT_OTHERS)
        else:
            device.write_persistent(ctx, new_block * BLOCK_SIZE, content,
                                    CAT_OTHERS)
            fs._inodes[ino].blocks[file_block] = new_block
            fs.balloc.quarantine(block)
            report.quarantined_blocks.append(block)
        report.repaired_lines += len(lines) - len(lost)
        report.isolated_lines += len(lost)
        fs.note_wb_error(ino)


class ScrubTask(BackgroundTask):
    """Periodic background scrubbing on its own virtual timeline.

    Runs a full pass every ``interval_ns`` (md's resync cadence, scaled
    down), feeding each report to the VFS's mount-health FSM, so a mount
    degraded by transient damage recovers without operator action.
    """

    def __init__(self, env, vfs, interval_ns=60 * NS_PER_SEC):
        super().__init__(env, "scrub")
        self.vfs = vfs
        self.interval_ns = interval_ns
        self._next_due_ns = interval_ns

    def quiesce(self):
        super().quiesce()
        self._next_due_ns = self.interval_ns

    def next_due_ns(self):
        return self._next_due_ns

    def run_due(self, horizon_ns):
        while self._next_due_ns <= horizon_ns:
            due = self._next_due_ns
            self._next_due_ns += self.interval_ns
            self.ctx.clock.advance_to(due)
            self.vfs.scrub(self.ctx)


__all__ = ["ScrubReport", "ScrubTask", "scrubber_for", "PmfsScrubber",
           "ExtScrubber", "NullScrubber"]

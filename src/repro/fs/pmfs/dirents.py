"""Directories: packed 64-byte dirents in the directory's data blocks.

Each dirent is exactly one cacheline, so adding or removing an entry is a
single journaled cacheline write.  A DRAM mirror (``name -> (ino, slot)``)
keeps lookups O(1); recovery rebuilds it by scanning the directory's data
blocks through its block map.
"""

from repro.fs.errors import ExistsError, NotFound
from repro.fs.pmfs.layout import (
    DIRENT_SIZE,
    DIRENTS_PER_BLOCK,
    block_addr,
    pack_dirent,
    pack_empty_dirent,
    unpack_dirent,
)
from repro.nvmm.config import BLOCK_SIZE


class Directory:
    """Dirent management for one directory inode."""

    def __init__(self, device, journal, blockmap, inode):
        self.device = device
        self.journal = journal
        self.blockmap = blockmap
        self.inode = inode
        # name -> (child_ino, global slot index)
        self._entries = {}
        self._free_slots = []

    # -- queries ----------------------------------------------------------

    def lookup(self, name):
        entry = self._entries.get(name)
        return entry[0] if entry else None

    def entries(self):
        return [(name, ino) for name, (ino, _) in self._entries.items()]

    def __len__(self):
        return len(self._entries)

    # -- slot addressing --------------------------------------------------

    def _slot_addr(self, ctx, tx, slot):
        dir_block = slot // DIRENTS_PER_BLOCK
        nvmm_block = self.blockmap.get(dir_block)
        if nvmm_block is None:
            nvmm_block = self.blockmap.balloc.alloc()
            self.device.mem.write_nocache(block_addr(nvmm_block), b"\0" * BLOCK_SIZE)
            self.blockmap.set(ctx, tx, dir_block, nvmm_block)
        return block_addr(nvmm_block) + (slot % DIRENTS_PER_BLOCK) * DIRENT_SIZE

    def _pick_slot(self):
        if self._free_slots:
            return self._free_slots.pop()
        slots_in_use = len(self._entries)
        return slots_in_use  # append at the tail

    # -- mutation -----------------------------------------------------------

    def add(self, ctx, tx, name, child_ino):
        """Insert a dirent (one journaled cacheline write)."""
        if name in self._entries:
            raise ExistsError(name)
        slot = self._pick_slot()
        addr = self._slot_addr(ctx, tx, slot)
        self.journal.journaled_write(ctx, tx, addr, pack_dirent(child_ino, name))
        self._entries[name] = (child_ino, slot)
        new_size = (slot + 1) * DIRENT_SIZE
        if new_size > self.inode.size:
            self.inode.size = new_size

    def remove(self, ctx, tx, name):
        """Invalidate a dirent (one journaled cacheline write)."""
        entry = self._entries.pop(name, None)
        if entry is None:
            raise NotFound(name)
        _, slot = entry
        addr = self._slot_addr(ctx, tx, slot)
        self.journal.journaled_write(ctx, tx, addr, pack_empty_dirent())
        self._free_slots.append(slot)
        return entry[0]

    # -- recovery -----------------------------------------------------------

    def load_from_nvmm(self):
        """Rebuild the mirror by scanning every dirent slot."""
        self._entries.clear()
        self._free_slots = []
        total_slots = self.inode.size // DIRENT_SIZE
        for slot in range(total_slots):
            dir_block = slot // DIRENTS_PER_BLOCK
            nvmm_block = self.blockmap.get(dir_block)
            if nvmm_block is None:
                self._free_slots.append(slot)
                continue
            addr = block_addr(nvmm_block) + (slot % DIRENTS_PER_BLOCK) * DIRENT_SIZE
            parsed = unpack_dirent(self.device.mem.read(addr, DIRENT_SIZE))
            if parsed is None:
                self._free_slots.append(slot)
            else:
                ino, name = parsed
                self._entries[name] = (ino, slot)

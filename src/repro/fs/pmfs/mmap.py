"""Direct memory-mapped I/O (paper Section 4.2).

PMFS (and HiNFS) map file data straight into the application's address
space: loads and stores hit NVMM through the CPU cache, so stores are
*volatile* until an ``msync`` flushes the dirtied cachelines.  HiNFS
additionally flushes the file's buffered DRAM blocks at ``mmap`` time
and pins its blocks Eager-Persistent until ``munmap`` (mapped stores
bypass the file-I/O path, so nothing may be staged in DRAM).
"""

from repro.engine.stats import CAT_READ_ACCESS, CAT_WRITE_ACCESS
from repro.fs.errors import InvalidArgument
from repro.fs.pmfs.layout import block_addr
from repro.nvmm.config import BLOCK_SIZE


class MappedRegion:
    """One live mapping of a file's blocks into user space."""

    def __init__(self, fs, ino):
        self.fs = fs
        self.ino = ino
        self.closed = False
        # (file_offset, nvmm_addr, length) ranges stored since the last
        # msync -- file offsets so a truncate can invalidate the tail.
        self._dirty_ranges = []

    def _require_open(self):
        if self.closed:
            raise InvalidArgument("mapping already unmapped")

    def _block_addr(self, ctx, file_block, allocate):
        blockmap = self.fs._map(self.ino)
        nvmm_block = blockmap.get(file_block)
        if nvmm_block is None:
            if not allocate:
                return None
            # Page fault on a hole: allocate and map the block.
            tx = self.fs.journal.begin(ctx)
            nvmm_block, _ = self.fs._ensure_mapped_for_mmap(ctx, tx, blockmap,
                                                            file_block)
            self.fs.journal.commit(ctx, tx)
        return block_addr(nvmm_block)

    # -- user-space access --------------------------------------------------

    def read(self, ctx, offset, length):
        """A load through the mapping (direct, single copy)."""
        self._require_open()
        out = bytearray()
        pos, remaining = offset, length
        while remaining > 0:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, remaining)
            base = self._block_addr(ctx, file_block, allocate=False)
            if base is None:
                out.extend(b"\0" * take)
                ctx.charge(self.fs.config.load_cost_ns(take), CAT_READ_ACCESS)
            else:
                out.extend(self.fs.device.read(ctx, base + in_off, take))
            pos += take
            remaining -= take
        return bytes(out)

    def write(self, ctx, offset, data):
        """A store through the mapping: cached, volatile until msync."""
        self._require_open()
        pos = offset
        view = memoryview(bytes(data))
        while view:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, len(view))
            base = self._block_addr(ctx, file_block, allocate=True)
            self.fs.device.write_cached(ctx, base + in_off, bytes(view[:take]),
                                        CAT_WRITE_ACCESS)
            self._dirty_ranges.append((pos, base + in_off, take))
            pos += take
            view = view[take:]
        inode = self.fs._inode(self.ino)
        if offset + len(data) > inode.size:
            # Grow the file (the kernel updates i_size on extending maps).
            tx = self.fs.journal.begin(ctx)
            inode.size = offset + len(data)
            inode.mtime = ctx.now
            self.fs.itable.write_core(ctx, tx, inode)
            self.fs.journal.commit(ctx, tx)
        return len(data)

    # -- synchronisation ------------------------------------------------------

    def msync(self, ctx):
        """Flush every cacheline dirtied through this mapping."""
        self._require_open()
        for _file_offset, addr, length in self._dirty_ranges:
            self.fs.device.clflush(ctx, addr, length, CAT_WRITE_ACCESS)
        self.fs.device.fence(ctx)
        flushed = len(self._dirty_ranges)
        self._dirty_ranges = []
        self.fs.env.stats.bump("msync_calls")
        return flushed

    def munmap(self, ctx):
        """Drop the mapping (an implicit msync, as on clean munmap)."""
        if self.closed:
            return
        self.msync(ctx)
        self.closed = True
        self.fs.on_munmap(self.ino, self)

    # -- truncate coherence ---------------------------------------------------

    def invalidate_past(self, new_size):
        """Drop dirty ranges past a new (smaller) EOF.

        Called by the file system under ``truncate``: the blocks past
        EOF are freed (and may be reallocated to another file), so a
        later ``msync`` must not flush -- and a stale range must not
        reference -- addresses this mapping no longer owns.
        """
        kept = []
        for file_offset, addr, length in self._dirty_ranges:
            if file_offset >= new_size:
                continue
            if file_offset + length > new_size:
                length = new_size - file_offset
            kept.append((file_offset, addr, length))
        self._dirty_ranges = kept

"""On-NVMM layout of PMFS (and therefore of HiNFS's persistent half).

Device layout, in 4 KiB blocks::

    block 0                  superblock
    blocks 1 .. J            journal ring
    blocks J+1 .. J+I        inode table (16 inodes of 256 B per block)
    blocks J+I+1 .. end      data blocks (file data, dirents, indirects)

All multi-byte integers are little-endian.  Every mutable metadata slot
is updated through the undo journal so recovery can roll back torn
transactions.
"""

import struct

from repro.nvmm.config import BLOCK_SIZE

MAGIC = b"PMFSREPR"

# --- superblock -----------------------------------------------------------

#: magic, total_blocks, journal_start, journal_blocks, inode_table_start,
#: inode_count, data_start
SUPERBLOCK_FMT = "<8sQQQQQQ"
SUPERBLOCK_SIZE = struct.calcsize(SUPERBLOCK_FMT)


class Superblock:
    """Parsed superblock contents."""

    __slots__ = (
        "total_blocks",
        "journal_start",
        "journal_blocks",
        "inode_table_start",
        "inode_count",
        "data_start",
    )

    def __init__(
        self,
        total_blocks,
        journal_start,
        journal_blocks,
        inode_table_start,
        inode_count,
        data_start,
    ):
        self.total_blocks = total_blocks
        self.journal_start = journal_start
        self.journal_blocks = journal_blocks
        self.inode_table_start = inode_table_start
        self.inode_count = inode_count
        self.data_start = data_start

    def pack(self):
        return struct.pack(
            SUPERBLOCK_FMT,
            MAGIC,
            self.total_blocks,
            self.journal_start,
            self.journal_blocks,
            self.inode_table_start,
            self.inode_count,
            self.data_start,
        )

    @classmethod
    def unpack(cls, raw):
        magic, *fields = struct.unpack_from(SUPERBLOCK_FMT, raw)
        if magic != MAGIC:
            raise ValueError("bad superblock magic %r" % magic)
        return cls(*fields)

    @classmethod
    def compute(cls, total_blocks, journal_blocks=64, inode_count=None):
        """Carve up a device of ``total_blocks`` 4 KiB blocks."""
        if inode_count is None:
            inode_count = max(256, min(65536, total_blocks // 4))
        inode_blocks = -(-inode_count // INODES_PER_BLOCK)
        journal_start = 1
        inode_table_start = journal_start + journal_blocks
        data_start = inode_table_start + inode_blocks
        if data_start >= total_blocks:
            raise ValueError("device too small: %d blocks" % total_blocks)
        return cls(
            total_blocks,
            journal_start,
            journal_blocks,
            inode_table_start,
            inode_count,
            data_start,
        )


# --- inodes -----------------------------------------------------------------

INODE_SIZE = 256
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE

KIND_FREE = 0
KIND_FILE = 1
KIND_DIR = 2

N_DIRECT = 12
PTRS_PER_BLOCK = BLOCK_SIZE // 8

#: kind, nlink, pad, size, mtime, ctime, last_sync, 12 direct pointers,
#: indirect pointer, double-indirect pointer.  Block pointer 0 == hole.
INODE_FMT = "<BBHIQQQQ12QQQ"
INODE_FMT_SIZE = struct.calcsize(INODE_FMT)
assert INODE_FMT_SIZE <= INODE_SIZE

#: Maximum file size expressible by the block map.
MAX_FILE_BLOCKS = N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK


def block_addr(block):
    """Byte address of a 4 KiB block."""
    return block * BLOCK_SIZE


def inode_addr(sb, ino):
    """Byte address of inode ``ino`` (1-based; slot 0 is reserved)."""
    if not 1 <= ino <= sb.inode_count:
        raise ValueError("inode %d out of range" % ino)
    index = ino - 1
    block = sb.inode_table_start + index // INODES_PER_BLOCK
    return block_addr(block) + (index % INODES_PER_BLOCK) * INODE_SIZE


# --- directory entries ------------------------------------------------------

DIRENT_SIZE = 64  # one cacheline
DIRENTS_PER_BLOCK = BLOCK_SIZE // DIRENT_SIZE
DIRENT_NAME_MAX = 48

#: ino, valid, name_len, pad, name bytes
DIRENT_FMT = "<QBB6s48s"
assert struct.calcsize(DIRENT_FMT) == DIRENT_SIZE


def pack_dirent(ino, name):
    encoded = name.encode("utf-8")
    if len(encoded) > DIRENT_NAME_MAX:
        raise ValueError("name too long: %r" % name)
    return struct.pack(DIRENT_FMT, ino, 1, len(encoded), b"\0" * 6, encoded)


def pack_empty_dirent():
    return b"\0" * DIRENT_SIZE


def unpack_dirent(raw):
    """Return ``(ino, name)`` or ``None`` for an empty/invalid slot."""
    ino, valid, name_len, _, name = struct.unpack_from(DIRENT_FMT, raw)
    if not valid or ino == 0:
        return None
    return ino, name[:name_len].decode("utf-8")

"""PMFS: the direct-access NVMM file system (Dulloor et al., EuroSys'14).

The paper's primary baseline, reimplemented from its published design
points, because HiNFS "shares the file system data structures of PMFS"
(Section 4) and is evaluated against it:

- all data copies go directly between the user buffer and NVMM using
  non-temporal stores (no page cache, no block layer);
- metadata updates are made consistent with a cacheline-granular undo
  journal whose entries carry a valid flag written in the same cacheline
  (crash-atomic by the architectural same-line ordering guarantee);
- per-file block maps use direct/indirect/double-indirect pointer blocks
  in NVMM (the published PMFS uses a B-tree; the paper itself argues in
  Section 3.2 that the index structure choice is immaterial next to copy
  costs, and our DRAM Block Index for HiNFS *is* a B-tree).
"""

from repro.fs.pmfs.journal import Journal, JournalFullError, Transaction
from repro.fs.pmfs.pmfs import PMFS

__all__ = ["Journal", "JournalFullError", "PMFS", "Transaction"]

"""Per-file block map: direct / indirect / double-indirect pointers.

The NVMM pointer blocks are the source of truth; a DRAM mirror
(``file_block -> nvmm_block``) keeps lookups O(1), exactly as the kernel
caches mapping state.  Every pointer mutation is an 8-byte journaled
write, so a torn operation rolls back cleanly.
"""

import struct

from repro.fs.errors import InvalidArgument
from repro.fs.pmfs.inodes import CORE_SIZE
from repro.fs.pmfs.layout import (
    MAX_FILE_BLOCKS,
    N_DIRECT,
    PTRS_PER_BLOCK,
    block_addr,
)

_PTR = struct.Struct("<Q")


class BlockMap:
    """Block mapping for one inode."""

    def __init__(self, device, journal, inode_table, inode, balloc):
        self.device = device
        self.journal = journal
        self.itable = inode_table
        self.inode = inode
        self.balloc = balloc
        # file block index -> nvmm block (holes absent)
        self._mirror = {}
        # file of L2 pointer blocks: index in dindirect L1 -> nvmm block
        self._l2_blocks = {}

    # -- lookup -----------------------------------------------------------

    def get(self, file_block):
        """NVMM block for ``file_block`` or ``None`` for a hole."""
        return self._mirror.get(file_block)

    def mapped_blocks(self):
        """All (file_block, nvmm_block) pairs."""
        return list(self._mirror.items())

    def block_count(self):
        return len(self._mirror)

    # -- pointer slot resolution ----------------------------------------------

    def _pointer_addr(self, ctx, tx, file_block):
        """NVMM address of the 8-byte pointer slot for ``file_block``,
        allocating intermediate pointer blocks as needed."""
        if file_block < 0 or file_block >= MAX_FILE_BLOCKS:
            raise InvalidArgument("file block %d beyond max map" % file_block)
        core = self.itable.core_addr(self.inode.ino)
        if file_block < N_DIRECT:
            return core + CORE_SIZE + file_block * 8
        file_block -= N_DIRECT
        if file_block < PTRS_PER_BLOCK:
            ind = self._ensure_indirect(ctx, tx)
            return block_addr(ind) + file_block * 8
        file_block -= PTRS_PER_BLOCK
        l1_index, l2_index = divmod(file_block, PTRS_PER_BLOCK)
        l2 = self._ensure_l2(ctx, tx, l1_index)
        return block_addr(l2) + l2_index * 8

    def _zero_fresh_block(self, block):
        """New pointer blocks must read as holes (data plane; charged to
        the allocation's journaled pointer write)."""
        self.device.mem.write_nocache(block_addr(block), b"\0" * 4096)

    def _ensure_indirect(self, ctx, tx):
        if self.inode.indirect == 0:
            block = self.balloc.alloc()
            self._zero_fresh_block(block)
            self.inode.indirect = block
            self.journal.journaled_write(
                ctx,
                tx,
                self.itable.core_addr(self.inode.ino) + CORE_SIZE + N_DIRECT * 8,
                _PTR.pack(block),
            )
        return self.inode.indirect

    def _ensure_l2(self, ctx, tx, l1_index):
        if self.inode.dindirect == 0:
            block = self.balloc.alloc()
            self._zero_fresh_block(block)
            self.inode.dindirect = block
            self.journal.journaled_write(
                ctx,
                tx,
                self.itable.core_addr(self.inode.ino) + CORE_SIZE + (N_DIRECT + 1) * 8,
                _PTR.pack(block),
            )
        l2 = self._l2_blocks.get(l1_index)
        if l2 is None:
            block = self.balloc.alloc()
            self._zero_fresh_block(block)
            self._l2_blocks[l1_index] = block
            self.journal.journaled_write(
                ctx,
                tx,
                block_addr(self.inode.dindirect) + l1_index * 8,
                _PTR.pack(block),
            )
            l2 = block
        return l2

    # -- mutation -----------------------------------------------------------

    def set(self, ctx, tx, file_block, nvmm_block):
        """Map ``file_block`` to ``nvmm_block`` (journaled)."""
        slot = self._pointer_addr(ctx, tx, file_block)
        self.journal.journaled_write(ctx, tx, slot, _PTR.pack(nvmm_block))
        self._mirror[file_block] = nvmm_block
        if file_block < N_DIRECT:
            # Keep the DRAM inode's direct[] mirror coherent, so a later
            # write_pointers (e.g. drop_all) never resurrects stale slots.
            self.inode.direct[file_block] = nvmm_block

    def clear(self, ctx, tx, file_block):
        """Unmap ``file_block`` (journaled); returns the freed NVMM block."""
        nvmm_block = self._mirror.pop(file_block, None)
        if nvmm_block is None:
            return None
        slot = self._pointer_addr(ctx, tx, file_block)
        self.journal.journaled_write(ctx, tx, slot, _PTR.pack(0))
        if file_block < N_DIRECT:
            self.inode.direct[file_block] = 0
        return nvmm_block

    def drop_all(self, ctx, tx):
        """Unmap everything; returns every freed block (data + pointer).

        Only the 112-byte in-inode pointer area needs journaling: once the
        root pointers are zero, the old indirect blocks are unreachable.
        """
        freed = list(self._mirror.values())
        if self.inode.indirect:
            freed.append(self.inode.indirect)
        if self.inode.dindirect:
            freed.append(self.inode.dindirect)
        freed.extend(self._l2_blocks.values())
        self._mirror.clear()
        self._l2_blocks.clear()
        self.inode.direct = [0] * N_DIRECT
        self.inode.indirect = 0
        self.inode.dindirect = 0
        self.itable.write_pointers(ctx, tx, self.inode)
        return freed

    # -- recovery -----------------------------------------------------------

    def load_from_nvmm(self):
        """Rebuild the mirror by walking the persistent pointers."""
        self._mirror.clear()
        self._l2_blocks.clear()
        for i, ptr in enumerate(self.inode.direct):
            if ptr:
                self._mirror[i] = ptr
        if self.inode.indirect:
            raw = self.device.mem.read(block_addr(self.inode.indirect), 4096)
            for i in range(PTRS_PER_BLOCK):
                (ptr,) = _PTR.unpack_from(raw, i * 8)
                if ptr:
                    self._mirror[N_DIRECT + i] = ptr
        if self.inode.dindirect:
            l1 = self.device.mem.read(block_addr(self.inode.dindirect), 4096)
            for i in range(PTRS_PER_BLOCK):
                (l2,) = _PTR.unpack_from(l1, i * 8)
                if not l2:
                    continue
                self._l2_blocks[i] = l2
                raw = self.device.mem.read(block_addr(l2), 4096)
                base = N_DIRECT + PTRS_PER_BLOCK + i * PTRS_PER_BLOCK
                for j in range(PTRS_PER_BLOCK):
                    (ptr,) = _PTR.unpack_from(raw, j * 8)
                    if ptr:
                        self._mirror[base + j] = ptr

    def all_physical_blocks(self):
        """Every NVMM block this map pins (data + pointer blocks)."""
        blocks = list(self._mirror.values())
        if self.inode.indirect:
            blocks.append(self.inode.indirect)
        if self.inode.dindirect:
            blocks.append(self.inode.dindirect)
        blocks.extend(self._l2_blocks.values())
        return blocks

"""Cacheline-granular undo journal (PMFS-style, reused by HiNFS).

Every journal entry is exactly one 64-byte cacheline carrying a
generation stamp, so the architectural guarantee that stores within one
cacheline are never reordered makes each entry crash-atomic (paper,
Section 4.1).

Protocol (undo logging):

1. ``begin`` opens a transaction.
2. For every metadata range about to change, ``journaled_write`` first
   appends undo entries holding the *old* bytes (entry write + clflush),
   then mutates the metadata in place (cached store + clflush).
3. ``commit`` appends a COMMIT entry, flushes, and fences.

Recovery scans the ring; transactions of the current generation without
a COMMIT entry are rolled back by re-applying their undo images in
reverse order.

Ring recycling is epoch-based: a 64-byte header cacheline at the start
of the journal region holds the current generation; wrapping the ring
bumps the generation (one journaled header write), which atomically
invalidates every stale entry -- no bulk zeroing, matching PMFS's cheap
log-space reclamation.  Before a wrap every still-open transaction must
be closed, because its old-generation entries are about to be
invalidated; HiNFS's wrap barrier forces writeback of the buffered data
blocks those deferred commits are waiting on.

HiNFS difference (Section 4.1): for lazy-persistent writes the COMMIT
entry is *deferred* until the buffered DRAM data blocks of the
transaction have been written back to NVMM, preserving the ordered-mode
invariant (data persists before the metadata that references it).
"""

import struct
import zlib

from repro.engine.stats import CAT_OTHERS
from repro.fs.pmfs.layout import block_addr
from repro.nvmm.config import CACHELINE_SIZE

ENTRY_MAGIC = b"JNL!"
HEADER_MAGIC = b"JHDR"
ENTRY_SIZE = CACHELINE_SIZE
#: magic, tx_id, kind, gen, len, addr, csum, payload.  The CRC32 covers
#: the whole cacheline with the csum field zeroed, so a *torn* entry --
#: one whose leading 8-byte words persisted but whose tail did not
#: (sub-cacheline crash model) -- is detected and dropped at scan time
#: instead of being replayed as garbage undo.  jbd2 checksums its
#: descriptor/commit blocks for exactly this reason.
ENTRY_FMT = "<4sIBBHQI40s"
ENTRY_PAYLOAD_MAX = 40
#: Byte offset/size of the csum field inside a packed entry.
_CSUM_OFFSET = struct.calcsize("<4sIBBHQ")
_CSUM_SIZE = 4
_ENTRY_PACK = struct.Struct(ENTRY_FMT).pack
assert struct.calcsize(ENTRY_FMT) == ENTRY_SIZE


def entry_checksum(entry):
    """CRC32 of a packed entry with its csum field zeroed."""
    blank = entry[:_CSUM_OFFSET] + b"\0" * _CSUM_SIZE \
        + entry[_CSUM_OFFSET + _CSUM_SIZE:]
    return zlib.crc32(blank) & 0xFFFFFFFF

#: magic, generation (header cacheline at the start of the ring)
HEADER_FMT = "<4sQ"

KIND_UNDO = 1
KIND_COMMIT = 2

#: Generations cycle in [1, 255]; 0 marks a never-written slot.  A stale
#: entry could only alias after 255 consecutive wraps without being
#: overwritten, which the reserve headroom makes impossible.
GEN_MODULUS = 255


class JournalFullError(Exception):
    """A single transaction exceeded the journal ring capacity."""


class Transaction:
    """An open journal transaction."""

    __slots__ = ("tx_id", "open", "entries")

    def __init__(self, tx_id):
        self.tx_id = tx_id
        self.open = True
        self.entries = 0

    def __repr__(self):
        return "Transaction(id=%d, open=%s, entries=%d)" % (
            self.tx_id,
            self.open,
            self.entries,
        )


class Journal:
    """The undo-journal ring in a reserved NVMM region."""

    def __init__(self, env, device, sb, config, checksums=True):
        self.env = env
        self.device = device
        self.config = config
        #: Entry CRCs on/off.  Off exists only as the negative control for
        #: the torn-write explorer: without checksums a torn entry whose
        #: magic+gen words persisted is replayed with a garbage addr/payload.
        self.checksums = checksums
        self.base_addr = block_addr(sb.journal_start)
        # Slot 0 of the region is the generation header.
        self.capacity = sb.journal_blocks * (4096 // ENTRY_SIZE) - 1
        #: Headroom kept free so a transaction never has to recycle the
        #: ring mid-append (which would invalidate its own undo entries).
        #: Every transaction writes at least one entry before its commit,
        #: so half the ring is always enough for the deferred commits.
        self.reserve_slots = max(64, self.capacity // 2)
        self._head = 0
        self._next_tx_id = 1
        self._open_txs = {}
        self.gen = self._read_header_gen()
        if self.gen == 0:
            self.gen = 1
            self._write_header_raw()
        #: Called before the ring is recycled; must close every open
        #: transaction (HiNFS forces writeback of pending data blocks).
        self.wrap_barrier = None

    # -- header -----------------------------------------------------------

    def _read_header_gen(self):
        # read_media is fault-aware: a poisoned header line fails recovery
        # with EIO, which mount() turns into a degraded (read-only) mount.
        raw = self.device.read_media(self.base_addr, ENTRY_SIZE)
        magic, gen = struct.unpack_from(HEADER_FMT, raw)
        return gen if magic == HEADER_MAGIC else 0

    def _header_bytes(self):
        return struct.pack(HEADER_FMT, HEADER_MAGIC, self.gen).ljust(
            ENTRY_SIZE, b"\0"
        )

    def _write_header_raw(self):
        """Initial (mkfs-time) header write: data plane only."""
        self.device.mem.write_nocache(self.base_addr, self._header_bytes())

    def _write_header(self, ctx):
        self.device.write_cached(ctx, self.base_addr, self._header_bytes(),
                                 CAT_OTHERS)
        self.device.clflush(ctx, self.base_addr, ENTRY_SIZE, CAT_OTHERS)
        self.device.fence(ctx)

    def _slot_addr(self, slot):
        return self.base_addr + (slot + 1) * ENTRY_SIZE

    # -- transactions -----------------------------------------------------

    def begin(self, ctx):
        if self._head > self.capacity - self.reserve_slots:
            self._wrap(ctx)
        tx = Transaction(self._next_tx_id)
        self._next_tx_id += 1
        self._open_txs[tx.tx_id] = tx
        return tx

    def log_undo(self, ctx, tx, addr, length):
        """Capture the current bytes of ``[addr, addr+length)`` as undo."""
        if not tx.open:
            raise ValueError("transaction %d already closed" % tx.tx_id)
        offset = 0
        while offset < length:
            take = min(ENTRY_PAYLOAD_MAX, length - offset)
            old = self.device.mem.read(addr + offset, take)
            self._append(ctx, tx, KIND_UNDO, addr + offset, old)
            offset += take

    def journaled_write(self, ctx, tx, addr, new_bytes):
        """Undo-log then mutate a metadata range in place (flushed)."""
        new_bytes = bytes(new_bytes)
        self.log_undo(ctx, tx, addr, len(new_bytes))
        self.device.write_cached(ctx, addr, new_bytes, CAT_OTHERS)
        self.device.clflush(ctx, addr, len(new_bytes), CAT_OTHERS)

    def commit(self, ctx, tx):
        """Append the COMMIT entry; the transaction becomes durable."""
        if not tx.open:
            raise ValueError("transaction %d already closed" % tx.tx_id)
        self._append(ctx, tx, KIND_COMMIT, 0, b"")
        self.device.fence(ctx)
        tx.open = False
        self._open_txs.pop(tx.tx_id, None)

    @property
    def open_transactions(self):
        return len(self._open_txs)

    @property
    def used_slots(self):
        return self._head

    # -- ring management --------------------------------------------------

    def _append(self, ctx, tx, kind, addr, payload):
        if self._head >= self.capacity:
            raise JournalFullError(
                "transaction %d overran the journal reserve" % tx.tx_id
            )
        padded = payload.ljust(ENTRY_PAYLOAD_MAX, b"\0")
        entry = _ENTRY_PACK(
            ENTRY_MAGIC, tx.tx_id, kind, self.gen, len(payload), addr,
            0, padded,
        )
        if self.checksums:
            # The csum field above is zero, so the CRC of the packed
            # entry *is* entry_checksum(entry); repack with it filled in.
            csum = zlib.crc32(entry) & 0xFFFFFFFF
            entry = _ENTRY_PACK(
                ENTRY_MAGIC, tx.tx_id, kind, self.gen, len(payload), addr,
                csum, padded,
            )
        # One cacheline: write, flush, fence -- the entry (including its
        # generation stamp) becomes persistent atomically.
        slot_addr = self._slot_addr(self._head)
        self.device.write_cached(ctx, slot_addr, entry, CAT_OTHERS)
        self.device.clflush(ctx, slot_addr, ENTRY_SIZE, CAT_OTHERS)
        self.device.fence(ctx)
        self._head += 1
        tx.entries += 1

    def _wrap(self, ctx):
        """Recycle the ring: close stragglers, bump the generation."""
        if self._open_txs:
            if self.wrap_barrier is None:
                raise JournalFullError(
                    "journal wrapped with %d open transactions"
                    % len(self._open_txs)
                )
            self.wrap_barrier(ctx)
            if self._open_txs:
                raise JournalFullError("wrap barrier left transactions open")
        self.gen = self.gen % GEN_MODULUS + 1
        self._write_header(ctx)
        self._head = 0
        self.env.stats.bump("journal_wraps")

    # -- recovery -----------------------------------------------------------

    def scan(self):
        """Parse every current-generation entry (data-plane only).

        Returns ``{tx_id: {"undo": [(addr, bytes), ...], "committed": bool}}``
        in append order.
        """
        current_gen = self._read_header_gen()
        transactions = {}
        for slot in range(self.capacity):
            raw = self.device.read_media(self._slot_addr(slot), ENTRY_SIZE)
            magic, tx_id, kind, gen, length, addr, csum, payload = \
                struct.unpack(ENTRY_FMT, raw)
            if magic != ENTRY_MAGIC or gen != current_gen:
                continue
            if self.checksums and csum != entry_checksum(raw):
                # Torn or corrupt entry: never replay it.  Safe to drop --
                # an undo entry is durable *before* its metadata mutation,
                # so a torn entry's transaction changed nothing yet.
                self.env.stats.bump("journal_csum_drops")
                continue
            record = transactions.setdefault(
                tx_id, {"undo": [], "committed": False}
            )
            if kind == KIND_COMMIT:
                record["committed"] = True
            elif kind == KIND_UNDO:
                record["undo"].append((addr, payload[:length]))
        return transactions

    def recover(self, ctx):
        """Roll back uncommitted transactions; returns how many."""
        rolled_back = 0
        for tx_id, record in sorted(self.scan().items()):
            if record["committed"]:
                continue
            for addr, old in reversed(record["undo"]):
                self.device.write_cached(ctx, addr, old, CAT_OTHERS)
                self.device.clflush(ctx, addr, len(old), CAT_OTHERS)
            self.device.fence(ctx)
            rolled_back += 1
        # Invalidate the whole ring by starting a fresh generation.
        self.gen = self._read_header_gen() % GEN_MODULUS + 1
        self._write_header(ctx)
        self._head = 0
        self._open_txs.clear()
        return rolled_back

"""PMFS proper: direct access between the user buffer and NVMM.

Every write is copied user-buffer -> NVMM with non-temporal stores and is
durable on return (there is no volatile data path at all); every read is
copied NVMM -> user buffer.  Metadata changes run through the undo
journal.  This is the behaviour the paper's Figure 1 profiles and
Figures 7-13 use as the baseline.
"""

from repro.engine.stats import CAT_OTHERS
from repro.fs.base import FileStat, FileSystem, ROOT_INO, S_IFDIR, S_IFREG
from repro.fs.errors import (
    IsADirectory,
    MediaError,
    NoSpace,
    NotADirectory,
    NotEmpty,
    NotFound,
)
from repro.fs.pmfs.blockmap import BlockMap
from repro.fs.pmfs.dirents import Directory
from repro.fs.pmfs.inodes import InodeTable, KIND_DIR, KIND_FILE
from repro.fs.pmfs.journal import Journal
from repro.fs.pmfs.layout import Superblock, block_addr
from repro.nvmm.allocator import BlockAllocator, OutOfSpaceError
from repro.nvmm.config import BLOCK_SIZE


class PMFS(FileSystem):
    """The direct-access baseline file system."""

    name = "pmfs"

    def __init__(self, env, device, config, journal_blocks=256, inode_count=None,
                 journal_checksums=True, _skip_format=False):
        self.env = env
        self.device = device
        self.config = config
        total_blocks = device.size // BLOCK_SIZE
        if _skip_format:
            self.sb = Superblock.unpack(device.mem.read(0, 4096))
        else:
            self.sb = Superblock.compute(total_blocks, journal_blocks, inode_count)
        self.journal = Journal(env, device, self.sb, config,
                               checksums=journal_checksums)
        self.itable = InodeTable(device, self.journal, self.sb)
        self.balloc = BlockAllocator(
            self.sb.total_blocks - self.sb.data_start, first_block=self.sb.data_start
        )
        self._maps = {}
        self._dirs = {}
        # Live mappings: ino -> [MappedRegion] (plain), and ino -> the
        # one MmioMapping (MAP_ATOMIC) that intercepts syscall I/O.
        self._regions = {}
        self._atomic_mappings = {}
        #: Mapping-targeted fault injector
        #: (:class:`repro.faults.mmiofault.MmioFaultInjector`) or None.
        self.mmio_faults = None
        if not _skip_format:
            self._mkfs()

    # -- formatting / mounting ---------------------------------------------

    def _mkfs(self):
        """Write the superblock and the root directory (data plane only --
        formatting happens before the measured run)."""
        self.device.mem.write_nocache(0, self.sb.pack())
        mkfs_ctx = _FreeContext(self.env)
        tx = self.journal.begin(mkfs_ctx)
        root = self.itable.alloc(mkfs_ctx, tx, KIND_DIR, 0)
        assert root.ino == ROOT_INO
        self.journal.commit(mkfs_ctx, tx)
        self.device.mem.flush_all()

    @classmethod
    def mount(cls, env, device, config, **kwargs):
        """Mount an existing image: run journal recovery, rebuild DRAM state.

        This is the crash-recovery entry point: after ``device.crash()``,
        ``mount`` must produce a consistent file system.
        """
        degraded = None
        try:
            fs = cls(env, device, config, _skip_format=True, **kwargs)
        except MediaError as exc:
            # Even the journal header is unreadable.  Rebuild the in-DRAM
            # structures from the raw data plane (the bytes are still
            # there; only the guarded access path refuses them) so the
            # mount can come up read-only instead of not at all.
            model = device.fault_model
            device.fault_model = None
            try:
                fs = cls(env, device, config, _skip_format=True, **kwargs)
            finally:
                device.fault_model = model
            degraded = "journal region unreadable: %s" % exc
        ctx = _FreeContext(env)
        if degraded is None:
            try:
                fs.journal.recover(ctx)
            except MediaError as exc:
                # The journal sits on bad media: the image cannot be
                # rolled back, so the mount comes up degraded and the VFS
                # serves it read-only (errors=remount-ro) instead of
                # crashing.
                degraded = "journal recovery failed: %s" % exc
        if degraded is not None:
            fs.degraded_reason = degraded
            env.stats.bump("mount_degraded")
        fs._rebuild_from_nvmm()
        if degraded is None:
            fs._mmio_recover(ctx)
        return fs

    def _mmio_recover(self, ctx):
        """Recover per-file mmio epoch logs (library-mode mappings that
        were live at the crash).  Runs after the journal recovery and
        the DRAM rebuild so blockmaps and sizes are already consistent;
        the logs' own blocks are unreferenced by any blockmap, so the
        rebuilt allocator already counts them free."""
        from repro.io import mmio

        mmio.recover(self, ctx)

    def _rebuild_from_nvmm(self):
        self.itable.load_from_nvmm()
        self._maps.clear()
        self._dirs.clear()
        for inode in self.itable.live_inodes():
            blockmap = self._map(inode.ino)
            blockmap.load_from_nvmm()
            for block in blockmap.all_physical_blocks():
                self.balloc.mark_allocated(block)
            if inode.is_dir:
                self._dir(inode.ino).load_from_nvmm()

    # -- internal handles ---------------------------------------------------

    def _inode(self, ino):
        inode = self.itable.get(ino)
        if inode is None:
            raise NotFound("inode %d" % ino)
        return inode

    def _map(self, ino):
        blockmap = self._maps.get(ino)
        if blockmap is None:
            blockmap = BlockMap(
                self.device, self.journal, self.itable, self._inode(ino), self.balloc
            )
            self._maps[ino] = blockmap
        return blockmap

    def _dir(self, ino):
        directory = self._dirs.get(ino)
        if directory is None:
            inode = self._inode(ino)
            if not inode.is_dir:
                raise NotADirectory("inode %d" % ino)
            directory = Directory(self.device, self.journal, self._map(ino), inode)
            self._dirs[ino] = directory
        return directory

    def _alloc_data_block(self):
        try:
            return self.balloc.alloc()
        except OutOfSpaceError:
            raise NoSpace("NVMM device full") from None

    # -- namespace ------------------------------------------------------

    def lookup(self, ctx, parent_ino, name):
        return self._dir(parent_ino).lookup(name)

    def _create(self, ctx, parent_ino, name, kind):
        directory = self._dir(parent_ino)
        tx = self.journal.begin(ctx)
        inode = self.itable.alloc(ctx, tx, kind, ctx.now)
        directory.add(ctx, tx, name, inode.ino)
        self.itable.write_core(ctx, tx, directory.inode)
        self.journal.commit(ctx, tx)
        return inode.ino

    def create_file(self, ctx, parent_ino, name):
        return self._create(ctx, parent_ino, name, KIND_FILE)

    def mkdir(self, ctx, parent_ino, name):
        return self._create(ctx, parent_ino, name, KIND_DIR)

    def unlink(self, ctx, parent_ino, name, ino):
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory(name)
        self._release(ctx, parent_ino, name, inode)

    def rmdir(self, ctx, parent_ino, name, ino):
        inode = self._inode(ino)
        if not inode.is_dir:
            raise NotADirectory(name)
        if len(self._dir(ino)) > 0:
            raise NotEmpty(name)
        self._release(ctx, parent_ino, name, inode)

    def _release(self, ctx, parent_ino, name, inode):
        """Shared unlink/rmdir tail: drop the dirent, the inode, the blocks."""
        self._invalidate_mappings(ctx, inode.ino)
        self.on_release(ctx, inode.ino)
        directory = self._dir(parent_ino)
        tx = self.journal.begin(ctx)
        directory.remove(ctx, tx, name)
        blockmap = self._maps.pop(inode.ino, None)
        if blockmap is not None:
            freed = blockmap.drop_all(ctx, tx)
        else:
            scratch = BlockMap(
                self.device, self.journal, self.itable, inode, self.balloc
            )
            scratch.load_from_nvmm()
            freed = scratch.drop_all(ctx, tx)
        self.itable.free(ctx, tx, inode)
        self.journal.commit(ctx, tx)
        self.balloc.free_many(freed)
        self._dirs.pop(inode.ino, None)

    def on_release(self, ctx, ino):
        """Hook called before an inode is freed (HiNFS discards its
        buffered blocks here, completing any deferred commits first)."""

    def rename(self, ctx, old_parent, old_name, new_parent, new_name, ino,
               replaced_ino=None):
        """POSIX rename as ONE undo-journalled transaction.

        The old dirent removal, the new dirent insertion, and (when the
        destination existed) the replaced file's release are covered by
        the same journal generation, so every crash point either keeps
        the old namespace or shows the completed rename -- never neither
        name, never both pointing at a half-released inode.
        """
        old_dir = self._dir(old_parent)
        new_dir = self._dir(new_parent)
        replaced = None
        if replaced_ino is not None:
            replaced = self._inode(replaced_ino)
            if replaced.is_dir:
                raise IsADirectory(new_name)
            self.on_release(ctx, replaced_ino)
        tx = self.journal.begin(ctx)
        old_dir.remove(ctx, tx, old_name)
        freed = []
        if replaced is not None:
            new_dir.remove(ctx, tx, new_name)
            blockmap = self._maps.pop(replaced_ino, None)
            if blockmap is None:
                blockmap = BlockMap(
                    self.device, self.journal, self.itable, replaced, self.balloc
                )
                blockmap.load_from_nvmm()
            freed = blockmap.drop_all(ctx, tx)
            self.itable.free(ctx, tx, replaced)
        new_dir.add(ctx, tx, new_name, ino)
        self.itable.write_core(ctx, tx, old_dir.inode)
        if new_dir is not old_dir:
            self.itable.write_core(ctx, tx, new_dir.inode)
        inode = self._inode(ino)
        inode.ctime = ctx.now
        self.itable.write_core(ctx, tx, inode)
        self.journal.commit(ctx, tx)
        self.balloc.free_many(freed)
        if replaced is not None:
            self._dirs.pop(replaced_ino, None)

    def readdir(self, ctx, ino):
        directory = self._dir(ino)
        # Scanning dirents reads the directory's data blocks.
        nblocks = max(1, directory.inode.size // BLOCK_SIZE)
        ctx.charge(self.config.load_cost_ns(nblocks * BLOCK_SIZE), CAT_OTHERS)
        return directory.entries()

    def getattr(self, ctx, ino):
        inode = self._inode(ino)
        kind = S_IFDIR if inode.is_dir else S_IFREG
        return FileStat(ino, kind, inode.size, inode.nlink, inode.mtime, inode.ctime)

    # -- data I/O -----------------------------------------------------------

    def read_iter(self, ctx, req):
        """Direct copy NVMM -> user buffer (single copy)."""
        ino, offset, count = req.ino, req.offset, req.total_bytes
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if offset >= inode.size or count <= 0:
            return b""
        count = min(count, inode.size - offset)
        ctx.charge(self.config.index_lookup_ns)
        blockmap = self._map(ino)
        out = bytearray()
        pos = offset
        remaining = count
        while remaining > 0:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, remaining)
            nvmm_block = blockmap.get(file_block)
            if nvmm_block is None:
                out.extend(b"\0" * take)
                ctx.charge(self.config.load_cost_ns(take))
            else:
                out.extend(
                    self.device.read(ctx, block_addr(nvmm_block) + in_off, take)
                )
            pos += take
            remaining -= take
        return bytes(out)

    def write_iter(self, ctx, req):
        """Direct copy user buffer -> NVMM; durable on return.

        PMFS has no volatile data path, so the request's eager/lazy
        policy is moot: the gathered payload persists in one pass.
        """
        ino, offset = req.ino, req.offset
        data = req.coalesce()
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if not data:
            return 0
        ctx.charge(self.config.index_lookup_ns)
        blockmap = self._map(ino)
        tx = self.journal.begin(ctx)
        pos = offset
        view = memoryview(data)
        try:
            while view:
                file_block, in_off = divmod(pos, BLOCK_SIZE)
                take = min(BLOCK_SIZE - in_off, len(view))
                nvmm_block = blockmap.get(file_block)
                if nvmm_block is None:
                    nvmm_block = self._alloc_data_block()
                    self.device.mem.write_nocache(
                        block_addr(nvmm_block), b"\0" * BLOCK_SIZE
                    )
                    blockmap.set(ctx, tx, file_block, nvmm_block)
                self.device.write_persistent(
                    ctx, block_addr(nvmm_block) + in_off, bytes(view[:take])
                )
                pos += take
                view = view[take:]
            inode.size = max(inode.size, offset + len(data))
            inode.mtime = ctx.now
            self.itable.write_core(ctx, tx, inode)
        finally:
            # On failure (e.g. ENOSPC mid-write) the partial progress is
            # committed: blocks mapped beyond i_size are invisible and
            # get reused, and no transaction is ever leaked open.
            self.journal.commit(ctx, tx)
        return len(data)

    def fsync(self, ctx, ino):
        """PMFS data is always durable; fsync is just an ordering point."""
        self._inode(ino)
        self.device.fence(ctx)

    def fdatasync(self, ctx, ino):
        """Identical ordering point -- spelled out (rather than the base
        fsync fallback) so subclasses layering metadata journaling on
        ``fsync`` don't drag the journal into a data-only sync."""
        self._inode(ino)
        self.device.fence(ctx)

    def truncate(self, ctx, ino, new_size):
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        old_size = inode.size
        tx = self.journal.begin(ctx)
        if new_size == 0:
            freed = self._map(ino).drop_all(ctx, tx)
            self.balloc.free_many(freed)
        elif new_size < inode.size:
            blockmap = self._map(ino)
            first_dead = -(-new_size // BLOCK_SIZE)
            freed = []
            for file_block, _ in list(blockmap.mapped_blocks()):
                if file_block >= first_dead:
                    freed.append(blockmap.clear(ctx, tx, file_block))
            self.balloc.free_many(freed)
            # Zero the partial tail block past new_size so a later
            # extension reads zeros, not resurfaced stale bytes.
            in_off = new_size % BLOCK_SIZE
            if in_off:
                tail = blockmap.get(new_size // BLOCK_SIZE)
                if tail is not None:
                    self.device.write_persistent(
                        ctx, block_addr(tail) + in_off,
                        b"\0" * (BLOCK_SIZE - in_off),
                    )
        inode.size = new_size
        inode.mtime = ctx.now
        self.itable.write_core(ctx, tx, inode)
        self.journal.commit(ctx, tx)
        # A live mapping's staged state past the new EOF references
        # blocks just freed (and reusable by other files): drop it.
        if new_size < old_size:
            for region in self._live_mappings(ino):
                region.invalidate_past(new_size)

    # -- memory-mapped I/O --------------------------------------------------

    def _ensure_mapped_for_mmap(self, ctx, tx, blockmap, file_block):
        """Allocate-and-map a (zeroed) NVMM block for a faulting page."""
        nvmm_block = blockmap.get(file_block)
        if nvmm_block is not None:
            return nvmm_block, False
        nvmm_block = self._alloc_data_block()
        self.device.mem.write_nocache(block_addr(nvmm_block), b"\0" * BLOCK_SIZE)
        blockmap.set(ctx, tx, file_block, nvmm_block)
        return nvmm_block, True

    def _mmap_inode(self, ctx, ino):
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        return inode

    def mmap(self, ctx, ino):
        """Map a file for direct access (paper Section 4.2)."""
        from repro.fs.pmfs.mmap import MappedRegion

        self._mmap_inode(ctx, ino)
        self.on_mmap(ctx, ino)
        region = MappedRegion(self, ino)
        self._regions.setdefault(ino, []).append(region)
        return region

    def mmap_atomic(self, ctx, ino, length=None, policy="auto",
                    log_blocks=4, log_checksums=True):
        """Map a file in library mode: an epoch-logged
        :class:`~repro.io.mmio.MmioMapping` whose loads/stores/msyncs
        run with zero syscall charges.  While it is live, conventional
        read/write/fsync requests on the inode route through it
        (:meth:`submit`), keeping descriptor I/O coherent with mapped
        stores.  One atomic mapping per inode."""
        from repro.fs.errors import InvalidArgument
        from repro.io.mmio import MmioMapping

        self._mmap_inode(ctx, ino)
        live = self._atomic_mappings.get(ino)
        if live is not None and not live.closed:
            raise InvalidArgument("inode %d already atomically mapped" % ino)
        self.on_mmap(ctx, ino)
        mapping = MmioMapping(self, ino, length=length, policy=policy,
                              log_blocks=log_blocks,
                              log_checksums=log_checksums)
        mapping.setup(ctx)
        self._atomic_mappings[ino] = mapping
        return mapping

    def atomic_mapping(self, ino):
        """The inode's live MAP_ATOMIC mapping, or None."""
        mapping = self._atomic_mappings.get(ino)
        if mapping is not None and not mapping.closed:
            return mapping
        return None

    def submit(self, ctx, req):
        """Route requests on atomically-mapped inodes through the
        mapping (POSIX coherence with library-mode stores); everything
        else takes the normal path."""
        mapping = self.atomic_mapping(req.ino)
        if mapping is not None:
            return mapping.handle_request(ctx, req)
        return super().submit(ctx, req)

    def on_mmap(self, ctx, ino):
        """Hook: HiNFS flushes the file's buffered DRAM blocks and pins
        it Eager-Persistent here (mapped stores bypass the buffer)."""

    def on_munmap(self, ino, region=None):
        """Hook called as a mapping closes; drops it from the registry
        (HiNFS additionally unpins the file's Eager-Persistent state)."""
        if region is None:
            self._regions.pop(ino, None)
            self._atomic_mappings.pop(ino, None)
            return
        regions = self._regions.get(ino)
        if regions is not None:
            try:
                regions.remove(region)
            except ValueError:
                pass
            if not regions:
                del self._regions[ino]
        if self._atomic_mappings.get(ino) is region:
            del self._atomic_mappings[ino]

    def _live_mappings(self, ino):
        """Every live mapping of ``ino`` (plain and atomic)."""
        out = [r for r in self._regions.get(ino, []) if not r.closed]
        atomic = self.atomic_mapping(ino)
        if atomic is not None:
            out.append(atomic)
        return out

    def _invalidate_mappings(self, ctx, ino):
        """Forcibly detach every mapping of ``ino`` (unlink/rmdir)."""
        for region in self._regions.pop(ino, []):
            region.closed = True
            region._dirty_ranges = []
        mapping = self._atomic_mappings.pop(ino, None)
        if mapping is not None:
            mapping.invalidate(ctx)

    # -- lifecycle ---------------------------------------------------------

    def unmount(self, ctx):
        self.device.flush_all(ctx)

    def free_data_bytes(self, ctx):
        return self.balloc.free_count * BLOCK_SIZE


class _FreeContext:
    """A context whose charges are discarded (mkfs / recovery setup)."""

    free = True

    def __init__(self, env):
        self.env = env
        self.now = 0

    def charge(self, ns, category=None):
        return 0

    def sync_to(self, target_ns, category=None):
        return 0

"""PMFS inodes: packed 256-byte NVMM slots with a DRAM mirror.

The NVMM inode table is the source of truth (recovery rebuilds all DRAM
state from it); the mirror exists because the kernel, too, keeps a struct
inode cache.  All mutations go through the undo journal.

The inode struct's first 40 bytes (one cacheline's worth: kind, nlink,
size, mtime, ctime, last_sync) form the *core*, updated together with a
single undo entry; the 112-byte pointer area (12 direct, 1 indirect, 1
double-indirect) is journaled separately only when the block map changes.

``last_sync`` is the field HiNFS adds to file metadata to timestamp the
most recent synchronization operation (paper, footnote 4); PMFS itself
never reads it.
"""

import struct

from repro.fs.pmfs.layout import (
    INODE_FMT,
    KIND_DIR,
    KIND_FILE,
    KIND_FREE,
    N_DIRECT,
    inode_addr,
)

CORE_FMT = "<BBHIQQQQ"
CORE_SIZE = struct.calcsize(CORE_FMT)  # 40 bytes
POINTER_FMT = "<12QQQ"
POINTER_SIZE = struct.calcsize(POINTER_FMT)  # 112 bytes


class PmfsInode:
    """DRAM mirror of one on-NVMM inode."""

    __slots__ = (
        "ino",
        "kind",
        "nlink",
        "size",
        "mtime",
        "ctime",
        "last_sync",
        "direct",
        "indirect",
        "dindirect",
    )

    def __init__(self, ino):
        self.ino = ino
        self.kind = KIND_FREE
        self.nlink = 0
        self.size = 0
        self.mtime = 0
        self.ctime = 0
        self.last_sync = 0
        self.direct = [0] * N_DIRECT
        self.indirect = 0
        self.dindirect = 0

    # -- packing ----------------------------------------------------------

    def pack_core(self):
        return struct.pack(
            CORE_FMT,
            self.kind,
            0,
            self.nlink,
            0,
            self.size,
            self.mtime,
            self.ctime,
            self.last_sync,
        )

    def pack_pointers(self):
        return struct.pack(POINTER_FMT, *self.direct, self.indirect, self.dindirect)

    @classmethod
    def unpack(cls, ino, raw):
        fields = struct.unpack_from(INODE_FMT, raw)
        inode = cls(ino)
        (inode.kind, _, inode.nlink, _, inode.size, inode.mtime, inode.ctime,
         inode.last_sync) = fields[:8]
        inode.direct = list(fields[8 : 8 + N_DIRECT])
        inode.indirect = fields[8 + N_DIRECT]
        inode.dindirect = fields[9 + N_DIRECT]
        return inode

    @property
    def is_dir(self):
        return self.kind == KIND_DIR

    @property
    def is_file(self):
        return self.kind == KIND_FILE

    def __repr__(self):
        return "PmfsInode(ino=%d, kind=%d, size=%d)" % (self.ino, self.kind, self.size)


class InodeTable:
    """Allocation and journaled write-back of the NVMM inode table."""

    def __init__(self, device, journal, sb):
        self.device = device
        self.journal = journal
        self.sb = sb
        self._mirror = {}
        self._free = set(range(1, sb.inode_count + 1))

    # -- mirror access ----------------------------------------------------

    def get(self, ino):
        inode = self._mirror.get(ino)
        if inode is None or inode.kind == KIND_FREE:
            return None
        return inode

    def require(self, ino):
        inode = self.get(ino)
        if inode is None:
            raise KeyError("inode %d is free" % ino)
        return inode

    def live_inodes(self):
        return [i for i in self._mirror.values() if i.kind != KIND_FREE]

    # -- NVMM write-back ----------------------------------------------------

    def core_addr(self, ino):
        return inode_addr(self.sb, ino)

    def write_core(self, ctx, tx, inode):
        """Persist kind/nlink/size/times with one journaled cacheline."""
        self.journal.journaled_write(
            ctx, tx, self.core_addr(inode.ino), inode.pack_core()
        )

    def write_pointers(self, ctx, tx, inode):
        """Persist the 112-byte block-pointer area (journaled)."""
        self.journal.journaled_write(
            ctx, tx, self.core_addr(inode.ino) + CORE_SIZE, inode.pack_pointers()
        )

    # -- lifecycle ---------------------------------------------------------

    def alloc(self, ctx, tx, kind, now_ns):
        if not self._free:
            from repro.fs.errors import NoSpace

            raise NoSpace("inode table full")
        ino = min(self._free)
        self._free.remove(ino)
        inode = PmfsInode(ino)
        inode.kind = kind
        inode.nlink = 2 if kind == KIND_DIR else 1
        inode.ctime = inode.mtime = now_ns
        self._mirror[ino] = inode
        self.write_core(ctx, tx, inode)
        self.write_pointers(ctx, tx, inode)
        return inode

    def free(self, ctx, tx, inode):
        inode.kind = KIND_FREE
        inode.nlink = 0
        inode.size = 0
        self.write_core(ctx, tx, inode)
        self._mirror.pop(inode.ino, None)
        self._free.add(inode.ino)

    # -- recovery -----------------------------------------------------------

    def load_from_nvmm(self):
        """Rebuild the mirror and free set by scanning the NVMM table."""
        self._mirror.clear()
        self._free = set(range(1, self.sb.inode_count + 1))
        for ino in range(1, self.sb.inode_count + 1):
            raw = self.device.mem.read(inode_addr(self.sb, ino), 152)
            inode = PmfsInode.unpack(ino, raw)
            if inode.kind != KIND_FREE:
                self._mirror[ino] = inode
                self._free.discard(ino)


__all__ = ["InodeTable", "PmfsInode", "KIND_DIR", "KIND_FILE", "KIND_FREE"]

"""Per-tenant QoS at the VFS dispatch boundary (multi-tenant serving).

The north star is "heavy traffic from millions of users", and the real
failure mode there is not a slow syscall but *overload collapse*: once
the DRAM write buffer and the ``N_w`` NVMM writer slots saturate, every
tenant's tail latency grows without bound together.  KucoFS (PAPERS.md)
argues multi-user PM file systems need explicit per-tenant protection,
and the formal VFS-switch model argues the dispatch boundary -- where
every data syscall already funnels into one :class:`repro.io.IORequest`
-- is the one clean place to enforce it.  This module is that
enforcement point, two mechanisms deep:

- **Token-bucket throttling with weighted shares** (cgroup-io style):
  every registered tenant owns a :class:`TokenBucket` whose refill rate
  is its weighted share of the configured aggregate capacity.  A request
  that outruns its bucket is *delayed* (the wait is charged to the
  calling thread's virtual clock under ``LAYER_QOS``), smoothing each
  tenant to its share instead of letting one flood starve the rest.

- **Admission control with watermark hysteresis**: the controller
  derives a scalar *pressure* from the two saturating resources (DRAM
  buffer occupancy and writer-slot backlog).  When pressure crosses the
  high watermark the mount enters an OVERLOADED observable state (fed to
  :class:`repro.fs.health.MountHealth`) and requests from shed-class
  (lowest-priority) tenants are refused with ``EAGAIN``
  (:class:`repro.fs.errors.TryAgain`) instead of queueing behind a
  collapsing backlog; clients back off and retry through
  :class:`repro.faults.policy.RetryPolicy`.  Pressure falling below the
  low watermark exits overload (hysteresis prevents flapping).

Untenanted traffic (``IORequest.tenant is None``) bypasses both
mechanisms entirely, so every existing workload -- and the golden-seed
equivalence suite -- is bit-identical with a controller attached but no
tenants bound.

All bucket arithmetic is integer (token units of 1e-9 byte), so the same
seed always yields the same admission sequence and the same waits.
"""

from repro.fs.errors import TryAgain
from repro.nvmm.device import NVMM_WRITE_RESOURCE
from repro.obs.trace import LAYER_QOS

#: Priority classes, lowest first.  The admission controller sheds the
#: lowest class(es) first; GOLD is never shed by the default policy.
PRIO_BRONZE = 0
PRIO_SILVER = 1
PRIO_GOLD = 2

PRIORITY_NAMES = {PRIO_BRONZE: "bronze", PRIO_SILVER: "silver",
                  PRIO_GOLD: "gold"}

#: Token scale: buckets count in units of 1e-9 byte so that a rate in
#: bytes/second accrues exactly ``rate`` units per virtual nanosecond
#: with no rounding drift.
_SCALE = 1_000_000_000


class TokenBucket:
    """Deterministic integer token bucket (bytes against virtual time).

    ``rate_bps`` tokens-per-nanosecond accrue in units of 1e-9 byte (so
    the byte rate per *second* is exactly ``rate_bps``), capped at
    ``burst_bytes``.  :meth:`take` debits immediately and may go into
    debt; the returned wait is the exact time until accrual covers the
    debt, which is when the request is considered admitted.  Hence over
    any window ``W`` starting from a full bucket, bytes *admitted*
    (arrival + wait <= end of window) never exceed
    ``rate_bps * W / 1e9 + burst_bytes`` -- the bound the property test
    pins down.
    """

    __slots__ = ("rate_bps", "burst_bytes", "_tokens", "_last_ns")

    def __init__(self, rate_bps, burst_bytes, start_ns=0):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if burst_bytes < 0:
            raise ValueError("burst_bytes must be non-negative")
        self.rate_bps = int(rate_bps)
        self.burst_bytes = int(burst_bytes)
        self._tokens = self.burst_bytes * _SCALE
        self._last_ns = int(start_ns)

    def _refill(self, now_ns):
        elapsed = now_ns - self._last_ns
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes * _SCALE,
                self._tokens + self.rate_bps * elapsed,
            )
            self._last_ns = now_ns

    def peek_tokens(self, now_ns):
        """Bytes available at ``now_ns`` (may be negative while in debt)."""
        self._refill(now_ns)
        return self._tokens // _SCALE

    def take(self, now_ns, nbytes):
        """Debit ``nbytes`` at ``now_ns``; returns the wait in ns until
        the request counts as admitted (0 when tokens covered it)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        self._refill(int(now_ns))
        self._tokens -= int(nbytes) * _SCALE
        if self._tokens >= 0:
            return 0
        # Exact time for the refill rate to pay off the debt:
        # ceil(-tokens / rate) == -floor(tokens / rate) for tokens < 0.
        return -(self._tokens // self.rate_bps)


class TenantState:
    """Registration record + accounting for one tenant."""

    __slots__ = ("tenant", "weight", "priority", "bucket",
                 "admitted_ops", "admitted_bytes", "shed_ops",
                 "throttle_ns")

    def __init__(self, tenant, weight, priority, bucket):
        self.tenant = tenant
        self.weight = weight
        self.priority = priority
        self.bucket = bucket
        self.admitted_ops = 0
        self.admitted_bytes = 0
        self.shed_ops = 0
        self.throttle_ns = 0

    def __repr__(self):
        return "TenantState(%r, w=%d, prio=%s, admitted=%d, shed=%d)" % (
            self.tenant, self.weight,
            PRIORITY_NAMES.get(self.priority, self.priority),
            self.admitted_ops, self.shed_ops,
        )


class QosController:
    """Weighted token-bucket throttle + watermark admission control.

    Attach to a VFS with :meth:`repro.fs.vfs.VFS.attach_qos`; the three
    data-path handlers call :meth:`admit` once per IORequest, right
    after the ring entry charge and before any inode lock is taken (a
    shed request must not queue on anything).
    """

    def __init__(self, env, capacity_bps, default_burst_bytes=1 << 16,
                 buffer=None, high_watermark=0.85, low_watermark=0.60,
                 shed_priority=PRIO_BRONZE, slot_ceiling_ns=2_000_000,
                 health=None):
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        if not 0.0 < low_watermark <= high_watermark:
            raise ValueError("need 0 < low_watermark <= high_watermark")
        self.env = env
        #: Aggregate byte rate split between tenants by weight.
        self.capacity_bps = int(capacity_bps)
        self.default_burst_bytes = int(default_burst_bytes)
        #: The DRAM write buffer watched for occupancy pressure (HiNFS);
        #: None for stacks without one -- slot backlog still applies.
        self.buffer = buffer
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        #: Tenants with priority <= this are shed while overloaded.
        self.shed_priority = shed_priority
        #: Writer-slot backlog (earliest_free - now) that counts as
        #: pressure 1.0; the slots are the paper's N_w bottleneck and
        #: exist in every stack, so this signal is stack-agnostic.
        self.slot_ceiling_ns = int(slot_ceiling_ns)
        #: MountHealth fed the OVERLOADED observable; optional.
        self.health = health
        self.overloaded = False
        self._tenants = {}
        self._total_weight = 0
        self._slots = (env.resource(NVMM_WRITE_RESOURCE)
                       if env.has_resource(NVMM_WRITE_RESOURCE) else None)

    # -- registration -----------------------------------------------------

    def register(self, tenant, weight=1, priority=PRIO_SILVER,
                 burst_bytes=None, start_ns=0):
        """Register ``tenant`` and (re)split capacity across all weights.

        Returns the tenant's :class:`TenantState`.
        """
        if weight <= 0:
            raise ValueError("weight must be positive")
        if tenant in self._tenants:
            raise ValueError("tenant %r already registered" % (tenant,))
        if burst_bytes is None:
            burst_bytes = self.default_burst_bytes
        bucket = TokenBucket(1, burst_bytes, start_ns=start_ns)
        state = TenantState(tenant, int(weight), priority, bucket)
        self._tenants[tenant] = state
        self._total_weight += state.weight
        self._rebalance()
        return state

    def _rebalance(self):
        """Recompute every bucket's rate as its weighted share."""
        total = self._total_weight
        for state in self._tenants.values():
            state.bucket.rate_bps = max(
                1, self.capacity_bps * state.weight // total)

    def tenant(self, tenant):
        return self._tenants[tenant]

    def tenants(self):
        """All registered tenant states, in registration order."""
        return list(self._tenants.values())

    # -- pressure / overload ----------------------------------------------

    def pressure(self, now_ns):
        """Scalar saturation signal in [0, inf): max over the watched
        resources of how close each is to its ceiling."""
        p = 0.0
        buffer = self.buffer
        if buffer is not None and buffer.blocks_total:
            p = buffer.used_blocks / buffer.blocks_total
        slots = self._slots
        if slots is not None and self.slot_ceiling_ns > 0:
            backlog = slots.earliest_free_ns() - now_ns
            if backlog > 0:
                p = max(p, backlog / self.slot_ceiling_ns)
        return p

    def _update_overload(self, now_ns):
        p = self.pressure(now_ns)
        if not self.overloaded:
            if p >= self.high_watermark:
                self.overloaded = True
                self.env.stats.bump("qos_overload_enters")
                if self.health is not None:
                    self.health.note_overload(
                        now_ns, True, "pressure %.2f >= %.2f"
                        % (p, self.high_watermark))
        elif p <= self.low_watermark:
            self.overloaded = False
            self.env.stats.bump("qos_overload_exits")
            if self.health is not None:
                self.health.note_overload(
                    now_ns, False, "pressure %.2f <= %.2f"
                    % (p, self.low_watermark))
        return p

    # -- the dispatch-boundary hook ---------------------------------------

    def admit(self, ctx, req):
        """Admission-check one IORequest on its way into the stack.

        Untenanted and unregistered traffic passes untouched.  A
        shed-class request during overload raises
        :class:`~repro.fs.errors.TryAgain` (EAGAIN) *before* taking any
        lock or bucket debit; otherwise the tenant's bucket is debited
        and any throttle wait is served here, charged under
        ``LAYER_QOS``.
        """
        tenant = req.tenant
        if tenant is None:
            return
        state = self._tenants.get(tenant)
        if state is None:
            return
        now = ctx.now
        self._update_overload(now)
        if self.overloaded and state.priority <= self.shed_priority:
            state.shed_ops += 1
            stats = self.env.stats
            stats.bump("qos_shed_ops")
            stats.bump("qos_shed_ops_prio_%d" % state.priority)
            raise TryAgain(
                "tenant %r shed under overload (%s class)"
                % (tenant, PRIORITY_NAMES.get(state.priority,
                                              state.priority)))
        wait = state.bucket.take(now, req.total_bytes)
        if wait:
            with ctx.layer(LAYER_QOS):
                ctx.charge(wait)
            state.throttle_ns += wait
            self.env.stats.bump("qos_throttle_ns", wait)
        state.admitted_ops += 1
        state.admitted_bytes += req.total_bytes
        stats = self.env.stats
        stats.bump("qos_admitted_ops")
        stats.bump("qos_admitted_bytes", req.total_bytes)

    # -- reporting --------------------------------------------------------

    def fairness_snapshot(self):
        """``{tenant: admitted_bytes}`` for fairness-spread computation."""
        return {t: s.admitted_bytes for t, s in self._tenants.items()}

    def __repr__(self):
        return "QosController(%d tenants, cap=%dB/s, overloaded=%s)" % (
            len(self._tenants), self.capacity_bps, self.overloaded,
        )

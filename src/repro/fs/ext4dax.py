"""EXT4-DAX: direct data access with cache-oriented metadata.

The DAX patch lets ext4 bypass the OS page cache for *data*, so its data
path matches PMFS (single copy, direct to NVMM).  Its metadata path,
however, remains ext4's: dirtied metadata buffers are journaled through
jbd2 and committed on fsync or periodically.  That is the one behavioural
difference the paper calls out -- "EXT4-DAX still follows the
cache-oriented methods for [metadata], while PMFS follows direct access
for both data and metadata" -- and it is why EXT4-DAX trails PMFS on the
metadata-heavy Varmail workload (Figure 7).
"""

from repro.engine.clock import NS_PER_SEC
from repro.engine.locks import VCompletion
from repro.engine.stats import CAT_OTHERS
from repro.fs.extfs.jbd2 import JBD2CommitTask, JBD2Journal
from repro.fs.pmfs.pmfs import PMFS
from repro.nvmm.config import BLOCK_SIZE


class Ext4Dax(PMFS):
    """PMFS-style direct data access + jbd2-style journaled metadata."""

    name = "ext4-dax"

    #: Software cost of dirtying one metadata buffer in the (cached)
    #: metadata path rather than updating NVMM structures in place.
    METADATA_BUFFER_NS = 900

    def __init__(self, env, device, config, commit_interval_ns=5 * NS_PER_SEC,
                 **kwargs):
        super().__init__(env, device, config, **kwargs)
        self._journal_area = self.sb.journal_start * BLOCK_SIZE
        self._journal_cycle = 0
        self.jbd2 = JBD2Journal(
            env,
            write_block_fn=self._write_journal_block,
            commit_interval_ns=commit_interval_ns,
        )
        env.background.register(JBD2CommitTask(env, self.jbd2))
        #: Inodes whose size grew since their last sync: the metadata
        #: fdatasync(2) must still commit through jbd2.
        self._size_dirty = set()

    def _write_journal_block(self, ctx, data):
        # Journal blocks land in NVMM directly (DAX has no block device),
        # but each is a full 4 KiB write with no cacheline batching.
        offset = (self._journal_cycle % (self.sb.journal_blocks - 1)) * BLOCK_SIZE
        self._journal_cycle += 1
        self.device.write_persistent(ctx, self._journal_area + offset, data,
                                     CAT_OTHERS)

    def _metadata_touch(self, ctx, block_ids, ino=None):
        ctx.charge(len(block_ids) * self.METADATA_BUFFER_NS, CAT_OTHERS)
        self.jbd2.dirty_metadata(ctx, block_ids, ino=ino)

    @staticmethod
    def _itable_block(ino):
        return ("itable", ino // 16)

    @staticmethod
    def _dir_block(parent_ino):
        return ("dir", parent_ino)

    _BITMAP_BLOCK = ("bitmap", 0)

    # -- namespace ops carry the cached-metadata overhead ------------------

    def create_file(self, ctx, parent_ino, name):
        ino = super().create_file(ctx, parent_ino, name)
        self._metadata_touch(ctx, (self._itable_block(ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        return ino

    def mkdir(self, ctx, parent_ino, name):
        ino = super().mkdir(ctx, parent_ino, name)
        self._metadata_touch(ctx, (self._itable_block(ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        return ino

    def unlink(self, ctx, parent_ino, name, ino):
        self._metadata_touch(ctx, (self._itable_block(ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        super().unlink(ctx, parent_ino, name, ino)

    def rmdir(self, ctx, parent_ino, name, ino):
        self._metadata_touch(ctx, (self._itable_block(ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        super().rmdir(ctx, parent_ino, name, ino)

    def rename(self, ctx, old_parent, old_name, new_parent, new_name, ino,
               replaced_ino=None):
        touched = [self._itable_block(ino), self._dir_block(old_parent),
                   self._dir_block(new_parent)]
        if replaced_ino is not None:
            touched += [self._itable_block(replaced_ino), self._BITMAP_BLOCK]
        self._metadata_touch(ctx, touched)
        super().rename(ctx, old_parent, old_name, new_parent, new_name, ino,
                       replaced_ino=replaced_ino)

    def write_iter(self, ctx, req):
        size_before = self._inode(req.ino).size
        written = super().write_iter(ctx, req)
        if written:
            if self._inode(req.ino).size > size_before:
                self._size_dirty.add(req.ino)
            self._metadata_touch(ctx, (self._itable_block(req.ino),), ino=None)
        return written

    def truncate(self, ctx, ino, new_size):
        self._metadata_touch(ctx, (self._itable_block(ino),
                                   self._BITMAP_BLOCK))
        super().truncate(ctx, ino, new_size)
        self._size_dirty.add(ino)

    def fsync(self, ctx, ino):
        super().fsync(ctx, ino)
        self.jbd2.commit(ctx)
        self._size_dirty.discard(ino)

    def fdatasync(self, ctx, ino):
        """fdatasync(2): data is already durable (direct access), so the
        fence is all that's needed -- plus the jbd2 commit when the size
        grew since the last sync."""
        super().fdatasync(ctx, ino)
        if ino in self._size_dirty:
            self._size_dirty.discard(ino)
            self.jbd2.commit(ctx)

    def sync_iter(self, ctx, req):
        """OP_SYNC: ring-async syncs fence in the foreground (data is
        already in NVMM) and ride the jbd2 commit timeline for the
        metadata; eager syncs commit inline as before."""
        if req.eager:
            return super().sync_iter(ctx, req)
        ino = req.ino
        self._inode(ino)
        self.device.fence(ctx)
        if req.datasync and ino not in self._size_dirty:
            return VCompletion(
                self.env, name="%s.fdatasync:%d" % (self.name, ino)
            ).resolve(ctx.now, 0)
        self._size_dirty.discard(ino)
        return self.jbd2.commit_completion(
            name="%s.fsync:%d" % (self.name, ino)
        )

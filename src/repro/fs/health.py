"""The mount-health state machine: degradation is no longer a latch.

PR 1's ``errors=remount-ro`` behaviour was a one-way boolean: enough
media errors and the mount stayed read-only until someone threw it away.
The formal VFS-switch model (PAPERS.md) argues mount health should be an
explicit state machine with *specified* transitions, including recovery.
This module provides it:

::

                 media/errseq errors >= threshold
      HEALTHY  ------------------------------------>  DEGRADED_RO
         ^                                              |      |
         |       clean scrub/repair pass                |      |  errors >=
         +----------------------------------------------+      |  isolate_
                                                               |  threshold
                                                               v
                                                           ISOLATED

- **HEALTHY**: reads and writes served.
- **DEGRADED_RO**: writes refused (EROFS), reads of good media served --
  the classic remount-ro posture, but now *exitable*: a scrub pass that
  repairs or isolates every bad line returns the mount to HEALTHY.
- **ISOLATED**: the error count kept climbing while degraded (the media
  is actively rotting); the mount refuses all I/O until a clean scrub.

Transitions are timestamped in virtual time, so mean-time-to-recovery is
directly measurable from the history (the chaos campaign's MTTR metric).
"""

HEALTHY = "healthy"
DEGRADED_RO = "degraded_ro"
ISOLATED = "isolated"
#: Observable overlay, not an FSM state: the mount is HEALTHY but the
#: QoS admission controller reports saturation (see
#: :mod:`repro.fs.qos`).  Kept out of ``state``/``history`` so media
#: degradation metrics (MTTR, transition counts) are unaffected by load.
OVERLOADED = "overloaded"


class MountHealth:
    """Threshold-driven health FSM for one mount."""

    def __init__(self, env, media_error_threshold=5, isolate_threshold=None):
        self.env = env
        if media_error_threshold <= 0:
            raise ValueError("media_error_threshold must be positive")
        self.media_error_threshold = media_error_threshold
        #: Total errors (including those that caused degradation) at which
        #: a degraded mount is isolated.  Defaults to 4x the degradation
        #: threshold; ``None`` computes that default.
        if isolate_threshold is None:
            isolate_threshold = media_error_threshold * 4
        if isolate_threshold < media_error_threshold:
            raise ValueError("isolate_threshold below media_error_threshold")
        self.isolate_threshold = isolate_threshold
        self.state = HEALTHY
        #: Errors observed in the current HEALTHY/DEGRADED episode; reset
        #: by a clean scrub, not by time.
        self.media_errors = 0
        self.reason = None
        #: ``(from_state, to_state, at_ns, reason)`` in transition order.
        self.history = []
        #: Overload observable (orthogonal to the media FSM): set/cleared
        #: by the QoS admission controller's watermark hysteresis.
        self.overloaded = False
        #: ``(at_ns, active, reason)`` toggles, coalesced (no repeats).
        self.overload_history = []

    # -- queries -----------------------------------------------------------

    @property
    def writable(self):
        return self.state == HEALTHY

    @property
    def readable(self):
        return self.state != ISOLATED

    @property
    def observable_state(self):
        """What monitoring sees: OVERLOADED overlays a HEALTHY mount;
        media degradation (the real FSM) always wins over load."""
        if self.state == HEALTHY and self.overloaded:
            return OVERLOADED
        return self.state

    def __repr__(self):
        return "MountHealth(%s, errors=%d, reason=%r)" % (
            self.state, self.media_errors, self.reason,
        )

    # -- transitions -------------------------------------------------------

    def _transition(self, to_state, now_ns, reason):
        self.history.append((self.state, to_state, now_ns, reason))
        self.state = to_state
        self.reason = reason
        self.env.stats.bump("health_transitions")

    def force_degraded(self, now_ns, reason):
        """An unconditional degradation (e.g. journal recovery failed at
        mount: the image itself is suspect, regardless of error counts)."""
        if self.state == HEALTHY:
            self._transition(DEGRADED_RO, now_ns, reason)
            self.env.stats.bump("vfs_remount_ro")

    def count_media_error(self, now_ns, reason="media error threshold"):
        """One EIO observed (sync read/write or async writeback).

        Returns the state after accounting, so callers can react without
        re-querying.
        """
        self.media_errors += 1
        self.env.stats.bump("vfs_media_errors")
        if self.state == HEALTHY and \
                self.media_errors >= self.media_error_threshold:
            self._transition(
                DEGRADED_RO, now_ns,
                "%s (%d errors)" % (reason, self.media_errors))
            self.env.stats.bump("vfs_remount_ro")
        elif self.state == DEGRADED_RO and \
                self.media_errors >= self.isolate_threshold:
            self._transition(
                ISOLATED, now_ns,
                "errors kept climbing while degraded (%d)"
                % self.media_errors)
            self.env.stats.bump("vfs_isolated")
        return self.state

    def note_overload(self, now_ns, active, reason=None):
        """Record an overload toggle from the admission controller.

        Coalesced: repeating the current level is a no-op, so sustained
        saturation costs one history entry per episode, not one per
        request.  Deliberately NOT a ``_transition``: overload is load
        posture, not media health, and must not perturb ``history`` or
        :meth:`mttr_ns`.
        """
        active = bool(active)
        if active == self.overloaded:
            return
        self.overloaded = active
        self.overload_history.append((now_ns, active, reason))
        self.env.stats.bump(
            "health_overload_enters" if active else "health_overload_exits")

    def scrub_result(self, now_ns, report):
        """Feed a completed scrub pass into the FSM.

        A *clean* report (every bad line repaired or isolated, nothing
        unaccounted for) recovers a DEGRADED_RO or ISOLATED mount back to
        HEALTHY and resets the error count -- the recovery edge that
        makes remount-ro a state, not a latch.  A dirty report leaves the
        state alone.
        """
        if not report.clean:
            return self.state
        if self.state in (DEGRADED_RO, ISOLATED):
            self._transition(
                HEALTHY, now_ns,
                "clean scrub: %d lines repaired, %d isolated"
                % (report.repaired_lines, report.isolated_lines))
            self.env.stats.bump("health_recoveries")
        self.media_errors = 0
        if self.state == HEALTHY:
            self.reason = None
        return self.state

    # -- measurement -------------------------------------------------------

    def mttr_ns(self):
        """Mean virtual time from leaving HEALTHY to returning to it.

        ``None`` when the mount never degraded or never recovered.
        """
        outages = []
        left_at = None
        for src, dst, at_ns, _reason in self.history:
            if src == HEALTHY and dst != HEALTHY and left_at is None:
                left_at = at_ns
            elif dst == HEALTHY and left_at is not None:
                outages.append(at_ns - left_at)
                left_at = None
        if not outages:
            return None
        return sum(outages) // len(outages)

"""open(2)-style flags used by the VFS syscall surface."""

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400
#: Synchronous writes: every write is an eager-persistent write
#: (the paper's case (1) in Section 3.3.2).
O_SYNC = 0x1000
#: Synchronous *data* writes: like O_SYNC for the file's bytes, but
#: metadata not needed to retrieve them (mtime, and on the journaling
#: stacks the jbd2 commit for pure overwrites) may persist lazily.
O_DSYNC = 0x2000

# mmap(2)-style mapping flags (``vfs.mmap``).
#: Plain shared mapping: loads/stores hit NVMM directly with no
#: atomicity guarantees beyond the hardware's 8-byte stores.
MAP_SHARED = 0x01
#: Library-mode atomic mapping: stores are staged through a per-file
#: epoch log (undo or redo, Libnvmmio-style) so a crash between two
#: ``msync`` calls recovers to an epoch boundary, never a blend.
MAP_ATOMIC = 0x02

# lseek(2) whence values.
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

_ACCESS_MASK = 0x3


def readable(flags):
    return (flags & _ACCESS_MASK) in (O_RDONLY, O_RDWR)


def writable(flags):
    return (flags & _ACCESS_MASK) in (O_WRONLY, O_RDWR)

"""The syscall surface: paths, file descriptors, and overhead accounting.

Workloads talk to a :class:`VFS`, never to a file system directly.  The
VFS charges the user/kernel mode-switch and file-abstraction costs that
the paper's Figure 1 groups under *Others*, resolves paths through a
dentry cache, tracks per-syscall time (Figure 12's breakdown), and
forwards inode-level work to the mounted file system.

Data syscalls build one :class:`repro.io.IORequest` each -- vectored
variants (``readv``/``writev``/``pwritev``/``preadv``) put the whole
iovec list in a single request, so the fs below sees one operation, one
syscall-overhead charge, and (for HiNFS) one eager/lazy decision.

Concurrency: the VFS serializes per inode, not globally.  Data reads
take the file's inode lock shared, writes/fsync/truncate take it
exclusive, and multi-inode namespace operations (``rename``, ``unlink``)
acquire their whole inode set in the canonical lowest-inode-first order
(enforced by :class:`repro.engine.locks.InodeLockTable` -- an inverted
pair raises ``DeadlockError`` instead of hanging).  Threads touching
disjoint files never contend here; shared bottlenecks below (NVMM writer
slots, the journal) remain the only cross-file serialization.
"""

from contextlib import contextmanager

from repro.engine.locks import InodeLockTable, VCompletion
from repro.fs import flags as f
from repro.fs.base import ROOT_INO
from repro.fs.health import MountHealth
from repro.io import OP_READ, OP_SYNC, OP_WRITE, IORequest
from repro.io import ring as uring
from repro.fs.errors import (
    BadFileDescriptor,
    ExistsError,
    InvalidArgument,
    IsADirectory,
    MediaError,
    NotADirectory,
    NotFound,
    ReadOnly,
)


class OpenFile:
    """One entry in the open-file table."""

    __slots__ = ("fd", "ino", "flags", "pos", "path", "wb_cursor")

    def __init__(self, fd, ino, flags, path, wb_cursor=0):
        self.fd = fd
        self.ino = ino
        self.flags = flags
        self.pos = 0
        self.path = path
        #: errseq cursor sampled at open: deferred writeback errors newer
        #: than this are reported by the next fsync/close on this fd.
        self.wb_cursor = wb_cursor


class VFS:
    """Path/descriptor layer over one mounted file system.

    Failure semantics: media errors surface to the caller as EIO
    (:class:`MediaError`), and the mount's posture is governed by a
    :class:`~repro.fs.health.MountHealth` state machine.  Once
    ``media_error_threshold`` errors have been seen -- synchronous or via
    background writeback -- the mount degrades to read-only (mutations
    raise :class:`ReadOnly` while reads of good media keep being served);
    further errors while degraded isolate it entirely; a clean
    :meth:`scrub` pass recovers it back to read-write.  A mount whose
    journal recovery failed starts out degraded.
    """

    def __init__(self, env, fs, config, sync_mount=False,
                 media_error_threshold=5, isolate_threshold=None):
        self.env = env
        self.fs = fs
        self.config = config
        #: ``mount -o sync``: every write becomes eager-persistent
        #: (the paper's Section 3.3.2, case (1)).
        self.sync_mount = sync_mount
        self._files = {}
        self._next_fd = 3
        #: Per-inode reader/writer locks (shared for reads, exclusive
        #: for writes/fsync/truncate and namespace mutations).
        self.ilocks = InodeLockTable(env)
        # (parent_ino, name) -> child ino; the kernel's dentry cache.
        self._dcache = {}
        # Per-inode bytes written since the last fsync, for the paper's
        # Figure 2 "percentage of fsync bytes" accounting.
        self._unsynced_bytes = {}
        #: Mount-health FSM (HEALTHY -> DEGRADED_RO -> ISOLATED with a
        #: scrub-driven recovery edge back to HEALTHY).
        self.health = MountHealth(
            env, media_error_threshold=media_error_threshold,
            isolate_threshold=isolate_threshold,
        )
        self.media_error_threshold = media_error_threshold
        fs.wb_error_hook = self._on_async_media_error
        #: Per-tenant QoS controller (:class:`repro.fs.qos.QosController`)
        #: or None; the data-path handlers consult it once per request.
        self.qos = None
        #: Per-thread submission/completion rings (see :meth:`ring`).
        self._rings = {}
        #: THE dispatch table of the data path: every data syscall --
        #: sync wrapper or batched ring submission -- executes through
        #: exactly these handlers.
        self.op_table = {
            uring.IORING_OP_READV: self._op_readv,
            uring.IORING_OP_WRITEV: self._op_writev,
            uring.IORING_OP_FSYNC: self._op_fsync,
        }
        if fs.degraded_reason:
            self._remount_ro(fs.degraded_reason)

    # -- QoS ---------------------------------------------------------------

    def attach_qos(self, qos):
        """Install a :class:`repro.fs.qos.QosController` on the data path.

        Wires the controller to this mount's health FSM (the OVERLOADED
        observable) and returns it.  Untenanted requests are unaffected;
        detach by attaching ``None``.
        """
        self.qos = qos
        if qos is not None:
            qos.health = self.health
        return qos

    # -- degradation / health --------------------------------------------

    @property
    def read_only(self):
        """Compat view of the health FSM: anything not HEALTHY is RO."""
        return not self.health.writable

    @property
    def ro_reason(self):
        return self.health.reason

    @property
    def media_errors(self):
        return self.health.media_errors

    def _remount_ro(self, reason, now_ns=0):
        """Degrade the mount read-only instead of crashing the scheduler."""
        self.health.force_degraded(now_ns, reason)

    def _check_writable(self, what):
        if not self.health.writable:
            raise ReadOnly(
                "%s on %s mount (%s)"
                % (what, self.health.state, self.health.reason)
            )

    def _check_readable(self, what):
        """An ISOLATED mount refuses even reads (the media is rotting)."""
        if not self.health.readable:
            raise MediaError(
                "%s on isolated mount (%s)" % (what, self.health.reason)
            )

    def _count_media_error(self, now_ns=0):
        self.health.count_media_error(now_ns)

    def _on_async_media_error(self, ino):
        """Background writeback hit bad media; nobody to raise at, so the
        error only feeds the degradation threshold (and the errseq map,
        which the next fsync/close of the file reports from)."""
        self._count_media_error()

    @contextmanager
    def _media_guard(self, ctx=None):
        """Count EIO from a synchronous fs call toward the health FSM."""
        try:
            yield
        except MediaError:
            self._count_media_error(ctx.now if ctx is not None else 0)
            raise

    def scrub(self, ctx):
        """Run one scrub/repair pass and feed the result to the FSM.

        A clean pass (every bad line repaired or isolated) recovers a
        degraded mount back to HEALTHY read-write.  Returns the
        :class:`~repro.fs.scrub.ScrubReport`.
        """
        report = self.fs.scrub(ctx)
        self.health.scrub_result(ctx.now, report)
        self.env.stats.bump("scrub_runs")
        return report

    def _check_wb_error(self, file):
        """Report a deferred writeback error exactly once per fd."""
        hit, file.wb_cursor = self.fs.wb_err.check(file.ino, file.wb_cursor)
        if hit:
            raise MediaError(
                "deferred writeback error on %r (EIO)" % file.path
            )

    # -- internals ------------------------------------------------------

    def _syscall_entry(self, ctx):
        ctx.charge(self.config.syscall_ns + self.config.vfs_op_ns)
        self.env.stats.bump("vfs_syscall_entries")

    def _file(self, fd):
        try:
            return self._files[fd]
        except KeyError:
            raise BadFileDescriptor("fd %d is not open" % fd) from None

    @staticmethod
    def _split(path):
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise InvalidArgument("empty path %r" % path)
        return parts[:-1], parts[-1]

    def _walk(self, ctx, components):
        """Resolve directory components from the root; returns an ino."""
        ino = ROOT_INO
        for name in components:
            cached = self._dcache.get((ino, name))
            if cached is not None:
                ino = cached
                continue
            ctx.charge(self.config.index_lookup_ns)
            child = self.fs.lookup(ctx, ino, name)
            if child is None:
                raise NotFound("component %r not found" % name)
            self._dcache[(ino, name)] = child
            ino = child
        return ino

    def _resolve_parent(self, ctx, path):
        dirs, name = self._split(path)
        return self._walk(ctx, dirs), name

    def _lookup_child(self, ctx, parent, name):
        cached = self._dcache.get((parent, name))
        if cached is not None:
            return cached
        ctx.charge(self.config.index_lookup_ns)
        child = self.fs.lookup(ctx, parent, name)
        if child is not None:
            self._dcache[(parent, name)] = child
        return child

    # -- namespace syscalls ----------------------------------------------

    def open(self, ctx, path, flags=f.O_RDWR):
        """open(2); returns a file descriptor."""
        with ctx.syscall("open"):
            self._syscall_entry(ctx)
            parent, name = self._resolve_parent(ctx, path)
            ino = self._lookup_child(ctx, parent, name)
            if ino is None:
                if not flags & f.O_CREAT:
                    raise NotFound(path)
                self._check_writable("create of %r" % path)
                with self._media_guard(ctx):
                    ino = self.fs.create_file(ctx, parent, name)
                self._dcache[(parent, name)] = ino
            else:
                if self.fs.getattr(ctx, ino).is_dir:
                    raise IsADirectory(path)
                if flags & f.O_TRUNC and f.writable(flags):
                    self._check_writable("truncate of %r" % path)
                    with self.ilocks.write_locked(ctx, ino), \
                            self._media_guard(ctx):
                        self.fs.truncate(ctx, ino, 0)
            fd = self._next_fd
            self._next_fd += 1
            self._files[fd] = OpenFile(
                fd, ino, flags, path, wb_cursor=self.fs.wb_err.sample(ino)
            )
            self.env.stats.ops_completed += 1
            return fd

    def close(self, ctx, fd):
        with ctx.syscall("close"):
            self._syscall_entry(ctx)
            file = self._file(fd)
            del self._files[fd]
            self.env.stats.ops_completed += 1
            # Like Linux filp_close: the fd is gone either way, but a
            # deferred writeback error unreported on this fd surfaces now.
            self._check_wb_error(file)

    def mkdir(self, ctx, path):
        with ctx.syscall("mkdir"):
            self._syscall_entry(ctx)
            self._check_writable("mkdir of %r" % path)
            parent, name = self._resolve_parent(ctx, path)
            if self._lookup_child(ctx, parent, name) is not None:
                raise ExistsError(path)
            with self._media_guard(ctx):
                ino = self.fs.mkdir(ctx, parent, name)
            self._dcache[(parent, name)] = ino
            self.env.stats.ops_completed += 1
            return ino

    def unlink(self, ctx, path):
        with ctx.syscall("unlink"):
            self._syscall_entry(ctx)
            self._check_writable("unlink of %r" % path)
            parent, name = self._resolve_parent(ctx, path)
            ino = self._lookup_child(ctx, parent, name)
            if ino is None:
                raise NotFound(path)
            if self.fs.getattr(ctx, ino).is_dir:
                raise IsADirectory(path)
            # Parent and victim locked together, lowest inode first.
            with self.ilocks.write_locked_many(ctx, (parent, ino)):
                with self._media_guard(ctx):
                    self.fs.unlink(ctx, parent, name, ino)
            self.ilocks.drop(ino)
            self._dcache.pop((parent, name), None)
            self._unsynced_bytes.pop(ino, None)
            self.env.stats.ops_completed += 1

    def rmdir(self, ctx, path):
        with ctx.syscall("rmdir"):
            self._syscall_entry(ctx)
            self._check_writable("rmdir of %r" % path)
            parent, name = self._resolve_parent(ctx, path)
            ino = self._lookup_child(ctx, parent, name)
            if ino is None:
                raise NotFound(path)
            if not self.fs.getattr(ctx, ino).is_dir:
                raise NotADirectory(path)
            with self._media_guard(ctx):
                self.fs.rmdir(ctx, parent, name, ino)
            self._dcache.pop((parent, name), None)
            self.env.stats.ops_completed += 1

    def rename(self, ctx, old_path, new_path):
        """rename(2): atomically move ``old_path`` to ``new_path``.

        An existing regular file at the destination is replaced (the
        POSIX overwrite semantics crash-consistency tooling cares about:
        at no crash point do both names vanish).  Replacing a directory
        is rejected to keep the namespace model simple.
        """
        with ctx.syscall("rename"):
            self._syscall_entry(ctx)
            self._check_writable("rename of %r" % old_path)
            old_parent, old_name = self._resolve_parent(ctx, old_path)
            ino = self._lookup_child(ctx, old_parent, old_name)
            if ino is None:
                raise NotFound(old_path)
            new_parent, new_name = self._resolve_parent(ctx, new_path)
            if (old_parent, old_name) == (new_parent, new_name):
                self.env.stats.ops_completed += 1
                return
            replaced = self._lookup_child(ctx, new_parent, new_name)
            if replaced is not None:
                moving_dir = self.fs.getattr(ctx, ino).is_dir
                if self.fs.getattr(ctx, replaced).is_dir:
                    raise IsADirectory(new_path)
                if moving_dir:
                    raise NotADirectory(new_path)
            # Both parents, the moved inode, and any replaced victim are
            # locked as one set in the canonical ascending-inode order;
            # concurrent cross renames (a->b, b->a) therefore cannot
            # deadlock -- both threads lock the same sequence.
            lock_set = [old_parent, new_parent, ino]
            if replaced is not None:
                lock_set.append(replaced)
            with self.ilocks.write_locked_many(ctx, lock_set):
                with self._media_guard(ctx):
                    moved = self.fs.rename(
                        ctx, old_parent, old_name, new_parent, new_name, ino,
                        replaced_ino=replaced,
                    )
            if replaced is not None:
                self.ilocks.drop(replaced)
            self._dcache.pop((old_parent, old_name), None)
            # A sharded fs migrating the file to another device returns
            # its new (global) inode number; remap every open descriptor
            # and the accounting keyed by the old one.
            if moved is not None and moved != ino:
                self._dcache[(new_parent, new_name)] = moved
                for file in self._files.values():
                    if file.ino == ino:
                        file.ino = moved
                        file.wb_cursor = self.fs.wb_err.sample(moved)
                if ino in self._unsynced_bytes:
                    self._unsynced_bytes[moved] = \
                        self._unsynced_bytes.pop(ino)
                self.ilocks.drop(ino)
            else:
                self._dcache[(new_parent, new_name)] = ino
            if replaced is not None:
                self._unsynced_bytes.pop(replaced, None)
            self.env.stats.ops_completed += 1

    def readdir(self, ctx, path):
        with ctx.syscall("readdir"):
            self._syscall_entry(ctx)
            parts = [p for p in path.split("/") if p]
            ino = self._walk(ctx, parts)
            if not self.fs.getattr(ctx, ino).is_dir:
                raise NotADirectory(path)
            self.env.stats.ops_completed += 1
            return self.fs.readdir(ctx, ino)

    def stat(self, ctx, path):
        with ctx.syscall("stat"):
            self._syscall_entry(ctx)
            parts = [p for p in path.split("/") if p]
            ino = self._walk(ctx, parts) if parts else ROOT_INO
            self.env.stats.ops_completed += 1
            return self.fs.getattr(ctx, ino)

    def exists(self, ctx, path):
        try:
            self.stat(ctx, path)
            return True
        except NotFound:
            return False

    # -- the submission/completion ring and its dispatch table -------------
    #
    # The ring IS the data path: every data syscall below is a batch of
    # one submitted through :meth:`ring`, executed by the handlers in
    # ``op_table`` (one IORequest per SQE, submitted to the fs under the
    # request's trace span).  Workloads batching many SQEs per submit
    # pay the ``T_syscall`` mode switch once per batch instead of once
    # per op; the handlers and their accounting are identical either
    # way.

    def ring(self, ctx, sq_depth=64):
        """This thread's :class:`repro.io.ring.IORing` (lazily created)."""
        ring = self._rings.get(ctx)
        if ring is None:
            ring = uring.IORing(self, ctx, sq_depth=sq_depth)
            self._rings[ctx] = ring
        return ring

    def _submit_sync(self, ctx, sqe):
        """The sync-syscall wrapper: one batch of one SQE, reaped
        immediately; failures re-raise the operation's exception."""
        cqe = self.ring(ctx).submit_reaping([sqe])[0]
        if cqe.error is not None:
            raise cqe.error
        return cqe.value

    def _submit_batch(self, ctx, sqes):
        """Submit ``sqes`` as one batch and reap them all; raises the
        first real failure (link cancellations ride behind it)."""
        cqes = self.ring(ctx).submit_reaping(sqes)
        for cqe in cqes:
            if cqe.error is not None and cqe.res != -uring.ECANCELED:
                raise cqe.error
        return cqes

    def _op_readv(self, ctx, sqe, ring):
        """Dispatch-table handler: scatter read (read/pread/readv/preadv).

        ``sqe.offset is None`` means read(2) semantics: start at the
        descriptor's position and advance it."""
        file = self._file(sqe.fd)
        if not f.readable(file.flags):
            raise ReadOnly("fd %d not open for reading" % sqe.fd)
        self._check_readable("read of %r" % file.path)
        positional = sqe.offset is None
        offset = file.pos if positional else sqe.offset
        sizes = [int(count) for count in sqe.iovecs]
        if offset < 0 or any(count < 0 for count in sizes):
            raise InvalidArgument("negative offset/count")
        req = IORequest(
            self.env.next_req_id(), OP_READ, file.ino, sizes, offset,
            flags=file.flags, syscall=sqe.syscall, tenant=sqe.tenant,
        )
        with ctx.syscall(sqe.syscall, req=req):
            ring.charge_entry(ctx)
            if self.qos is not None:
                self.qos.admit(ctx, req)
            with self.ilocks.read_locked(ctx, file.ino):
                with self._media_guard(ctx), ctx.layer("fs"):
                    data = self.fs.submit(ctx, req)
            self.env.stats.ops_completed += 1
            bufs = req.scatter(data)
        if positional:
            file.pos += len(data)
        return len(data), bufs

    def _op_writev(self, ctx, sqe, ring):
        """Dispatch-table handler: gather write (write/pwrite/writev/
        pwritev).  ``sqe.offset is None`` means write(2) semantics:
        write at the descriptor's position (honouring O_APPEND) and
        advance it."""
        file = self._file(sqe.fd)
        if not f.writable(file.flags):
            raise ReadOnly("fd %d not open for writing" % sqe.fd)
        positional = sqe.offset is None
        if positional:
            if file.flags & f.O_APPEND:
                file.pos = self.fs.getattr(ctx, file.ino).size
            offset = file.pos
        else:
            offset = sqe.offset
        if offset < 0:
            raise InvalidArgument("negative offset")
        self._check_writable("write to %r" % file.path)
        eager = self.sync_mount or bool(file.flags & (f.O_SYNC | f.O_DSYNC))
        datasync = bool(
            eager and not self.sync_mount and not file.flags & f.O_SYNC
        )
        req = IORequest(
            self.env.next_req_id(), OP_WRITE, file.ino, sqe.iovecs, offset,
            flags=file.flags, eager=eager, datasync=datasync,
            syscall=sqe.syscall, tenant=sqe.tenant,
        )
        with ctx.syscall(sqe.syscall, req=req):
            ring.charge_entry(ctx)
            if self.qos is not None:
                self.qos.admit(ctx, req)
            with self.ilocks.write_locked(ctx, file.ino):
                with self._media_guard(ctx), ctx.layer("fs"):
                    written = self.fs.submit(ctx, req)
            self.env.stats.ops_completed += 1
            self.env.stats.bump("app_bytes_written", written)
            if eager:
                self.env.stats.bump("app_bytes_fsynced", written)
            else:
                self._unsynced_bytes[file.ino] = (
                    self._unsynced_bytes.get(file.ino, 0) + written
                )
        if positional:
            file.pos += written
        return written, written

    def _op_fsync(self, ctx, sqe, ring):
        """Dispatch-table handler: fsync/fdatasync.

        Builds an OP_SYNC request for the fs.  With ``IOSQE_ASYNC`` the
        fs may return a pending completion (resolved when the persist
        lands -- an async flush's device end, a jbd2 commit); the ring
        turns it into a CQE at reap time.  Without it (the sync-wrapper
        path) the flush is fully foreground."""
        datasync = bool(sqe.fsync_flags & uring.IORING_FSYNC_DATASYNC)
        token = None
        with ctx.syscall(sqe.syscall):
            ring.charge_entry(ctx)
            file = self._file(sqe.fd)
            req = IORequest(
                self.env.next_req_id(), OP_SYNC, file.ino, [], 0,
                flags=file.flags, eager=not sqe.flags & uring.IOSQE_ASYNC,
                datasync=datasync, syscall=sqe.syscall, tenant=sqe.tenant,
            )
            if self.qos is not None:
                self.qos.admit(ctx, req)
            with self.ilocks.write_locked(ctx, file.ino):
                with self._media_guard(ctx), ctx.layer("fs"):
                    token = self.fs.submit(ctx, req)
            self.env.stats.ops_completed += 1
            self.env.stats.bump(
                "app_bytes_fsynced", self._unsynced_bytes.pop(file.ino, 0)
            )
            # A deferred error from background writeback of this inode is
            # reported by the first fsync after it was recorded -- exactly
            # once per fd (errseq semantics).
            self._check_wb_error(file)
        if isinstance(token, VCompletion):
            return token
        return 0, 0

    # -- data syscalls: thin submit-and-wait wrappers ---------------------

    def read(self, ctx, fd, count):
        """read(2) at the descriptor's position."""
        return self._submit_sync(ctx, uring.prep_read(fd, count))[0]

    def pread(self, ctx, fd, offset, count):
        """pread(2): positioned single-buffer read."""
        return self._submit_sync(ctx, uring.prep_read(fd, count, offset))[0]

    def readv(self, ctx, fd, sizes):
        """readv(2): scatter-read at the descriptor's position."""
        return self._submit_sync(ctx, uring.prep_readv(fd, list(sizes)))

    def preadv(self, ctx, fd, offset, sizes):
        """preadv(2): positioned scatter read."""
        return self._submit_sync(
            ctx, uring.prep_readv(fd, list(sizes), offset, syscall="preadv")
        )

    def write(self, ctx, fd, data):
        """write(2) at the descriptor's position (honours O_APPEND)."""
        return self._submit_sync(ctx, uring.prep_write(fd, data))

    def pwrite(self, ctx, fd, offset, data):
        """pwrite(2): positioned single-buffer write."""
        return self._submit_sync(ctx, uring.prep_write(fd, data, offset))

    def writev(self, ctx, fd, iovecs):
        """writev(2) at the descriptor's position (honours O_APPEND).

        The whole iovec list is ONE request: one syscall-overhead
        charge, one fs submission, one eager/lazy decision below.
        """
        return self._submit_sync(ctx, uring.prep_writev(fd, list(iovecs)))

    def pwritev(self, ctx, fd, offset, iovecs):
        """pwritev(2): positioned gather write."""
        return self._submit_sync(
            ctx, uring.prep_writev(fd, list(iovecs), offset,
                                   syscall="pwritev")
        )

    def fsync(self, ctx, fd):
        """fsync(2): the file's data and metadata are durable on return."""
        self._submit_sync(ctx, uring.prep_fsync(fd))

    def fdatasync(self, ctx, fd):
        """fdatasync(2): the file's data (and the metadata needed to read
        it back) is durable on return; clean-metadata commits are
        skipped."""
        self._submit_sync(ctx, uring.prep_fsync(fd, datasync=True))

    def truncate(self, ctx, path, new_size):
        with ctx.syscall("truncate"):
            self._syscall_entry(ctx)
            self._check_writable("truncate of %r" % path)
            parts = [p for p in path.split("/") if p]
            ino = self._walk(ctx, parts)
            with self.ilocks.write_locked(ctx, ino):
                with self._media_guard(ctx), ctx.layer("fs"):
                    self.fs.truncate(ctx, ino, new_size)
            self.env.stats.ops_completed += 1

    def lseek(self, ctx, fd, pos, whence=f.SEEK_SET):
        """lseek(2): reposition the descriptor; returns the new offset.

        Seeking past EOF is allowed (a later write leaves a hole that
        reads back as zeros); a resulting negative offset is EINVAL.
        """
        file = self._file(fd)
        if whence == f.SEEK_SET:
            new_pos = int(pos)
        elif whence == f.SEEK_CUR:
            new_pos = file.pos + int(pos)
        elif whence == f.SEEK_END:
            new_pos = self.fs.getattr(ctx, file.ino).size + int(pos)
        else:
            raise InvalidArgument("unknown whence %r" % (whence,))
        if new_pos < 0:
            raise InvalidArgument("lseek to negative offset %d" % new_pos)
        file.pos = new_pos
        return new_pos

    def fstat(self, ctx, fd):
        """fstat(2): attributes of an open descriptor."""
        with ctx.syscall("fstat"):
            self._syscall_entry(ctx)
            file = self._file(fd)
            self.env.stats.ops_completed += 1
            return self.fs.getattr(ctx, file.ino)

    # -- memory-mapped I/O ----------------------------------------------------

    def mmap(self, ctx, fd, length=None, flags=0, policy="auto",
             log_blocks=4, log_checksums=True):
        """mmap(2): map an open descriptor for direct access.

        This is the *last* syscall of the library-mode path: with
        ``flags & MAP_ATOMIC`` the returned
        :class:`~repro.io.mmio.MmioMapping`'s ``load``/``store``/
        ``msync`` run entirely in the process -- zero syscall charges
        after this call -- with a per-file epoch log (``policy`` picks
        undo/redo/auto, Libnvmmio-style) keeping stores crash-atomic.
        Without it, a plain volatile-until-msync ``MappedRegion``.
        """
        with ctx.syscall("mmap"):
            self._syscall_entry(ctx)
            file = self._file(fd)
            if flags & f.MAP_ATOMIC:
                self._check_writable("atomic mmap of %r" % file.path)
                if not f.writable(file.flags):
                    raise InvalidArgument(
                        "MAP_ATOMIC needs a writable descriptor")
                mmap_atomic = getattr(self.fs, "mmap_atomic", None)
                if mmap_atomic is None:
                    raise InvalidArgument(
                        "%s does not support library-mode mmap"
                        % self.fs.name)
                with self._media_guard(ctx), ctx.layer("fs"):
                    region = mmap_atomic(
                        ctx, file.ino, length=length, policy=policy,
                        log_blocks=log_blocks, log_checksums=log_checksums)
            else:
                fs_mmap = getattr(self.fs, "mmap", None)
                if fs_mmap is None:
                    raise InvalidArgument(
                        "%s does not support mmap" % self.fs.name)
                with self._media_guard(ctx), ctx.layer("fs"):
                    region = fs_mmap(ctx, file.ino)
            self.env.stats.ops_completed += 1
            return region

    def msync(self, ctx, region):
        with ctx.syscall("msync"):
            self._syscall_entry(ctx)
            self.env.stats.ops_completed += 1
            return region.msync(ctx)

    def munmap(self, ctx, region):
        with ctx.syscall("munmap"):
            self._syscall_entry(ctx)
            self.env.stats.ops_completed += 1
            region.munmap(ctx)

    # -- whole-file helpers (workload convenience, still charged) ---------

    def read_file(self, ctx, path, chunk=1 << 20):
        """Open, read fully, close; returns the bytes.

        The whole file is ONE scatter-read request sized from fstat
        (``chunk``-grained iovecs), not a loop of N accounted reads.
        """
        fd = self.open(ctx, path, f.O_RDONLY)
        size = self.fstat(ctx, fd).size
        if size == 0:
            self.close(ctx, fd)
            return b""
        sizes = self._chunk_sizes(size, chunk)
        bufs = self._submit_sync(
            ctx, uring.prep_readv(fd, sizes, 0, syscall="read")
        )
        self.close(ctx, fd)
        return b"".join(bufs)

    def write_file(self, ctx, path, data, chunk=1 << 20, sync=False):
        """Create/overwrite ``path`` with ``data``.

        The payload goes down as ONE gather-write request with
        ``chunk``-sized iovecs, not a loop of N accounted writes.  With
        ``sync=True`` the write and its fsync travel as ONE linked
        two-SQE batch (write -> IOSQE_IO_LINK -> fsync), so the pair
        pays a single syscall entry.
        """
        fd = self.open(ctx, path, f.O_RDWR | f.O_CREAT | f.O_TRUNC)
        data = bytes(data)
        if data:
            iovecs = [data[start : start + chunk]
                      for start in range(0, len(data), chunk)]
            write_sqe = uring.prep_writev(fd, iovecs, 0, syscall="write")
            if sync:
                write_sqe.flags |= uring.IOSQE_IO_LINK
                self._submit_batch(ctx, [write_sqe, uring.prep_fsync(fd)])
            else:
                self._submit_sync(ctx, write_sqe)
        elif sync:
            self.fsync(ctx, fd)
        self.close(ctx, fd)

    @staticmethod
    def _chunk_sizes(size, chunk):
        """Iovec sizes covering ``size`` bytes in ``chunk``-sized pieces."""
        return [min(chunk, size - start) for start in range(0, size, chunk)]

    # -- lifecycle ---------------------------------------------------------

    def reset_accounting(self):
        """Forget fsync-byte bookkeeping (called when stats are reset)."""
        self._unsynced_bytes.clear()

    def unmount(self, ctx):
        """Flush everything volatile; the fs must be consistent afterwards."""
        self._files.clear()
        self.fs.unmount(ctx)

"""EXT2/EXT4 on the NVMMBD block device (the paper's Table 3 baselines).

These are *performance models* of the traditional block-based stack: the
data path is fully real (pages hold real bytes, reads return what was
written), the double-copy and generic-block-layer costs are charged
exactly where Figure 3(a) places them, and EXT4 adds a jbd2-style
ordered-mode journal.  Unlike PMFS/HiNFS they are not crash-consistency
subjects in this reproduction (the paper never crashes them either).
"""

from repro.fs.extfs.extfs import Ext2, Ext4
from repro.fs.extfs.jbd2 import JBD2Journal

__all__ = ["Ext2", "Ext4", "JBD2Journal"]

"""A jbd2-style block journal model (ordered data mode).

Metadata-changing operations register the *metadata blocks* they dirty
(inode-table block, block-bitmap block, directory block).  A running
transaction deduplicates them -- touching the same inode block a
thousand times still journals it once, exactly like jbd2 buffer credits
-- and commits when fsync demands it or the periodic commit interval
(5 s, as in ext4) expires.  A commit writes ``1 descriptor + dirtied
metadata blocks + 1 commit`` journal blocks through the supplied block
writer -- the block device for EXT4+NVMMBD, direct NVMM page writes for
EXT4-DAX -- which is where the journaling overhead the paper sees on
Varmail and EXT4 comes from (and why EXT2+NVMMBD beats EXT4+NVMMBD in
Figure 13).
"""

from repro.engine.background import BackgroundTask
from repro.engine.clock import NS_PER_SEC
from repro.engine.locks import VCompletion
from repro.nvmm.config import BLOCK_SIZE

_ZERO_BLOCK = b"\0" * BLOCK_SIZE


class JBD2Journal:
    """Dirty-metadata-block accounting plus commit-block traffic."""

    def __init__(self, env, write_block_fn, commit_interval_ns=5 * NS_PER_SEC,
                 max_blocks=512):
        self.env = env
        self.write_block_fn = write_block_fn
        self.commit_interval_ns = commit_interval_ns
        self.max_blocks = max_blocks
        #: Metadata block ids dirtied by the running transaction.
        self._blocks = set()
        #: Inodes whose data must be flushed before the next commit
        #: (ordered mode); the owning fs registers a flush callback.
        self._ordered_inos = set()
        self.ordered_flush_fn = None
        #: Completions resolved by the next commit (async fsync CQEs).
        self._waiters = []

    def dirty_metadata(self, ctx, block_ids, ino=None):
        """A handle: register metadata blocks this op dirties."""
        self._blocks.update(block_ids)
        if ino is not None:
            self._ordered_inos.add(ino)
        if len(self._blocks) >= self.max_blocks:
            self.commit(ctx)

    def commit_completion(self, name="jbd2.commit"):
        """A :class:`VCompletion` the next :meth:`commit` resolves.

        Backs the ring's async fsync on the journaling stacks: the CQE
        lands when the transaction actually commits -- usually the
        periodic 5 s commit timeline.  A reaper that blocks first drives
        the commit itself through the completion's force hook.
        """
        comp = VCompletion(self.env, name=name, force_fn=self.commit)
        self._waiters.append(comp)
        return comp

    def commit(self, ctx):
        """Write the running transaction's journal blocks."""
        if not self._blocks:
            self._resolve_waiters(ctx)
            return 0
        if self.ordered_flush_fn is not None:
            for ino in sorted(self._ordered_inos):
                self.ordered_flush_fn(ctx, ino)
        self._ordered_inos.clear()
        blocks = 1 + len(self._blocks) + 1  # descriptor + metadata + commit
        for _ in range(blocks):
            self.write_block_fn(ctx, _ZERO_BLOCK)
        self._blocks.clear()
        self.env.stats.bump("jbd2_commits")
        self.env.stats.bump("jbd2_blocks", blocks)
        self._resolve_waiters(ctx)
        return blocks

    def _resolve_waiters(self, ctx):
        waiters, self._waiters = self._waiters, []
        for comp in waiters:
            comp.resolve(ctx.now, 0)

    @property
    def pending_blocks(self):
        return len(self._blocks)


class JBD2CommitTask(BackgroundTask):
    """The periodic (5 s) jbd2 commit timeline."""

    def __init__(self, env, journal):
        super().__init__(env, "jbd2-commit")
        self.journal = journal
        self._next_ns = journal.commit_interval_ns

    def next_due_ns(self):
        return self._next_ns

    def run_due(self, horizon_ns):
        while self._next_ns <= horizon_ns:
            self.ctx.clock.advance_to(self._next_ns)
            self._next_ns += self.journal.commit_interval_ns
            self.journal.commit(self.ctx)

    def quiesce(self):
        super().quiesce()
        self._next_ns = self.journal.commit_interval_ns

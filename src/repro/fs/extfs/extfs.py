"""EXT2 and EXT4 over NVMMBD through the OS page cache.

The traditional stack of Figure 3(a): every file I/O takes two copies
(device <-> page cache through the generic block layer, page cache <->
user buffer) and every request pays the block-layer software cost.  EXT4
adds jbd2 ordered-mode journaling; EXT2 doesn't journal, which is why the
paper finds EXT2+NVMMBD faster than EXT4+NVMMBD (Figure 13).
"""

import itertools

from repro.blockdev.nvmmbd import NVMMBlockDevice
from repro.engine.clock import NS_PER_SEC
from repro.engine.locks import VCompletion
from repro.engine.stats import CAT_OTHERS
from repro.fs.base import FileStat, FileSystem, ROOT_INO, S_IFDIR, S_IFREG
from repro.fs.errors import (
    ExistsError,
    IsADirectory,
    MediaError,
    NoSpace,
    NotADirectory,
    NotEmpty,
    NotFound,
)
from repro.fs.extfs.jbd2 import JBD2CommitTask, JBD2Journal
from repro.nvmm.allocator import BlockAllocator, OutOfSpaceError
from repro.nvmm.config import BLOCK_SIZE
from repro.pagecache.cache import PageCache
from repro.pagecache.writeback import PdflushTask


class ExtInode:
    """In-memory inode of the block-based baselines."""

    __slots__ = ("ino", "kind", "size", "nlink", "mtime", "ctime", "blocks",
                 "entries")

    def __init__(self, ino, kind, now_ns=0):
        self.ino = ino
        self.kind = kind
        self.size = 0
        self.nlink = 2 if kind == S_IFDIR else 1
        self.mtime = now_ns
        self.ctime = now_ns
        self.blocks = {}  # file_block -> disk block
        self.entries = {} if kind == S_IFDIR else None  # name -> ino

    @property
    def is_dir(self):
        return self.kind == S_IFDIR


class Ext2(FileSystem):
    """Block-based, page-cached, journal-less."""

    name = "ext2"

    #: Dirty metadata blocks are flushed wholesale once this many
    #: accumulate (the kernel's metadata writeback is likewise batched).
    META_FLUSH_THRESHOLD = 64

    #: balance_dirty_pages: when more than this fraction of the cache is
    #: dirty, the *writer* is made to flush pages (the kernel throttles
    #: heavy writers the same way), down to DIRTY_FLOOR.
    DIRTY_CEILING = 0.40
    DIRTY_FLOOR = 0.30

    def __init__(self, env, config, size, cache_pages=8192):
        self.env = env
        self.config = config
        self.bdev = NVMMBlockDevice(env, config, size)
        # The cache/pdflush callback records media errors (errseq) instead
        # of raising: eviction and background writeback have no syscall to
        # fail.  Foreground paths (fsync, O_SYNC) call _flush_page and let
        # EIO propagate.
        self.cache = PageCache(env, config, cache_pages, self._flush_page_async)
        env.background.register(PdflushTask(env, self.cache))
        # Reserve a slice for superblock/inode tables/bitmaps.
        reserved = max(64, self.bdev.num_blocks // 64)
        self.balloc = BlockAllocator(self.bdev.num_blocks - reserved,
                                     first_block=reserved)
        self._inodes = {}
        self._next_ino = itertools.count(ROOT_INO)
        root = ExtInode(next(self._next_ino), S_IFDIR)
        self._inodes[root.ino] = root
        #: Dirtied metadata blocks (inode-table / bitmap / directory
        #: blocks) awaiting writeback, deduplicated by block id.
        self._dirty_meta = set()
        self._meta_slots = {}
        self._reserved = reserved
        #: Inodes whose *size* changed since their last sync: the one
        #: piece of metadata fdatasync(2) must still make durable.
        self._size_dirty = set()

    # -- helpers ------------------------------------------------------------

    def _inode(self, ino):
        inode = self._inodes.get(ino)
        if inode is None:
            raise NotFound("inode %d" % ino)
        return inode

    # -- metadata blocks -------------------------------------------------

    @staticmethod
    def _itable_block(ino):
        return ("itable", ino // 16)

    @staticmethod
    def _dir_block(parent_ino):
        return ("dir", parent_ino)

    _BITMAP_BLOCK = ("bitmap", 0)

    def _touch_metadata(self, ctx, block_ids, ino=None):
        """Dirty metadata buffers in the cache (and journal them, EXT4)."""
        ctx.charge(len(block_ids) * self.config.page_cache_op_ns, CAT_OTHERS)
        self._dirty_meta.update(block_ids)
        self._journal_metadata(ctx, block_ids, ino=ino)
        if len(self._dirty_meta) >= self.META_FLUSH_THRESHOLD:
            self._flush_metadata(ctx)

    def _meta_disk_block(self, block_id):
        """A stable reserved-region disk block for a metadata block id."""
        slot = self._meta_slots.get(block_id)
        if slot is None:
            slot = 1 + len(self._meta_slots) % (self._reserved - 1)
            self._meta_slots[block_id] = slot
        return slot

    def _flush_metadata(self, ctx, block_ids=None):
        """Write dirty metadata blocks through the block layer."""
        if block_ids is None:
            doomed = sorted(self._dirty_meta, key=str)
        else:
            doomed = [b for b in block_ids if b in self._dirty_meta]
        for block_id in doomed:
            self._dirty_meta.discard(block_id)
            self.bdev.write_block(ctx, self._meta_disk_block(block_id),
                                  b"\0" * BLOCK_SIZE)
            self.env.stats.bump("meta_block_writes")

    def _disk_block(self, inode, file_block, allocate):
        disk = inode.blocks.get(file_block)
        if disk is None and allocate:
            try:
                disk = self.balloc.alloc()
            except OutOfSpaceError:
                raise NoSpace("device full") from None
            inode.blocks[file_block] = disk
        return disk

    def _flush_page(self, ctx, page):
        """Page cache -> device: the second copy of the write path."""
        inode = self._inodes.get(page.ino)
        if inode is None:
            return  # file went away; drop silently
        disk = self._disk_block(inode, page.file_block, allocate=True)
        self.bdev.write_block(ctx, disk, bytes(page.data))

    def _flush_page_async(self, ctx, page):
        """Writeback with nobody to raise at: record EIO against the
        inode's errseq; the next fsync/close of the file reports it."""
        try:
            self._flush_page(ctx, page)
        except MediaError:
            self.note_wb_error(page.ino)
            self.env.stats.bump("%s_wb_media_errors" % self.name)

    # -- namespace ------------------------------------------------------

    def lookup(self, ctx, parent_ino, name):
        parent = self._inode(parent_ino)
        if not parent.is_dir:
            raise NotADirectory("inode %d" % parent_ino)
        ctx.charge(self.config.page_cache_op_ns, CAT_OTHERS)
        return parent.entries.get(name)

    def _new_inode(self, ctx, parent_ino, name, kind):
        parent = self._inode(parent_ino)
        if name in parent.entries:
            raise ExistsError(name)
        inode = ExtInode(next(self._next_ino), kind, ctx.now)
        self._touch_metadata(ctx, (self._itable_block(inode.ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        self._inodes[inode.ino] = inode
        parent.entries[name] = inode.ino
        return inode.ino

    def create_file(self, ctx, parent_ino, name):
        return self._new_inode(ctx, parent_ino, name, S_IFREG)

    def mkdir(self, ctx, parent_ino, name):
        return self._new_inode(ctx, parent_ino, name, S_IFDIR)

    def unlink(self, ctx, parent_ino, name, ino):
        parent = self._inode(parent_ino)
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory(name)
        self._touch_metadata(ctx, (self._itable_block(ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        del parent.entries[name]
        self.cache.drop_file(ino)
        self.balloc.free_many(inode.blocks.values())
        del self._inodes[ino]

    def rmdir(self, ctx, parent_ino, name, ino):
        parent = self._inode(parent_ino)
        inode = self._inode(ino)
        if not inode.is_dir:
            raise NotADirectory(name)
        if inode.entries:
            raise NotEmpty(name)
        self._touch_metadata(ctx, (self._itable_block(ino),
                                   self._dir_block(parent_ino),
                                   self._BITMAP_BLOCK))
        del parent.entries[name]
        del self._inodes[ino]

    def rename(self, ctx, old_parent, old_name, new_parent, new_name, ino,
               replaced_ino=None):
        old_dir = self._inode(old_parent)
        new_dir = self._inode(new_parent)
        inode = self._inode(ino)
        touched = [self._dir_block(old_parent), self._dir_block(new_parent),
                   self._itable_block(ino)]
        if replaced_ino is not None:
            replaced = self._inode(replaced_ino)
            if replaced.is_dir:
                raise IsADirectory(new_name)
            touched += [self._itable_block(replaced_ino), self._BITMAP_BLOCK]
            self.cache.drop_file(replaced_ino)
            self.balloc.free_many(replaced.blocks.values())
            del self._inodes[replaced_ino]
        self._touch_metadata(ctx, touched, ino=ino)
        del old_dir.entries[old_name]
        new_dir.entries[new_name] = ino
        inode.ctime = ctx.now

    def readdir(self, ctx, ino):
        inode = self._inode(ino)
        if not inode.is_dir:
            raise NotADirectory("inode %d" % ino)
        ctx.charge(self.config.page_cache_op_ns * max(1, len(inode.entries) // 16),
                   CAT_OTHERS)
        return list(inode.entries.items())

    def getattr(self, ctx, ino):
        inode = self._inode(ino)
        return FileStat(ino, inode.kind, inode.size, inode.nlink, inode.mtime,
                        inode.ctime)

    # -- data path ----------------------------------------------------------

    def _page_for_read(self, ctx, inode, file_block):
        """Find or fault in a page (device -> cache: first read copy)."""
        page = self.cache.lookup(ctx, inode.ino, file_block)
        if page is not None:
            return page
        page = self.cache.insert(ctx, inode.ino, file_block)
        disk = inode.blocks.get(file_block)
        if disk is not None:
            try:
                self.cache.fill_from_device(page,
                                            self.bdev.read_block(ctx, disk))
            except MediaError:
                # Never cache a page whose fill failed: a zeroed page
                # would satisfy the next read silently.
                self.cache.drop(page)
                raise
        return page

    def read_iter(self, ctx, req):
        ino, offset, count = req.ino, req.offset, req.total_bytes
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if offset >= inode.size or count <= 0:
            return b""
        count = min(count, inode.size - offset)
        out = bytearray()
        pos, remaining = offset, count
        while remaining > 0:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, remaining)
            page = self._page_for_read(ctx, inode, file_block)
            out.extend(self.cache.copy_out(ctx, page, in_off, take))
            pos += take
            remaining -= take
        return bytes(out)

    def write_iter(self, ctx, req):
        ino, offset, eager = req.ino, req.offset, req.eager
        data = req.coalesce()
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        if not data:
            return 0
        pos = offset
        view = memoryview(data)
        touched = []
        while view:
            file_block, in_off = divmod(pos, BLOCK_SIZE)
            take = min(BLOCK_SIZE - in_off, len(view))
            page = self.cache.lookup(ctx, ino, file_block)
            if page is None:
                page = self.cache.insert(ctx, ino, file_block)
                disk = inode.blocks.get(file_block)
                partial = take < BLOCK_SIZE
                if disk is not None and partial:
                    # Fetch-before-write at page granularity.
                    try:
                        self.cache.fill_from_device(
                            page, self.bdev.read_block(ctx, disk))
                    except MediaError:
                        self.cache.drop(page)
                        raise
            self.cache.copy_in(ctx, page, in_off, bytes(view[:take]), ctx.now)
            touched.append(page)
            pos += take
            view = view[take:]
        if offset + len(data) > inode.size:
            inode.size = offset + len(data)
            self._size_dirty.add(ino)
        inode.mtime = ctx.now
        self._touch_metadata(ctx, (self._itable_block(ino),), ino=ino)
        self._balance_dirty(ctx)
        if eager:
            # O_SYNC / sync mount: push the pages straight back out
            # (user -> cache -> device: the full double copy).
            for page in touched:
                if page.dirty:
                    self._flush_page(ctx, page)
                    self.cache.mark_clean(page)
            # O_DSYNC overwrites leave the (clean-size) metadata commit
            # to the periodic timeline; extending writes still commit.
            if not req.datasync or ino in self._size_dirty:
                self._journal_commit(ctx)
        return len(data)

    def _balance_dirty(self, ctx):
        """Foreground writeback throttle (balance_dirty_pages)."""
        ceiling = int(self.DIRTY_CEILING * self.cache.capacity)
        if self.cache.dirty_total <= ceiling:
            return
        floor = int(self.DIRTY_FLOOR * self.cache.capacity)
        for page in self.cache.lru.iter_lrw_order():
            if self.cache.dirty_total <= floor:
                break
            if page.dirty:
                self._flush_page(ctx, page)
                self.cache.mark_clean(page)
                self.env.stats.bump("balance_dirty_flushes")

    def fsync(self, ctx, ino):
        self._inode(ino)
        self._flush_file_pages(ctx, ino)
        # fsync also writes the inode's metadata block (ext2 semantics).
        self._flush_metadata(ctx, [self._itable_block(ino)])
        self._journal_commit(ctx)
        self._size_dirty.discard(ino)
        self.env.stats.bump("%s_fsyncs" % self.name)

    def fdatasync(self, ctx, ino):
        """fdatasync(2): flush the file's data pages; the inode block
        (and on EXT4 the journal commit) is written only when the size
        changed since the last sync -- a pure overwrite skips the
        metadata traffic entirely, which is the whole point of the
        call."""
        self._inode(ino)
        self._flush_file_pages(ctx, ino)
        if ino in self._size_dirty:
            self._size_dirty.discard(ino)
            self._flush_metadata(ctx, [self._itable_block(ino)])
            self._journal_commit(ctx)
        self.env.stats.bump("%s_fdatasyncs" % self.name)

    def _flush_file_pages(self, ctx, ino):
        for page in self.cache.dirty_pages_of(ino):
            self._flush_page(ctx, page)
            self.cache.mark_clean(page)

    def truncate(self, ctx, ino, new_size):
        inode = self._inode(ino)
        if inode.is_dir:
            raise IsADirectory("inode %d" % ino)
        self._touch_metadata(ctx, (self._itable_block(ino),
                                   self._BITMAP_BLOCK), ino=ino)
        if new_size < inode.size:
            first_dead = -(-new_size // BLOCK_SIZE)
            doomed = [fb for fb in inode.blocks if fb >= first_dead]
            for fb in doomed:
                self.balloc.free(inode.blocks.pop(fb))
            # truncate_inode_pages: every cached page past the new EOF
            # goes, clean ones included -- a clean page left behind would
            # resurrect pre-truncate bytes when a later extending write
            # finds it in the cache.
            for page in self.cache.pages_of(ino):
                if page.file_block >= first_dead:
                    self.cache.drop(page)
            # Zero the partial tail past new_size (in the cache, dirtied
            # for writeback) so a later extension reads zeros.
            in_off = new_size % BLOCK_SIZE
            tail_fb = new_size // BLOCK_SIZE
            if in_off and (tail_fb in inode.blocks
                           or self.cache.lookup(ctx, ino, tail_fb) is not None):
                page = self._page_for_read(ctx, inode, tail_fb)
                self.cache.copy_in(ctx, page, in_off,
                                   b"\0" * (BLOCK_SIZE - in_off), ctx.now)
        inode.size = new_size

    # -- journaling hooks (EXT2: none) --------------------------------------

    def _journal_metadata(self, ctx, block_ids, ino=None):
        """EXT2 does not journal."""

    def _journal_commit(self, ctx):
        """EXT2 does not journal."""

    # -- lifecycle ---------------------------------------------------------

    def unmount(self, ctx):
        for page in self.cache.dirty_pages_lru_order():
            self._flush_page(ctx, page)
            self.cache.mark_clean(page)
        self._flush_metadata(ctx)
        self._journal_commit(ctx)

    def drop_caches(self):
        self.cache.clear()

    def free_data_bytes(self, ctx):
        return self.balloc.free_count * BLOCK_SIZE


class Ext4(Ext2):
    """EXT2 plus jbd2 ordered-mode journaling."""

    name = "ext4"

    def __init__(self, env, config, size, cache_pages=8192,
                 commit_interval_ns=5 * NS_PER_SEC):
        super().__init__(env, config, size, cache_pages)
        self.jbd2 = JBD2Journal(
            env,
            write_block_fn=self._write_journal_block,
            commit_interval_ns=commit_interval_ns,
        )
        self.jbd2.ordered_flush_fn = self._ordered_flush
        env.background.register(JBD2CommitTask(env, self.jbd2))
        # Reserve a journal area on the device.
        self._journal_cursor = itertools.cycle(range(8, 40))

    def _write_journal_block(self, ctx, data):
        self.bdev.write_block(ctx, next(self._journal_cursor), data)

    def _ordered_flush(self, ctx, ino):
        """Ordered mode: data pages reach the device before the commit."""
        if ino not in self._inodes:
            return
        for page in self.cache.dirty_pages_of(ino):
            self._flush_page(ctx, page)
            self.cache.mark_clean(page)

    def _journal_metadata(self, ctx, block_ids, ino=None):
        self.jbd2.dirty_metadata(ctx, block_ids, ino=ino)

    def _journal_commit(self, ctx):
        self.jbd2.commit(ctx)

    def sync_iter(self, ctx, req):
        """OP_SYNC: eager (sync-wrapper) syncs commit jbd2 in the
        foreground as before; ring-async syncs flush the data pages and
        return a completion the next jbd2 commit resolves -- normally
        the periodic 5 s commit timeline, or the reaper forcing the
        commit itself when it blocks first."""
        if req.eager:
            return super().sync_iter(ctx, req)
        ino = req.ino
        self._inode(ino)
        self._flush_file_pages(ctx, ino)
        which = "fdatasyncs" if req.datasync else "fsyncs"
        self.env.stats.bump("%s_%s" % (self.name, which))
        if req.datasync and ino not in self._size_dirty:
            # Data durable, size clean: nothing left to wait for.
            return VCompletion(
                self.env, name="%s.fdatasync:%d" % (self.name, ino)
            ).resolve(ctx.now, 0)
        self._size_dirty.discard(ino)
        self._flush_metadata(ctx, [self._itable_block(ino)])
        return self.jbd2.commit_completion(
            name="%s.fsync:%d" % (self.name, ino)
        )

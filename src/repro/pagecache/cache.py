"""Pages, dirty tracking, and LRU eviction for the OS page cache."""

from repro.core.lrw import LRWList, LRWNode
from repro.engine.stats import CAT_OTHERS, CAT_READ_ACCESS, CAT_WRITE_ACCESS
from repro.pagecache.radix import RadixTree
from repro.nvmm.config import BLOCK_SIZE


class Page(LRWNode):
    """One cached 4 KiB file page."""

    __slots__ = ("ino", "file_block", "data", "dirty", "dirtied_ns")

    def __init__(self, ino, file_block):
        super().__init__()
        self.ino = ino
        self.file_block = file_block
        self.data = bytearray(BLOCK_SIZE)
        self.dirty = False
        self.dirtied_ns = 0


class PageCache:
    """Global LRU page cache with per-file radix-tree indexes.

    ``flush_fn(ctx, page)`` is supplied by the owning file system: it
    writes the page to the block device (through the generic block
    layer).  Eviction of a dirty page flushes first -- charged to
    whichever context forced the eviction, which is how the double-copy
    write path lands on the foreground under memory pressure.
    """

    def __init__(self, env, config, capacity_pages, flush_fn):
        self.env = env
        self.config = config
        self.capacity = max(8, int(capacity_pages))
        self.flush_fn = flush_fn
        self._files = {}  # ino -> RadixTree(file_block -> Page)
        self.lru = LRWList()
        #: Incrementally-maintained count of dirty pages (used by the
        #: balance_dirty_pages-style foreground throttle).
        self.dirty_total = 0

    def __len__(self):
        return len(self.lru)

    # -- lookup / insert ----------------------------------------------------

    def lookup(self, ctx, ino, file_block):
        ctx.charge(self.config.page_cache_op_ns, CAT_OTHERS)
        tree = self._files.get(ino)
        if tree is None:
            self.env.stats.bump("pagecache_misses")
            return None
        page = tree.get(file_block)
        if page is None:
            self.env.stats.bump("pagecache_misses")
            return None
        self.lru.touch(page)
        self.env.stats.bump("pagecache_hits")
        return page

    def insert(self, ctx, ino, file_block):
        """Add an (initially clean, zeroed) page, evicting if needed."""
        ctx.charge(self.config.page_cache_op_ns, CAT_OTHERS)
        while len(self.lru) >= self.capacity:
            self._evict_one(ctx)
        page = Page(ino, file_block)
        tree = self._files.get(ino)
        if tree is None:
            tree = RadixTree()
            self._files[ino] = tree
        tree.insert(file_block, page)
        self.lru.touch(page)
        self.env.stats.bump("pagecache_inserts")
        return page

    def _evict_one(self, ctx):
        victim = self.lru.lrw_victim()
        if victim is None:
            raise RuntimeError("page cache capacity 0")
        if victim.dirty:
            self.flush_fn(ctx, victim)
            self.mark_clean(victim)
            self.env.stats.bump("pagecache_dirty_evictions")
        self.drop(victim)
        self.env.stats.bump("pagecache_evictions")

    def mark_clean(self, page):
        """Writeback finished for ``page``."""
        if page.dirty:
            page.dirty = False
            self.dirty_total -= 1

    def drop(self, page):
        """Remove a page from the cache without flushing."""
        if page.dirty:
            page.dirty = False
            self.dirty_total -= 1
        tree = self._files.get(page.ino)
        if tree is not None:
            tree.delete(page.file_block)
            if len(tree) == 0:
                del self._files[page.ino]
        self.lru.remove(page)

    def drop_file(self, ino):
        """Invalidate every page of a file (unlink/truncate)."""
        tree = self._files.pop(ino, None)
        if tree is None:
            return 0
        pages = [page for _, page in tree.items()]
        for page in pages:
            if page.dirty:
                page.dirty = False
                self.dirty_total -= 1
            self.lru.remove(page)
        return len(pages)

    # -- data movement ----------------------------------------------------

    def copy_in(self, ctx, page, offset, data, now_ns):
        """User buffer -> page (first copy of the write path)."""
        page.data[offset : offset + len(data)] = data
        ctx.charge(self.config.dram_store_cost_ns(len(data)), CAT_WRITE_ACCESS)
        if not page.dirty:
            page.dirty = True
            page.dirtied_ns = now_ns
            self.dirty_total += 1
        self.lru.touch(page)

    def copy_out(self, ctx, page, offset, length):
        """Page -> user buffer (second copy of the read path)."""
        ctx.charge(self.config.load_cost_ns(length), CAT_READ_ACCESS)
        self.lru.touch(page)
        return bytes(page.data[offset : offset + length])

    def fill_from_device(self, page, data):
        """Device -> page (data plane; the device read already charged)."""
        page.data[: len(data)] = data

    # -- dirty-set queries ----------------------------------------------------

    def pages_of(self, ino):
        """Every cached page of a file, clean or dirty, in block order."""
        tree = self._files.get(ino)
        if tree is None:
            return []
        return [page for _, page in tree.items()]

    def dirty_pages_of(self, ino):
        tree = self._files.get(ino)
        if tree is None:
            return []
        return [page for _, page in tree.items() if page.dirty]

    def dirty_pages_lru_order(self):
        return [page for page in self.lru.iter_lrw_order() if page.dirty]

    def dirty_count(self):
        return sum(1 for page in self.lru.iter_lrw_order() if page.dirty)

    def clear(self):
        """Drop every page (echo 3 > drop_caches).  Callers must have
        flushed dirty pages first."""
        self._files.clear()
        self.lru = LRWList()
        self.dirty_total = 0

"""pdflush: periodic background writeback for the page cache."""

from repro.engine.background import BackgroundTask
from repro.engine.clock import NS_PER_SEC


class PdflushTask(BackgroundTask):
    """Flush aged dirty pages every interval, like the kernel flusher
    threads (dirty_expire_centisecs ~ 30 s, wakeup ~ 5 s)."""

    def __init__(self, env, cache, interval_ns=5 * NS_PER_SEC,
                 age_ns=30 * NS_PER_SEC, dirty_ratio=0.2):
        super().__init__(env, "pdflush")
        self.cache = cache
        self.interval_ns = interval_ns
        self.age_ns = age_ns
        self.dirty_ratio = dirty_ratio
        self._next_ns = interval_ns

    def next_due_ns(self):
        return self._next_ns

    def run_due(self, horizon_ns):
        while self._next_ns <= horizon_ns:
            self.ctx.clock.advance_to(self._next_ns)
            self._next_ns += self.interval_ns
            self._flush_round()

    def quiesce(self):
        super().quiesce()
        self._next_ns = self.interval_ns

    def _flush_round(self):
        now = self.ctx.now
        dirty = self.cache.dirty_pages_lru_order()
        over_ratio = len(dirty) > self.dirty_ratio * self.cache.capacity
        for page in dirty:
            aged = now - page.dirtied_ns >= self.age_ns
            if aged or over_ratio:
                self.cache.flush_fn(self.ctx, page)
                self.cache.mark_clean(page)
                self.env.stats.bump("pdflush_pages")

"""The OS page cache used by the block-based baseline file systems.

This is the layer whose *double-copy* overhead the paper sets out to
eliminate: every read misses into the cache first (device -> cache ->
user), and every durable write copies twice (user -> cache -> device).

- :mod:`repro.pagecache.radix` -- the radix-tree page index (as in the
  Linux page cache).
- :mod:`repro.pagecache.cache` -- pages, dirty tracking, LRU eviction.
- :mod:`repro.pagecache.writeback` -- the pdflush-style background
  writeback timeline.
"""

from repro.pagecache.cache import Page, PageCache
from repro.pagecache.radix import RadixTree
from repro.pagecache.writeback import PdflushTask

__all__ = ["Page", "PageCache", "PdflushTask", "RadixTree"]

"""A radix tree over non-negative integer keys (the page-cache index).

Mirrors the Linux page-cache radix tree: 6-bit fanout per level (64
slots), growing in height as keys demand.  Supports insert, lookup,
delete, and ordered iteration.
"""

RADIX_BITS = 6
RADIX_SLOTS = 1 << RADIX_BITS
RADIX_MASK = RADIX_SLOTS - 1


class _RNode:
    __slots__ = ("slots", "count")

    def __init__(self):
        self.slots = [None] * RADIX_SLOTS
        self.count = 0


class RadixTree:
    """Integer-keyed map with Linux-style radix-tree internals."""

    def __init__(self):
        self._root = None
        self._height = 0  # number of levels; 0 = empty
        self._size = 0

    def __len__(self):
        return self._size

    @staticmethod
    def _max_key(height):
        return (1 << (RADIX_BITS * height)) - 1

    def _extend(self, key):
        """Grow the tree upwards until ``key`` fits."""
        if self._root is None:
            self._root = _RNode()
            self._height = 1
        while key > self._max_key(self._height):
            if self._root.count == 0:
                # An empty root can simply serve at a greater height;
                # wrapping it would leave a dead chain at slot 0.
                self._height += 1
                continue
            new_root = _RNode()
            new_root.slots[0] = self._root
            new_root.count = 1
            self._root = new_root
            self._height += 1

    def insert(self, key, value):
        """Insert or replace; returns True when the key is new."""
        if key < 0:
            raise ValueError("radix keys are non-negative")
        if value is None:
            raise ValueError("radix values may not be None")
        self._extend(key)
        node = self._root
        for level in range(self._height - 1, 0, -1):
            index = (key >> (RADIX_BITS * level)) & RADIX_MASK
            child = node.slots[index]
            if child is None:
                child = _RNode()
                node.slots[index] = child
                node.count += 1
            node = child
        index = key & RADIX_MASK
        fresh = node.slots[index] is None
        node.slots[index] = value
        if fresh:
            node.count += 1
            self._size += 1
        return fresh

    def get(self, key, default=None):
        if self._root is None or key < 0 or key > self._max_key(self._height):
            return default
        node = self._root
        for level in range(self._height - 1, 0, -1):
            node = node.slots[(key >> (RADIX_BITS * level)) & RADIX_MASK]
            if node is None:
                return default
        value = node.slots[key & RADIX_MASK]
        return default if value is None else value

    def __contains__(self, key):
        return self.get(key) is not None

    def delete(self, key):
        """Remove ``key``; returns its value or None.  Prunes empty nodes."""
        if self._root is None or key < 0 or key > self._max_key(self._height):
            return None
        path = []
        node = self._root
        for level in range(self._height - 1, 0, -1):
            index = (key >> (RADIX_BITS * level)) & RADIX_MASK
            path.append((node, index))
            node = node.slots[index]
            if node is None:
                return None
        index = key & RADIX_MASK
        value = node.slots[index]
        if value is None:
            return None
        node.slots[index] = None
        node.count -= 1
        self._size -= 1
        # Prune empty leaves upwards.
        child = node
        for parent, pindex in reversed(path):
            if child.count > 0:
                break
            parent.slots[pindex] = None
            parent.count -= 1
            child = parent
        if self._root is not None and self._root.count == 0:
            self._root = None
            self._height = 0
        return value

    def items(self):
        """All (key, value) pairs in ascending key order."""
        out = []
        if self._root is not None:
            self._walk(self._root, self._height - 1, 0, out)
        return out

    def _walk(self, node, level, prefix, out):
        for index, slot in enumerate(node.slots):
            if slot is None:
                continue
            key = (prefix << RADIX_BITS) | index
            if level == 0:
                out.append((key, slot))
            else:
                self._walk(slot, level - 1, key, out)

    def clear(self):
        self._root = None
        self._height = 0
        self._size = 0

"""``hinfs-trace``: synthesise, inspect, and replay syscall traces.

Subcommands::

    hinfs-trace synth usr0 -o usr0.trace      # write a synthetic trace
    hinfs-trace stats usr0.trace              # fsync/size/locality stats
    hinfs-trace replay usr0.trace --fs hinfs  # replay and time it

The trace format is one tab-separated record per line:
``op<TAB>path<TAB>offset<TAB>size`` with op in {read, write, fsync,
unlink} — the four syscalls the paper's replayer extracts.
"""

import argparse
import sys
from collections import Counter

from repro.bench.runner import FS_NAMES, run_workload
from repro.core.config import HiNFSConfig
from repro.workloads.traces import (
    SYNTHESIZERS,
    SyntheticTrace,
    TraceReplayWorkload,
    dump_trace,
    load_trace,
)


def _load(path, name="trace"):
    with open(path) as fileobj:
        return SyntheticTrace(name, load_trace(fileobj))


def cmd_synth(args):
    trace = SYNTHESIZERS[args.name](ops=args.ops, seed=args.seed)
    with open(args.output, "w") as fileobj:
        dump_trace(trace.records, fileobj)
    print("wrote %d records to %s" % (len(trace.records), args.output))
    return 0


def cmd_stats(args):
    trace = _load(args.trace)
    ops = Counter(record.op for record in trace.records)
    writes = [r for r in trace.records if r.op == "write"]
    total, fsynced = trace.fsync_byte_stats()
    files = {r.path for r in trace.records}
    print("records:        %d" % len(trace.records))
    print("op mix:         %s" % dict(sorted(ops.items())))
    print("files touched:  %d" % len(files))
    if writes:
        sizes = sorted(w.size for w in writes)
        print("write bytes:    %.1f KB total, median %d B, max %d B"
              % (total / 1e3, sizes[len(sizes) // 2], sizes[-1]))
    print("fsync bytes:    %.1f%%" % (100 * fsynced / max(1, total)))
    return 0


def cmd_replay(args):
    trace = _load(args.trace)
    result = run_workload(
        args.fs, TraceReplayWorkload(trace),
        device_size=args.device_mb << 20,
        hinfs_config=HiNFSConfig(buffer_bytes=args.buffer_mb << 20),
    )
    print("replayed %d records on %s" % (len(trace.records), args.fs))
    print("simulated elapsed: %.3f ms" % (result.elapsed_ns / 1e6))
    for syscall in ("read", "write", "unlink", "fsync"):
        ns = result.stats.syscall_time_ns.get(syscall, 0)
        print("  %-7s %.3f ms" % (syscall, ns / 1e6))
    print("NVMM bytes written: %.1f KB"
          % (result.stats.bytes_written_nvmm / 1e3))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="hinfs-trace", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser("synth", help="generate a synthetic trace")
    p_synth.add_argument("name", choices=sorted(SYNTHESIZERS))
    p_synth.add_argument("-o", "--output", required=True)
    p_synth.add_argument("--ops", type=int, default=4000)
    p_synth.add_argument("--seed", type=int, default=42)
    p_synth.set_defaults(func=cmd_synth)

    p_stats = sub.add_parser("stats", help="summarise a trace file")
    p_stats.add_argument("trace")
    p_stats.set_defaults(func=cmd_stats)

    p_replay = sub.add_parser("replay", help="replay a trace on an fs")
    p_replay.add_argument("trace")
    p_replay.add_argument("--fs", choices=FS_NAMES, default="hinfs")
    p_replay.add_argument("--device-mb", type=int, default=192)
    p_replay.add_argument("--buffer-mb", type=int, default=8)
    p_replay.set_defaults(func=cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""fio-style micro generator (the paper's Figure 1 experiment).

Random reads and writes at a fixed I/O size against one pre-allocated
file, with a configurable read:write ratio (the paper uses 1:2).

:class:`RingFioWorkload` drives the same op stream through the
submission/completion ring at a configurable batch depth instead of one
syscall per op -- the amortization experiment (``hinfs-bench ring``).
"""

from repro.fs import flags as f
from repro.io import ring as uring
from repro.workloads.base import Workload, payload


class FioWorkload(Workload):
    """Random mixed I/O against a single pre-allocated file."""

    name = "fio"

    def __init__(self, io_size=4096, file_size=8 << 20, read_fraction=1 / 3,
                 ops_per_thread=2000, seed=42, threads=1, fsync_every=0):
        super().__init__(seed=seed, threads=threads)
        self.io_size = int(io_size)
        self.file_size = int(file_size)
        self.read_fraction = read_fraction
        self.ops_per_thread = ops_per_thread
        #: fio's ``fsync=N``: sync the file every N ops (0 = never).
        self.fsync_every = int(fsync_every)

    def path(self, thread_id):
        return "/fio.%d.dat" % thread_id

    def prepare(self, vfs, ctx):
        data = payload(self.file_size, tag=7)
        for tid in range(self.threads):
            vfs.write_file(ctx, self.path(tid), data, chunk=1 << 20)

    def make_thread_body(self, vfs, thread_id):
        rng = self.rng(thread_id)
        max_offset = max(1, self.file_size - self.io_size)
        chunk = payload(self.io_size, tag=thread_id + 1)

        def body(ctx):
            fd = vfs.open(ctx, self.path(thread_id), f.O_RDWR)
            for op in range(self.ops_per_thread):
                offset = rng.randrange(max_offset)
                if rng.random() < self.read_fraction:
                    vfs.pread(ctx, fd, offset, self.io_size)
                else:
                    vfs.pwrite(ctx, fd, offset, chunk)
                if self.fsync_every and (op + 1) % self.fsync_every == 0:
                    vfs.fsync(ctx, fd)
                yield
            vfs.close(ctx, fd)

        return body


class RingFioWorkload(FioWorkload):
    """The fio op stream driven through the submission ring in batches.

    Offsets, read/write mix, and fsync pacing are identical to
    :class:`FioWorkload` at the same seed -- only the submission
    granularity changes.  Runs at different ``batch_depth`` therefore
    execute the same ops and differ purely in how often the
    ``T_syscall`` entry is paid (once per batch) and in whether fsync
    completions may defer to their persist point (``IOSQE_ASYNC``).
    """

    name = "fio-ring"

    def __init__(self, batch_depth=8, async_fsync=True, **kwargs):
        super().__init__(**kwargs)
        self.batch_depth = int(batch_depth)
        if self.batch_depth < 1:
            raise ValueError("batch_depth must be >= 1")
        #: Mark fsync SQEs IOSQE_ASYNC: the fs may defer their CQE to
        #: the persist point instead of blocking inside the handler.
        self.async_fsync = bool(async_fsync)

    def make_thread_body(self, vfs, thread_id):
        rng = self.rng(thread_id)
        max_offset = max(1, self.file_size - self.io_size)
        chunk = payload(self.io_size, tag=thread_id + 1)
        fsync_flags = uring.IOSQE_ASYNC if self.async_fsync else 0

        def body(ctx):
            fd = vfs.open(ctx, self.path(thread_id), f.O_RDWR)
            # A paced fsync rides in its op's batch, so the SQ must hold
            # one SQE more than the nominal depth.
            ring = vfs.ring(ctx, sq_depth=max(64, self.batch_depth + 1))
            batch = []

            def flush_batch():
                for cqe in ring.submit_and_wait(batch):
                    if cqe.error is not None:
                        raise cqe.error
                del batch[:]

            for op in range(self.ops_per_thread):
                offset = rng.randrange(max_offset)
                if rng.random() < self.read_fraction:
                    batch.append(uring.prep_read(fd, self.io_size, offset))
                else:
                    batch.append(uring.prep_write(fd, chunk, offset))
                if self.fsync_every and (op + 1) % self.fsync_every == 0:
                    batch.append(uring.prep_fsync(fd, flags=fsync_flags))
                if len(batch) >= self.batch_depth:
                    flush_batch()
                yield
            if batch:
                flush_batch()
            vfs.close(ctx, fd)

        return body

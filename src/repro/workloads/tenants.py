"""Multi-tenant serving harness: hundreds of virtual-thread tenants.

The north-star workload shape -- "heavy traffic from millions of users"
-- scaled down to a simulable fleet: each tenant is one
:class:`~repro.engine.thread.SimThread` with its own namespace
(``/tNNNN/data``), its own seeded op stream, and one of three arrival
processes:

- **closed-loop** (``MODE_CLOSED``): issue, wait ``think_ns``, repeat --
  the classic benchmark client, self-throttling under load.
- **open-loop** (``MODE_OPEN``): arrivals on a fixed virtual-time
  schedule regardless of completions; latency is measured from the
  *scheduled* arrival (queue-inclusive), which is what makes overload
  collapse visible instead of self-hiding.
- **bursty** (``MODE_BURST``): open-loop with Markov on/off modulation
  -- after each op the source flips off with probability ``off_prob``
  (geometric on-period lengths) and stays off for a seeded
  exponentially-distributed gap, then resumes the schedule.

Every data op is a tenant-tagged SQE through the submission ring, so the
QoS layer (:mod:`repro.fs.qos`) sees and bills the right tenant.  When
the admission controller sheds an op with EAGAIN
(:class:`~repro.fs.errors.TryAgain`), the client retries it through a
per-tenant :class:`~repro.faults.policy.RetryPolicy` -- seeded
exponential backoff, bounded budget, circuit breaker -- and counts a
*drop* when the budget (or breaker) gives out.  Latency samples cover
admitted ops only; shed work shows up as drops, not as latency.
"""

from repro.engine.stats import percentiles
from repro.faults.policy import RetryPolicy
from repro.fs import flags as f
from repro.fs.errors import TryAgain
from repro.fs.qos import PRIO_BRONZE, PRIO_GOLD, PRIO_SILVER, PRIORITY_NAMES
from repro.io import ring as uring
from repro.workloads.base import Workload, payload

MODE_CLOSED = "closed"
MODE_OPEN = "open"
MODE_BURST = "burst"

#: Percentile set every tenant/class report uses (tail-latency SLOs).
LATENCY_PS = (50, 99, 99.9)


class TenantSpec:
    """Static description of one tenant's class and arrival process."""

    __slots__ = ("tenant_id", "weight", "priority", "mode", "ops",
                 "io_size", "read_fraction", "think_ns", "interval_ns",
                 "off_prob", "off_mean_ns", "sync", "batch")

    def __init__(self, tenant_id, weight=1, priority=PRIO_SILVER,
                 mode=MODE_CLOSED, ops=40, io_size=4096, read_fraction=0.5,
                 think_ns=200_000, interval_ns=250_000, off_prob=0.1,
                 off_mean_ns=2_000_000, sync=False, batch=1):
        self.tenant_id = int(tenant_id)
        self.weight = int(weight)
        self.priority = priority
        self.mode = mode
        self.ops = int(ops)
        self.io_size = int(io_size)
        self.read_fraction = float(read_fraction)
        self.think_ns = int(think_ns)
        self.interval_ns = int(interval_ns)
        #: MODE_BURST: chance of flipping off after an op (geometric
        #: on-period of mean ``1/off_prob`` ops) ...
        self.off_prob = float(off_prob)
        #: ... and the mean of the seeded-exponential off-period gap.
        self.off_mean_ns = int(off_mean_ns)
        #: Open the tenant's file O_SYNC: every write is eagerly
        #: persistent and occupies NVMM writer-slot time in the
        #: foreground -- the overload experiment's flooder knob.
        self.sync = bool(sync)
        #: Ring submissions coalesce up to ``batch`` SQEs (open/burst
        #: modes only): the client waits until the batch's last op is
        #: *scheduled*, then submits all of them in one ring entry --
        #: the io_uring amortization path, marked ``IOSQE_ASYNC`` so
        #: deferred completions are reaped rather than inlined.  Closed
        #: loops stay batch-of-one (each op gates the next think time).
        self.batch = max(1, int(batch))

    def __repr__(self):
        return "TenantSpec(#%d %s w=%d %s ops=%d)" % (
            self.tenant_id, PRIORITY_NAMES.get(self.priority, self.priority),
            self.weight, self.mode, self.ops,
        )


class TenantResult:
    """Mutable per-tenant outcome of one run."""

    __slots__ = ("tenant_id", "latencies_ns", "ops_done", "bytes_done",
                 "shed", "dropped")

    def __init__(self, tenant_id):
        self.tenant_id = tenant_id
        #: Queue-inclusive latency of each *admitted* op.
        self.latencies_ns = []
        self.ops_done = 0
        self.bytes_done = 0
        #: EAGAIN rejections observed (each adds one client retry unless
        #: the budget is spent) and ops abandoned after the budget.
        self.shed = 0
        self.dropped = 0


class TenantFleet(Workload):
    """A fleet of tenant threads, one :class:`TenantSpec` each."""

    name = "tenants"

    def __init__(self, specs, file_size=64 << 10, seed=42,
                 retry_max=6, retry_base_ns=50_000):
        super().__init__(seed=seed, threads=len(specs))
        self.specs = list(specs)
        self.file_size = int(file_size)
        self.retry_max = int(retry_max)
        self.retry_base_ns = int(retry_base_ns)
        self.results = {s.tenant_id: TenantResult(s.tenant_id)
                        for s in self.specs}

    # -- fleet construction ------------------------------------------------

    @classmethod
    def mixed(cls, n_tenants, ops=40, io_size=4096, read_fraction=0.5,
              think_ns=200_000, interval_ns=250_000, seed=42, **kwargs):
        """The standard mixed fleet: a deterministic blend of priority
        classes and arrival modes by tenant index.

        Per 10 tenants: 5 bronze (weight 1), 3 silver (weight 2), 2 gold
        (weight 4); modes cycle closed/open/burst.
        """
        specs = []
        for tid in range(n_tenants):
            slot = tid % 10
            if slot < 5:
                priority, weight = PRIO_BRONZE, 1
            elif slot < 8:
                priority, weight = PRIO_SILVER, 2
            else:
                priority, weight = PRIO_GOLD, 4
            mode = (MODE_CLOSED, MODE_OPEN, MODE_BURST)[tid % 3]
            specs.append(TenantSpec(
                tid, weight=weight, priority=priority, mode=mode, ops=ops,
                io_size=io_size, read_fraction=read_fraction,
                think_ns=think_ns, interval_ns=interval_ns,
            ))
        return cls(specs, seed=seed, **kwargs)

    def register_all(self, qos):
        """Register every tenant's weight/priority with a QoS controller."""
        for spec in self.specs:
            qos.register(spec.tenant_id, weight=spec.weight,
                         priority=spec.priority)

    # -- namespace / fileset ----------------------------------------------

    @staticmethod
    def dir_path(tenant_id):
        return "/t%04d" % tenant_id

    @classmethod
    def path(cls, tenant_id):
        return cls.dir_path(tenant_id) + "/data"

    def prepare(self, vfs, ctx):
        for spec in self.specs:
            vfs.mkdir(ctx, self.dir_path(spec.tenant_id))
            vfs.write_file(ctx, self.path(spec.tenant_id),
                           payload(self.file_size, tag=spec.tenant_id),
                           chunk=1 << 20)

    # -- the per-tenant thread body ----------------------------------------

    def make_thread_body(self, vfs, thread_id):
        spec = self.specs[thread_id]
        result = self.results[spec.tenant_id]
        rng = self.rng(spec.tenant_id)
        chunk = payload(spec.io_size, tag=spec.tenant_id + 1)
        max_offset = max(1, self.file_size - spec.io_size)
        policy = RetryPolicy(
            max_retries=self.retry_max, base_backoff_ns=self.retry_base_ns,
            multiplier=2.0, jitter_frac=0.25,
            seed="tenant:%d:%d" % (self.seed, spec.tenant_id),
            breaker_threshold=4,
        )
        tenant_kw = {"tenant": spec.tenant_id}

        def issue(ctx, ring, fd):
            """One admitted op (retrying shed attempts); False = dropped."""
            offset = rng.randrange(max_offset)
            if rng.random() < spec.read_fraction:
                sqe = uring.prep_read(fd, spec.io_size, offset, **tenant_kw)
            else:
                sqe = uring.prep_write(fd, chunk, offset, **tenant_kw)
            attempt = 0
            while True:
                cqe = ring.submit_reaping([sqe])[0]
                if cqe.error is None:
                    policy.record_success()
                    return True
                if not isinstance(cqe.error, TryAgain):
                    raise cqe.error
                result.shed += 1
                attempt += 1
                if policy.circuit_open(ctx.now) or not policy.allows(attempt):
                    policy.record_failure(ctx.now)
                    result.dropped += 1
                    return False
                policy.note_retry()
                ctx.charge(policy.backoff_ns(attempt))

        def make_sqe(fd):
            offset = rng.randrange(max_offset)
            if rng.random() < spec.read_fraction:
                return uring.prep_read(fd, spec.io_size, offset,
                                       flags=uring.IOSQE_ASYNC, **tenant_kw)
            return uring.prep_write(fd, chunk, offset,
                                    flags=uring.IOSQE_ASYNC, **tenant_kw)

        def finalize(ctx, ring, sqe, error, scheduled):
            """Settle one batched op: retry shed attempts one-by-one
            (admission rejects per op), then account it."""
            attempt = 0
            while error is not None:
                if not isinstance(error, TryAgain):
                    raise error
                result.shed += 1
                attempt += 1
                if policy.circuit_open(ctx.now) or not policy.allows(attempt):
                    policy.record_failure(ctx.now)
                    result.dropped += 1
                    return
                policy.note_retry()
                ctx.charge(policy.backoff_ns(attempt))
                error = ring.submit_reaping([sqe])[0].error
            policy.record_success()
            result.latencies_ns.append(ctx.now - scheduled)
            result.ops_done += 1
            result.bytes_done += spec.io_size

        def batched_body(ctx, ring, fd):
            """Open/burst arrivals coalesced ``spec.batch`` SQEs per ring
            submission: one mode switch per batch, queue-inclusive
            latency still measured from each op's own scheduled time."""
            pending = []
            scheduled = ctx.now
            for i in range(spec.ops):
                if spec.mode == MODE_BURST and rng.random() < spec.off_prob:
                    scheduled += int(rng.expovariate(1.0 / spec.off_mean_ns))
                pending.append((make_sqe(fd), scheduled))
                scheduled += spec.interval_ns
                if len(pending) >= spec.batch or i == spec.ops - 1:
                    if ctx.now < pending[-1][1]:
                        ctx.sync_to(pending[-1][1])
                    cqes = ring.submit_reaping([s for s, _ in pending])
                    for (sqe, sched), cqe in zip(pending, cqes):
                        finalize(ctx, ring, sqe, cqe.error, sched)
                    pending = []
                    yield

        def body(ctx):
            flags = f.O_RDWR | (f.O_SYNC if spec.sync else 0)
            fd = vfs.open(ctx, self.path(spec.tenant_id), flags)
            ring = vfs.ring(ctx)
            closed = spec.mode == MODE_CLOSED
            if spec.batch > 1 and not closed:
                yield from batched_body(ctx, ring, fd)
                vfs.close(ctx, fd)
                return
            scheduled = ctx.now
            for _ in range(spec.ops):
                if closed:
                    scheduled = ctx.now
                else:
                    if spec.mode == MODE_BURST and \
                            rng.random() < spec.off_prob:
                        scheduled += int(
                            rng.expovariate(1.0 / spec.off_mean_ns))
                    if ctx.now < scheduled:
                        ctx.sync_to(scheduled)
                ok = issue(ctx, ring, fd)
                if ok:
                    # Queue-inclusive for open/burst: time since the op
                    # was *scheduled*, not since the client got around to
                    # submitting it.
                    result.latencies_ns.append(ctx.now - scheduled)
                    result.ops_done += 1
                    result.bytes_done += spec.io_size
                if closed:
                    if spec.think_ns:
                        ctx.charge(spec.think_ns)
                else:
                    scheduled += spec.interval_ns
                yield
            vfs.close(ctx, fd)

        return body

    # -- reporting ---------------------------------------------------------

    def class_latencies(self):
        """``{priority_name: [latency, ...]}`` pooled across tenants."""
        pooled = {}
        for spec in self.specs:
            name = PRIORITY_NAMES.get(spec.priority, str(spec.priority))
            pooled.setdefault(name, []).extend(
                self.results[spec.tenant_id].latencies_ns)
        return pooled

    def summarize(self):
        """Deterministic per-class + fleet-wide stats for one run."""
        from repro.engine.stats import fairness_spread, jain_index

        classes = {}
        for name, samples in sorted(self.class_latencies().items()):
            entry = {
                "ops": len(samples),
                "shed": sum(self.results[s.tenant_id].shed
                            for s in self.specs
                            if PRIORITY_NAMES.get(s.priority) == name),
                "dropped": sum(self.results[s.tenant_id].dropped
                               for s in self.specs
                               if PRIORITY_NAMES.get(s.priority) == name),
            }
            if samples:
                entry.update(
                    ("p%s" % str(p).replace(".", ""), v)
                    for p, v in percentiles(samples, LATENCY_PS).items())
            classes[name] = entry
        all_samples = [lat for r in self.results.values()
                       for lat in r.latencies_ns]
        # Fleet-wide fairness is over per-tenant *completion fractions*
        # (bytes done / bytes demanded): with fixed per-tenant demand,
        # spread 1.0 means nobody was starved of their asked-for share,
        # independent of how demands and weights differ across tenants.
        weighted = [self.results[s.tenant_id].bytes_done
                    / max(1, s.ops * s.io_size) for s in self.specs]
        summary = {
            "tenants": len(self.specs),
            "ops": len(all_samples),
            "shed": sum(r.shed for r in self.results.values()),
            "dropped": sum(r.dropped for r in self.results.values()),
            "fairness_spread": fairness_spread(weighted),
            "jain_index": jain_index(weighted),
            "classes": classes,
        }
        if all_samples:
            summary.update(
                ("p%s" % str(p).replace(".", ""), v)
                for p, v in percentiles(all_samples, LATENCY_PS).items())
        return summary

"""Workloads: everything in the paper's Table 1.

- :mod:`repro.workloads.fio` -- the fio-style micro generator used for
  the Figure 1 overhead breakdown.
- :mod:`repro.workloads.filebench` -- fileserver / webserver / webproxy /
  varmail personalities (Figures 7-11).
- :mod:`repro.workloads.traces` -- syscall-trace format, synthetic
  generators matching the published workload characteristics (Usr0, Usr1,
  LASR, Facebook), and the replayer (Figures 2, 6, 12).
- :mod:`repro.workloads.macro` -- Postmark, a TPC-C-style OLTP engine,
  Kernel-Grep and Kernel-Make (Figure 13).
"""

from repro.workloads.base import Workload, prepare_context
from repro.workloads.fio import FioWorkload
from repro.workloads.filebench import (
    Fileserver,
    Varmail,
    Webproxy,
    Webserver,
)
from repro.workloads.traces import (
    SyntheticTrace,
    TraceRecord,
    TraceReplayWorkload,
    synthesize_facebook,
    synthesize_lasr,
    synthesize_usr0,
    synthesize_usr1,
)
from repro.workloads.macro import (
    KernelGrep,
    KernelMake,
    Postmark,
    TPCC,
)

__all__ = [
    "FioWorkload",
    "Fileserver",
    "KernelGrep",
    "KernelMake",
    "Postmark",
    "SyntheticTrace",
    "TPCC",
    "TraceRecord",
    "TraceReplayWorkload",
    "Varmail",
    "Webproxy",
    "Webserver",
    "Workload",
    "prepare_context",
    "synthesize_facebook",
    "synthesize_lasr",
    "synthesize_usr0",
    "synthesize_usr1",
]

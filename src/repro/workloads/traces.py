"""System-call I/O traces: format, synthesis, and replay (Figures 2, 6, 12).

The paper replays FIU (Usr0/Usr1), LASR, and MobiBench Facebook syscall
traces.  Those traces are not redistributable, so this module provides:

- :class:`TraceRecord` and a text serialisation (so *real* traces in this
  simple format can be replayed too);
- seeded synthetic generators whose characteristics match what the paper
  reports about each trace: the fsync-byte fraction (Figure 2), mean I/O
  size (Facebook < 1 KiB), access locality, and sync frequency;
- :class:`TraceReplayWorkload`, which replays the read/write/unlink/fsync
  stream through the VFS -- the paper extracts exactly those four ops.
"""

from repro.fs import flags as f
from repro.fs.errors import FSError
from repro.workloads.base import Workload, payload, zipf_index

OPS = ("write", "read", "fsync", "unlink")


class TraceRecord:
    """One syscall-level trace event."""

    __slots__ = ("op", "path", "offset", "size")

    def __init__(self, op, path, offset=0, size=0):
        if op not in OPS:
            raise ValueError("unknown trace op %r" % op)
        self.op = op
        self.path = path
        self.offset = int(offset)
        self.size = int(size)

    def to_line(self):
        return "%s\t%s\t%d\t%d" % (self.op, self.path, self.offset, self.size)

    @classmethod
    def from_line(cls, line):
        parts = line.rstrip("\n").split("\t")
        if len(parts) != 4:
            raise ValueError("malformed trace line: %r" % line)
        return cls(parts[0], parts[1], int(parts[2]), int(parts[3]))


def dump_trace(records, fileobj):
    for record in records:
        fileobj.write(record.to_line() + "\n")


def load_trace(fileobj):
    return [TraceRecord.from_line(line) for line in fileobj if line.strip()]


class SyntheticTrace:
    """A named record stream with derived statistics."""

    def __init__(self, name, records):
        self.name = name
        self.records = records

    def fsync_byte_stats(self):
        """Return ``(total_written, fsynced)`` byte counts (Figure 2).

        A written byte counts as an fsync byte if an fsync of its file
        arrives after the write.
        """
        pending = {}
        total = 0
        fsynced = 0
        for record in self.records:
            if record.op == "write":
                total += record.size
                pending[record.path] = pending.get(record.path, 0) + record.size
            elif record.op == "fsync":
                fsynced += pending.pop(record.path, 0)
            elif record.op == "unlink":
                pending.pop(record.path, None)
        return total, fsynced

    @property
    def fsync_fraction(self):
        total, fsynced = self.fsync_byte_stats()
        return 0.0 if total == 0 else fsynced / total


def _mixed_trace(name, seed, ops, nfiles, write_frac, read_frac, unlink_frac,
                 sync_every_writes, io_size_fn, locality_skew=1.3,
                 synced_file_frac=0.5, offset_range=1 << 20):
    """Common generator: a zipf-skewed mix of the four syscalls.

    ``sync_every_writes`` -- an fsync is issued on a file after roughly
    that many writes to it (None = never, the LASR case).  Only the first
    ``synced_file_frac`` of the fileset is ever synced, which lets a
    trace mix durable (database-ish) and careless files like real
    desktops do.
    """
    import random

    rng = random.Random("%s:%s" % (seed, name))
    paths = ["/%s/f%04d" % (name, i) for i in range(nfiles)]
    writes_since_sync = {}
    records = []
    for _ in range(ops):
        roll = rng.random()
        path = paths[zipf_index(rng, nfiles, skew=locality_skew)]
        if roll < write_frac:
            size = io_size_fn(rng)
            # Block-aligned-ish offsets within a bounded hot region give
            # the access locality the paper's traces exhibit (writes to
            # the same blocks coalesce in HiNFS's buffer).
            offset = zipf_index(rng, offset_range // 4096,
                                skew=locality_skew) * 4096
            records.append(TraceRecord("write", path, offset, size))
            count = writes_since_sync.get(path, 0) + 1
            writes_since_sync[path] = count
            syncable = (paths.index(path) % 10) < 10 * synced_file_frac
            if (
                sync_every_writes
                and syncable
                and count >= max(1, int(rng.gauss(sync_every_writes,
                                                  sync_every_writes / 3)))
            ):
                records.append(TraceRecord("fsync", path))
                writes_since_sync[path] = 0
        elif roll < write_frac + read_frac:
            size = io_size_fn(rng)
            records.append(TraceRecord(
                "read", path,
                zipf_index(rng, offset_range // 4096, skew=locality_skew) * 4096,
                size))
        elif roll < write_frac + read_frac + unlink_frac:
            records.append(TraceRecord("unlink", path))
            writes_since_sync.pop(path, None)
        else:
            records.append(TraceRecord("fsync", path))
            writes_since_sync[path] = 0
    return SyntheticTrace(name, records)


def synthesize_usr0(ops=4000, seed=42):
    """FIU research-desktop trace: mixed I/O, roughly half the written
    bytes reach an fsync (Figure 2)."""
    return _mixed_trace(
        "usr0", seed, ops, nfiles=60,
        write_frac=0.55, read_frac=0.41, unlink_frac=0.02,
        sync_every_writes=8,
        io_size_fn=lambda rng: rng.choice((4096, 4096, 8192, 16384)),
        synced_file_frac=0.25,
        offset_range=192 << 10,
    )


def synthesize_usr1(ops=4000, seed=43):
    """The same desktop at a different time: writier, fewer syncs."""
    return _mixed_trace(
        "usr1", seed, ops, nfiles=80,
        write_frac=0.62, read_frac=0.34, unlink_frac=0.03,
        sync_every_writes=10,
        io_size_fn=lambda rng: rng.choice((4096, 8192, 8192, 32768)),
        synced_file_frac=0.15,
        offset_range=256 << 10,
    )


def synthesize_lasr(ops=4000, seed=44):
    """LASR software-development trace: no fsync at all (Figure 2)."""
    return _mixed_trace(
        "lasr", seed, ops, nfiles=100,
        write_frac=0.5, read_frac=0.5, unlink_frac=0.0,
        sync_every_writes=None,
        io_size_fn=lambda rng: rng.choice((1024, 4096, 4096, 8192)),
        offset_range=256 << 10,
    )


def synthesize_facebook(ops=4000, seed=45):
    """MobiBench Facebook trace: sub-KiB writes, SQLite-style fsync after
    almost every write -- too frequent to coalesce (Section 5.3)."""
    return _mixed_trace(
        "facebook", seed, ops, nfiles=16,
        write_frac=0.6, read_frac=0.4, unlink_frac=0.0,
        sync_every_writes=1,
        io_size_fn=lambda rng: rng.choice((256, 512, 512, 1024)),
        locality_skew=2.0,
        synced_file_frac=1.0,
        offset_range=64 << 10,
    )


SYNTHESIZERS = {
    "usr0": synthesize_usr0,
    "usr1": synthesize_usr1,
    "lasr": synthesize_lasr,
    "facebook": synthesize_facebook,
}


class TraceReplayWorkload(Workload):
    """Replay a record stream through the VFS (single-threaded, as the
    paper's replayer is)."""

    def __init__(self, trace, seed=42):
        super().__init__(seed=seed, threads=1)
        self.trace = trace
        self.name = "replay-%s" % trace.name

    def prepare(self, vfs, ctx):
        """Create every parent directory and pre-populate touched files."""
        made_dirs = set()
        seen = set()
        for record in self.trace.records:
            if record.path in seen:
                continue
            seen.add(record.path)
            parts = [p for p in record.path.split("/") if p]
            prefix = ""
            for component in parts[:-1]:
                prefix += "/" + component
                if prefix not in made_dirs:
                    if not vfs.exists(ctx, prefix):
                        vfs.mkdir(ctx, prefix)
                    made_dirs.add(prefix)
            vfs.write_file(ctx, record.path, payload(64 << 10, tag=3))

    def make_thread_body(self, vfs, thread_id):
        records = self.trace.records

        def body(ctx):
            fds = {}

            def fd_for(path):
                fd = fds.get(path)
                if fd is None:
                    fd = vfs.open(ctx, path, f.O_CREAT | f.O_RDWR)
                    fds[path] = fd
                return fd

            for record in records:
                try:
                    if record.op == "write":
                        vfs.pwrite(ctx, fd_for(record.path), record.offset,
                                   payload(record.size, tag=1))
                    elif record.op == "read":
                        vfs.pread(ctx, fd_for(record.path), record.offset,
                                  record.size)
                    elif record.op == "fsync":
                        vfs.fsync(ctx, fd_for(record.path))
                    elif record.op == "unlink":
                        fd = fds.pop(record.path, None)
                        if fd is not None:
                            vfs.close(ctx, fd)
                        vfs.unlink(ctx, record.path)
                except FSError:
                    pass  # traces reference files that may be gone
                yield
            for fd in fds.values():
                vfs.close(ctx, fd)

        return body

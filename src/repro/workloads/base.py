"""Workload protocol and deterministic helpers."""

import random

from repro.engine.context import ExecContext


class FreeContext(ExecContext):
    """A context whose time/resource charges are discarded.

    Used to pre-allocate filesets before the measured run begins (the
    paper, like filebench, pre-allocates 5 GB filesets and clears caches
    before measuring).
    """

    free = True

    def charge(self, ns, category=None):
        return self.clock.now

    def sync_to(self, target_ns, category=None):
        return self.clock.now


def prepare_context(env):
    return FreeContext(env, "prepare")


#: Doubled base tile: the tile for any tag is a 251-byte window into it
#: (``(i + tag) % 251`` is a rotation of ``0..250``), so building a
#: payload is one slice instead of a 251-step generator per call.
_TILE2 = bytes(i % 251 for i in range(502))


def payload(length, tag=0):
    """Cheap deterministic bytes: a 251-byte tile offset by ``tag``.

    Avoids generating megabytes of random data in Python while still
    making blocks distinguishable for correctness checks.
    """
    if length <= 0:
        return b""
    start = tag % 251
    tile = _TILE2[start : start + 251]
    reps = -(-length // 251)
    return (tile * reps)[:length]


class Workload:
    """Base class: a named, seeded, multi-threaded operation stream."""

    name = "abstract"

    def __init__(self, seed=42, threads=1):
        self.seed = seed
        self.threads = threads

    def rng(self, stream=0):
        """A deterministic RNG, distinct per (seed, stream)."""
        return random.Random("%s:%s:%s" % (self.name, self.seed, stream))

    def prepare(self, vfs, ctx):
        """Pre-allocate the fileset (run under a FreeContext)."""

    def make_thread_body(self, vfs, thread_id):
        """Return ``body(ctx)``: a generator yielding once per operation."""
        raise NotImplementedError

    # -- convenience for single-context (replay-style) execution ---------

    def run_inline(self, vfs, ctx, thread_id=0):
        """Drive one thread body to completion on ``ctx`` (no scheduler)."""
        for _ in self.make_thread_body(vfs, thread_id)(ctx):
            pass


def zipf_index(rng, n, skew=1.1):
    """A Zipf-ish index in [0, n): heavily favours low indexes.

    Uses the inverse-power method, cheap and deterministic; file-system
    workloads show exactly this kind of skewed popularity (papers cited
    in Section 3.2).
    """
    if n <= 1:
        return 0
    u = rng.random()
    # Inverse CDF of a bounded power-law; the +1 keeps even skew ~1
    # noticeably head-heavy (a third of picks land in the first decile).
    index = int(n * (u ** (1.0 + skew)) * 0.999)
    return min(n - 1, index)

"""fio op stream driven through library-mode MAP_ATOMIC mappings.

:class:`MmapFioWorkload` replays the :class:`~repro.workloads.fio.
FioWorkload` operation stream (same seed, same offsets, same read:write
mix, same sync pacing) through an :class:`~repro.io.mmio.MmioMapping`
instead of syscalls: reads become ``load``, writes become ``store``,
and the fsync pacing becomes ``msync`` epoch commits.  Once the
mappings exist, the measured phase performs **zero syscalls** -- the
three-way bench (``hinfs-bench mmap``) charges its steady state not a
single ``T_syscall``.

The mappings are created by :meth:`MmapFioWorkload.attach`, designed to
be passed as ``run_workload(..., setup=workload.attach)``: it runs
after the stats reset under a free context and resolves inodes below
the VFS, so the measured ledger starts -- and stays -- empty.
"""

from repro.fs.base import ROOT_INO
from repro.workloads.base import Workload, payload, prepare_context
from repro.workloads.fio import FioWorkload


class MmapFioWorkload(FioWorkload):
    """Random mixed I/O through an atomic mapping (zero syscalls)."""

    name = "fio-mmap"

    def __init__(self, policy="auto", log_blocks=8, **kwargs):
        super().__init__(**kwargs)
        self.policy = policy
        self.log_blocks = int(log_blocks)
        #: thread id -> MmioMapping, populated by :meth:`attach`.
        self.mappings = {}

    def rng(self, stream=0):
        """Mirror FioWorkload's stream exactly: same seed, same name
        key, so the sync and mmap legs execute identical op sequences
        and differ only in how each op enters the file system."""
        import random

        return random.Random("%s:%s:%s" % (FioWorkload.name, self.seed,
                                           stream))

    def attach(self, env, fs, vfs):
        """Create one ``MAP_ATOMIC`` mapping per thread (setup hook).

        Runs under a free context and resolves paths below the VFS:
        nothing here charges time, draws a syscall span, or leaves even
        a zero-valued entry in ``stats.syscall_time_ns``.
        """
        if not hasattr(fs, "mmap_atomic"):
            raise ValueError(
                "%s does not support library-mode mmap" % fs.name)
        ctx = prepare_context(env)
        maps = env.stats.count("mmio_maps")
        for tid in range(self.threads):
            ino = fs.lookup(ctx, ROOT_INO, self.path(tid).lstrip("/"))
            self.mappings[tid] = fs.mmap_atomic(
                ctx, ino, policy=self.policy, log_blocks=self.log_blocks)
        # Setup must not pollute the measured counters either.
        env.stats.counters["mmio_maps"] = maps

    def make_thread_body(self, vfs, thread_id):
        rng = self.rng(thread_id)
        max_offset = max(1, self.file_size - self.io_size)
        chunk = payload(self.io_size, tag=thread_id + 1)
        mapping = self.mappings[thread_id]

        def body(ctx):
            for op in range(self.ops_per_thread):
                offset = rng.randrange(max_offset)
                if rng.random() < self.read_fraction:
                    mapping.load(ctx, offset, self.io_size)
                else:
                    mapping.store(ctx, offset, chunk)
                if self.fsync_every and (op + 1) % self.fsync_every == 0:
                    mapping.msync(ctx)
                yield
            # Leave the mapping live: teardown is not part of the
            # measured steady state (munmap would be one final commit).

        return body


__all__ = ["MmapFioWorkload"]

"""Filebench personalities (paper Table 1, micro benchmarks).

Faithful re-creations of the four personalities' flowop loops:

- **Fileserver**: creates, deletes, appends, whole-file reads and writes.
- **Webserver**: whole-file reads plus log appends (read-intensive).
- **Webproxy**: create-write-close / open-read-close x5 / delete plus log
  appends, over a highly skewed (Zipf) fileset with short-lived files.
- **Varmail**: create-append-fsync, read-append-fsync, reads, deletes
  (the sync-heavy mail-server pattern; every append is soon fsynced).

Each simulated thread owns a private directory and fileset slice, so
adding threads grows the working set -- which is exactly why the paper
sees HiNFS's buffer hit ratio (and throughput) dip as threads increase
(Figure 8).
"""

from repro.fs import flags as f
from repro.fs.errors import FSError
from repro.workloads.base import Workload, payload, zipf_index


class _ThreadFiles:
    """Names and sizes of the files one thread currently owns."""

    def __init__(self, directory):
        self.directory = directory
        self.names = []
        self.counter = 0

    def new_name(self):
        self.counter += 1
        return "%s/f%06d" % (self.directory, self.counter)

    def random_existing(self, rng, skewed=False):
        if not self.names:
            return None
        if skewed:
            return self.names[zipf_index(rng, len(self.names))]
        return self.names[rng.randrange(len(self.names))]


class FilebenchPersonality(Workload):
    """Common fileset management for the four personalities."""

    #: Mean pre-allocated file size.
    mean_file_size = 64 << 10
    #: Mean request size for writes/appends (the paper's "mean I/O size").
    io_size = 64 << 10
    #: Pre-allocated files per thread.
    files_per_thread = 50

    def __init__(self, seed=42, threads=1, io_size=None, files_per_thread=None,
                 mean_file_size=None, duration_ops=10_000):
        super().__init__(seed=seed, threads=threads)
        if io_size is not None:
            self.io_size = int(io_size)
        if files_per_thread is not None:
            self.files_per_thread = int(files_per_thread)
        if mean_file_size is not None:
            self.mean_file_size = int(mean_file_size)
        #: Upper bound on flowop iterations (the runner usually stops on
        #: a simulated-time deadline first).
        self.duration_ops = duration_ops
        self._filesets = {}

    # -- fileset -----------------------------------------------------------

    def _fileset(self, thread_id):
        files = self._filesets.get(thread_id)
        if files is None:
            files = _ThreadFiles("/t%d" % thread_id)
            self._filesets[thread_id] = files
        return files

    def _sample_size(self, rng):
        size = int(rng.gammavariate(1.5, self.mean_file_size / 1.5))
        return max(1024, min(size, self.mean_file_size * 8))

    def prepare(self, vfs, ctx):
        for tid in range(self.threads):
            files = self._fileset(tid)
            vfs.mkdir(ctx, files.directory)
            rng = self.rng(stream=1000 + tid)
            for _ in range(self.files_per_thread):
                name = files.new_name()
                vfs.write_file(ctx, name, payload(self._sample_size(rng), tid))
                files.names.append(name)
            self.extra_prepare(vfs, ctx, tid)

    def extra_prepare(self, vfs, ctx, thread_id):
        """Hook: personalities with log files create them here."""

    # -- helpers used by flowop loops ------------------------------------

    def _write_whole(self, vfs, ctx, path, size, tag):
        fd = vfs.open(ctx, path, f.O_CREAT | f.O_RDWR | f.O_TRUNC)
        pos = 0
        while pos < size:
            chunk = min(self.io_size, size - pos)
            vfs.pwrite(ctx, fd, pos, payload(chunk, tag))
            pos += chunk
        vfs.close(ctx, fd)

    def _read_whole(self, vfs, ctx, path):
        try:
            fd = vfs.open(ctx, path, f.O_RDONLY)
        except FSError:
            return
        while vfs.read(ctx, fd, self.io_size):
            pass
        vfs.close(ctx, fd)

    def _append(self, vfs, ctx, path, size, tag, sync=False):
        fd = vfs.open(ctx, path, f.O_RDWR | f.O_APPEND | f.O_CREAT)
        vfs.write(ctx, fd, payload(size, tag))
        if sync:
            vfs.fsync(ctx, fd)
        vfs.close(ctx, fd)


class Fileserver(FilebenchPersonality):
    """Creates, deletes, appends, whole-file reads and writes."""

    name = "fileserver"

    def make_thread_body(self, vfs, thread_id):
        files = self._fileset(thread_id)
        rng = self.rng(thread_id)

        def body(ctx):
            for _ in range(self.duration_ops):
                # create + write a whole new file
                name = files.new_name()
                self._write_whole(vfs, ctx, name, self._sample_size(rng),
                                  thread_id)
                files.names.append(name)
                yield
                # append to an existing file
                victim = files.random_existing(rng)
                if victim:
                    self._append(vfs, ctx, victim, self.io_size, thread_id)
                yield
                # whole-file read
                victim = files.random_existing(rng)
                if victim:
                    self._read_whole(vfs, ctx, victim)
                yield
                # delete
                if len(files.names) > self.files_per_thread:
                    victim = files.names.pop(rng.randrange(len(files.names)))
                    vfs.unlink(ctx, victim)
                yield
                # stat
                victim = files.random_existing(rng)
                if victim:
                    vfs.stat(ctx, victim)
                yield

        return body


class Webserver(FilebenchPersonality):
    """Read-intensive: 10 whole-file reads then one 16 KiB log append."""

    name = "webserver"
    mean_file_size = 32 << 10
    io_size = 32 << 10

    def log_path(self, thread_id):
        return "/t%d/weblog" % thread_id

    def extra_prepare(self, vfs, ctx, thread_id):
        vfs.write_file(ctx, self.log_path(thread_id), b"")

    def make_thread_body(self, vfs, thread_id):
        files = self._fileset(thread_id)
        rng = self.rng(thread_id)

        def body(ctx):
            for _ in range(self.duration_ops):
                for _ in range(10):
                    victim = files.random_existing(rng)
                    if victim:
                        self._read_whole(vfs, ctx, victim)
                    yield
                self._append(vfs, ctx, self.log_path(thread_id), 16 << 10,
                             thread_id)
                yield

        return body


class Webproxy(FilebenchPersonality):
    """Short-lived files with strong (Zipf) locality plus log appends."""

    name = "webproxy"
    mean_file_size = 16 << 10
    io_size = 16 << 10

    def log_path(self, thread_id):
        return "/t%d/proxylog" % thread_id

    def extra_prepare(self, vfs, ctx, thread_id):
        vfs.write_file(ctx, self.log_path(thread_id), b"")

    def make_thread_body(self, vfs, thread_id):
        files = self._fileset(thread_id)
        rng = self.rng(thread_id)

        def body(ctx):
            for _ in range(self.duration_ops):
                # delete the oldest cached object, admit a new one
                if files.names:
                    vfs.unlink(ctx, files.names.pop(0))
                name = files.new_name()
                self._write_whole(vfs, ctx, name, self._sample_size(rng),
                                  thread_id)
                files.names.append(name)
                yield
                # five (skewed) object reads
                for _ in range(5):
                    victim = files.random_existing(rng, skewed=True)
                    if victim:
                        self._read_whole(vfs, ctx, victim)
                    yield
                self._append(vfs, ctx, self.log_path(thread_id), 16 << 10,
                             thread_id)
                yield

        return body


class Varmail(FilebenchPersonality):
    """Mail server: every append is fsynced (eager-persistent writes)."""

    name = "varmail"
    mean_file_size = 16 << 10
    io_size = 16 << 10

    def make_thread_body(self, vfs, thread_id):
        files = self._fileset(thread_id)
        rng = self.rng(thread_id)

        def body(ctx):
            for _ in range(self.duration_ops):
                # delete
                if files.names:
                    files_idx = rng.randrange(len(files.names))
                    vfs.unlink(ctx, files.names.pop(files_idx))
                yield
                # create - append - fsync
                name = files.new_name()
                self._append(vfs, ctx, name, self.io_size, thread_id,
                             sync=True)
                files.names.append(name)
                yield
                # read - append - fsync
                victim = files.random_existing(rng)
                if victim:
                    self._read_whole(vfs, ctx, victim)
                    self._append(vfs, ctx, victim, self.io_size, thread_id,
                                 sync=True)
                yield
                # whole-file read
                victim = files.random_existing(rng)
                if victim:
                    self._read_whole(vfs, ctx, victim)
                yield

        return body

"""Macrobenchmarks (paper Table 1, Figure 13).

- **Postmark**: small-file create/read/append/delete transactions, the
  e-mail/web-service pattern full of short-lived files (HiNFS's buffer
  absorbs writes to files that die before writeback).
- **TPCC**: a miniature OLTP storage engine -- heap-table pages plus a
  write-ahead log that is fsynced at every commit, reproducing the >90 %
  fsync-byte profile of DBT2/PostgreSQL in Figure 2.
- **KernelGrep**: scan every file of a synthetic source tree for an
  absent pattern (pure cold reads).
- **KernelMake**: read sources, write object files, no fsync (lazy
  writes a build produces).
"""

from repro.fs import flags as f
from repro.workloads.base import Workload, payload, zipf_index


class Postmark(Workload):
    """Katcher's postmark: transactions over a pool of small files."""

    name = "postmark"

    def __init__(self, initial_files=200, transactions=1000,
                 min_size=512, max_size=10 << 10, read_chunk=4096,
                 seed=42, threads=1):
        super().__init__(seed=seed, threads=threads)
        self.initial_files = initial_files
        self.transactions = transactions
        self.min_size = min_size
        self.max_size = max_size
        self.read_chunk = read_chunk

    def _dir(self, tid):
        return "/pm%d" % tid

    def prepare(self, vfs, ctx):
        for tid in range(self.threads):
            vfs.mkdir(ctx, self._dir(tid))
            rng = self.rng(stream=1000 + tid)
            for i in range(self.initial_files):
                size = rng.randint(self.min_size, self.max_size)
                vfs.write_file(ctx, "%s/init%05d" % (self._dir(tid), i),
                               payload(size, tid))

    def make_thread_body(self, vfs, thread_id):
        rng = self.rng(thread_id)
        directory = self._dir(thread_id)
        files = ["%s/init%05d" % (directory, i)
                 for i in range(self.initial_files)]
        counter = [0]

        def create(ctx):
            counter[0] += 1
            name = "%s/tx%06d" % (directory, counter[0])
            size = rng.randint(self.min_size, self.max_size)
            vfs.write_file(ctx, name, payload(size, thread_id))
            files.append(name)

        def body(ctx):
            for _ in range(self.transactions):
                # Half of a transaction: read or append.
                victim = files[rng.randrange(len(files))]
                if rng.random() < 0.5:
                    fd = vfs.open(ctx, victim, f.O_RDONLY)
                    while vfs.read(ctx, fd, self.read_chunk):
                        pass
                    vfs.close(ctx, fd)
                else:
                    fd = vfs.open(ctx, victim, f.O_RDWR | f.O_APPEND)
                    vfs.write(ctx, fd, payload(
                        rng.randint(self.min_size, self.max_size), 9))
                    vfs.close(ctx, fd)
                # Other half: create or delete.
                if rng.random() < 0.5 or len(files) < 8:
                    create(ctx)
                else:
                    victim = files.pop(rng.randrange(len(files)))
                    vfs.unlink(ctx, victim)
                yield
            # Postmark's final phase: delete everything.
            for name in files:
                vfs.unlink(ctx, name)
                yield
            del files[:]

        return body


class TPCC(Workload):
    """A miniature TPC-C-style engine: table pages + a WAL fsynced per
    commit (DBT2 on PostgreSQL with 3 warehouses in the paper)."""

    name = "tpcc"
    PAGE = 8192  # PostgreSQL page size

    def __init__(self, warehouses=3, table_pages=64, transactions=600,
                 checkpoint_every=50, seed=42, threads=1):
        super().__init__(seed=seed, threads=threads)
        self.warehouses = warehouses
        self.table_pages = table_pages
        self.transactions = transactions
        self.checkpoint_every = checkpoint_every

    TABLES = ("warehouse", "district", "customer", "stock", "orders",
              "order_line")

    def _table(self, tid, table):
        return "/tpcc%d/%s.dat" % (tid, table)

    def _wal(self, tid):
        return "/tpcc%d/wal" % tid

    def prepare(self, vfs, ctx):
        for tid in range(self.threads):
            vfs.mkdir(ctx, "/tpcc%d" % tid)
            for table in self.TABLES:
                vfs.write_file(ctx, self._table(tid, table),
                               payload(self.table_pages * self.PAGE, tid))
            vfs.write_file(ctx, self._wal(tid), b"")

    def make_thread_body(self, vfs, thread_id):
        rng = self.rng(thread_id)

        def body(ctx):
            table_fds = {
                table: vfs.open(ctx, self._table(thread_id, table), f.O_RDWR)
                for table in self.TABLES
            }
            wal_fd = vfs.open(ctx, self._wal(thread_id),
                              f.O_RDWR | f.O_APPEND)
            dirty = []
            for txn in range(self.transactions):
                # New-Order-ish: read a few pages, modify a couple.
                for _ in range(rng.randint(2, 4)):
                    table = self.TABLES[rng.randrange(len(self.TABLES))]
                    page = zipf_index(rng, self.table_pages)
                    vfs.pread(ctx, table_fds[table], page * self.PAGE,
                              self.PAGE)
                for _ in range(rng.randint(1, 2)):
                    table = self.TABLES[rng.randrange(len(self.TABLES))]
                    page = zipf_index(rng, self.table_pages)
                    vfs.pwrite(ctx, table_fds[table], page * self.PAGE,
                               payload(self.PAGE, txn))
                    dirty.append(table)
                # Commit: WAL append + fsync (the >90 % fsync bytes).
                vfs.write(ctx, wal_fd, payload(rng.randint(256, 2048), 5))
                vfs.fsync(ctx, wal_fd)
                yield
                if (txn + 1) % self.checkpoint_every == 0:
                    # Checkpoint: fsync the dirtied tables.
                    for table in set(dirty):
                        vfs.fsync(ctx, table_fds[table])
                    del dirty[:]
                    yield
            # Clean shutdown: a final checkpoint syncs everything.
            for fd in table_fds.values():
                vfs.fsync(ctx, fd)
                vfs.close(ctx, fd)
            vfs.fsync(ctx, wal_fd)
            vfs.close(ctx, wal_fd)
            yield

        return body


class _KernelTree(Workload):
    """Shared synthetic source tree for the kernel benchmarks."""

    dirs = 24
    files_per_dir = 30
    mean_source_size = 12 << 10

    def source_paths(self):
        return [
            "/src/d%02d/file%03d.c" % (d, i)
            for d in range(self.dirs)
            for i in range(self.files_per_dir)
        ]

    def prepare(self, vfs, ctx):
        rng = self.rng(stream=99)
        vfs.mkdir(ctx, "/src")
        for d in range(self.dirs):
            vfs.mkdir(ctx, "/src/d%02d" % d)
        for path in self.source_paths():
            size = max(512, int(rng.gammavariate(2.0,
                                                 self.mean_source_size / 2.0)))
            vfs.write_file(ctx, path, payload(size, 11))


class KernelGrep(_KernelTree):
    """grep -r for an absent pattern: read every byte of the tree."""

    name = "kernel-grep"

    def make_thread_body(self, vfs, thread_id):
        paths = self.source_paths()[thread_id :: self.threads]

        def body(ctx):
            needle = b"\xde\xad\xbe\xef-absent"
            for path in paths:
                fd = vfs.open(ctx, path, f.O_RDONLY)
                while True:
                    chunk = vfs.read(ctx, fd, 64 << 10)
                    if not chunk:
                        break
                    assert needle not in chunk
                vfs.close(ctx, fd)
                yield

        return body


class KernelMake(_KernelTree):
    """make: read each source (plus headers), write an object file."""

    name = "kernel-make"

    def make_thread_body(self, vfs, thread_id):
        paths = self.source_paths()[thread_id :: self.threads]
        rng = self.rng(thread_id)

        def body(ctx):
            for path in paths:
                # Read the translation unit and a few "headers".
                fd = vfs.open(ctx, path, f.O_RDONLY)
                while vfs.read(ctx, fd, 64 << 10):
                    pass
                vfs.close(ctx, fd)
                for _ in range(3):
                    header = self.source_paths()[
                        zipf_index(rng, self.dirs * self.files_per_dir)
                    ]
                    hfd = vfs.open(ctx, header, f.O_RDONLY)
                    vfs.read(ctx, hfd, 16 << 10)
                    vfs.close(ctx, hfd)
                # Emit the object file (lazy write, no fsync -- make
                # never syncs).
                obj = path.replace(".c", ".o")
                size = max(1024, int(rng.gammavariate(2.0, 8192)))
                vfs.write_file(ctx, obj, payload(size, 13))
                yield

        return body

"""Benchmark harness: regenerates every table and figure in the paper.

- :mod:`repro.bench.runner` -- builds a (device, fs, vfs) stack for any
  of the paper's five file systems plus HiNFS's ablation variants, runs a
  workload on simulated threads, and returns the measured result.
- :mod:`repro.bench.report` -- plain-text tables/series matching the
  rows the paper reports.
- :mod:`repro.bench.experiments` -- one module per paper figure.
- :mod:`repro.bench.registry` -- name -> experiment lookup for the CLI.
"""

from repro.bench.report import Series, Table
from repro.bench.runner import (
    FS_NAMES,
    RunResult,
    build_stack,
    run_workload,
)

__all__ = [
    "FS_NAMES",
    "RunResult",
    "Series",
    "Table",
    "build_stack",
    "run_workload",
]

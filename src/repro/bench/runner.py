"""Builds file-system stacks and runs workloads on simulated threads."""

from repro.core.config import HiNFSConfig
from repro.core.hinfs import HiNFS, make_hinfs_nclfw, make_hinfs_wb
from repro.engine.env import SimEnv
from repro.engine.scheduler import Scheduler
from repro.engine.stats import SimStats
from repro.fs.ext4dax import Ext4Dax
from repro.fs.extfs import Ext2, Ext4
from repro.fs.pmfs import PMFS
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice
from repro.workloads.base import prepare_context

#: The paper's comparison set (Table 3) plus HiNFS and its ablations.
FS_NAMES = (
    "hinfs",
    "hinfs-nclfw",
    "hinfs-wb",
    "pmfs",
    "ext4-dax",
    "ext2-nvmmbd",
    "ext4-nvmmbd",
)


class RunResult:
    """Everything measured in one workload run."""

    def __init__(self, fs_name, workload_name, ops, elapsed_ns, stats, fs=None,
                 trace=None, op_latencies_ns=None):
        self.fs_name = fs_name
        self.workload_name = workload_name
        self.ops = ops
        self.elapsed_ns = elapsed_ns
        self.stats = stats
        #: The live file-system object (model-accuracy introspection).
        self.fs = fs
        #: The :class:`~repro.obs.trace.TraceRing` of the measured run
        #: (None unless ``run_workload(..., trace_capacity=...)``).
        self.trace = trace
        #: Per-op virtual latency samples across all threads (None unless
        #: ``run_workload(..., record_latencies=True)``); feed these to
        #: :func:`repro.engine.stats.percentiles` for exact tail numbers.
        self.op_latencies_ns = op_latencies_ns

    @property
    def fsync_byte_fraction(self):
        """Fraction of written bytes later covered by an fsync (Fig. 2)."""
        written = self.stats.count("app_bytes_written")
        if written == 0:
            return 0.0
        return self.stats.count("app_bytes_fsynced") / written

    @property
    def throughput(self):
        """Operations per simulated second."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops * 1e9 / self.elapsed_ns

    @property
    def nvmm_bytes_written(self):
        return self.stats.bytes_written_nvmm

    def syscall_seconds(self, syscall):
        return self.stats.syscall_time_ns.get(syscall, 0) / 1e9

    def __repr__(self):
        return "RunResult(%s/%s: %.0f ops/s, %.3f ms)" % (
            self.fs_name,
            self.workload_name,
            self.throughput,
            self.elapsed_ns / 1e6,
        )


def build_stack(env, fs_name, config, device_size, hinfs_config=None,
                cache_pages=None, sync_mount=False):
    """Construct (fs, vfs) for any comparison file system.

    A ``base@M`` name (e.g. ``hinfs@4``) builds a sharded mount: M
    independent NVMM devices, each in its own resource domain, behind
    one :class:`~repro.fs.shard.ShardedFS` and the unchanged VFS.
    ``device_size`` is then per device.
    """
    hinfs_config = hinfs_config or HiNFSConfig()
    if cache_pages is None:
        # The paper gives the block-based stacks 3 GB of page cache next
        # to a 5 GB dataset; scale the same ratio to the device size.
        cache_pages = max(64, int(device_size * 0.6) // 4096)
    base, sep, nshards = fs_name.partition("@")
    if sep:
        from repro.fs.shard import build_sharded

        fs = build_sharded(env, base, config, device_size,
                           hinfs_config=hinfs_config, nshards=int(nshards))
    elif fs_name in ("hinfs", "hinfs-nclfw", "hinfs-wb"):
        device = NVMMDevice(env, config, device_size)
        factory = {
            "hinfs": HiNFS,
            "hinfs-nclfw": make_hinfs_nclfw,
            "hinfs-wb": make_hinfs_wb,
        }[fs_name]
        fs = factory(env, device, config, hconfig=hinfs_config)
    elif fs_name == "pmfs":
        device = NVMMDevice(env, config, device_size)
        fs = PMFS(env, device, config)
    elif fs_name == "ext4-dax":
        device = NVMMDevice(env, config, device_size)
        fs = Ext4Dax(env, device, config)
    elif fs_name == "ext2-nvmmbd":
        fs = Ext2(env, config, device_size, cache_pages=cache_pages)
    elif fs_name == "ext4-nvmmbd":
        fs = Ext4(env, config, device_size, cache_pages=cache_pages)
    else:
        raise ValueError("unknown file system %r" % fs_name)
    vfs = VFS(env, fs, config, sync_mount=sync_mount)
    return fs, vfs


def run_workload(fs_name, workload, config=None, device_size=96 << 20,
                 hinfs_config=None, cache_pages=None, duration_ns=None,
                 sync_mount=False, unmount=False, trace_capacity=None,
                 setup=None, record_latencies=False):
    """Run ``workload`` on ``fs_name``; returns a :class:`RunResult`.

    The fileset is pre-allocated under a free context (filebench-style);
    statistics are reset afterwards so only the measured run counts.
    ``duration_ns`` stops the run at a simulated-time deadline (the
    paper's 60-second filebench runs); without it the workload runs to
    completion (trace replay, macrobenchmarks).  ``trace_capacity``
    turns on the request-span trace ring for the measured phase only, so
    the exported spans and the run's stats describe the same requests.
    ``setup(env, fs, vfs)`` runs after the stats reset and before the
    measured threads spawn -- the hook QoS attachment uses.  With
    ``record_latencies`` every thread samples its per-op virtual
    latencies (see :attr:`RunResult.op_latencies_ns`).
    """
    config = config or NVMMConfig()
    env = SimEnv()
    fs, vfs = build_stack(env, fs_name, config, device_size,
                          hinfs_config=hinfs_config, cache_pages=cache_pages,
                          sync_mount=sync_mount)
    pctx = prepare_context(env)
    workload.prepare(vfs, pctx)
    fs.unmount(pctx)  # settle the fileset, like the paper's fresh mount
    fs.drop_caches()  # and clear the OS page cache before measuring
    env.quiesce()  # idle device + background timelines at t=0
    vfs.reset_accounting()
    env.stats = SimStats()  # measurement starts now
    if setup is not None:
        setup(env, fs, vfs)
    if trace_capacity:
        # After the stats reset, so span totals match stats.layer_time_ns.
        env.enable_tracing(trace_capacity)
    scheduler = Scheduler(env)
    for tid in range(workload.threads):
        scheduler.spawn("%s-%d" % (workload.name, tid),
                        _bind(workload, vfs, tid),
                        record_latencies=record_latencies)
    elapsed = scheduler.run(until_ns=duration_ns)
    if duration_ns is not None:
        elapsed = max(elapsed, 1)
        elapsed = min(elapsed, max(t.now for t in scheduler.threads))
    if unmount:
        # Charge the final flush to the slowest thread's context.
        slowest = max(scheduler.threads, key=lambda t: t.now)
        vfs.unmount(slowest.ctx)
        elapsed = slowest.now
    return RunResult(fs_name, workload.name, env.stats.ops_completed,
                     elapsed, env.stats, fs=fs, trace=env.trace,
                     op_latencies_ns=(scheduler.op_latencies_ns()
                                      if record_latencies else None))


def _bind(workload, vfs, thread_id):
    body_factory = workload.make_thread_body(vfs, thread_id)

    def body(ctx):
        return body_factory(ctx)

    return body

"""Shared scale presets for the experiments.

The paper runs 60-second filebench rounds against 5 GB filesets on a
16 GB machine.  A pure-Python simulation reproduces the *shapes* at a
fraction of that scale; these presets keep every experiment's
device : cache : buffer : fileset ratios equal to the paper's, scaled
down, and let the benchmark suite pick how long to run.
"""

import dataclasses

from repro.core.config import HiNFSConfig
from repro.nvmm.config import NVMMConfig


@dataclasses.dataclass(frozen=True)
class Scale:
    """Knobs shared by every experiment."""

    name: str
    device_size: int
    #: HiNFS DRAM write-buffer size (the paper: 2 GB against 5 GB data).
    buffer_bytes: int
    #: Page-cache pages for the NVMMBD baselines (paper: 3 GB memory).
    cache_pages: int
    #: Simulated run length for throughput experiments.
    duration_ns: int
    #: Filebench fileset size per thread.
    files_per_thread: int
    threads: int
    #: Trace length / macro transaction counts.
    trace_ops: int

    def hinfs_config(self, **overrides):
        overrides.setdefault("buffer_bytes", self.buffer_bytes)
        return HiNFSConfig(**overrides)

    def nvmm_config(self, **overrides):
        return NVMMConfig().replace(**overrides) if overrides else NVMMConfig()


#: Fast preset used by the test suite and default benchmarks.
SMALL = Scale(
    name="small",
    device_size=192 << 20,
    buffer_bytes=8 << 20,
    cache_pages=2048,
    duration_ns=300_000_000,
    files_per_thread=80,
    threads=2,
    trace_ops=2500,
)

#: Closer-to-paper preset (slower; used for the recorded EXPERIMENTS.md).
MEDIUM = Scale(
    name="medium",
    device_size=384 << 20,
    buffer_bytes=16 << 20,
    cache_pages=4096,
    duration_ns=600_000_000,
    files_per_thread=120,
    threads=4,
    trace_ops=4000,
)

SCALES = {"small": SMALL, "medium": MEDIUM}


def personality_kwargs(scale, personality):
    """Per-personality fileset knobs at a given scale (mirrors the
    filebench defaults' relative shapes)."""
    if personality == "fileserver":
        return dict(files_per_thread=scale.files_per_thread,
                    mean_file_size=64 << 10, io_size=64 << 10)
    if personality == "webserver":
        return dict(files_per_thread=int(scale.files_per_thread * 1.5),
                    mean_file_size=128 << 10, io_size=128 << 10)
    if personality == "webproxy":
        return dict(files_per_thread=scale.files_per_thread)
    if personality == "varmail":
        return dict(files_per_thread=scale.files_per_thread)
    raise ValueError(personality)

"""One experiment module per paper figure; see the registry."""

"""Figure 10: throughput as a function of the DRAM buffer size.

The buffer size sweeps from 0.1x to 1.0x the workload's fileset size.
Expected shape: Fileserver improves markedly as the buffer grows (more
write hits); Webproxy stays nearly flat (strong locality plus
short-lived files that die before writeback, so even a small buffer
absorbs almost everything).
"""

from repro.bench.report import Series, Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL, personality_kwargs
from repro.workloads.filebench import Fileserver, Webproxy

RATIOS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def _fig10_kwargs(scale, name):
    """Tight filesets so the 0.1x-1.0x buffer sweep spans the regime
    where absorption actually turns on (mirrors the fig8 sizing)."""
    kwargs = personality_kwargs(scale, name)
    if name == "fileserver":
        kwargs.update(files_per_thread=24, mean_file_size=32 << 10,
                      io_size=32 << 10)
    elif name == "webproxy":
        kwargs.update(files_per_thread=30)
    return kwargs


def _workload_bytes(scale, name):
    kwargs = _fig10_kwargs(scale, name)
    return scale.threads * kwargs["files_per_thread"] * (
        kwargs.get("mean_file_size", 16 << 10)
    )


def run(scale=SMALL, ratios=RATIOS):
    table = Table(
        "Figure 10: HiNFS throughput vs DRAM buffer size (fraction of fileset)",
        ["buffer_ratio", "fileserver", "webproxy"],
    )
    series = {"fileserver": Series("fileserver"), "webproxy": Series("webproxy")}
    classes = {"fileserver": Fileserver, "webproxy": Webproxy}
    for ratio in ratios:
        row = [ratio]
        for name, cls in classes.items():
            buffer_bytes = max(32 * 4096, int(ratio * _workload_bytes(scale, name)))
            workload = cls(threads=scale.threads, duration_ops=100_000,
                           **_fig10_kwargs(scale, name))
            result = run_workload(
                "hinfs", workload,
                device_size=scale.device_size,
                duration_ns=scale.duration_ns,
                hinfs_config=scale.hinfs_config().replace(
                    buffer_bytes=buffer_bytes),
            )
            series[name].add(ratio, result.throughput)
            row.append(result.throughput)
        table.add_row(*row)
    return table, series


def check_shape(series):
    fileserver = series["fileserver"].ys()
    webproxy = series["webproxy"].ys()
    # Fileserver gains clearly from a bigger buffer.
    assert fileserver[-1] >= 1.2 * fileserver[0], fileserver
    # Webproxy is insensitive (within noise).
    assert max(webproxy) <= 1.25 * min(webproxy), webproxy


if __name__ == "__main__":
    table, series = run()
    print(table)
    check_shape(series)

"""Figure 9: I/O-size sensitivity and the CLFW ablation (Fileserver).

Two panels:

(a) throughput of HiNFS, HiNFS-NCLFW, and PMFS across I/O sizes -- CLFW
    wins at sub-block (unaligned) sizes (the paper: up to ~30 %), and
    the HiNFS-vs-PMFS gap grows with the I/O size as copy costs come to
    dominate syscall overhead;
(b) total NVMM write size -- CLFW writes back far less data than NCLFW
    when the I/O size is below the 4 KiB block size.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.filebench import Fileserver

IO_SIZES = (64, 512, 2048, 4096, 16 << 10, 64 << 10, 256 << 10)
FILE_SYSTEMS = ("hinfs", "hinfs-nclfw", "pmfs")


def run(scale=SMALL, io_sizes=IO_SIZES):
    throughput_table = Table(
        "Figure 9(a): fileserver throughput vs I/O size",
        ["io_size"] + list(FILE_SYSTEMS),
    )
    writesize_table = Table(
        "Figure 9(b): NVMM write size (MB) vs I/O size",
        ["io_size", "hinfs", "hinfs-nclfw"],
    )
    throughput = {fs: {} for fs in FILE_SYSTEMS}
    nvmm_bytes = {fs: {} for fs in FILE_SYSTEMS}
    for io_size in io_sizes:
        for fs_name in FILE_SYSTEMS:
            # Small I/O sizes come with proportionally small files (the
            # filebench knob scales both), which is exactly the
            # "small block-unaligned lazy-persistent writes" regime CLFW
            # targets: a block is flushed with only a few dirty lines.
            workload = Fileserver(
                threads=scale.threads,
                duration_ops=100_000,
                files_per_thread=scale.files_per_thread,
                mean_file_size=max(1024, min(64 << 10, io_size * 4)),
                io_size=io_size,
            )
            # A small buffer keeps the writeback path continuously active
            # (the paper's 2 GB buffer against a 5 GB fileset does the
            # same), and unmounting drains the tail so panel (b) counts
            # every write the workload caused.
            result = run_workload(
                fs_name, workload,
                device_size=scale.device_size,
                duration_ns=scale.duration_ns,
                hinfs_config=scale.hinfs_config().replace(
                    buffer_bytes=min(2 << 20, scale.buffer_bytes)
                ),
                unmount=True,
            )
            throughput[fs_name][io_size] = result.throughput
            # Panel (b) counts the buffer-writeback traffic (flushed
            # cachelines), normalised per completed operation so the two
            # variants are compared at equal work; metadata/journal
            # traffic is identical on both and would only dilute the
            # CLFW-vs-NCLFW comparison.
            flushed_bytes = result.stats.count("hinfs_flushed_lines") * 64
            if fs_name == "pmfs":
                flushed_bytes = result.nvmm_bytes_written
            nvmm_bytes[fs_name][io_size] = flushed_bytes / max(1, result.ops)
        throughput_table.add_row(
            io_size, *[throughput[fs][io_size] for fs in FILE_SYSTEMS]
        )
        writesize_table.add_row(
            io_size,
            nvmm_bytes["hinfs"][io_size] / 1e3,
            nvmm_bytes["hinfs-nclfw"][io_size] / 1e3,
        )
    return (throughput_table, writesize_table), (throughput, nvmm_bytes)


def check_shape(results):
    throughput, nvmm_bytes = results
    small_sizes = [s for s in throughput["hinfs"] if s < 4096]
    large_sizes = [s for s in throughput["hinfs"] if s >= 4096]
    # (a) CLFW >= NCLFW at sub-block sizes, with a visible gap somewhere.
    gaps = []
    for size in small_sizes:
        ratio = throughput["hinfs"][size] / throughput["hinfs-nclfw"][size]
        assert ratio >= 0.97, (size, ratio)
        gaps.append(ratio)
    assert max(gaps) >= 1.05, gaps
    # (a) the HiNFS/PMFS advantage grows with I/O size.
    first = throughput["hinfs"][small_sizes[0]] / throughput["pmfs"][small_sizes[0]]
    last = throughput["hinfs"][large_sizes[-1]] / throughput["pmfs"][large_sizes[-1]]
    assert last > first, (first, last)
    # (b) CLFW writes far less NVMM data per op below the block size;
    # the gap is largest at the smallest I/O (the paper's Figure 9(b)).
    for size in small_sizes:
        ceiling = 0.6 if size <= 512 else 0.8
        assert nvmm_bytes["hinfs"][size] <= ceiling * nvmm_bytes["hinfs-nclfw"][size], (
            size, nvmm_bytes["hinfs"][size], nvmm_bytes["hinfs-nclfw"][size]
        )
    # (b) the gap closes at/above the block size.
    big = large_sizes[-1]
    assert nvmm_bytes["hinfs"][big] >= 0.7 * nvmm_bytes["hinfs-nclfw"][big]


if __name__ == "__main__":
    tables, results = run()
    for table in tables:
        print(table)
        print()
    check_shape(results)

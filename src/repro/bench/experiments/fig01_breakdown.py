"""Figure 1: time breakdown of running fio on PMFS.

The paper profiles a 1-read : 2-writes fio run on PMFS per I/O size and
splits time into *Read Access* (NVMM -> user copies), *Write Access*
(user -> NVMM copies), and *Others*.  Expected shape: the direct write
access dominates (> 80 %) at I/O sizes >= 4 KiB and still accounts for a
noticeable share (>= ~16 %) at 64 B.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.engine.stats import CAT_OTHERS, CAT_READ_ACCESS, CAT_WRITE_ACCESS
from repro.workloads.fio import FioWorkload

IO_SIZES = (64, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)


def run(scale=SMALL, io_sizes=IO_SIZES, fs_name="pmfs"):
    table = Table(
        "Figure 1: fio time breakdown on %s (read:write = 1:2)" % fs_name,
        ["io_size", "read_access_%", "write_access_%", "others_%"],
    )
    fractions = {}
    for io_size in io_sizes:
        workload = FioWorkload(
            io_size=io_size,
            file_size=min(16 << 20, max(1 << 20, io_size * 64)),
            read_fraction=1 / 3,
            ops_per_thread=max(200, 2000 // max(1, io_size // 4096)),
            threads=1,
        )
        result = run_workload(fs_name, workload, device_size=scale.device_size,
                              duration_ns=scale.duration_ns)
        fr = result.stats.breakdown.fractions()
        read = fr.get(CAT_READ_ACCESS, 0.0)
        write = fr.get(CAT_WRITE_ACCESS, 0.0)
        others = fr.get(CAT_OTHERS, 0.0)
        fractions[io_size] = {"read": read, "write": write, "others": others}
        table.add_row(io_size, 100 * read, 100 * write, 100 * others)
    return table, fractions


def check_shape(fractions):
    """The paper's Figure 1 claims, as assertions."""
    for io_size, fr in fractions.items():
        if io_size >= 4096:
            assert fr["write"] >= 0.80, (
                "write access should dominate at %dB: %r" % (io_size, fr)
            )
    assert fractions[64]["write"] >= 0.10
    assert fractions[64]["others"] >= fractions[1 << 20]["others"]


if __name__ == "__main__":
    table, fractions = run()
    print(table)
    check_shape(fractions)

"""Ablation: buffer replacement policies (the paper's deferred study).

Section 3.2 argues LRW is a good default because file-system workloads
are highly skewed, and leaves LFU/ARC/2Q "in the future".  This
experiment runs that study: the same workloads under each policy,
reporting throughput and the buffer write-hit ratio.  Expected shape:
on the skewed personalities all policies land within a modest band of
LRW (the paper's justification for choosing the simple one), with the
frequency-aware policies doing no worse on the zipf-skewed webproxy.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.fs import flags as f
from repro.workloads.base import Workload, payload, zipf_index
from repro.workloads.filebench import Fileserver

POLICIES = ("lrw", "lfu", "2q", "arc")


class ZipfOverwrite(Workload):
    """Hot-set overwrites with periodic sequential scans.

    The classic workload that separates replacement policies: a zipf-hot
    working set of 4 KiB blocks is rewritten continuously, while an
    occasional sequential burst (a "scan") sweeps cold blocks through
    the buffer.  Recency-only policies let the scan evict the hot set;
    frequency-aware policies (LFU/ARC/2Q) keep it resident.
    """

    name = "zipf-overwrite"

    def __init__(self, file_blocks=2048, hot_fraction=0.05, scan_every=40,
                 scan_len=96, ops=4000, seed=42, threads=1):
        super().__init__(seed=seed, threads=threads)
        self.file_blocks = file_blocks
        self.hot_fraction = hot_fraction
        self.scan_every = scan_every
        self.scan_len = scan_len
        self.ops = ops

    def prepare(self, vfs, ctx):
        vfs.write_file(ctx, "/zipf.dat", payload(self.file_blocks * 4096, 3),
                       chunk=1 << 20)

    def make_thread_body(self, vfs, thread_id):
        rng = self.rng(thread_id)
        hot_blocks = max(4, int(self.file_blocks * self.hot_fraction))
        scan_cursor = [hot_blocks]

        def body(ctx):
            fd = vfs.open(ctx, "/zipf.dat", f.O_RDWR)
            for op in range(self.ops):
                if op % self.scan_every == 0:
                    # A sequential scan burst over cold blocks.
                    for i in range(self.scan_len):
                        blockno = (scan_cursor[0] + i) % self.file_blocks
                        vfs.pwrite(ctx, fd, blockno * 4096, payload(4096, 9))
                    scan_cursor[0] = (scan_cursor[0] + self.scan_len
                                      ) % self.file_blocks
                else:
                    blockno = zipf_index(rng, hot_blocks, skew=1.5)
                    vfs.pwrite(ctx, fd, blockno * 4096, payload(4096, op))
                yield
            vfs.close(ctx, fd)

        return body


def run(scale=SMALL, policies=POLICIES):
    table = Table(
        "Ablation: buffer replacement policy (throughput ops/s, hit %)",
        ["workload", "policy", "ops_per_sec", "write_hit_%", "nvmm_MB"],
    )
    results = {}
    hit_ratios = {}
    cases = (
        ("zipf-overwrite", lambda: ZipfOverwrite(ops=3000)),
        ("fileserver", lambda: Fileserver(
            threads=scale.threads, duration_ops=100_000,
            files_per_thread=16, mean_file_size=32 << 10, io_size=32 << 10)),
    )
    for name, factory in cases:
        results[name] = {}
        hit_ratios[name] = {}
        for policy in policies:
            workload = factory()
            result = run_workload(
                "hinfs", workload,
                device_size=scale.device_size,
                duration_ns=scale.duration_ns,
                hinfs_config=scale.hinfs_config(
                    replacement_policy=policy,
                    buffer_bytes=1 << 20,
                ),
            )
            hits = result.stats.count("hinfs_buffer_hits")
            misses = result.stats.count("hinfs_buffer_misses")
            hit_pct = 100 * hits / max(1, hits + misses)
            results[name][policy] = result.throughput
            hit_ratios[name][policy] = hit_pct
            table.add_row(name, policy, result.throughput, hit_pct,
                          result.nvmm_bytes_written / 1e6)
    return table, (results, hit_ratios)


def check_shape(data):
    results, hit_ratios = data
    for name, by_policy in results.items():
        base = by_policy["lrw"]
        for policy, throughput in by_policy.items():
            # No policy collapses or trivially dominates on the skewed
            # workloads: the paper's "LRW is good enough" claim.
            assert throughput >= 0.6 * base, (name, policy, by_policy)
            assert throughput <= 1.6 * base, (name, policy, by_policy)
    # On the scan-polluted hot-set workload, at least one frequency-aware
    # policy must match-or-beat plain LRW on write hits (the standard
    # scan-resistance result the paper's future work would look for).
    zipf = hit_ratios["zipf-overwrite"]
    assert max(zipf["lfu"], zipf["arc"], zipf["2q"]) >= zipf["lrw"], zipf


if __name__ == "__main__":
    table, results = run()
    print(table)
    check_shape(results)

"""Figure 13: elapsed time of the macrobenchmarks, normalised to PMFS.

Expected shape (paper Section 5.3): HiNFS cuts Postmark and Kernel-Make
time dramatically (short-lived files / lazy build writes); on TPC-C
(sync per commit) and Kernel-Grep (read-only) HiNFS matches PMFS; the
NVMMBD stacks are far slower everywhere, with EXT2 faster than EXT4
(no journaling).
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.macro import KernelGrep, KernelMake, Postmark, TPCC

FILE_SYSTEMS = ("hinfs", "hinfs-wb", "pmfs", "ext4-dax", "ext2-nvmmbd",
                "ext4-nvmmbd")


def _workloads(scale):
    yield "postmark", Postmark(transactions=scale.trace_ops // 4,
                               initial_files=150)
    yield "tpcc", TPCC(transactions=scale.trace_ops // 6)
    yield "kernel-grep", KernelGrep()
    yield "kernel-make", KernelMake()


def run(scale=SMALL, file_systems=FILE_SYSTEMS):
    table = Table(
        "Figure 13: macrobenchmark elapsed time normalised to PMFS",
        ["workload"] + list(file_systems),
    )
    normalised = {}
    for name, workload in _workloads(scale):
        raw = {}
        for fs_name in file_systems:
            result = run_workload(
                fs_name, workload,
                device_size=scale.device_size,
                # Buffer = ~1/10 of workload size (Section 5.3); the
                # page-cache budget of the block-based stacks is matched
                # so neither side gets free staging memory.
                hinfs_config=scale.hinfs_config().replace(
                    buffer_bytes=2 << 20),
                cache_pages=512,
            )
            raw[fs_name] = result.elapsed_ns
        base = raw["pmfs"]
        normalised[name] = {fs: v / base for fs, v in raw.items()}
        table.add_row(name, *[normalised[name][fs] for fs in file_systems])
    return table, normalised


def check_shape(normalised):
    # Big HiNFS wins on the lazy-write workloads.
    assert normalised["postmark"]["hinfs"] <= 0.7, normalised["postmark"]
    assert normalised["kernel-make"]["hinfs"] <= 0.7, normalised["kernel-make"]
    # Parity on the read-only / sync-dominated ones.
    assert 0.8 <= normalised["kernel-grep"]["hinfs"] <= 1.1
    assert 0.8 <= normalised["tpcc"]["hinfs"] <= 1.1
    # EXT2 (no journal) is faster than EXT4 on NVMMBD.
    for name in normalised:
        assert (normalised[name]["ext2-nvmmbd"]
                <= normalised[name]["ext4-nvmmbd"] * 1.02), (name, normalised[name])
    # The NVMMBD stacks are far slower than HiNFS on the I/O-heavy runs.
    assert normalised["kernel-grep"]["ext2-nvmmbd"] >= 1.5
    # HiNFS-WB pays for buffering eager-persistent writes on TPC-C.
    assert normalised["tpcc"]["hinfs-wb"] >= normalised["tpcc"]["hinfs"]


if __name__ == "__main__":
    table, normalised = run()
    print(table)
    check_shape(normalised)

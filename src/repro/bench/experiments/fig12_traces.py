"""Figure 12: breakdown of trace-replay time (read/write/unlink/fsync).

Replays the four syscall traces on every file system (plus the HiNFS-WB
ablation) and reports per-syscall time, normalised to PMFS's total.
Expected shape (paper Section 5.3): HiNFS cuts replay time by roughly
a third on Usr0/Usr1/LASR (all of it out of the write bucket), matches
PMFS on the sync-dominated Facebook trace, and beats HiNFS-WB on the
traces with many syncs (buffering eager-persistent writes hurts).
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.traces import SYNTHESIZERS, TraceReplayWorkload

FILE_SYSTEMS = ("hinfs", "hinfs-wb", "pmfs", "ext4-dax", "ext2-nvmmbd",
                "ext4-nvmmbd")
SYSCALLS = ("read", "write", "unlink", "fsync")


def run(scale=SMALL, traces=("usr0", "usr1", "lasr", "facebook"),
        file_systems=FILE_SYSTEMS):
    tables = []
    totals = {}
    for trace_name in traces:
        trace = SYNTHESIZERS[trace_name](ops=scale.trace_ops)
        table = Table(
            "Figure 12 (%s): replay time breakdown, normalised to PMFS"
            % trace_name,
            ["fs"] + ["%s_t" % s for s in SYSCALLS] + ["total"],
        )
        raw = {}
        for fs_name in file_systems:
            workload = TraceReplayWorkload(trace)
            result = run_workload(
                fs_name, workload,
                device_size=scale.device_size,
                # The paper sets the buffer to 1/10 of the workload size
                # for the trace and macro runs (Section 5.3).
                hinfs_config=scale.hinfs_config().replace(
                    buffer_bytes=2 << 20),
                cache_pages=512,
            )
            per_syscall = {
                syscall: result.stats.syscall_time_ns.get(syscall, 0)
                for syscall in SYSCALLS
            }
            raw[fs_name] = per_syscall
        base = max(1, sum(raw["pmfs"].values()))
        for fs_name in file_systems:
            values = [raw[fs_name][s] / base for s in SYSCALLS]
            table.add_row(fs_name, *values, sum(values))
        tables.append(table)
        totals[trace_name] = {
            fs: sum(raw[fs].values()) / base for fs in file_systems
        }
    return tables, totals


def check_shape(totals):
    # HiNFS clearly beats PMFS on the coalescible traces (paper: 35-38 %).
    for trace in ("usr0", "usr1", "lasr"):
        assert totals[trace]["hinfs"] <= 0.80, (trace, totals[trace])
    # On the sync-everything Facebook trace HiNFS ~ PMFS.
    assert 0.75 <= totals["facebook"]["hinfs"] <= 1.15, totals["facebook"]
    # The eager-persistent checker pays off where syncs are frequent: on
    # Facebook the naive buffer is strictly worse; on the mixed desktop
    # traces it must at least never win meaningfully (the paper reports a
    # larger WB penalty there, driven by buffer-pollution cascades at a
    # trace scale this simulation does not reach -- see EXPERIMENTS.md).
    assert totals["facebook"]["hinfs-wb"] >= 1.05 * totals["facebook"]["hinfs"]
    for trace in ("usr0", "usr1"):
        assert totals[trace]["hinfs-wb"] >= 0.9 * totals[trace]["hinfs"], (
            trace, totals[trace]
        )


if __name__ == "__main__":
    tables, totals = run()
    for table in tables:
        print(table)
        print()
    check_shape(totals)

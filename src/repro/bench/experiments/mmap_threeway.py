"""Zero-syscall mmap data plane: sync vs ring batch-64 vs MAP_ATOMIC.

Three ways to push the same small-op fio stream into the PMFS-family
stacks, in increasing order of syscall avoidance:

1. **sync**: one syscall per op -- every 64-byte write pays the full
   ``T_syscall`` entry plus VFS dispatch;
2. **ring**: the io_uring-style ring at batch depth 64 -- the entry is
   paid once per batch, but dispatch and completion bookkeeping remain;
3. **mmap**: a library-mode ``MAP_ATOMIC`` mapping -- loads and stores
   hit NVMM in process.  After setup there are *zero* syscalls: the
   only per-op costs are the media itself and the epoch log append.

At small I/O sizes the per-op constant dominates media time, so the
expected shape is mmap > ring > sync throughput on every stack, with
the mmap margin largest exactly where the paper's software-overhead
argument lives.  The accounting leg pins the headline claim exactly:
the steady-state mmap run finishes with an **empty syscall ledger**
(``syscall_time_ns == {}``, zero VFS entries) while still performing
every op of the stream, each op logged and crash-atomic.
"""

from repro.bench.report import Series, Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.fio import FioWorkload, RingFioWorkload
from repro.workloads.mmio import MmapFioWorkload

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax")
LEGS = ("sync", "ring", "mmap")


def _make(leg, policy, **kwargs):
    if leg == "sync":
        return FioWorkload(**kwargs), None
    if leg == "ring":
        return RingFioWorkload(batch_depth=64, **kwargs), None
    workload = MmapFioWorkload(policy=policy, **kwargs)
    return workload, workload.attach


def run(scale=SMALL, file_systems=FILE_SYSTEMS, threads=2,
        ops_per_thread=1500, io_size=64, file_size=1 << 20,
        fsync_every=16, policy="auto"):
    config = scale.nvmm_config()
    hinfs_config = scale.hinfs_config()

    def one_run(fs_name, leg, nthreads, ops, pacing):
        workload, setup = _make(
            leg, policy,
            threads=nthreads, ops_per_thread=ops, io_size=io_size,
            file_size=file_size, fsync_every=pacing,
        )
        return run_workload(
            fs_name, workload,
            config=config,
            device_size=scale.device_size,
            hinfs_config=hinfs_config,
            cache_pages=scale.cache_pages,
            setup=setup,
        )

    table = Table(
        "Data-plane comparison (fio mixed, %d B ops, sync=%d, %d threads): "
        "ops/s per submission mechanism" % (io_size, fsync_every, threads),
        ["fs"] + list(LEGS),
    )
    throughput = {leg: Series(leg) for leg in LEGS}
    counters = {}
    for fs_name in file_systems:
        row = [fs_name]
        counters[fs_name] = {}
        for leg in LEGS:
            result = one_run(fs_name, leg, threads, ops_per_thread,
                             fsync_every)
            throughput[leg].add(fs_name, result.throughput)
            counters[fs_name][leg] = {
                "ops": result.ops,
                "syscall_time_ns": sum(
                    result.stats.syscall_time_ns.values()),
                "syscall_entries": result.stats.count(
                    "vfs_syscall_entries"),
                "mmio_stores": result.stats.count("mmio_stores"),
                "mmio_loads": result.stats.count("mmio_loads"),
                "mmio_log_appends": result.stats.count("mmio_log_appends"),
                "mmio_epochs_committed": result.stats.count(
                    "mmio_epochs_committed"),
            }
            row.append(result.throughput)
        table.add_row(*row)

    # The zero-syscall ledger, pinned exactly: single thread, steady
    # state -- every op runs, not one syscall is charged.
    accounting_table = Table(
        "Steady-state ledger (single thread, %d ops): syscalls charged "
        "per data plane" % ops_per_thread,
        ["leg", "syscall_entries", "syscall_time_ns", "ops_completed"],
    )
    accounting = {}
    for leg in LEGS:
        result = one_run("hinfs", leg, 1, ops_per_thread, fsync_every)
        accounting[leg] = {
            "ops": result.ops,
            "syscall_entries": result.stats.count("vfs_syscall_entries"),
            "syscall_time_ns": sum(result.stats.syscall_time_ns.values()),
            "syscall_ledger": dict(result.stats.syscall_time_ns),
            "mmio_stores": result.stats.count("mmio_stores"),
            "mmio_loads": result.stats.count("mmio_loads"),
            "msync_calls": result.stats.count("msync_calls"),
        }
        accounting_table.add_row(leg, accounting[leg]["syscall_entries"],
                                 accounting[leg]["syscall_time_ns"],
                                 accounting[leg]["ops"])

    data = {
        "throughput": throughput,
        "counters": counters,
        "accounting": accounting,
        "ops_per_thread": ops_per_thread,
        "threads": threads,
        "syscall_ns": config.syscall_ns,
    }
    return [table, accounting_table], data


def check_shape(data):
    """The acceptance shape for the zero-syscall data plane."""
    throughput = data["throughput"]
    legs = {leg: dict(zip(throughput[leg].xs(), throughput[leg].ys()))
            for leg in LEGS}
    for fs_name in legs["sync"]:
        sync, ring, mmap = (legs["sync"][fs_name], legs["ring"][fs_name],
                            legs["mmap"][fs_name])
        # Batching amortizes the entry; the mapping eliminates it (and
        # the VFS dispatch), so the ordering is strict at 64 B ops.
        assert ring > sync, (fs_name, sync, ring)
        assert mmap > ring, (fs_name, ring, mmap)
    # Identical op streams: the mapped leg replays the exact fio
    # sequence; the only lifecycle ops it skips are each thread's
    # open and close (the mapping outlives the measured phase).
    threads = data["threads"]
    for fs_name, per_leg in data["counters"].items():
        assert per_leg["sync"]["ops"] - per_leg["mmap"]["ops"] \
            == 2 * threads, (fs_name, per_leg)
        mmio_ops = (per_leg["mmap"]["mmio_stores"]
                    + per_leg["mmap"]["mmio_loads"])
        assert mmio_ops == threads * data["ops_per_thread"], (
            fs_name, per_leg["mmap"])
        # Every store was logged at least once (crash atomicity is on
        # the whole time the plane is winning the throughput race).
        assert per_leg["mmap"]["mmio_log_appends"] >= \
            per_leg["mmap"]["mmio_stores"], (fs_name, per_leg["mmap"])
    # The headline ledger, exact: the steady-state mmap leg charged
    # literally zero syscall time and zero VFS entries, while sync and
    # ring both paid for every entry they made.
    acct = data["accounting"]
    assert acct["mmap"]["syscall_entries"] == 0, acct["mmap"]
    assert acct["mmap"]["syscall_time_ns"] == 0, acct["mmap"]
    assert acct["mmap"]["syscall_ledger"] == {}, acct["mmap"]
    assert acct["mmap"]["mmio_stores"] + acct["mmap"]["mmio_loads"] \
        == data["ops_per_thread"], acct["mmap"]
    assert acct["sync"]["syscall_entries"] > 0
    assert acct["ring"]["syscall_entries"] > 0
    assert acct["sync"]["syscall_time_ns"] > \
        acct["ring"]["syscall_time_ns"] > 0, acct


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

"""Multi-tenant serving under load: QoS, admission control, tail SLOs.

Two legs:

1. **Fleet leg** -- a mixed fleet of (by default) 500 tenants -- five
   priority/weight/arrival-mode blends per ten tenants -- runs on every
   comparison stack with the QoS layer attached, recording per-class
   p50/p99/p999 latency and the weighted fairness spread.  This is the
   "does multi-tenant serving work everywhere" leg: all stacks complete
   the fleet, nothing above the shed class is ever refused, and the
   weighted spread stays finite.

2. **Overload leg** (HiNFS) -- bronze open-loop flooders push the
   offered load to >=4x what the uncontrolled system can drain (the
   measured factor is recorded in the JSON and asserted by the shape
   check) next to paying silver/gold tenants, once with
   the admission controller on and once with it off.  Expected shape:
   *off*, everyone queues behind the collapsing backlog and the gold
   class's p999 blows past the SLO; *on*, pressure crosses the high
   watermark, the mount reports OVERLOADED, bronze gets shed with
   EAGAIN (client backoff + drops), and gold p999 stays inside the SLO
   bound -- graceful degradation, only the lowest class pays.

Determinism: every arrival process, retry jitter, and bucket decision is
seeded integer/seeded-RNG math, so the same seed yields byte-identical
JSON.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.fs.qos import QosController
from repro.workloads.tenants import (
    MODE_OPEN,
    TenantFleet,
    TenantSpec,
    PRIO_BRONZE,
    PRIO_GOLD,
    PRIO_SILVER,
)

#: The paper's comparison set for this experiment (no HiNFS ablations:
#: the QoS layer is fs-agnostic, the ablations add nothing here).
FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")

#: Gold-class p999 SLO for the overload leg (virtual ns).  The bound is
#: part of the experiment's contract: QoS-on must hold it at 4x load.
GOLD_P999_SLO_NS = 3_000_000

#: QoS-off must exceed the QoS-on fleet p999 by at least this factor for
#: the collapse to count as demonstrated.
COLLAPSE_FACTOR = 5.0

#: Token-bucket capacity for the overload leg: provisioned high enough
#: that no class is *bucket*-throttled -- the leg isolates the admission
#: controller, whose job is exactly the aggregate overload that
#: per-tenant buckets cannot see (every tenant inside its share, the sum
#: ~4x what the N_w writer slots can drain).
OVERLOAD_CAPACITY_BPS = 32 << 30


def _attach_qos(fleet, capacity_bps, holder, **qos_kwargs):
    """A run_workload ``setup`` hook attaching a fresh controller."""

    def setup(env, fs, vfs):
        qos = QosController(
            env, capacity_bps,
            buffer=getattr(fs, "buffer", None),
            **qos_kwargs,
        )
        vfs.attach_qos(qos)
        fleet.register_all(qos)
        holder.append((qos, vfs))

    return setup


def _fleet_leg(scale, file_systems, seed, n_tenants):
    """Leg 1: the mixed fleet on every stack, QoS attached."""
    results = {}
    for fs_name in file_systems:
        fleet = TenantFleet.mixed(
            n_tenants, ops=12, io_size=4096, read_fraction=0.5,
            think_ns=150_000, interval_ns=400_000, seed=seed,
        )
        holder = []
        # A provisioned system: generous bucket capacity and a DRAM
        # buffer sized for the fleet's write footprint -- this leg
        # measures serving under QoS, not shedding.
        run = run_workload(
            fs_name, fleet,
            device_size=scale.device_size,
            hinfs_config=scale.hinfs_config(buffer_bytes=32 << 20),
            cache_pages=scale.cache_pages,
            # The slot ceiling is sized to the slowest comparison stack:
            # the block-based file systems legitimately run a deeper
            # device backlog without being overloaded.
            setup=_attach_qos(fleet, 4 << 30, holder,
                              slot_ceiling_ns=50_000_000),
        )
        qos, vfs = holder[0]
        summary = fleet.summarize()
        summary["elapsed_ns"] = run.elapsed_ns
        summary["qos"] = {
            "admitted_ops": run.stats.count("qos_admitted_ops"),
            "shed_ops": run.stats.count("qos_shed_ops"),
            "throttle_ns": run.stats.count("qos_throttle_ns"),
            "overload_enters": run.stats.count("qos_overload_enters"),
        }
        summary["observable_state"] = vfs.health.observable_state
        results[fs_name] = summary
    return results


#: SQEs the paying (silver/gold) serving tier coalesces per ring
#: submission: the overload leg runs through the ring's batched/async
#: path (one mode switch per batch, ``IOSQE_ASYNC`` SQEs, CQEs reaped
#: from the completion queue) instead of the old batch-of-one harness.
#: The bronze flooders stay per-op deliberately: measured here, flooder
#: batches of 4x32KB book solid slot-timeline trains with no gaps for
#: small writes to slot into, lifting gold's p999 ~20x (2.1ms -> 33ms)
#: past the SLO -- burst-clumped floods defeat the gap-aware FCFS
#: interleaving that admission control relies on, so a serving tier
#: must not let shed-class bursts through coalesced.
OVERLOAD_RING_BATCH = 4


def _overload_fleet(n_bronze, n_silver, n_gold, seed, ops,
                    ring_batch=OVERLOAD_RING_BATCH):
    """The overload-leg fleet: a durable-write serving tier.

    Every class opens O_SYNC (a durability-requiring tier, varmail
    style), so every write eagerly persists and occupies NVMM
    writer-slot time in the foreground -- the shared bottleneck the
    paper's DRAM buffer cannot hide.  Bronze flooders demand far more
    than the slots can drain; silver/gold arrive at a modest open-loop rate a
    healthy system serves easily.  Without admission control the FCFS
    slot queue makes everyone, gold included, stand behind the flood.
    """
    specs = []
    tid = 0
    for _ in range(n_bronze):
        specs.append(TenantSpec(
            tid, weight=1, priority=PRIO_BRONZE, mode=MODE_OPEN, ops=ops,
            io_size=32 << 10, read_fraction=0.0, interval_ns=100_000,
            sync=True,
        ))
        tid += 1
    for _ in range(n_silver):
        specs.append(TenantSpec(
            tid, weight=2, priority=PRIO_SILVER, mode=MODE_OPEN, ops=ops,
            io_size=4096, read_fraction=0.5, interval_ns=200_000,
            sync=True, batch=ring_batch,
        ))
        tid += 1
    for _ in range(n_gold):
        specs.append(TenantSpec(
            tid, weight=4, priority=PRIO_GOLD, mode=MODE_OPEN, ops=ops,
            io_size=4096, read_fraction=0.5, interval_ns=200_000,
            sync=True, batch=ring_batch,
        ))
        tid += 1
    return TenantFleet(specs, seed=seed)


def _overload_leg(scale, seed, n_tenants):
    """Leg 2: HiNFS under >=4x offered overload, QoS on vs off."""
    n_bronze = max(4, n_tenants // 2)
    n_silver = max(2, n_tenants // 4)
    n_gold = max(2, n_tenants - n_bronze - n_silver)
    # A small buffer makes DRAM occupancy the binding resource, as in
    # the paper's pressure-path analysis.
    hconfig = scale.hinfs_config(buffer_bytes=2 << 20)
    legs = {}
    for qos_on in (True, False):
        fleet = _overload_fleet(n_bronze, n_silver, n_gold, seed, ops=120)
        holder = []
        run = run_workload(
            "hinfs", fleet,
            device_size=scale.device_size,
            hinfs_config=hconfig,
            # Tight slot ceiling: shed while the backlog is still well
            # below the paying classes' arrival intervals, so protected
            # tenants never fall behind their own schedule.
            setup=(_attach_qos(fleet, OVERLOAD_CAPACITY_BPS, holder,
                               slot_ceiling_ns=150_000)
                   if qos_on else None),
        )
        summary = fleet.summarize()
        summary["elapsed_ns"] = run.elapsed_ns
        summary["ring"] = {
            "batches": run.stats.count("ring_batches"),
            "sqes": run.stats.count("ring_sqes"),
        }
        if qos_on:
            qos, vfs = holder[0]
            summary["qos"] = {
                "admitted_ops": run.stats.count("qos_admitted_ops"),
                "shed_ops": run.stats.count("qos_shed_ops"),
                "shed_ops_bronze": run.stats.count(
                    "qos_shed_ops_prio_%d" % PRIO_BRONZE),
                "shed_ops_silver": run.stats.count(
                    "qos_shed_ops_prio_%d" % PRIO_SILVER),
                "shed_ops_gold": run.stats.count(
                    "qos_shed_ops_prio_%d" % PRIO_GOLD),
                "throttle_ns": run.stats.count("qos_throttle_ns"),
                "overload_enters": run.stats.count("qos_overload_enters"),
                "overload_toggles": len(vfs.health.overload_history),
            }
        legs["qos_on" if qos_on else "qos_off"] = summary
    # The honest load factor: aggregate offered byte rate over what the
    # uncontrolled run actually drained.  check_shape requires >= 4x.
    offered_bps = sum(s.io_size * 1_000_000_000 // s.interval_ns
                      for s in fleet.specs)
    off = legs["qos_off"]
    achieved_bps = 0
    if off["elapsed_ns"] > 0:
        done = sum(r.bytes_done for r in fleet.results.values())
        achieved_bps = done * 1_000_000_000 // off["elapsed_ns"]
    legs["load"] = {
        "bronze": n_bronze, "silver": n_silver, "gold": n_gold,
        "ring_batch": OVERLOAD_RING_BATCH,
        "capacity_bps": OVERLOAD_CAPACITY_BPS,
        "offered_bps": offered_bps,
        "achieved_bps_qos_off": achieved_bps,
        "load_factor": (offered_bps / achieved_bps
                        if achieved_bps else float("inf")),
    }
    return legs


def run(scale=SMALL, file_systems=FILE_SYSTEMS, seed=0, n_tenants=500,
        overload_tenants=96):
    fleet_results = _fleet_leg(scale, file_systems, seed, n_tenants)
    overload = _overload_leg(scale, seed, overload_tenants)

    fleet_table = Table(
        "Mixed fleet of %d tenants per stack (QoS on): per-class tails "
        "and weighted fairness" % n_tenants,
        ["fs", "ops", "p50_us", "p99_us", "p999_us", "shed", "dropped",
         "fairness", "jain"],
    )
    for fs_name, summary in fleet_results.items():
        fleet_table.add_row(
            fs_name, summary["ops"],
            "%.1f" % (summary["p50"] / 1e3),
            "%.1f" % (summary["p99"] / 1e3),
            "%.1f" % (summary["p999"] / 1e3),
            summary["shed"], summary["dropped"],
            "%.2f" % summary["fairness_spread"],
            "%.3f" % summary["jain_index"],
        )

    overload_table = Table(
        "HiNFS at >=4x offered overload: admission control on vs off "
        "(gold p999 SLO %.1f ms)" % (GOLD_P999_SLO_NS / 1e6),
        ["config", "class", "ops", "p50_us", "p99_us", "p999_us", "shed",
         "dropped"],
    )
    for config in ("qos_on", "qos_off"):
        for cls, entry in overload[config]["classes"].items():
            overload_table.add_row(
                config, cls, entry["ops"],
                "%.1f" % (entry.get("p50", 0) / 1e3),
                "%.1f" % (entry.get("p99", 0) / 1e3),
                "%.1f" % (entry.get("p999", 0) / 1e3),
                entry["shed"], entry["dropped"],
            )

    data = {
        "seed": seed,
        "n_tenants": n_tenants,
        "gold_p999_slo_ns": GOLD_P999_SLO_NS,
        "collapse_factor": COLLAPSE_FACTOR,
        "fleet": fleet_results,
        "overload": overload,
    }
    return [fleet_table, overload_table], data


def check_shape(data):
    """The acceptance shape for overload-robust multi-tenant serving."""
    # -- fleet leg: every stack served the whole fleet ---------------------
    for fs_name, summary in data["fleet"].items():
        assert summary["ops"] > 0, fs_name
        assert summary["dropped"] == 0, (fs_name, summary["dropped"])
        # Weighted fairness is finite (nobody starved outright) and the
        # tail ordering is sane.
        assert summary["fairness_spread"] != float("inf"), fs_name
        assert summary["jain_index"] > 0.5, (fs_name, summary["jain_index"])
        assert summary["p50"] <= summary["p99"] <= summary["p999"], fs_name

    # -- overload leg: graceful degradation vs collapse --------------------
    on, off = data["overload"]["qos_on"], data["overload"]["qos_off"]
    slo = data["gold_p999_slo_ns"]
    # The offered load really did exceed what the uncontrolled system
    # drained by the advertised factor.
    assert data["overload"]["load"]["load_factor"] >= 4.0, \
        data["overload"]["load"]
    gold_on = on["classes"]["gold"]
    gold_off = off["classes"]["gold"]
    # The leg really ran the ring's batched path: fewer ring entries
    # than SQEs means multi-SQE submissions amortized the mode switch
    # (per-op shed retries legitimately resubmit batch-of-one).
    assert data["overload"]["load"]["ring_batch"] > 1, data["overload"]["load"]
    assert on["ring"]["batches"] < on["ring"]["sqes"], on["ring"]
    assert off["ring"]["batches"] < off["ring"]["sqes"], off["ring"]
    # QoS-on: the controller actually engaged (overload observed, bronze
    # shed) and ONLY the lowest class was shed.
    assert on["qos"]["overload_enters"] > 0, on["qos"]
    assert on["qos"]["shed_ops_bronze"] > 0, on["qos"]
    assert on["qos"]["shed_ops_silver"] == 0, on["qos"]
    assert on["qos"]["shed_ops_gold"] == 0, on["qos"]
    # QoS-on: the protected class's tail holds the SLO at 4x load.
    assert gold_on["p999"] <= slo, (gold_on["p999"], slo)
    assert gold_on["dropped"] == 0, gold_on
    # QoS-off: the same load demonstrably collapses -- the gold tail
    # blows past the SLO by the collapse factor (no admission control
    # means everyone queues behind the flood).
    assert gold_off["p999"] >= slo * data["collapse_factor"], \
        (gold_off["p999"], slo)
    # And the collapse is not an artifact of shedding work: QoS-off
    # completed everything, it just took unboundedly long.
    assert off["dropped"] == 0, off["dropped"]


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

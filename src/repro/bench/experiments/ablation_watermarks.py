"""Ablation: writeback watermarks and batch size (Section 3.2 defaults).

The paper fixes ``Low_f = 5 %`` and ``High_f = 20 %`` "by default and
configurable".  This ablation sweeps the watermark pair (and the demand
reclaim batch) on a write-intensive fileserver run against a small
buffer, where the settings actually matter.  Expected shape: overly lazy
settings (tiny High_f) cause more demand stalls; overly eager settings
(huge High_f) throw away coalescing opportunity; the paper's default
sits in the stable middle.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.filebench import Fileserver

SETTINGS = (
    ("lazy", 0.02, 0.05),
    ("paper", 0.05, 0.20),
    ("eager", 0.20, 0.60),
)


def run(scale=SMALL, settings=SETTINGS):
    table = Table(
        "Ablation: Low_f/High_f watermarks (fileserver, tight buffer)",
        ["setting", "low", "high", "ops_per_sec", "demand_stalls",
         "bg_blocks"],
    )
    results = {}
    for name, low, high in settings:
        workload = Fileserver(threads=scale.threads, duration_ops=100_000,
                              files_per_thread=40,
                              mean_file_size=32 << 10, io_size=32 << 10)
        result = run_workload(
            "hinfs", workload,
            device_size=scale.device_size,
            duration_ns=scale.duration_ns,
            hinfs_config=scale.hinfs_config(
                buffer_bytes=1 << 20,
                low_watermark=low,
                high_watermark=high,
            ),
        )
        stalls = result.stats.count("writeback_demand_stalls")
        bg = result.stats.count("writeback_pressure_blocks")
        results[name] = {"throughput": result.throughput, "stalls": stalls,
                         "bg_blocks": bg}
        table.add_row(name, low, high, result.throughput, stalls, bg)
    return table, results


def check_shape(results):
    # The paper's default must be competitive with both extremes.
    best = max(r["throughput"] for r in results.values())
    assert results["paper"]["throughput"] >= 0.85 * best, results
    # Lazier watermarks reclaim less in the background.
    assert results["lazy"]["bg_blocks"] <= results["eager"]["bg_blocks"], results


if __name__ == "__main__":
    table, results = run()
    print(table)
    check_shape(results)

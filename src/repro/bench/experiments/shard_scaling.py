"""Device-scaling of the sharded namespace: one mount, 1..8 NVMM devices.

The single-device HiNFS stack is bounded by the paper's ``N_w`` writer
slots -- Little's law applied to the one memory-bus device.  The shard
layer (:mod:`repro.fs.shard`) fans one VFS mount out over M devices,
each with its *own* resource domain (writer-slot pool, media-fault
model, errseq log), so aggregate write bandwidth should scale with
device count while the namespace, the syscall surface, and every client
stay unchanged.

This experiment drives the 500-tenant mixed fleet -- the five
priority/weight blends and three arrival modes of the serving harness,
opened O_SYNC so every write eagerly persists and the writer slots are
the binding resource -- against ``hinfs@M`` for M in 1, 2, 4, 8, and
checks three contracts:

- **monotone scaling**: aggregate mixed ops/s never decreases with
  device count (the whole point of sharding);
- **exact ledgers**: the per-device request ledger
  (``sharded_reqs@devN``) and writer-slot grant ledger
  (``nvmm_slot_grants@devN``) each sum *exactly* to their SimStats
  totals, and every per-device grant count equals the grant counter of
  that device's own ``FCFSServers`` pool -- no request and no slot
  grant is lost or double-billed by the routing layer;
- **crash safety rides along**: the cross-shard rename crash-point
  explorer (:mod:`repro.faults.shardcrash`) must prove exactly-one-name
  recovery at every protocol boundary, with and without a replacement
  victim, on both journaling bases.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.faults.shardcrash import explore_all
from repro.fs.qos import PRIO_BRONZE, PRIO_GOLD, PRIO_SILVER
from repro.workloads.tenants import (
    MODE_BURST,
    MODE_CLOSED,
    MODE_OPEN,
    TenantFleet,
    TenantSpec,
)

#: Shard counts swept; "hinfs@1" runs the same ShardedFS routing layer
#: over a single device, so the sweep isolates device count, not stack.
DEVICE_COUNTS = (1, 2, 4, 8)

#: The scaling bar check_shape holds the 8-device mount to, relative to
#: one device.  The recorded run scales ~6x; 2x is the red line under
#: which "sharding" would just be routing overhead.
MIN_SPEEDUP_8DEV = 2.0


def _sync_fleet(n_tenants, ops, seed):
    """The mixed serving fleet, durable-write edition.

    Same deterministic blend as :meth:`TenantFleet.mixed` -- per ten
    tenants: 5 bronze (weight 1), 3 silver (weight 2), 2 gold (weight
    4); arrival modes cycling closed/open/burst -- but every tenant
    opens O_SYNC with 32 KB writes, so the fleet is bounded by NVMM
    writer-slot bandwidth rather than by its own think time.
    """
    specs = []
    for tid in range(n_tenants):
        slot = tid % 10
        if slot < 5:
            priority, weight = PRIO_BRONZE, 1
        elif slot < 8:
            priority, weight = PRIO_SILVER, 2
        else:
            priority, weight = PRIO_GOLD, 4
        mode = (MODE_CLOSED, MODE_OPEN, MODE_BURST)[tid % 3]
        specs.append(TenantSpec(
            tid, weight=weight, priority=priority, mode=mode, ops=ops,
            io_size=32 << 10, read_fraction=0.25, think_ns=10_000,
            interval_ns=100_000, sync=True,
        ))
    return TenantFleet(specs, file_size=64 << 10, seed=seed)


def _ledgers(run, ndevices):
    """Per-device ledgers + exactness flags for one run."""
    stats = run.stats
    reqs = {("dev%d" % s): stats.count("sharded_reqs@dev%d" % s)
            for s in range(ndevices)}
    grants = {("dev%d" % s): stats.count("nvmm_slot_grants@dev%d" % s)
              for s in range(ndevices)}
    resources = run.fs.env.resources()
    pool_grants = {("dev%d" % s):
                   resources["nvmm_write_slots@dev%d" % s].total_grants
                   for s in range(ndevices)}
    return {
        "sharded_reqs": reqs,
        "sharded_reqs_total": stats.count("sharded_reqs_total"),
        "slot_grants": grants,
        "slot_grants_total": stats.count("nvmm_slot_grants_total"),
        "pool_grants": pool_grants,
        "reqs_exact": sum(reqs.values())
        == stats.count("sharded_reqs_total"),
        "grants_exact": sum(grants.values())
        == stats.count("nvmm_slot_grants_total"),
        "pools_exact": grants == pool_grants,
    }


def run(scale=SMALL, seed=42, n_tenants=500, ops_per_tenant=6):
    scaling = []
    for ndevices in DEVICE_COUNTS:
        fleet = _sync_fleet(n_tenants, ops_per_tenant, seed)
        result = run_workload(
            "hinfs@%d" % ndevices, fleet,
            device_size=scale.device_size,  # per device: scaling adds media
            hinfs_config=scale.hinfs_config(),
        )
        entry = {
            "devices": ndevices,
            "ops": result.ops,
            "elapsed_ns": result.elapsed_ns,
            "ops_per_s": result.throughput,
        }
        entry.update(_ledgers(result, ndevices))
        scaling.append(entry)

    # The crash-safety gate rides with the bench: every cross-shard
    # rename boundary, both bases, with/without replacement victims.
    crash_reports = [r.as_dict()
                     for r in explore_all(bases=("hinfs", "pmfs"),
                                          shard_counts=(2, 4))]

    base = scaling[0]["ops_per_s"]
    scaling_table = Table(
        "Aggregate mixed throughput of the %d-tenant O_SYNC fleet, one "
        "sharded HiNFS mount over 1..8 NVMM devices" % n_tenants,
        ["devices", "ops", "elapsed_ms", "agg_kops_s", "speedup",
         "ledgers"],
    )
    for entry in scaling:
        exact = (entry["reqs_exact"] and entry["grants_exact"]
                 and entry["pools_exact"])
        scaling_table.add_row(
            entry["devices"], entry["ops"],
            "%.2f" % (entry["elapsed_ns"] / 1e6),
            "%.1f" % (entry["ops_per_s"] / 1e3),
            "%.2fx" % (entry["ops_per_s"] / base if base else 0.0),
            "exact" if exact else "MISMATCH",
        )

    crash_table = Table(
        "Cross-shard rename crash-point explorer (remount + recovery at "
        "every protocol boundary)",
        ["base", "shards", "victim", "boundaries", "result"],
    )
    for report in crash_reports:
        crash_table.add_row(
            report["base"], report["nshards"], str(report["with_victim"]),
            len(report["cases"]),
            "PASS" if report["passed"] else "FAIL",
        )

    data = {
        "seed": seed,
        "n_tenants": n_tenants,
        "ops_per_tenant": ops_per_tenant,
        "device_counts": list(DEVICE_COUNTS),
        "min_speedup_8dev": MIN_SPEEDUP_8DEV,
        "scaling": scaling,
        "crashcheck": crash_reports,
    }
    return [scaling_table, crash_table], data


def check_shape(data):
    """Acceptance shape: monotone scaling, exact ledgers, crash-safe."""
    scaling = data["scaling"]
    assert [e["devices"] for e in scaling] == list(data["device_counts"])
    # Every sweep point completed the identical fleet of work.
    ops = {e["ops"] for e in scaling}
    assert len(ops) == 1 and ops.pop() > 0, scaling
    # Aggregate mixed ops/s is monotone non-decreasing in device count,
    # and 8 devices clear the real-scaling bar over 1.
    rates = [e["ops_per_s"] for e in scaling]
    assert all(b >= a for a, b in zip(rates, rates[1:])), rates
    assert rates[-1] >= data["min_speedup_8dev"] * rates[0], rates
    # Per-device ledgers: one entry per device, each summing *exactly*
    # to the SimStats total, and each device's slot-grant count equal to
    # its own FCFSServers pool's grant counter.
    for entry in scaling:
        ndevices = entry["devices"]
        assert len(entry["sharded_reqs"]) == ndevices, entry
        assert len(entry["slot_grants"]) == ndevices, entry
        assert sum(entry["sharded_reqs"].values()) \
            == entry["sharded_reqs_total"], entry
        assert sum(entry["slot_grants"].values()) \
            == entry["slot_grants_total"], entry
        assert entry["slot_grants"] == entry["pool_grants"], entry
        assert entry["sharded_reqs_total"] > 0, entry
        assert entry["slot_grants_total"] > 0, entry
    # Crash-point explorer: exactly-one-name at every boundary.
    assert data["crashcheck"], "crash explorer produced no reports"
    for report in data["crashcheck"]:
        assert report["passed"], report
        assert not report["violations"], report


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

"""Figure 7: overall filebench throughput, normalised to PMFS.

Expected shape (paper Section 5.2.1):

- HiNFS is the best (or tied-best) file system on every personality;
  the largest win is Fileserver (lazy-persistent writes dominate).
- On the read-intensive Webserver and the sync-heavy Varmail, HiNFS
  performs at par with PMFS (direct access keeps the double copy away).
- EXT4-DAX trails PMFS on Varmail (cache-oriented metadata).
- EXT2/EXT4+NVMMBD lose badly on Webserver (double-copy reads) and only
  approach/beat PMFS on Webproxy (strong locality, short-lived files).
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL, personality_kwargs
from repro.workloads.filebench import Fileserver, Varmail, Webproxy, Webserver

PERSONALITIES = {
    "fileserver": Fileserver,
    "webserver": Webserver,
    "webproxy": Webproxy,
    "varmail": Varmail,
}

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")


def run(scale=SMALL, file_systems=FILE_SYSTEMS):
    table = Table(
        "Figure 7: filebench throughput normalised to PMFS",
        ["workload"] + list(file_systems),
    )
    normalised = {}
    for name, cls in PERSONALITIES.items():
        raw = {}
        for fs_name in file_systems:
            workload = cls(threads=scale.threads, duration_ops=100_000,
                           **personality_kwargs(scale, name))
            result = run_workload(
                fs_name, workload,
                device_size=scale.device_size,
                duration_ns=scale.duration_ns,
                hinfs_config=scale.hinfs_config(),
                cache_pages=scale.cache_pages,
            )
            raw[fs_name] = result.throughput
        base = raw["pmfs"]
        normalised[name] = {fs: v / base for fs, v in raw.items()}
        table.add_row(name, *[normalised[name][fs] for fs in file_systems])
    return table, normalised


def check_shape(normalised):
    """The paper's Figure 7 claims."""
    for name, row in normalised.items():
        best = max(row.values())
        assert row["hinfs"] >= 0.92 * best, (
            "HiNFS should be (near-)best on %s: %r" % (name, row)
        )
    assert normalised["fileserver"]["hinfs"] >= 1.3
    assert abs(normalised["webserver"]["hinfs"] - 1.0) <= 0.3
    assert abs(normalised["varmail"]["hinfs"] - 1.0) <= 0.3
    assert normalised["varmail"]["ext4-dax"] <= 0.85
    assert normalised["webserver"]["ext2-nvmmbd"] <= 0.6
    assert normalised["webproxy"]["ext2-nvmmbd"] >= 0.75


if __name__ == "__main__":
    table, normalised = run()
    print(table)
    check_shape(normalised)

"""Figure 8: throughput for 1-10 threads.

Expected shape: HiNFS scales best everywhere.  PMFS/EXT4-DAX become
limited by the NVMM write bandwidth on Fileserver; HiNFS stays about
1.5x ahead of PMFS at high thread counts.  On Webserver and Varmail,
HiNFS tracks PMFS closely and both beat the NVMMBD stacks.
"""

from repro.bench.report import Series, Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL, personality_kwargs
from repro.workloads.filebench import Fileserver, Varmail, Webproxy, Webserver

PERSONALITIES = {
    "fileserver": Fileserver,
    "webserver": Webserver,
    "webproxy": Webproxy,
    "varmail": Varmail,
}

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd")
THREAD_COUNTS = (1, 2, 4, 8, 10)


def _fig8_kwargs(scale, name):
    """Scale the fileset so file lifetimes stay shorter than the buffer's
    drain horizon (the paper's 5 GB fileset vs 2 GB buffer ratio) -- the
    delete-absorption and coalescing effects need live buffered blocks."""
    kwargs = personality_kwargs(scale, name)
    if name == "fileserver":
        kwargs.update(files_per_thread=16, mean_file_size=32 << 10,
                      io_size=32 << 10)
    elif name == "webproxy":
        kwargs.update(files_per_thread=30)
    return kwargs


def run(scale=SMALL, personalities=("fileserver", "webproxy"),
        file_systems=FILE_SYSTEMS, thread_counts=THREAD_COUNTS):
    tables = []
    series = {}
    for name in personalities:
        cls = PERSONALITIES[name]
        table = Table(
            "Figure 8 (%s): ops/s for 1-10 threads" % name,
            ["threads"] + list(file_systems),
        )
        per_fs = {fs: Series(fs) for fs in file_systems}
        for threads in thread_counts:
            row = [threads]
            for fs_name in file_systems:
                workload = cls(threads=threads, duration_ops=100_000,
                               **_fig8_kwargs(scale, name))
                result = run_workload(
                    fs_name, workload,
                    device_size=scale.device_size,
                    duration_ns=scale.duration_ns,
                    hinfs_config=scale.hinfs_config().replace(
                        buffer_bytes=scale.buffer_bytes * 2),
                    cache_pages=scale.cache_pages,
                )
                per_fs[fs_name].add(threads, result.throughput)
                row.append(result.throughput)
            table.add_row(*row)
        tables.append(table)
        series[name] = per_fs
    return tables, series


def check_shape(series):
    """The paper's Figure 8 claims."""
    for name, per_fs in series.items():
        hinfs = per_fs["hinfs"].ys()
        pmfs = per_fs["pmfs"].ys()
        # PMFS rises with threads, then is capped by the NVMM write
        # bandwidth (Section 5.2.2).
        assert pmfs[1] > 1.2 * pmfs[0], (name, pmfs)
        assert pmfs[-1] <= 1.25 * pmfs[len(pmfs) // 2], (name, pmfs)
        # HiNFS clearly beats PMFS at the top thread count on the
        # write-dominated fileserver (the paper: ~1.5x there); on the
        # read-heavier webproxy the gap is smaller but still present.
        factor = 1.25 if name == "fileserver" else 1.05
        assert hinfs[-1] >= factor * pmfs[-1], (name, hinfs, pmfs)
        # A dip from the shrinking per-thread buffer share is expected,
        # but throughput stabilises (paper: stable beyond 8 threads).
        assert hinfs[-1] >= 0.7 * max(hinfs), (name, hinfs)
        # HiNFS is never (meaningfully) below PMFS.
        for h, p in zip(hinfs, pmfs):
            assert h >= 0.85 * p, (name, hinfs, pmfs)


if __name__ == "__main__":
    tables, series = run()
    for table in tables:
        print(table)
        print()
    check_shape(series)

"""Engine self-benchmark: wall-clock simulation speed (sim-ops/sec).

Every other experiment in the registry measures *virtual* time -- what
the simulated file systems would do on real NVMM.  This one measures the
simulator itself: how many simulated operations per wall-clock second
the engine sustains, per stack, for three workload shapes:

- ``write``   -- fsync-paced 4 KB overwrites (the data-plane stress);
- ``mixed``   -- the paper's 1:2 read:write mix (the headline number the
  perf-regression gate tracks);
- ``ring``    -- the same mixed stream submitted in ring batches (the
  amortized-syscall path).

The NVM-emulator literature (PAPERS.md: the read/write-asymmetric
software emulator and the NUMA hybrid-memory emulator) is blunt that an
emulator's own overhead must be measured and bounded before its numbers
mean anything; ``BENCH_simspeed.json`` makes engine speed a tracked
trajectory like ``BENCH_scale``/``BENCH_ring``, and the CI gate fails a
PR that regresses the headline mixed-workload rate by more than 30%.

Wall-clock timing is inherently machine-dependent, so ``check_shape``
asserts only completion invariants (every run finished its op budget and
produced a positive rate); the regression gate compares like-for-like
runs on the same machine/runner against the checked-in baseline.
"""

import gc
import time

from repro.bench.experiments.common import SMALL
from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.workloads.fio import FioWorkload, RingFioWorkload

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")

#: The workload shapes swept per stack.  ``mixed`` is the headline:
#: the perf-regression gate and the EXPERIMENTS.md trajectory track it.
WORKLOADS = ("write", "mixed", "ring")

#: Ring batch depth for the ``ring`` workload (deep enough to amortize
#: the per-batch syscall charge without dwarfing per-SQE engine work).
RING_DEPTH = 16


#: Iterations of the calibration microkernel (~tens of ms of pure
#: interpreter work; enough to average out timer granularity).
_CALIBRATION_ITERS = 200_000


def calibrate(repeats=3):
    """Interpreter-speed yardstick: best-of-``repeats`` rate of a fixed
    pure-Python microkernel (attribute-free int/dict churn).

    Absolute sim-ops/sec is a property of the machine as much as of the
    engine, so the regression gate compares the *normalized* headline --
    sim-ops per calibration-unit -- which transfers across boxes: a CI
    runner half as fast scores half on both numerator and denominator.
    """
    best = 0.0
    counts = {}
    for _ in range(repeats):
        gc.collect()
        c0 = time.process_time()
        acc = 0
        for i in range(_CALIBRATION_ITERS):
            acc = (acc + i * 31) % 1000003
            counts[acc & 7] = counts.get(acc & 7, 0) + 1
        cpu_s = time.process_time() - c0
        if cpu_s > 0:
            best = max(best, _CALIBRATION_ITERS / cpu_s)
    return best


def _make_workload(kind, threads, ops_per_thread, io_size, file_size,
                   fsync_every):
    if kind == "write":
        return FioWorkload(threads=threads, ops_per_thread=ops_per_thread,
                           io_size=io_size, file_size=file_size,
                           read_fraction=0.0, fsync_every=fsync_every)
    if kind == "mixed":
        return FioWorkload(threads=threads, ops_per_thread=ops_per_thread,
                           io_size=io_size, file_size=file_size,
                           read_fraction=1 / 3, fsync_every=fsync_every)
    if kind == "ring":
        return RingFioWorkload(batch_depth=RING_DEPTH, threads=threads,
                               ops_per_thread=ops_per_thread, io_size=io_size,
                               file_size=file_size, read_fraction=1 / 3,
                               fsync_every=fsync_every)
    raise ValueError("unknown simspeed workload %r" % kind)


def _time_one(kind, fs_name, scale, threads, ops_per_thread, io_size,
              file_size, fsync_every, repeats):
    """Best-of-``repeats`` wall-clock timing of one (workload, stack) cell.

    Best-of (not mean) because wall-clock noise is strictly additive --
    scheduler preemption and allocator jitter only ever slow a run down.
    """
    best = None
    for _ in range(repeats):
        workload = _make_workload(kind, threads, ops_per_thread, io_size,
                                  file_size, fsync_every)
        # Settle the heap first: without this, a gen-2 collection owed by
        # the *previous* stack's object graph lands mid-run and shows up
        # as a 2-4x swing on whichever cell drew the short straw.
        gc.collect()
        w0 = time.perf_counter()
        c0 = time.process_time()
        result = run_workload(
            fs_name, workload,
            device_size=scale.device_size,
            hinfs_config=scale.hinfs_config(),
            cache_pages=scale.cache_pages,
        )
        cpu_s = time.process_time() - c0
        wall_s = time.perf_counter() - w0
        # Rate on CPU seconds, not wall: the simulator is single-threaded
        # and CPU-bound, and process time is immune to noisy-neighbour
        # scheduler preemption that would otherwise swamp the trajectory.
        rate = result.ops / cpu_s if cpu_s > 0 else 0.0
        cell = {
            "ops": result.ops,
            "expected_ops": threads * ops_per_thread,
            "cpu_s": round(cpu_s, 4),
            "wall_s": round(wall_s, 4),
            "sim_ops_per_sec": round(rate, 1),
            "sim_elapsed_ns": result.elapsed_ns,
        }
        if best is None or cell["sim_ops_per_sec"] > best["sim_ops_per_sec"]:
            best = cell
    return best


def run(scale=SMALL, file_systems=FILE_SYSTEMS, workloads=WORKLOADS,
        threads=2, ops_per_thread=1200, io_size=4096, file_size=1 << 20,
        fsync_every=32, repeats=2):
    data = {"meta": {
        "threads": threads,
        "ops_per_thread": ops_per_thread,
        "io_size": io_size,
        "file_size": file_size,
        "fsync_every": fsync_every,
        "ring_depth": RING_DEPTH,
        "repeats": repeats,
    }}
    tables = []
    table = Table(
        "Simulator speed (wall-clock sim-ops/sec; %d threads x %d ops, "
        "%d B I/O, fsync=%d, ring depth %d, best of %d)"
        % (threads, ops_per_thread, io_size, fsync_every, RING_DEPTH,
           repeats),
        ["workload"] + list(file_systems),
    )
    for kind in workloads:
        per_fs = {}
        row = [kind]
        for fs_name in file_systems:
            cell = _time_one(kind, fs_name, scale, threads, ops_per_thread,
                             io_size, file_size, fsync_every, repeats)
            per_fs[fs_name] = cell
            row.append(cell["sim_ops_per_sec"])
        data[kind] = per_fs
        row_cpu = sum(c["cpu_s"] for c in per_fs.values())
        row_ops = sum(c["ops"] for c in per_fs.values())
        data[kind]["_aggregate"] = {
            "ops": row_ops,
            "cpu_s": round(row_cpu, 4),
            "sim_ops_per_sec": round(row_ops / row_cpu, 1)
            if row_cpu > 0 else 0.0,
        }
        table.add_row(*row)
    #: The headline number the CI regression gate compares -- both raw
    #: (same-machine trend) and normalized by the interpreter yardstick
    #: (machine-portable; what the gate actually uses).
    data["headline_mixed_ops_per_sec"] = (
        data["mixed"]["_aggregate"]["sim_ops_per_sec"]
        if "mixed" in data else 0.0
    )
    cal = calibrate(repeats=max(repeats, 3))
    data["calibration_loops_per_sec"] = round(cal, 1)
    data["headline_mixed_normalized"] = (
        round(data["headline_mixed_ops_per_sec"] / cal, 6) if cal else 0.0
    )
    tables.append(table)
    return tables, data


def check_shape(data):
    """Completion invariants only: wall-clock rates are machine-dependent,
    so absolute speed is gated separately (against a same-machine
    baseline) by ``hinfs-bench simspeed --baseline``."""
    for kind in WORKLOADS:
        if kind not in data:
            continue
        for fs_name, cell in data[kind].items():
            if fs_name.startswith("_"):
                continue
            # ops_completed counts every syscall (fsyncs, open/close too),
            # so the budgeted data ops are a floor, not an exact count.
            assert cell["ops"] >= cell["expected_ops"], (kind, fs_name, cell)
            assert cell["sim_ops_per_sec"] > 0, (kind, fs_name, cell)
            assert cell["sim_elapsed_ns"] > 0, (kind, fs_name, cell)


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

"""Batched submission: the io_uring-style ring's amortization sweep.

The same fio op stream (fixed seed, so identical offsets, mix, and
fsync pacing) is driven through the submission/completion ring at batch
depths 1 to 64.  Depth 1 is exactly the sync-syscall path -- every data
syscall in the stack *is* a batch of one -- so the sweep isolates what
batching buys: the ``T_syscall`` user/kernel mode switch is paid once
per batch instead of once per op, and fsyncs marked ``IOSQE_ASYNC``
resolve their CQEs at the persist point instead of blocking the
submitter inside the handler.

Expected shape:

- Throughput rises monotonically with depth on every stack (the op
  stream is identical; only entry charges and fsync blocking shrink),
  with HiNFS gaining visibly from 1 to 64.
- The gain is *bounded*: per-op work (``vfs_op_ns`` + fs + media time)
  dominates the amortized entry, so deep batches approach an asymptote
  rather than scaling with depth.
- The accounting is exact: with fsyncs disabled (no device-timeline
  coupling), the total syscall time at depth ``d`` differs from depth 1
  by precisely ``(batches_1 - batches_d) * T_syscall``.
"""

from repro.bench.report import Series, Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.fio import RingFioWorkload

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")
BATCH_DEPTHS = (1, 4, 8, 16, 32, 64)


def run(scale=SMALL, file_systems=FILE_SYSTEMS, batch_depths=BATCH_DEPTHS,
        threads=2, ops_per_thread=900, io_size=4096, file_size=1 << 20,
        fsync_every=16):
    config = scale.nvmm_config()
    hinfs_config = scale.hinfs_config()

    def one_run(fs_name, depth, fsync_pacing, nthreads, ops):
        workload = RingFioWorkload(
            batch_depth=depth,
            threads=nthreads,
            ops_per_thread=ops,
            io_size=io_size,
            file_size=file_size,
            fsync_every=fsync_pacing,
        )
        return run_workload(
            fs_name, workload,
            config=config,
            device_size=scale.device_size,
            hinfs_config=hinfs_config,
            cache_pages=scale.cache_pages,
        )

    table = Table(
        "Batched submission (fio mixed, %d B ops, fsync=%d, %d threads): "
        "ops/s at ring batch depth 1-64"
        % (io_size, fsync_every, threads),
        ["depth"] + list(file_systems),
    )
    per_fs = {fs: Series(fs) for fs in file_systems}
    counters = {fs: [] for fs in file_systems}
    for depth in batch_depths:
        row = [depth]
        for fs_name in file_systems:
            result = one_run(fs_name, depth, fsync_every, threads,
                             ops_per_thread)
            per_fs[fs_name].add(depth, result.throughput)
            counters[fs_name].append({
                "depth": depth,
                "ops": result.ops,
                "ring_batches": result.stats.count("ring_batches"),
                "ring_sqes": result.stats.count("ring_sqes"),
                "ring_cqes": result.stats.count("ring_cqes"),
                "syscall_entries": result.stats.count("vfs_syscall_entries"),
            })
            row.append(result.throughput)
        table.add_row(*row)

    # The exact-accounting sweep: single thread, no fsyncs, so the only
    # depth-dependent quantity in the whole run is how many times the
    # T_syscall entry was charged.
    accounting_table = Table(
        "Entry-charge accounting (hinfs, single thread, no fsync): "
        "total syscall ns vs ring batches",
        ["depth", "ring_batches", "syscall_time_ns"],
    )
    accounting = []
    for depth in batch_depths:
        result = one_run("hinfs", depth, 0, 1, ops_per_thread)
        total_syscall_ns = sum(result.stats.syscall_time_ns.values())
        accounting.append({
            "depth": depth,
            "ops": result.ops,
            "ring_batches": result.stats.count("ring_batches"),
            "ring_sqes": result.stats.count("ring_sqes"),
            "syscall_time_ns": total_syscall_ns,
            "throughput": result.throughput,
        })
        accounting_table.add_row(depth, accounting[-1]["ring_batches"],
                                 total_syscall_ns)

    data = {
        "throughput": per_fs,
        "counters": counters,
        "accounting": accounting,
        "syscall_ns": config.syscall_ns,
    }
    return [table, accounting_table], data


def check_shape(data):
    """The acceptance shape for the batched-submission layer."""
    per_fs = data["throughput"]
    hinfs = per_fs["hinfs"].ys()
    # Monotonically non-decreasing in depth, within queueing noise:
    # batching only removes entry charges and fsync blocking from an
    # identical op stream, but two threads' async flushes contend for
    # the NVMM writer slots at batch-boundary-dependent instants, which
    # wiggles elapsed time by a fraction of a percent.
    for shallow, deep in zip(hinfs, hinfs[1:]):
        assert deep >= 0.995 * shallow, hinfs
    # ... and the amortization is worth something visible end to end.
    assert hinfs[-1] > 1.02 * hinfs[0], hinfs
    # The uncontended sweep has no such coupling (single thread, no
    # fsyncs): there, deeper batches are strictly faster.
    uncontended = [row["throughput"] for row in data["accounting"]]
    for shallow, deep in zip(uncontended, uncontended[1:]):
        assert deep > shallow, uncontended
    # Identical op streams: every depth executed the same SQEs and
    # completed every one of them.
    for fs_name, rows in data["counters"].items():
        ops = {row["ops"] for row in rows}
        sqes = {row["ring_sqes"] for row in rows}
        assert len(ops) == 1 and len(sqes) == 1, (fs_name, rows)
        for row in rows:
            assert row["ring_cqes"] == row["ring_sqes"], (fs_name, row)
    # Exact entry accounting: depth d saves (batches_1 - batches_d)
    # T_syscall charges relative to depth 1, to the nanosecond.
    syscall_ns = data["syscall_ns"]
    base = data["accounting"][0]
    for row in data["accounting"][1:]:
        saved_batches = base["ring_batches"] - row["ring_batches"]
        saved_ns = base["syscall_time_ns"] - row["syscall_time_ns"]
        assert saved_ns == saved_batches * syscall_ns, (base, row, syscall_ns)


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

"""Figure 11: sensitivity to the NVMM write latency (single thread).

The write latency sweeps 50-800 ns.  Expected shape: the HiNFS-vs-PMFS
gap grows with the latency (the paper reports up to ~6x at 800 ns on
Webproxy), and even at DRAM-like 50 ns HiNFS performs no worse than
PMFS (the Benefit Model keeps the double copy off the path).
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL, personality_kwargs
from repro.engine.stats import percentiles
from repro.workloads.filebench import Fileserver, Webproxy

LATENCIES_NS = (50, 100, 200, 400, 800)


def run(scale=SMALL, latencies=LATENCIES_NS):
    table = Table(
        "Figure 11: throughput vs NVMM write latency (1 thread)",
        ["latency_ns",
         "fileserver_hinfs", "fileserver_pmfs",
         "webproxy_hinfs", "webproxy_pmfs"],
    )
    tail_table = Table(
        "Figure 11 companion: per-op p99 latency (us), exact nearest-rank",
        ["latency_ns",
         "fileserver_hinfs", "fileserver_pmfs",
         "webproxy_hinfs", "webproxy_pmfs"],
    )
    ratios = {"fileserver": {}, "webproxy": {}}
    tails = {"fileserver": {}, "webproxy": {}}
    classes = {"fileserver": Fileserver, "webproxy": Webproxy}
    for latency in latencies:
        config = scale.nvmm_config(nvmm_write_latency_ns=latency)
        row = [latency]
        tail_row = [latency]
        for name, cls in classes.items():
            per_fs = {}
            for fs_name in ("hinfs", "pmfs"):
                workload = cls(threads=1, duration_ops=100_000,
                               **personality_kwargs(scale, name))
                result = run_workload(
                    fs_name, workload,
                    config=config,
                    device_size=scale.device_size,
                    duration_ns=scale.duration_ns,
                    hinfs_config=scale.hinfs_config(),
                    record_latencies=True,
                )
                per_fs[fs_name] = result.throughput
                ps = percentiles(result.op_latencies_ns, (50, 99))
                tails[name].setdefault(fs_name, {})[latency] = ps
                tail_row.append("%.2f" % (ps[99] / 1e3))
            ratios[name][latency] = per_fs["hinfs"] / per_fs["pmfs"]
            row.extend([per_fs["hinfs"], per_fs["pmfs"]])
        table.add_row(*row)
        tail_table.add_row(*tail_row)
    return [table, tail_table], {"ratios": ratios, "latency_tails": tails}


def check_shape(data):
    ratios = data["ratios"]
    # The per-op tails come out of the exact nearest-rank helper and must
    # at least be ordered and positive for every cell.
    for name, by_fs in data["latency_tails"].items():
        for fs_name, by_latency in by_fs.items():
            for latency, ps in by_latency.items():
                assert 0 < ps[50] <= ps[99], (name, fs_name, latency, ps)
    for name, by_latency in ratios.items():
        latencies = sorted(by_latency)
        # HiNFS never loses, even at DRAM-like latency.
        assert by_latency[latencies[0]] >= 0.9, (name, by_latency)
        # The advantage grows with the latency.
        assert by_latency[latencies[-1]] > 1.5 * by_latency[latencies[0]], (
            name, by_latency
        )
        gaps = [by_latency[lat] for lat in latencies]
        assert gaps[-1] == max(gaps), (name, by_latency)


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

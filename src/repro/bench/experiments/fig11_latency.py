"""Figure 11: sensitivity to the NVMM write latency (single thread).

The write latency sweeps 50-800 ns.  Expected shape: the HiNFS-vs-PMFS
gap grows with the latency (the paper reports up to ~6x at 800 ns on
Webproxy), and even at DRAM-like 50 ns HiNFS performs no worse than
PMFS (the Benefit Model keeps the double copy off the path).
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL, personality_kwargs
from repro.workloads.filebench import Fileserver, Webproxy

LATENCIES_NS = (50, 100, 200, 400, 800)


def run(scale=SMALL, latencies=LATENCIES_NS):
    table = Table(
        "Figure 11: throughput vs NVMM write latency (1 thread)",
        ["latency_ns",
         "fileserver_hinfs", "fileserver_pmfs",
         "webproxy_hinfs", "webproxy_pmfs"],
    )
    ratios = {"fileserver": {}, "webproxy": {}}
    classes = {"fileserver": Fileserver, "webproxy": Webproxy}
    for latency in latencies:
        config = scale.nvmm_config(nvmm_write_latency_ns=latency)
        row = [latency]
        for name, cls in classes.items():
            per_fs = {}
            for fs_name in ("hinfs", "pmfs"):
                workload = cls(threads=1, duration_ops=100_000,
                               **personality_kwargs(scale, name))
                result = run_workload(
                    fs_name, workload,
                    config=config,
                    device_size=scale.device_size,
                    duration_ns=scale.duration_ns,
                    hinfs_config=scale.hinfs_config(),
                )
                per_fs[fs_name] = result.throughput
            ratios[name][latency] = per_fs["hinfs"] / per_fs["pmfs"]
            row.extend([per_fs["hinfs"], per_fs["pmfs"]])
        table.add_row(*row)
    return table, ratios


def check_shape(ratios):
    for name, by_latency in ratios.items():
        latencies = sorted(by_latency)
        # HiNFS never loses, even at DRAM-like latency.
        assert by_latency[latencies[0]] >= 0.9, (name, by_latency)
        # The advantage grows with the latency.
        assert by_latency[latencies[-1]] > 1.5 * by_latency[latencies[0]], (
            name, by_latency
        )
        gaps = [by_latency[lat] for lat in latencies]
        assert gaps[-1] == max(gaps), (name, by_latency)


if __name__ == "__main__":
    table, ratios = run()
    print(table)
    check_shape(ratios)

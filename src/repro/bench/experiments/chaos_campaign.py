"""Chaos campaign: seeded faults mid-workload, recovery proven per stack.

Every comparison stack runs the same seeded :class:`ChaosCampaign`
(:mod:`repro.faults.chaos`): rounds of writes with permanent media
faults, transient persist failures, and ring-level EIO injected between
oracle checkpoints; a torn-write power failure for the NVMM-native
stacks; then a forced degradation into ``degraded_ro`` that a scrub
pass must repair back to ``healthy``.

Expected shape:

- Zero unrecovered violations on every stack: each divergence from the
  reference model was *reported* (raised EIO or errseq) before it was
  observed.
- Every stack completes a full HEALTHY -> DEGRADED_RO -> HEALTHY cycle,
  so MTTR is defined, and ends the campaign healthy with a working
  write + fsync + read path.
- Scrub accounting balances: lines found bad are either repaired (a
  clean copy existed in DRAM or could be rebuilt from mirrors) or
  isolated with their block quarantined -- never silently dropped.
- The NVMMBD stacks repair more than they isolate (the page cache holds
  clean copies); the DAX stacks isolate more (no DRAM copy to heal
  from).
"""

from repro.bench.report import Table
from repro.bench.experiments.common import SMALL
from repro.faults.chaos import CHAOS_STACKS, TORN_CRASH_STACKS, run_campaign

FILE_SYSTEMS = CHAOS_STACKS


def run(scale=SMALL, file_systems=FILE_SYSTEMS, seed=0, rounds=2):
    config = scale.nvmm_config()

    table = Table(
        "Chaos campaign (seed %d, %d rounds): faults injected, recovery "
        "outcome, and MTTR per stack" % (seed, rounds),
        ["fs", "bad_lines", "repaired", "isolated", "ring_retries",
         "mttr_ns", "final_state", "violations"],
    )
    results = {}
    for fs_name in file_systems:
        result = run_campaign(fs_name, seed=seed, config=config,
                              rounds=rounds)
        results[fs_name] = result
        stats = result["stats"]
        table.add_row(
            fs_name,
            result["bad_lines_found"],
            result["repaired_lines"],
            result["isolated_lines"],
            stats["ring_sqe_retries"],
            result["mttr_ns"],
            result["final_state"],
            len(result["violations"]),
        )

    data = {"seed": seed, "results": results}
    return [table], data


def check_shape(data):
    """The acceptance shape for the recovery story."""
    results = data["results"]
    for fs_name, result in results.items():
        # The whole point: no silent divergence anywhere, ever.
        assert result["violations"] == [], (fs_name, result["violations"])
        # Every stack ends the campaign healthy and writable again ...
        assert result["final_state"] == "healthy", (fs_name, result)
        # ... after a full degradation/recovery cycle, so MTTR is defined.
        assert result["mttr_ns"] is not None and result["mttr_ns"] > 0, \
            (fs_name, result["mttr_ns"])
        states = [(frm, to) for frm, to, _at, _why in
                  result["health_history"]]
        assert ("healthy", "degraded_ro") in states, (fs_name, states)
        assert ("degraded_ro", "healthy") in states, (fs_name, states)
        # Scrub accounting: every bad line the scrubber found was either
        # repaired or isolated (never silently dropped), every injected
        # permanent fault was found, and isolation always quarantined
        # the containing block.
        stats = result["stats"]
        found = result["bad_lines_found"]
        handled = result["repaired_lines"] + result["isolated_lines"]
        assert handled == found, (fs_name, found, handled)
        assert found >= len(result["fault_lines"]), (fs_name, result)
        if result["isolated_lines"]:
            assert result["quarantined_blocks"], (fs_name, result)
        # Faults were actually injected on every leg, and the retry
        # policies absorbed the transient ones.
        assert result["fault_lines"], fs_name
        assert result["transient_lines"], fs_name
        assert stats["media_retries"] > 0, (fs_name, stats)
        assert stats["ring_fault_injections"] > 0, (fs_name, stats)
        assert stats["ring_sqe_retry_successes"] > 0, (fs_name, stats)
    # The torn-write leg ran (and recovered) on the NVMM-native stacks.
    for fs_name in TORN_CRASH_STACKS:
        if fs_name in results:
            torn = results[fs_name]["torn"]
            assert torn is not None and torn["words"], (fs_name, torn)


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

"""Thread scalability: fio read/write mixes at 1-16 threads.

The concurrency-model companion to Figure 8: instead of filebench
personalities this sweeps disjoint-file fio (each thread owns its file,
so per-inode VFS locks never contend) with fsync pacing (fio's
``fsync=32``), and measures how far each file system scales before a
shared bottleneck caps it.

Expected shape (the paper's Figs. 8-11 argument):

- HiNFS rises monotonically from 1 to 4 threads -- buffered writes cost
  DRAM time only, and each thread's fsync flushes drain through the
  ``N_w`` NVMM writer slots independently -- then plateaus once the
  aggregate persistent traffic saturates the slots (``N_w`` = 3 at the
  default 1 GB/s emulated write bandwidth, so the knee sits near 4
  threads).
- PMFS/EXT4-DAX pay NVMM latency on every write in the foreground, so
  they track slightly below HiNFS and hit the same writer-slot ceiling.
- The NVMMBD stacks sit far below the rest and stop scaling at the
  block layer; at high thread counts HiNFS is multiples ahead.

The sweep keeps the *aggregate* op count constant across thread counts
so every point does the same total work; fsync pacing keeps persistent
traffic flowing (an unsynced burst that fits in the DRAM buffer would
scale linearly forever and say nothing about the shared bottlenecks).
"""

from repro.bench.report import Series, Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.engine.stats import percentiles
from repro.workloads.fio import FioWorkload

FILE_SYSTEMS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")
THREAD_COUNTS = (1, 2, 4, 8, 16)
#: (label, read_fraction): the disjoint-file write sweep the acceptance
#: shape is asserted on, plus the paper's 1:2 read:write mix.
MIXES = (("write", 0.0), ("mixed", 1 / 3))


def run(scale=SMALL, file_systems=FILE_SYSTEMS, thread_counts=THREAD_COUNTS,
        mixes=MIXES, aggregate_ops=2400, io_size=4096, file_size=1 << 20,
        fsync_every=32, nr_writeback_workers=4):
    config = scale.nvmm_config()
    hinfs_config = scale.hinfs_config(
        nr_writeback_workers=nr_writeback_workers
    )
    tables = []
    mixes_data = {}
    latency_tails = {}
    for mix_name, read_fraction in mixes:
        table = Table(
            "Thread scalability (fio %s, %d B ops, fsync=%d): "
            "ops/s for 1-16 threads"
            % (mix_name, io_size, fsync_every),
            ["threads"] + list(file_systems),
        )
        per_fs = {fs: Series(fs) for fs in file_systems}
        tails = latency_tails.setdefault(mix_name, {})
        for threads in thread_counts:
            row = [threads]
            for fs_name in file_systems:
                workload = FioWorkload(
                    threads=threads,
                    ops_per_thread=max(96, aggregate_ops // threads),
                    io_size=io_size,
                    file_size=file_size,
                    read_fraction=read_fraction,
                    fsync_every=fsync_every,
                )
                result = run_workload(
                    fs_name, workload,
                    config=config,
                    device_size=scale.device_size,
                    hinfs_config=hinfs_config,
                    cache_pages=scale.cache_pages,
                    record_latencies=True,
                )
                per_fs[fs_name].add(threads, result.throughput)
                # Exact nearest-rank per-op tails alongside the
                # throughput curve -- the same queueing knee from the
                # latency side.
                tails.setdefault(fs_name, {})[threads] = percentiles(
                    result.op_latencies_ns, (50, 99))
                row.append(result.throughput)
            table.add_row(*row)
        tables.append(table)
        mixes_data[mix_name] = per_fs
    return tables, {"mixes": mixes_data, "latency_tails": latency_tails}


def check_shape(data):
    """The acceptance shape for the concurrency layer."""
    for mix_name, tails in data["latency_tails"].items():
        for fs_name, by_threads in tails.items():
            for threads, ps in by_threads.items():
                assert 0 < ps[50] <= ps[99], (mix_name, fs_name, threads, ps)
    for mix_name, per_fs in data["mixes"].items():
        hinfs = per_fs["hinfs"].ys()
        # Monotonic rise from 1 to 4 threads on disjoint files: per-inode
        # locking means independent threads only share N_w and DRAM.
        assert hinfs[0] < hinfs[1] < hinfs[2], (mix_name, hinfs)
        # Plateau near writer-slot saturation: past the knee, doubling
        # the thread count buys well under 2x.
        assert hinfs[-1] <= 1.4 * hinfs[-2], (mix_name, hinfs)
        # ... and the plateau holds rather than collapsing.
        assert hinfs[-1] >= 0.6 * max(hinfs), (mix_name, hinfs)
        # HiNFS stays level with or ahead of PMFS everywhere.
        pmfs = per_fs["pmfs"].ys()
        for h, p in zip(hinfs, pmfs):
            assert h >= 0.9 * p, (mix_name, hinfs, pmfs)
        # The block-layer stacks fall behind: at 16 threads HiNFS is
        # well ahead of ext2 over the NVMM block device and multiples
        # ahead of journaling ext4 (whose jbd2 serialisation makes it
        # *lose* throughput past 8 threads).
        for blockfs, margin in (("ext2-nvmmbd", 1.5), ("ext4-nvmmbd", 2.0)):
            if blockfs not in per_fs:
                continue
            assert hinfs[-1] >= margin * per_fs[blockfs].ys()[-1], (
                mix_name, hinfs, per_fs[blockfs].ys(),
            )


if __name__ == "__main__":
    tables, data = run()
    for table in tables:
        print(table)
        print()
    check_shape(data)

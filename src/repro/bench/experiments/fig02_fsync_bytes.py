"""Figure 2: percentage of fsync bytes across workloads.

The paper instruments each workload and reports how much of the written
data is covered by an fsync: TPC-C is over 90 % fsynced, LASR not at
all, the desktop traces and Varmail sit in between.  We run each
workload on PMFS with the VFS's fsync-byte accounting enabled.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.filebench import Varmail
from repro.workloads.macro import TPCC
from repro.workloads.traces import (
    SYNTHESIZERS,
    TraceReplayWorkload,
)


def _workloads(scale):
    for name, synth in sorted(SYNTHESIZERS.items()):
        yield name, TraceReplayWorkload(synth(ops=scale.trace_ops))
    yield "tpcc", TPCC(transactions=min(400, scale.trace_ops // 4))
    yield "varmail", Varmail(files_per_thread=40, duration_ops=150)


def run(scale=SMALL):
    table = Table(
        "Figure 2: percentage of written bytes covered by fsync",
        ["workload", "written_MB", "fsync_bytes_%"],
    )
    fractions = {}
    for name, workload in _workloads(scale):
        result = run_workload("pmfs", workload,
                              device_size=scale.device_size)
        fractions[name] = result.fsync_byte_fraction
        table.add_row(name,
                      result.stats.count("app_bytes_written") / 1e6,
                      100 * result.fsync_byte_fraction)
    return table, fractions


def check_shape(fractions):
    """The paper's Figure 2 claims."""
    assert fractions["tpcc"] > 0.90, fractions
    assert fractions["lasr"] == 0.0, fractions
    assert fractions["facebook"] > 0.6, fractions
    assert 0.2 < fractions["usr0"] < 0.8, fractions
    assert 0.2 < fractions["usr1"] < 0.8, fractions
    assert fractions["varmail"] > 0.3, fractions


if __name__ == "__main__":
    table, fractions = run()
    print(table)
    check_shape(fractions)

"""Figure 6: accuracy of the Buffer Benefit Model.

The paper measures, over the workloads that contain synchronization
operations, how often a block's Inequality (1) outcome at one sync
matches the outcome at its previous sync -- close to 90 % even in the
worst case (Usr0), which is what justifies predicting from the most
recent synchronization information.
"""

from repro.bench.report import Table
from repro.bench.runner import run_workload
from repro.bench.experiments.common import SMALL
from repro.workloads.filebench import Varmail
from repro.workloads.macro import TPCC
from repro.workloads.traces import SYNTHESIZERS, TraceReplayWorkload


def _sync_workloads(scale):
    for name in ("usr0", "usr1", "facebook"):
        yield name, TraceReplayWorkload(SYNTHESIZERS[name](ops=scale.trace_ops))
    yield "tpcc", TPCC(transactions=min(400, scale.trace_ops // 4))
    yield "varmail", Varmail(files_per_thread=40, duration_ops=150)


def run(scale=SMALL):
    table = Table(
        "Figure 6: Buffer Benefit Model prediction accuracy",
        ["workload", "predictions", "accuracy_%"],
    )
    accuracy = {}
    for name, workload in _sync_workloads(scale):
        result = run_workload("hinfs", workload,
                              device_size=scale.device_size,
                              hinfs_config=scale.hinfs_config())
        model = result.fs.benefit
        accuracy[name] = model.accuracy
        table.add_row(name, model.predictions,
                      100 * (model.accuracy or 0.0))
    return table, accuracy


def check_shape(accuracy):
    """The paper: accuracy close to 90 % even in the worst case (Usr0).

    Our synthetic usr traces put more blocks right at the Inequality-(1)
    decision boundary (two same-interval writes that may or may not share
    a cacheline) than the real FIU traces do, so their repeat-consistency
    lands at ~0.70-0.76 instead of ~0.90; the sync-dominated workloads
    (tpcc/varmail/facebook) reproduce the paper's level.  See
    EXPERIMENTS.md.
    """
    for name, value in accuracy.items():
        assert value is not None, "no repeated syncs for %s" % name
        assert value >= 0.65, "accuracy for %s too low: %.2f" % (name, value)
    assert max(accuracy.values()) >= 0.95
    assert accuracy["tpcc"] >= 0.80


if __name__ == "__main__":
    table, accuracy = run()
    print(table)
    check_shape(accuracy)

"""Plain-text tables and series for the experiment reports."""


class Table:
    """A titled, aligned text table."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add_row(self, *values):
        if len(values) != len(self.columns):
            raise ValueError(
                "row has %d values, table has %d columns"
                % (len(values), len(self.columns))
            )
        self.rows.append([_fmt(v) for v in values])

    def format(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.ljust(widths[i])
                               for i, c in enumerate(self.columns)))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def column(self, name):
        """All values of one column (as the formatted strings)."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __str__(self):
        return self.format()


class Series:
    """A named x->y series (one line of a paper figure)."""

    def __init__(self, name):
        self.name = name
        self.points = []

    def add(self, x, y):
        self.points.append((x, y))

    def ys(self):
        return [y for _, y in self.points]

    def xs(self):
        return [x for x, _ in self.points]

    def __repr__(self):
        return "Series(%r, %r)" % (self.name, self.points)


def _fmt(value):
    if isinstance(value, float):
        if value >= 100:
            return "%.0f" % value
        if value >= 1:
            return "%.2f" % value
        return "%.3f" % value
    return str(value)


def normalise(values, baseline):
    """Divide every value by ``baseline`` (paper figures normalise to
    PMFS)."""
    if baseline == 0:
        return [0.0 for _ in values]
    return [v / baseline for v in values]

"""Experiment registry: figure id -> (run, check_shape)."""

from repro.bench.experiments import (
    ablation_policies,
    ablation_watermarks,
    chaos_campaign,
    fig01_breakdown,
    fig02_fsync_bytes,
    fig06_model_accuracy,
    fig07_overall,
    fig08_scalability,
    fig09_iosize,
    fig10_buffersize,
    fig11_latency,
    fig12_traces,
    fig13_macro,
    mmap_threeway,
    ring_batch,
    scale_threads,
    shard_scaling,
    simspeed,
    tenants_overload,
)

EXPERIMENTS = {
    "fig1": fig01_breakdown,
    "fig2": fig02_fsync_bytes,
    "fig6": fig06_model_accuracy,
    "fig7": fig07_overall,
    "fig8": fig08_scalability,
    "fig9": fig09_iosize,
    "fig10": fig10_buffersize,
    "fig11": fig11_latency,
    "fig12": fig12_traces,
    "fig13": fig13_macro,
    # Extensions: ablations of design choices the paper fixes or defers,
    # and the concurrency layer's thread-scalability sweep.
    "abl-policy": ablation_policies,
    "abl-watermark": ablation_watermarks,
    "scale": scale_threads,
    "ring": ring_batch,
    "mmap": mmap_threeway,
    "chaos": chaos_campaign,
    "simspeed": simspeed,
    "tenants": tenants_overload,
    "shard": shard_scaling,
}


def run_experiment(name, scale=None, check=True):
    """Run one experiment; returns (tables, data).  Raises AssertionError
    if ``check`` and the paper's shape does not hold."""
    module = EXPERIMENTS[name]
    if scale is None:
        tables, data = module.run()
    else:
        tables, data = module.run(scale=scale)
    if not isinstance(tables, (list, tuple)):
        tables = [tables]
    if check:
        module.check_shape(data)
    return tables, data

"""Figure 1 benchmark: fio time breakdown on PMFS (read/write/others shares).

Regenerates the paper's fig1 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig1(figure):
    figure("fig1")

"""Figure 8 benchmark: throughput scalability for 1-10 threads.

Regenerates the paper's fig8 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig8(figure):
    figure("fig8")

"""Figure 10 benchmark: DRAM buffer-size sensitivity (fileserver vs webproxy).

Regenerates the paper's fig10 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig10(figure):
    figure("fig10")

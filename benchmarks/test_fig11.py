"""Figure 11 benchmark: NVMM write-latency sensitivity (50-800 ns).

Regenerates the paper's fig11 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig11(figure):
    figure("fig11")

"""Figure 2 benchmark: percentage of written bytes covered by fsync per workload.

Regenerates the paper's fig2 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig2(figure):
    figure("fig2")

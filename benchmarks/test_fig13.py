"""Figure 13 benchmark: macrobenchmark elapsed time (postmark/tpcc/kernel).

Regenerates the paper's fig13 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig13(figure):
    figure("fig13")

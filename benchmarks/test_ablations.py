"""Extension benchmarks: ablations of design choices the paper fixes.

- ``abl-policy``: the buffer replacement policies the paper defers to
  future work (LRW vs LFU vs ARC vs 2Q).
- ``abl-watermark``: the Low_f/High_f writeback watermarks (Section 3.2
  fixes 5 %/20 %; this sweeps lazier and more eager settings).
"""


def test_ablation_replacement_policy(figure):
    figure("abl-policy")


def test_ablation_watermarks(figure):
    figure("abl-watermark")

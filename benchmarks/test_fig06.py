"""Figure 6 benchmark: Buffer Benefit Model prediction accuracy.

Regenerates the paper's fig6 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig6(figure):
    figure("fig6")

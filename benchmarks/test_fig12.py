"""Figure 12 benchmark: trace-replay time breakdown (usr0/usr1/lasr/facebook).

Regenerates the paper's fig12 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig12(figure):
    figure("fig12")

"""Figure 7 benchmark: overall filebench throughput normalised to PMFS.

Regenerates the paper's fig7 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig7(figure):
    figure("fig7")

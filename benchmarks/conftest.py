"""Benchmark-suite configuration.

Each ``test_figNN`` benchmark regenerates one of the paper's figures at
the ``small`` scale, prints the resulting table(s), and asserts the
paper's qualitative shape (who wins, by roughly what factor, where the
crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.bench.registry import run_experiment


@pytest.fixture
def figure(benchmark, capsys):
    """Run one experiment exactly once under pytest-benchmark timing."""

    def _run(name):
        tables, data = benchmark.pedantic(
            lambda: run_experiment(name, check=True),
            iterations=1,
            rounds=1,
        )
        with capsys.disabled():
            print()
            for table in tables:
                print(table)
                print()
        return data

    return _run

"""Figure 9 benchmark: I/O-size sensitivity and the CLFW ablation.

Regenerates the paper's fig9 rows/series and asserts the expected
shape.  See src/repro/bench/experiments/ for the experiment definition.
"""


def test_fig9(figure):
    figure("fig9")

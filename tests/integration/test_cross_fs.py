"""Cross-file-system equivalence: every stack must agree on the data.

The same randomly generated operation sequence is applied to all seven
file-system configurations; the observable state (file contents, sizes,
directory listings) must be identical, because the data plane is real
on every one of them.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import FS_NAMES, build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.nvmm.config import NVMMConfig
from repro.workloads.base import payload


def build(fs_name):
    env = SimEnv()
    fs, vfs = build_stack(env, fs_name, NVMMConfig(), 48 << 20)
    return env, vfs, ExecContext(env, "t")


def apply_ops(vfs, ctx, ops):
    """Apply an op script; returns a list of observable results."""
    observations = []
    for op in ops:
        kind = op[0]
        if kind == "write":
            _, path, offset, data = op
            fd = vfs.open(ctx, path, f.O_CREAT | f.O_RDWR)
            vfs.pwrite(ctx, fd, offset, data)
            vfs.close(ctx, fd)
        elif kind == "read":
            _, path, offset, count = op
            if vfs.exists(ctx, path):
                fd = vfs.open(ctx, path, f.O_RDONLY)
                observations.append(vfs.pread(ctx, fd, offset, count))
                vfs.close(ctx, fd)
            else:
                observations.append(None)
        elif kind == "fsync":
            _, path = op
            if vfs.exists(ctx, path):
                fd = vfs.open(ctx, path, f.O_RDWR)
                vfs.fsync(ctx, fd)
                vfs.close(ctx, fd)
        elif kind == "unlink":
            _, path = op
            if vfs.exists(ctx, path):
                vfs.unlink(ctx, path)
        elif kind == "truncate":
            _, path, size = op
            if vfs.exists(ctx, path):
                vfs.truncate(ctx, path, size)
        elif kind == "stat":
            _, path = op
            if vfs.exists(ctx, path):
                observations.append(vfs.stat(ctx, path).size)
            else:
                observations.append(None)
    listing = sorted(name for name, _ in vfs.readdir(ctx, "/"))
    observations.append(listing)
    return observations


def random_ops(seed, count=60):
    rng = random.Random(seed)
    paths = ["/f%d" % i for i in range(6)]
    ops = []
    for _ in range(count):
        path = rng.choice(paths)
        roll = rng.random()
        if roll < 0.40:
            offset = rng.randrange(0, 20_000)
            ops.append(("write", path, offset,
                        payload(rng.randrange(1, 6000), rng.randrange(50))))
        elif roll < 0.65:
            ops.append(("read", path, rng.randrange(0, 25_000),
                        rng.randrange(1, 8000)))
        elif roll < 0.75:
            ops.append(("fsync", path))
        elif roll < 0.85:
            ops.append(("stat", path))
        elif roll < 0.93:
            ops.append(("truncate", path, rng.randrange(0, 15_000)))
        else:
            ops.append(("unlink", path))
    return ops


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_all_file_systems_agree(seed):
    ops = random_ops(seed)
    reference = None
    for fs_name in FS_NAMES:
        env, vfs, ctx = build(fs_name)
        observed = apply_ops(vfs, ctx, ops)
        if reference is None:
            reference = (fs_name, observed)
        else:
            assert observed == reference[1], (
                "%s disagrees with %s on seed %d"
                % (fs_name, reference[0], seed)
            )


@pytest.mark.parametrize("fs_name", FS_NAMES)
def test_unmount_remount_hinfs_pmfs_preserve_data(fs_name):
    if fs_name.startswith("ext"):
        pytest.skip("baseline models do not implement persistent remount")
    env, vfs, ctx = build(fs_name)
    ops = random_ops(99, count=40)
    before = apply_ops(vfs, ctx, ops)
    vfs.unmount(ctx)
    fs2 = type(vfs.fs).mount(env, vfs.fs.device, vfs.config)
    from repro.fs.vfs import VFS

    vfs2 = VFS(env, fs2, vfs.config)
    # Re-reading everything must match the pre-unmount observations'
    # final state: compare full contents of surviving files.
    for name, _ in vfs2.readdir(ctx, "/"):
        assert vfs2.read_file(ctx, "/" + name) == vfs.read_file(ctx, "/" + name)
    assert sorted(n for n, _ in vfs2.readdir(ctx, "/")) == before[-1]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_hinfs_always_matches_pmfs(seed):
    """Property: HiNFS's buffered/merged read path is indistinguishable
    from PMFS's direct path for any op sequence."""
    ops = random_ops(seed, count=40)
    _, vfs_a, ctx_a = build("pmfs")
    _, vfs_b, ctx_b = build("hinfs")
    assert apply_ops(vfs_a, ctx_a, ops) == apply_ops(vfs_b, ctx_b, ops)

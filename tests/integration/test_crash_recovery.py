"""Property-based crash-recovery testing for PMFS and HiNFS.

For random operation sequences, random crash points, and random subsets
of CPU-cache lines that happened to be evicted before the crash, mount
must always succeed and produce a file system where:

1. everything fsynced (or written O_SYNC) before the crash is intact;
2. every file is readable and its size matches its readable content
   (ordered mode: metadata never points past real data);
3. a second crash+mount is also clean (recovery is idempotent-ish).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HiNFS, HiNFSConfig
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults.crashpoints import CrashPointExplorer
from repro.fs import flags as f
from repro.fs.pmfs import PMFS
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice
from repro.workloads.base import payload

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["write", "sync_write", "fsync", "unlink", "truncate"]),
        st.integers(min_value=0, max_value=3),  # file id
        st.integers(min_value=0, max_value=12_000),  # offset / size
        st.integers(min_value=1, max_value=5_000),  # length
    ),
    min_size=1,
    max_size=25,
)


def build(fs_kind):
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, 32 << 20)
    if fs_kind == "hinfs":
        fs = HiNFS(env, device, config,
                   hconfig=HiNFSConfig(buffer_bytes=1 << 20))
    else:
        fs = PMFS(env, device, config)
    return env, config, device, fs, VFS(env, fs, config), ExecContext(env, "t")


def run_ops(vfs, ctx, ops):
    """Apply ops; returns {path: contents} for data known durable."""
    durable = {}
    staged = {}
    for kind, file_id, offset, length in ops:
        path = "/f%d" % file_id
        if kind in ("write", "sync_write"):
            flags = f.O_CREAT | f.O_RDWR
            if kind == "sync_write":
                flags |= f.O_SYNC
            fd = vfs.open(ctx, path, flags)
            vfs.pwrite(ctx, fd, offset, payload(length, file_id))
            vfs.close(ctx, fd)
            staged[path] = True
            if kind == "sync_write":
                durable[path] = vfs.read_file(ctx, path)
        elif kind == "fsync":
            if vfs.exists(ctx, path):
                fd = vfs.open(ctx, path, f.O_RDWR)
                vfs.fsync(ctx, fd)
                vfs.close(ctx, fd)
                durable[path] = vfs.read_file(ctx, path)
        elif kind == "unlink":
            if vfs.exists(ctx, path):
                vfs.unlink(ctx, path)
            durable.pop(path, None)
            staged.pop(path, None)
        elif kind == "truncate":
            if vfs.exists(ctx, path):
                vfs.truncate(ctx, path, offset)
                if path in durable:
                    # Durability of the truncation itself is not promised
                    # without another fsync; drop the expectation.
                    durable.pop(path)
    # O_SYNC writes are durable but later lazy writes may extend them;
    # only full-file fsync snapshots are asserted exactly.
    return durable


@pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
@settings(max_examples=25, deadline=None)
@given(ops=op_strategy, data=st.data())
def test_crash_recovery_invariants(fs_kind, ops, data):
    env, config, device, fs, vfs, ctx = build(fs_kind)
    durable = run_ops(vfs, ctx, ops)
    # Crash, possibly with an arbitrary subset of cache lines evicted.
    dirty = device.mem.dirty_line_indices()
    if dirty:
        sample = data.draw(st.sets(st.sampled_from(dirty), max_size=64))
    else:
        sample = set()
    device.crash(evict_lines=sample)

    fs_cls = HiNFS if fs_kind == "hinfs" else PMFS
    from repro.engine.background import BackgroundRegistry

    env.background = BackgroundRegistry()
    recovered = fs_cls.mount(env, device, config)
    vfs2 = VFS(env, recovered, config)

    # (1) fsynced snapshots survive as prefixes of the recovered file
    #     (later lazy writes may or may not have reached NVMM, but an
    #     fsynced byte can never be lost).
    for path, snapshot in durable.items():
        assert vfs2.exists(ctx, path), "%s lost after crash" % path
        recovered_data = vfs2.read_file(ctx, path)
        assert len(recovered_data) >= len(snapshot)

    # (2) every surviving file is fully readable at its claimed size.
    for name, _ in vfs2.readdir(ctx, "/"):
        st_result = vfs2.stat(ctx, "/" + name)
        contents = vfs2.read_file(ctx, "/" + name)
        assert len(contents) == st_result.size

    # (3) a second crash + mount is clean too.
    device.crash()
    env.background = BackgroundRegistry()
    again = fs_cls.mount(env, device, config)
    vfs3 = VFS(env, again, config)
    for path in durable:
        assert vfs3.exists(ctx, path)


@st.composite
def explorer_op_sequences(draw):
    """Valid create/append/rename/unlink sequences for the explorer."""
    paths = ["/p0", "/p1", "/p2", "/p3"]
    existing = []
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kinds = ["create", "append"]
        if existing:
            kinds += ["rename", "unlink"]
        kind = draw(st.sampled_from(kinds))
        if kind == "create":
            path = draw(st.sampled_from(paths))
            ops.append(("create", path))
            if path not in existing:
                existing.append(path)
        elif kind == "append":
            path = draw(st.sampled_from(paths))
            length = draw(st.integers(min_value=1, max_value=3000))
            ops.append(("append", path, length))
            if path not in existing:
                existing.append(path)
        elif kind == "unlink":
            path = draw(st.sampled_from(existing))
            ops.append(("unlink", path))
            existing.remove(path)
        else:  # rename; the target may exist (replace-by-rename)
            old = draw(st.sampled_from(existing))
            new = draw(st.sampled_from([p for p in paths if p != old]))
            ops.append(("rename", old, new))
            existing.remove(old)
            if new not in existing:
                existing.append(new)
    return ops


@pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
@settings(max_examples=6, deadline=None)
@given(ops=explorer_op_sequences())
def test_explorer_holds_on_random_sequences(fs_kind, ops):
    """Every crash state of a random valid sequence recovers consistently."""
    report = CrashPointExplorer(fs_kind, seed=0,
                                eviction_samples_per_op=4).explore(ops)
    report.raise_if_failed()
    assert report.states_checked > 0

"""Bit-for-bit run determinism: same seed, same everything.

The whole simulation is a deterministic function of (workload seed,
configuration): two runs must produce identical statistics and an
identical trace spine -- including with parallel writeback workers,
whose partitioning and stealing decisions must not depend on iteration
order of any unordered container.  This is the regression fence for
"someone iterated a set".
"""

import pytest

from repro.bench.runner import run_workload
from repro.core import HiNFSConfig
from repro.workloads.fio import FioWorkload, RingFioWorkload


def fingerprint(result):
    """Everything observable from one run, as comparable values."""
    stats = result.stats
    spans = tuple(
        (sp.req_id, sp.name, sp.layer, sp.thread, sp.start_ns, sp.end_ns,
         tuple(sp.phases), repr(sp.meta))
        for sp in result.trace.spans()
    )
    return {
        "ops": result.ops,
        "elapsed_ns": result.elapsed_ns,
        "counters": dict(stats.counters),
        "bytes_nvmm_w": stats.bytes_written_nvmm,
        "bytes_nvmm_r": stats.bytes_read_nvmm,
        "bytes_dram_w": stats.bytes_written_dram,
        "syscall_time_ns": dict(stats.syscall_time_ns),
        "syscall_counts": dict(stats.syscall_counts),
        "layer_time_ns": dict(stats.layer_time_ns),
        "spans": spans,
    }


def one_run(fs_name, workers, seed=7):
    workload = FioWorkload(threads=4, ops_per_thread=60, io_size=4096,
                           file_size=256 << 10, read_fraction=1 / 3,
                           fsync_every=16, seed=seed)
    hc = HiNFSConfig(buffer_bytes=2 << 20, nr_writeback_workers=workers)
    result = run_workload(fs_name, workload, device_size=32 << 20,
                          hinfs_config=hc, trace_capacity=1 << 14)
    return fingerprint(result)


@pytest.mark.parametrize("workers", [1, 4])
def test_hinfs_runs_are_identical(workers):
    a = one_run("hinfs", workers)
    b = one_run("hinfs", workers)
    for key in a:
        assert a[key] == b[key], "mismatch in %s" % key


def test_different_seeds_differ():
    """The fingerprint is sensitive enough to catch a changed run."""
    a = one_run("hinfs", 4, seed=7)
    b = one_run("hinfs", 4, seed=8)
    assert a["spans"] != b["spans"]


@pytest.mark.parametrize("fs_name", ["pmfs", "ext4-dax", "ext2-nvmmbd"])
def test_other_stacks_are_deterministic_too(fs_name):
    a = one_run(fs_name, 1)
    b = one_run(fs_name, 1)
    for key in a:
        assert a[key] == b[key], "mismatch in %s" % key


def one_ring_run(batch_depth, seed=7):
    workload = RingFioWorkload(batch_depth=batch_depth, threads=4,
                               ops_per_thread=60, io_size=4096,
                               file_size=256 << 10, read_fraction=1 / 3,
                               fsync_every=16, seed=seed)
    hc = HiNFSConfig(buffer_bytes=2 << 20, nr_writeback_workers=4)
    result = run_workload("hinfs", workload, device_size=32 << 20,
                          hinfs_config=hc, trace_capacity=1 << 14)
    return fingerprint(result)


@pytest.mark.parametrize("batch_depth", [1, 8])
def test_ring_batched_runs_are_identical(batch_depth):
    """Batched submission through the ring -- including its async fsync
    completions -- is as deterministic as the sync path."""
    a = one_ring_run(batch_depth)
    b = one_ring_run(batch_depth)
    for key in a:
        assert a[key] == b[key], "mismatch in %s" % key


def test_ring_depths_produce_the_same_data_plane():
    """Depth changes *when* T_syscall is paid, not what I/O happens: the
    op mix and NVMM traffic match across depths; only timing shifts."""
    a = one_ring_run(1)
    b = one_ring_run(8)
    assert a["ops"] == b["ops"]
    assert a["bytes_nvmm_w"] == b["bytes_nvmm_w"]
    assert a["counters"]["ring_sqes"] == b["counters"]["ring_sqes"]
    assert a["counters"]["ring_batches"] > b["counters"]["ring_batches"]

"""Multi-threaded simulation: correctness under contention.

Several simulated threads hammer one HiNFS instance through the
scheduler (so the background writeback timeline interleaves with them);
afterwards every byte must be exactly what the per-thread generators
wrote, and an unmount + crash + remount must preserve it all.
"""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.engine.background import BackgroundRegistry
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.engine.scheduler import Scheduler
from repro.fs import flags as f
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice
from repro.workloads.base import payload


def build(buffer_bytes=1 << 20):
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, 64 << 20)
    fs = HiNFS(env, device, config,
               hconfig=HiNFSConfig(buffer_bytes=buffer_bytes))
    return env, config, device, fs, VFS(env, fs, config)


def writer_body(vfs, tid, rounds, chunk):
    def body(ctx):
        fd = vfs.open(ctx, "/thread%d" % tid, f.O_CREAT | f.O_RDWR)
        for i in range(rounds):
            vfs.pwrite(ctx, fd, i * chunk, payload(chunk, tid * 7 + i))
            yield
        vfs.close(ctx, fd)

    return body


@pytest.mark.parametrize("threads", [2, 4, 8])
def test_concurrent_writers_data_integrity(threads):
    env, config, device, fs, vfs = build()
    scheduler = Scheduler(env)
    rounds, chunk = 40, 3000
    for tid in range(threads):
        scheduler.spawn("w%d" % tid, writer_body(vfs, tid, rounds, chunk))
    scheduler.run()
    ctx = ExecContext(env, "verify", start_ns=scheduler.elapsed_ns())
    for tid in range(threads):
        data = vfs.read_file(ctx, "/thread%d" % tid)
        assert len(data) == rounds * chunk
        for i in range(rounds):
            expected = payload(chunk, tid * 7 + i)
            assert data[i * chunk:(i + 1) * chunk] == expected, (tid, i)


def test_contention_extends_makespan():
    """More writers on the same NVMM writer slots take longer per op."""
    def run(threads):
        env, config, device, fs, vfs = build(buffer_bytes=256 << 10)
        scheduler = Scheduler(env)
        for tid in range(threads):
            scheduler.spawn("w%d" % tid, writer_body(vfs, tid, 64, 4096))
        return scheduler.run()

    alone = run(1)
    crowd = run(8)
    # 8x the work through a 3-slot device cannot finish in 1x the time.
    assert crowd > 1.5 * alone


def test_crash_after_multithreaded_run_recovers():
    env, config, device, fs, vfs = build()
    scheduler = Scheduler(env)
    for tid in range(4):
        scheduler.spawn("w%d" % tid, writer_body(vfs, tid, 20, 2048))
    scheduler.run()
    ctx = ExecContext(env, "sync", start_ns=scheduler.elapsed_ns())
    vfs.unmount(ctx)
    device.crash()
    env.background = BackgroundRegistry()
    recovered = HiNFS.mount(env, device, config)
    vfs2 = VFS(env, recovered, config)
    for tid in range(4):
        data = vfs2.read_file(ctx, "/thread%d" % tid)
        assert len(data) == 20 * 2048
        assert data[:2048] == payload(2048, tid * 7)


def test_background_writeback_runs_between_thread_steps():
    env, config, device, fs, vfs = build(buffer_bytes=256 << 10)
    scheduler = Scheduler(env)
    for tid in range(4):
        scheduler.spawn("w%d" % tid, writer_body(vfs, tid, 60, 4096))
    scheduler.run()
    # The tight buffer forces pressure reclaim through the background
    # timeline (not only demand stalls).
    assert env.stats.count("writeback_pressure_blocks") > 0

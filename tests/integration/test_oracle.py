"""Differential conformance oracle: six stacks vs a dict-of-bytes model.

A Hypothesis stateful machine drives random syscalls -- open / read /
write / writev / lseek / truncate / rename / unlink / fsync -- against
all five simulated file systems, a two-device sharded HiNFS mount
(``hinfs@2`` -- the namespace hashed across independent shards behind
one VFS, including cross-shard renames), *and* a trivially-correct
in-memory reference (paths -> byte buffers, descriptors -> (buffer,
position)).  Every return value, every raised error class, and the
final visible namespace must agree across all seven.  This is the
conformance fence the concurrency refactor is locked in by: per-inode
locking and parallel writeback must never change what a syscall
returns -- and the shard layer must be invisible at the syscall
surface.

The machine also drives the library-mode mmap plane: on stacks that
support ``MAP_ATOMIC`` (the PMFS family) it creates real mappings and
interleaves ``store``/``load``/``msync`` with descriptor reads, writes
and truncates on the same file; the block-device stacks emulate the
mapping with pwrite/pread on a held descriptor.  POSIX coherence means
the mapped and emulated stacks must still agree byte-for-byte.

A second property applies per-thread op scripts on *disjoint* files
through the real scheduler with 2-4 threads: interleaving may change
timing, never data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    initialize,
    invariant,
    multiple,
    rule,
)

from repro.bench.runner import build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.engine.scheduler import Scheduler
from repro.fs import flags as f
from repro.fs.errors import FSError
from repro.nvmm.config import NVMMConfig

ORACLE_FS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd",
             "hinfs@2")
PATHS = ["/f0", "/f1", "/f2", "/f3"]


class RefFile:
    """One reference inode: a plain byte buffer."""

    __slots__ = ("data",)

    def __init__(self):
        self.data = bytearray()

    def pwrite(self, offset, data):
        if offset > len(self.data):
            self.data.extend(b"\0" * (offset - len(self.data)))
        self.data[offset:offset + len(data)] = data
        return len(data)

    def pread(self, offset, count):
        return bytes(self.data[offset:offset + count])

    def truncate(self, size):
        if size <= len(self.data):
            del self.data[size:]
        else:
            self.data.extend(b"\0" * (size - len(self.data)))


class RefModel:
    """The obviously-correct model: POSIX files over Python bytes."""

    def __init__(self):
        self.namespace = {}
        self.fds = {}

    def open(self, handle, path, flags):
        file = self.namespace.get(path)
        if file is None:
            if not flags & f.O_CREAT:
                raise FSError(path)
            file = self.namespace[path] = RefFile()
        elif flags & f.O_TRUNC:
            file.truncate(0)
        self.fds[handle] = [file, 0, flags]

    def close(self, handle):
        del self.fds[handle]

    def write(self, handle, data):
        file, pos, flags = self.fds[handle]
        if flags & f.O_APPEND:
            pos = len(file.data)
        written = file.pwrite(pos, data)
        self.fds[handle][1] = pos + written
        return written

    def writev(self, handle, iovecs):
        return self.write(handle, b"".join(iovecs))

    def read(self, handle, count):
        file, pos, _flags = self.fds[handle]
        data = file.pread(pos, count)
        self.fds[handle][1] = pos + len(data)
        return data

    def lseek(self, handle, pos, whence):
        file, cur, _flags = self.fds[handle]
        if whence == f.SEEK_SET:
            new = pos
        elif whence == f.SEEK_CUR:
            new = cur + pos
        else:
            new = len(file.data) + pos
        if new < 0:
            raise FSError("negative offset")
        self.fds[handle][1] = new
        return new

    def truncate(self, path, size):
        file = self.namespace.get(path)
        if file is None:
            raise FSError(path)
        file.truncate(size)

    def rename(self, old, new):
        file = self.namespace.get(old)
        if file is None:
            raise FSError(old)
        if old != new:
            self.namespace[new] = self.namespace.pop(old)

    def unlink(self, path):
        if path not in self.namespace:
            raise FSError(path)
        del self.namespace[path]

    def open_paths(self):
        paths = set()
        for file, _pos, _flags in self.fds.values():
            for path, named in self.namespace.items():
                if named is file:
                    paths.add(path)
        return paths


class OracleStack:
    """One simulated stack with its own fd table keyed by handle."""

    def __init__(self, fs_name):
        self.env = SimEnv()
        self.fs, self.vfs = build_stack(self.env, fs_name, NVMMConfig(),
                                        48 << 20)
        self.ctx = ExecContext(self.env, "oracle")
        self.fds = {}


def outcome(fn, *args):
    """Run one syscall; normalise to a comparable (tag, value) pair.

    Error *classes* are not compared across the model and the stacks
    (the model only knows generic :class:`FSError`); what must agree is
    whether the call failed and what a successful call returned.
    """
    try:
        return ("ok", fn(*args))
    except FSError:
        return ("err", None)


class DifferentialOracle(RuleBasedStateMachine):
    handles = Bundle("handles")

    @initialize()
    def build_stacks(self):
        self.stacks = [OracleStack(name) for name in ORACLE_FS]
        self.ref = RefModel()
        self._next_handle = 0
        #: path -> per-stack [("real", fd, region) | ("emul", fd, None)]
        #: for live MAP_ATOMIC mappings (emulated on kernel-only stacks).
        self.mappings = {}

    def check_all(self, expected, per_stack):
        for stack, got in zip(self.stacks, per_stack):
            assert got == expected, (
                "%s diverged: %r != %r" % (stack.fs.__class__.__name__,
                                           got, expected))

    # -- namespace rules -------------------------------------------------

    @rule(target=handles, path=st.sampled_from(PATHS),
          create=st.booleans(), trunc=st.booleans(),
          append=st.booleans())
    def open(self, path, create, trunc, append):
        flags = f.O_RDWR
        flags |= f.O_CREAT if create else 0
        flags |= f.O_TRUNC if trunc else 0
        flags |= f.O_APPEND if append else 0
        handle = self._next_handle
        self._next_handle += 1
        expected = outcome(self.ref.open, handle, path, flags)
        for stack in self.stacks:
            got = outcome(stack.vfs.open, stack.ctx, path, flags)
            assert got[0] == expected[0], (path, flags, got, expected)
            if got[0] == "ok":
                stack.fds[handle] = got[1]
        if expected[0] == "err":
            return multiple()
        return handle

    @rule(handle=consumes(handles))
    def close(self, handle):
        self.ref.close(handle)
        for stack in self.stacks:
            stack.vfs.close(stack.ctx, stack.fds.pop(handle))

    @rule(path=st.sampled_from(PATHS), size=st.integers(0, 32 << 10))
    def truncate(self, path, size):
        expected = outcome(self.ref.truncate, path, size)
        self.check_all(expected, [
            outcome(stack.vfs.truncate, stack.ctx, path, size)
            for stack in self.stacks
        ])

    @rule(old=st.sampled_from(PATHS), new=st.sampled_from(PATHS))
    def rename(self, old, new):
        # Renaming over (or moving) a file some handle still has open
        # drops an inode under a live descriptor; POSIX keeps such
        # descriptors usable, the stacks reuse the inode -- out of the
        # oracle's scope, like open-unlinked files.  Mapped paths hold a
        # descriptor too (the mapping's own fd).
        if {old, new} & (self.ref.open_paths() | set(self.mappings)):
            return
        expected = outcome(self.ref.rename, old, new)
        self.check_all(expected, [
            outcome(stack.vfs.rename, stack.ctx, old, new)
            for stack in self.stacks
        ])

    @rule(path=st.sampled_from(PATHS))
    def unlink(self, path):
        if path in self.ref.open_paths() or path in self.mappings:
            return
        expected = outcome(self.ref.unlink, path)
        self.check_all(expected, [
            outcome(stack.vfs.unlink, stack.ctx, path)
            for stack in self.stacks
        ])

    # -- descriptor rules ------------------------------------------------

    @rule(handle=handles, data=st.binary(min_size=1, max_size=2048))
    def write(self, handle, data):
        expected = outcome(self.ref.write, handle, data)
        self.check_all(expected, [
            outcome(stack.vfs.write, stack.ctx, stack.fds[handle], data)
            for stack in self.stacks
        ])

    @rule(handle=handles,
          iovecs=st.lists(st.binary(min_size=1, max_size=512),
                          min_size=1, max_size=4))
    def writev(self, handle, iovecs):
        expected = outcome(self.ref.writev, handle, iovecs)
        self.check_all(expected, [
            outcome(stack.vfs.writev, stack.ctx, stack.fds[handle], iovecs)
            for stack in self.stacks
        ])

    @rule(handle=handles, count=st.integers(0, 8 << 10))
    def read(self, handle, count):
        expected = outcome(self.ref.read, handle, count)
        self.check_all(expected, [
            outcome(stack.vfs.read, stack.ctx, stack.fds[handle], count)
            for stack in self.stacks
        ])

    @rule(handle=handles, pos=st.integers(-512, 16 << 10),
          whence=st.sampled_from([f.SEEK_SET, f.SEEK_CUR, f.SEEK_END]))
    def lseek(self, handle, pos, whence):
        expected = outcome(self.ref.lseek, handle, pos, whence)
        self.check_all(expected, [
            outcome(stack.vfs.lseek, stack.ctx, stack.fds[handle], pos,
                    whence)
            for stack in self.stacks
        ])

    @rule(handle=handles)
    def fsync(self, handle):
        for stack in self.stacks:
            stack.vfs.fsync(stack.ctx, stack.fds[handle])

    @rule(handle=handles)
    def fdatasync(self, handle):
        for stack in self.stacks:
            stack.vfs.fdatasync(stack.ctx, stack.fds[handle])

    # -- library-mode mmap rules -----------------------------------------
    # Mapped stores interleave with the descriptor rules above on the
    # same paths: reads and fsyncs on a mapped file are routed through
    # the mapping by the PMFS-family stacks, and truncate must stay
    # coherent with staged stores.  Content must agree across the real
    # mappings, the emulating stacks, and the model.

    @rule(path=st.sampled_from(PATHS),
          policy=st.sampled_from(["auto", "undo", "redo"]))
    def mmap_atomic(self, path, policy):
        if path in self.mappings or path not in self.ref.namespace:
            return
        per_stack = []
        for stack in self.stacks:
            fd = stack.vfs.open(stack.ctx, path, f.O_RDWR)
            if hasattr(stack.fs, "mmap_atomic"):
                region = stack.vfs.mmap(stack.ctx, fd, flags=f.MAP_ATOMIC,
                                        policy=policy)
                per_stack.append(("real", fd, region))
            else:
                per_stack.append(("emul", fd, None))
        self.mappings[path] = per_stack

    @rule(path=st.sampled_from(PATHS), offset=st.integers(0, 24 << 10),
          size=st.integers(1, 2048), tag=st.integers(0, 255))
    def mstore(self, path, offset, size, tag):
        entry = self.mappings.get(path)
        if entry is None:
            return
        data = bytes([tag]) * size
        self.ref.namespace[path].pwrite(offset, data)
        for stack, (kind, fd, region) in zip(self.stacks, entry):
            if kind == "real":
                assert region.store(stack.ctx, offset, data) == size
            else:
                stack.vfs.pwrite(stack.ctx, fd, offset, data)

    @rule(path=st.sampled_from(PATHS), offset=st.integers(0, 24 << 10),
          count=st.integers(1, 4096))
    def mload(self, path, offset, count):
        entry = self.mappings.get(path)
        if entry is None:
            return
        file = self.ref.namespace[path]
        # Clamp to EOF: a real load past the last page would fault, and
        # the bytes between size and the end of the last block are
        # unspecified -- the oracle compares the defined range only.
        avail = max(0, min(count, len(file.data) - offset))
        expected = ("ok", file.pread(offset, avail))
        got = []
        for stack, (kind, fd, region) in zip(self.stacks, entry):
            if avail == 0:
                got.append(("ok", b""))
            elif kind == "real":
                got.append(outcome(region.load, stack.ctx, offset, avail))
            else:
                got.append(outcome(stack.vfs.pread, stack.ctx, fd, offset,
                                   avail))
        self.check_all(expected, got)

    @rule(path=st.sampled_from(PATHS))
    def msync_mapping(self, path):
        entry = self.mappings.get(path)
        if entry is None:
            return
        for stack, (kind, fd, region) in zip(self.stacks, entry):
            if kind == "real":
                region.msync(stack.ctx)
            else:
                stack.vfs.fsync(stack.ctx, fd)

    @rule(path=st.sampled_from(PATHS))
    def munmap_mapping(self, path):
        entry = self.mappings.pop(path, None)
        if entry is None:
            return
        for stack, (kind, fd, region) in zip(self.stacks, entry):
            if kind == "real":
                stack.vfs.munmap(stack.ctx, region)
            stack.vfs.close(stack.ctx, fd)

    # -- metadata reads --------------------------------------------------

    @rule(path=st.sampled_from(PATHS))
    def stat(self, path):
        def ref_stat():
            file = self.ref.namespace.get(path)
            if file is None:
                raise FSError(path)
            return len(file.data)

        expected = outcome(ref_stat)
        self.check_all(expected, [
            outcome(lambda s=stack: s.vfs.stat(s.ctx, path).size)
            for stack in self.stacks
        ])

    @rule(handle=handles)
    def fstat(self, handle):
        file, _pos, _flags = self.ref.fds[handle]
        expected = ("ok", len(file.data))
        self.check_all(expected, [
            outcome(lambda s=stack: s.vfs.fstat(s.ctx, s.fds[handle]).size)
            for stack in self.stacks
        ])

    @rule()
    def readdir(self):
        expected = ("ok", sorted(self.ref.namespace))
        self.check_all(expected, [
            outcome(lambda s=stack: sorted(
                "/" + name for name, _ino in s.vfs.readdir(s.ctx, "/")
            ))
            for stack in self.stacks
        ])

    # -- the namespace itself must agree ---------------------------------

    @invariant()
    def namespaces_agree(self):
        if not hasattr(self, "stacks"):
            return
        expected = sorted(self.ref.namespace)
        for stack in self.stacks:
            listing = sorted(
                "/" + entry[0]
                for entry in stack.vfs.readdir(stack.ctx, "/")
            )
            assert listing == expected, (stack.fs, listing, expected)

    def teardown(self):
        if not hasattr(self, "stacks"):
            return
        for path, file in self.ref.namespace.items():
            for stack in self.stacks:
                data = stack.vfs.read_file(stack.ctx, path)
                assert data == bytes(file.data), (
                    "%s: %r diverged (%d bytes vs %d)"
                    % (stack.fs.__class__.__name__, path, len(data),
                       len(file.data)))


DifferentialOracle.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None,
)
TestDifferentialOracle = DifferentialOracle.TestCase


def test_mmio_rules_deterministic_smoke():
    """Drive every mmap rule once, interleaved with descriptor I/O and a
    truncate on the same path -- the fixed sequence Hypothesis may or
    may not generate, pinned so the mmio coherence path always runs."""
    machine = DifferentialOracle()
    machine.build_stacks()
    try:
        handle = machine.open("/f0", create=True, trunc=False, append=False)
        machine.write(handle, b"base" * 1024)          # 4096 bytes
        for policy in ("undo", "redo"):
            machine.mmap_atomic("/f0", policy)
            machine.mstore("/f0", 100, 512, 0xAB)
            machine.mload("/f0", 0, 1024)
            machine.read(handle, 256)                  # routed read
            machine.msync_mapping("/f0")
            machine.mstore("/f0", 6000, 300, 0xCD)     # extends the file
            machine.fstat(handle)
            machine.truncate("/f0", 4096)              # cuts staged tail
            machine.mload("/f0", 3900, 400)
            machine.munmap_mapping("/f0")
            machine.namespaces_agree()
        machine.close(handle)
    finally:
        machine.teardown()


# -- multi-threaded: disjoint files through the real scheduler -----------

op_strategy = st.one_of(
    st.tuples(st.just("write"), st.integers(0, 24 << 10),
              st.integers(1, 4096), st.integers(0, 255)),
    st.tuples(st.just("read"), st.integers(0, 24 << 10),
              st.integers(1, 4096)),
    st.tuples(st.just("truncate"), st.integers(0, 24 << 10)),
    st.tuples(st.just("fsync"),),
)


def apply_ref(script):
    """Replay one thread's script on the reference; returns (reads, data)."""
    file = RefFile()
    reads = []
    for op in script:
        if op[0] == "write":
            _, offset, size, tag = op
            file.pwrite(offset, bytes([tag]) * size)
        elif op[0] == "read":
            _, offset, count = op
            reads.append(file.pread(offset, count))
        elif op[0] == "truncate":
            file.truncate(op[1])
    return reads, bytes(file.data)


def thread_body(vfs, tid, script, reads_out):
    path = "/t%d" % tid

    def body(ctx):
        fd = vfs.open(ctx, path, f.O_CREAT | f.O_RDWR)
        for op in script:
            if op[0] == "write":
                _, offset, size, tag = op
                vfs.pwrite(ctx, fd, offset, bytes([tag]) * size)
            elif op[0] == "read":
                _, offset, count = op
                reads_out.append(vfs.pread(ctx, fd, offset, count))
            elif op[0] == "truncate":
                vfs.truncate(ctx, path, op[1])
            elif op[0] == "fsync":
                vfs.fsync(ctx, fd)
            yield
        vfs.close(ctx, fd)

    return body


@settings(max_examples=10, deadline=None)
@given(scripts=st.lists(st.lists(op_strategy, min_size=1, max_size=12),
                        min_size=2, max_size=4))
def test_threads_on_disjoint_files_match_reference(scripts):
    """2-4 scheduler threads, each owning one file: whatever order the
    scheduler interleaves them in, every stack's per-thread reads and
    final file images equal the single-threaded reference replay."""
    expected = [apply_ref(script) for script in scripts]
    for fs_name in ORACLE_FS:
        env = SimEnv()
        fs, vfs = build_stack(env, fs_name, NVMMConfig(), 48 << 20)
        sched = Scheduler(env)
        observed_reads = [[] for _ in scripts]
        for tid, script in enumerate(scripts):
            sched.spawn("t%d" % tid,
                        thread_body(vfs, tid, script, observed_reads[tid]))
        sched.run()
        verify = ExecContext(env, "verify", start_ns=sched.elapsed_ns())
        for tid, (ref_reads, ref_data) in enumerate(expected):
            assert observed_reads[tid] == ref_reads, (fs_name, tid)
            got = vfs.read_file(verify, "/t%d" % tid)
            assert got == ref_data, (fs_name, tid, len(got), len(ref_data))

"""Unit tests for the DRAM write buffer and its DRAM Block Index."""

import pytest

from repro.core.buffer import WriteBuffer
from repro.core.config import HiNFSConfig
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.nvmm.config import NVMMConfig


class Rig:
    def __init__(self, blocks=16):
        self.env = SimEnv()
        self.buffer = WriteBuffer(self.env, NVMMConfig(),
                                  HiNFSConfig(buffer_bytes=blocks * 4096))
        self.ctx = ExecContext(self.env, "t")


@pytest.fixture()
def rig():
    return Rig()


def test_insert_and_lookup(rig):
    block = rig.buffer.insert(1, 5, nvmm_block=100)
    assert rig.buffer.lookup(1, 5) is block
    assert rig.buffer.lookup(1, 6) is None
    assert rig.buffer.lookup(2, 5) is None
    assert rig.buffer.used_blocks == 1


def test_evict_frees_frame_and_index(rig):
    block = rig.buffer.insert(1, 5, nvmm_block=100)
    rig.buffer.evict(block)
    assert rig.buffer.lookup(1, 5) is None
    assert rig.buffer.used_blocks == 0
    assert rig.buffer.free_blocks == rig.buffer.blocks_total


def test_insert_without_space_is_a_bug(rig):
    for i in range(rig.buffer.blocks_total):
        rig.buffer.insert(1, i, nvmm_block=i)
    with pytest.raises(RuntimeError):
        rig.buffer.insert(1, 999, nvmm_block=999)


def test_file_blocks_sorted_by_offset(rig):
    for fb in (9, 2, 5):
        rig.buffer.insert(3, fb, nvmm_block=fb)
    assert [b.file_block for b in rig.buffer.file_blocks(3)] == [2, 5, 9]
    assert rig.buffer.file_blocks(99) == []


def test_write_into_roundtrip_and_state(rig):
    block = rig.buffer.insert(1, 0, nvmm_block=50)
    rig.buffer.write_into(rig.ctx, block, 100, b"hello", now_ns=77)
    assert rig.buffer.read_from(rig.ctx, block, 100, 5) == b"hello"
    assert block.is_dirty
    assert block.last_written_ns == 77
    assert rig.env.stats.bytes_written_dram == 5


def test_write_into_charges_per_cacheline(rig):
    block = rig.buffer.insert(1, 0, nvmm_block=50)
    before = rig.ctx.now
    # 5 bytes straddling a line boundary: 2 lines charged.
    rig.buffer.write_into(rig.ctx, block, 62, b"abcde", now_ns=0)
    per_line = rig.buffer.dram.config.dram_store_cost_ns(64)
    assert rig.ctx.now - before == 2 * per_line


def test_watermarks(rig):
    config = rig.buffer.config
    assert not rig.buffer.below_low_watermark
    while rig.buffer.free_blocks >= config.low_blocks:
        rig.buffer.insert(1, rig.buffer.used_blocks, nvmm_block=1)
    assert rig.buffer.below_low_watermark
    assert not rig.buffer.at_high_watermark


def test_dirty_block_count(rig):
    a = rig.buffer.insert(1, 0, nvmm_block=1)
    rig.buffer.insert(1, 1, nvmm_block=2)
    rig.buffer.write_into(rig.ctx, a, 0, b"x", now_ns=0)
    assert rig.buffer.dirty_block_count() == 1


def test_victim_order_follows_writes(rig):
    a = rig.buffer.insert(1, 0, nvmm_block=1)
    b = rig.buffer.insert(1, 1, nvmm_block=2)
    rig.buffer.write_into(rig.ctx, a, 0, b"x", now_ns=1)
    rig.buffer.write_into(rig.ctx, b, 0, b"y", now_ns=2)
    rig.buffer.write_into(rig.ctx, a, 64, b"z", now_ns=3)
    order = rig.buffer.all_blocks_lrw_order()
    assert order[0] is b  # least recently written


def test_index_is_per_file(rig):
    rig.buffer.insert(1, 0, nvmm_block=1)
    rig.buffer.insert(2, 0, nvmm_block=2)
    assert rig.buffer.lookup(1, 0).nvmm_block == 1
    assert rig.buffer.lookup(2, 0).nvmm_block == 2

"""Regression tests for deferred-commit ordering (per-file tx chains).

Found by the hypothesis crash-recovery suite: if a newer transaction on
the same file commits while an older buffered transaction is still open,
a crash would roll the older undo images back *over* the newer committed
state.  HiNFS therefore chains deferred commits per file and barriers
synchronous commits behind them.
"""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.fs import flags as f

from tests.fs.conftest import PmfsRig


@pytest.fixture()
def rig():
    return PmfsRig(fs_cls=HiNFS, hconfig=HiNFSConfig(buffer_bytes=2 << 20))


def test_sync_write_after_lazy_writes_keeps_committed_size(rig):
    """The exact falsifying example: lazy writes then an O_SYNC extend."""
    fd = rig.vfs.open(rig.ctx, "/f0", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"\0")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"\0")
    fd_sync = rig.vfs.open(rig.ctx, "/f0", f.O_RDWR | f.O_SYNC)
    rig.vfs.pwrite(rig.ctx, fd_sync, 10_232, b"\0")
    rig.crash_and_remount()
    assert rig.vfs.stat(rig.ctx, "/f0").size == 10_233


def test_eager_block_write_joins_file_chain(rig):
    """An async write routed eagerly must not commit ahead of an older
    open lazy transaction of the same file."""
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    # Make block 0 eager via a no-coalescing sync.
    rig.vfs.pwrite(rig.ctx, fd, 0, b"x" * 64)
    rig.vfs.fsync(rig.ctx, fd)
    # Older lazy write to block 1 (open deferred tx)...
    rig.vfs.pwrite(rig.ctx, fd, 4096, b"lazy" * 1024)
    # ...then a newer eager write to block 0 (direct to NVMM).
    rig.vfs.pwrite(rig.ctx, fd, 0, b"E" * 64)
    assert rig.env.stats.count("hinfs_eager_writes") >= 1
    # Crash: the eager write's tx must not have committed out of order,
    # so rollback leaves a consistent size (the fsync-time 64 bytes).
    rig.crash_and_remount()
    st = rig.vfs.stat(rig.ctx, "/f")
    data = rig.vfs.read_file(rig.ctx, "/f")
    assert len(data) == st.size
    assert st.size >= 64


def test_chain_commits_in_order_as_blocks_flush(rig):
    """Flushing a newer tx's block before an older tx's block must not
    commit the newer tx first -- it waits (ready) for the cascade."""
    fs = rig.fs
    fd = rig.vfs.open(rig.ctx, "/c", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"a" * 4096)       # tx1 on block 0
    rig.vfs.pwrite(rig.ctx, fd, 4096, b"b" * 4096)    # tx2 on block 1
    ino = rig.vfs.stat(rig.ctx, "/c").ino
    blocks = {b.file_block: b for b in fs.buffer.file_blocks(ino)}
    (tx2,) = [p.tx for p in blocks[1].pending_txs]
    (tx1,) = [p.tx for p in blocks[0].pending_txs]
    # Flush the NEWER block first.
    fs.flush_and_evict(rig.ctx, blocks[1])
    assert tx2.open, "newer tx must wait for the older one"
    fs.flush_and_evict(rig.ctx, blocks[0])
    assert not tx1.open and not tx2.open


def test_truncate_barriers_open_transactions(rig):
    fd = rig.vfs.open(rig.ctx, "/t", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"k" * 8192)
    rig.vfs.truncate(rig.ctx, "/t", 4096)
    assert rig.fs.journal.open_transactions == 0
    rig.crash_and_remount()
    assert rig.vfs.stat(rig.ctx, "/t").size == 4096
    assert rig.vfs.read_file(rig.ctx, "/t") == b"k" * 4096


def test_many_interleaved_files_chains_are_independent(rig):
    fds = {}
    for i in range(4):
        fds[i] = rig.vfs.open(rig.ctx, "/m%d" % i, f.O_CREAT | f.O_RDWR)
    for round_no in range(6):
        for i in range(4):
            rig.vfs.pwrite(rig.ctx, fds[i], round_no * 4096, b"%d" % i * 512)
    # fsync one file: only its chain must be forced closed.
    rig.vfs.fsync(rig.ctx, fds[2])
    open_txs = rig.fs.journal.open_transactions
    assert open_txs > 0  # other files' chains still deferred
    for i in (0, 1, 3):
        rig.vfs.fsync(rig.ctx, fds[i])
    assert rig.fs.journal.open_transactions == 0

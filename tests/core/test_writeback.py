"""Unit tests for the background writeback task."""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.fs import flags as f

from tests.fs.conftest import PmfsRig

SEC = 1_000_000_000


def make_rig(**hconf):
    hconf.setdefault("buffer_bytes", 64 * 4096)
    return PmfsRig(fs_cls=HiNFS, hconfig=HiNFSConfig(**hconf))


def test_pressure_signal_reclaims_to_high_watermark():
    rig = make_rig()
    # Dirty most of the 64-block buffer.
    rig.vfs.write_file(rig.ctx, "/p", b"d" * (60 * 4096))
    assert rig.fs.buffer.free_blocks < rig.fs.hconfig.high_blocks
    rig.fs.writeback.signal_pressure(rig.ctx.now)
    rig.env.background.advance_to(rig.ctx.now + 1)
    assert rig.fs.buffer.free_blocks >= rig.fs.hconfig.high_blocks
    assert rig.env.stats.count("writeback_pressure_blocks") > 0


def test_pressure_when_above_high_is_noop():
    rig = make_rig()
    rig.vfs.write_file(rig.ctx, "/p", b"d" * 4096)
    rig.fs.writeback.signal_pressure(rig.ctx.now)
    rig.env.background.advance_to(rig.ctx.now + 1)
    assert rig.env.stats.count("writeback_pressure_blocks") == 0


def test_demand_reclaim_waits_foreground():
    rig = make_rig()
    rig.vfs.write_file(rig.ctx, "/p", b"d" * (64 * 4096))
    assert rig.fs.buffer.free_blocks == 0
    before = rig.ctx.now
    freed = rig.fs.writeback.demand_reclaim(rig.ctx)
    assert freed > 0
    assert rig.ctx.now > before  # the foreground actually waited
    assert rig.fs.buffer.free_blocks == freed


def test_periodic_flush_only_cold_blocks():
    rig = make_rig(buffer_bytes=256 * 4096)
    rig.vfs.write_file(rig.ctx, "/cold", b"c" * 8192)
    # A hot block written just before the second tick must be skipped
    # (its age is far below the 5 s interval); the cold one is flushed.
    rig.ctx.clock.advance_to(10 * SEC - 1000)
    rig.vfs.write_file(rig.ctx, "/hot", b"h" * 4096)
    rig.env.background.advance_to(10 * SEC + 1)
    flushed = rig.env.stats.count("writeback_periodic_blocks")
    assert flushed == 2  # only /cold's two blocks
    ino_hot = rig.vfs.stat(rig.ctx, "/hot").ino
    assert rig.fs.buffer.file_blocks(ino_hot)  # still buffered


def test_aged_flush_after_pressure():
    rig = make_rig(buffer_bytes=256 * 4096, dirty_age_ns=1 * SEC)
    rig.vfs.write_file(rig.ctx, "/old", b"o" * 4096)
    rig.ctx.clock.advance_to(2 * SEC)
    rig.vfs.write_file(rig.ctx, "/new", b"n" * 4096)
    rig.fs.writeback.signal_pressure(rig.ctx.now)
    rig.env.background.advance_to(rig.ctx.now + 1)
    assert rig.env.stats.count("writeback_aged_blocks") >= 1
    ino_new = rig.vfs.stat(rig.ctx, "/new").ino
    assert rig.fs.buffer.file_blocks(ino_new)  # fresh block survives


def test_journal_relief_closes_deferred_commits():
    rig = make_rig(buffer_bytes=512 * 4096)
    rig.fs.journal.capacity = 800
    rig.fs.journal.reserve_slots = 200
    i = 0
    while rig.fs.journal.used_slots <= int(0.4 * rig.fs.journal.capacity):
        rig.vfs.write_file(rig.ctx, "/j%d" % i, b"x" * 4096)
        i += 1
    assert rig.fs.journal.open_transactions > 0
    rig.fs.writeback.signal_pressure(rig.ctx.now)
    rig.env.background.advance_to(rig.ctx.now + 1)
    assert rig.env.stats.count("writeback_journal_relief_blocks") > 0
    assert rig.fs.journal.open_transactions == 0


def test_flusher_charges_its_own_timeline():
    rig = make_rig()
    rig.vfs.write_file(rig.ctx, "/p", b"d" * (60 * 4096))
    fg_before = rig.ctx.now
    rig.fs.writeback.signal_pressure(rig.ctx.now)
    rig.env.background.advance_to(rig.ctx.now + 1)
    # Background reclaim must not consume foreground time.
    assert rig.ctx.now == fg_before
    assert rig.fs.writeback.ctx.now > 0


def test_buffer_exhaustion_raises_diagnosable_deadlock():
    from repro.engine.errors import DeadlockError
    from repro.faults.media import MediaFaultModel

    rig = make_rig(buffer_bytes=8 * 4096, enable_eager_checker=False)
    model = rig.device.attach_faults(MediaFaultModel())
    model.poison_line(rig.device.mem.num_lines - 1)  # unused data line
    # Simulate a flusher that cannot free anything (e.g. every victim's
    # writeback target is on bad media).
    rig.fs.writeback.demand_reclaim = lambda ctx: 0
    with pytest.raises(DeadlockError) as excinfo:
        rig.vfs.write_file(rig.ctx, "/big", b"x" * (9 * 4096))
    text = str(excinfo.value)
    assert "write buffer exhausted" in text
    assert "thread 'test'" in text
    assert "thread 'hinfs-writeback'" in text
    assert "marked bad" in text

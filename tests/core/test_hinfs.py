"""Functional tests for HiNFS: buffering, CLFW, benefit model, recovery."""

import pytest

from repro.core import HiNFS, HiNFSConfig, make_hinfs_nclfw, make_hinfs_wb
from repro.fs import flags as f
from repro.nvmm.config import NVMMConfig

from tests.fs.conftest import PmfsRig


def make_rig(hconfig=None, factory=HiNFS, size=32 << 20, config=None):
    hconfig = hconfig or HiNFSConfig(buffer_bytes=2 << 20)
    return PmfsRig(size=size, config=config, fs_cls=factory, hconfig=hconfig)


@pytest.fixture()
def rig():
    return make_rig()


def test_write_read_roundtrip_through_buffer(rig):
    rig.vfs.write_file(rig.ctx, "/a", b"hello hinfs" * 100)
    assert rig.vfs.read_file(rig.ctx, "/a") == b"hello hinfs" * 100
    assert rig.env.stats.count("hinfs_lazy_writes") > 0


def test_lazy_write_avoids_nvmm_data_traffic(rig):
    before = rig.env.stats.bytes_written_nvmm
    rig.vfs.write_file(rig.ctx, "/a", b"x" * (64 * 4096))
    data_written = rig.env.stats.bytes_written_nvmm - before
    # Metadata journaling writes a little NVMM, but the 256 KiB of file
    # data must all still be sitting in DRAM.
    assert data_written < 64 * 4096 / 4


def test_lazy_write_is_much_faster_than_pmfs():
    pmfs_rig = PmfsRig(size=32 << 20)
    hinfs_rig = make_rig()
    payload = b"z" * (256 * 1024)
    t0 = pmfs_rig.ctx.now
    pmfs_rig.vfs.write_file(pmfs_rig.ctx, "/f", payload)
    pmfs_time = pmfs_rig.ctx.now - t0
    t0 = hinfs_rig.ctx.now
    hinfs_rig.vfs.write_file(hinfs_rig.ctx, "/f", payload)
    hinfs_time = hinfs_rig.ctx.now - t0
    assert hinfs_time < pmfs_time / 3


def test_read_merges_dram_and_nvmm(rig):
    # First write goes to NVMM via fsync; second (partial) stays in DRAM.
    fd = rig.vfs.open(rig.ctx, "/m", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"N" * 4096)
    rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.pwrite(rig.ctx, fd, 1024, b"D" * 64)
    data = rig.vfs.pread(rig.ctx, fd, 0, 4096)
    assert data[:1024] == b"N" * 1024
    assert data[1024:1088] == b"D" * 64
    assert data[1088:] == b"N" * (4096 - 1088)


def test_unaligned_write_fetches_only_edge_lines(rig):
    rig.vfs.write_file(rig.ctx, "/c", b"base" * 1024)  # 4096 B
    # Remount: data is in NVMM, the buffer is cold, the block is lazy.
    rig.vfs.unmount(rig.ctx)
    rig.remount()
    fetched_before = rig.env.stats.count("hinfs_fetched_lines")
    # Paper example: rewrite bytes 0..112 -> only line 1 must be fetched
    # (line 0 is fully overwritten, line 1 only partially).
    fd = rig.vfs.open(rig.ctx, "/c", f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"y" * 112)
    assert rig.env.stats.count("hinfs_fetched_lines") - fetched_before == 1
    data = rig.vfs.pread(rig.ctx, fd, 0, 4096)
    assert data[:112] == b"y" * 112
    assert data[112:] == (b"base" * 1024)[112:]


def test_nclfw_fetches_whole_block():
    rig = make_rig(factory=make_hinfs_nclfw)
    rig.vfs.write_file(rig.ctx, "/c", b"base" * 1024)
    rig.vfs.unmount(rig.ctx)
    rig.remount()
    # NCLFW mounts back as plain HiNFS here, so force the ablation flag.
    rig.fs.hconfig = rig.fs.hconfig.replace(enable_clfw=False)
    fetched_before = rig.env.stats.count("hinfs_fetched_lines")
    fd = rig.vfs.open(rig.ctx, "/c", f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"y" * 112)
    # The whole block (all 64 lines) is fetched before the write.
    assert rig.env.stats.count("hinfs_fetched_lines") - fetched_before == 64
    data = rig.vfs.pread(rig.ctx, fd, 0, 4096)
    assert data[:112] == b"y" * 112
    assert data[112:] == (b"base" * 1024)[112:]


def test_clfw_writes_back_fewer_bytes_than_nclfw():
    """Figure 9(b): small unaligned writes -> CLFW's NVMM write size is
    far smaller."""
    results = {}
    for name, factory in [("clfw", HiNFS), ("nclfw", make_hinfs_nclfw)]:
        rig = make_rig(factory=factory)
        fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
        for i in range(64):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"tiny")
            rig.vfs.fsync(rig.ctx, fd)
        results[name] = rig.env.stats.bytes_written_nvmm
    assert results["clfw"] < results["nclfw"] / 4


def test_fsync_persists_buffered_data(rig):
    fd = rig.vfs.open(rig.ctx, "/p", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"precious" * 512)
    rig.vfs.fsync(rig.ctx, fd)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/p") == b"precious" * 512


def test_unsynced_lazy_data_lost_but_consistent(rig):
    rig.vfs.write_file(rig.ctx, "/durable", b"old" * 1000, sync=True)
    fd = rig.vfs.open(rig.ctx, "/durable")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"NEW")
    # Crash before any sync/writeback: the lazy overwrite may vanish, but
    # the file must be intact and readable.
    rig.crash_and_remount()
    data = rig.vfs.read_file(rig.ctx, "/durable")
    assert len(data) == 3000
    assert data[3:] == (b"old" * 1000)[3:]


def test_deferred_commit_rolls_back_new_file_growth(rig):
    """Ordered mode: metadata that references unwritten buffered data
    must not survive a crash (the deferred commit never landed)."""
    rig.vfs.write_file(rig.ctx, "/grow", b"")
    fd = rig.vfs.open(rig.ctx, "/grow")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"unsynced data that only lives in DRAM")
    rig.crash_and_remount()
    st = rig.vfs.stat(rig.ctx, "/grow")
    # The size update was part of the uncommitted tx: rolled back to 0.
    assert st.size == 0


def test_o_sync_writes_durable_immediately(rig):
    fd = rig.vfs.open(rig.ctx, "/s", f.O_CREAT | f.O_RDWR | f.O_SYNC)
    rig.vfs.write(rig.ctx, fd, b"sync write" * 100)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/s") == b"sync write" * 100


def test_o_sync_write_with_buffered_copy_evicts_it(rig):
    fd = rig.vfs.open(rig.ctx, "/mix", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"lazy" * 1024)  # buffered
    fd_sync = rig.vfs.open(rig.ctx, "/mix", f.O_RDWR | f.O_SYNC)
    rig.vfs.pwrite(rig.ctx, fd_sync, 0, b"SYNC")
    # The whole block (lazy tail included) must now be durable.
    rig.crash_and_remount()
    data = rig.vfs.read_file(rig.ctx, "/mix")
    assert data[:4] == b"SYNC"
    assert data[4:] == (b"lazy" * 1024)[4:]


def test_frequent_fsync_drives_blocks_eager(rig):
    fd = rig.vfs.open(rig.ctx, "/db", f.O_CREAT | f.O_RDWR)
    # Append-one-line-then-fsync, the pattern that cannot coalesce.
    for i in range(4):
        rig.vfs.pwrite(rig.ctx, fd, i * 64, b"x" * 64)
        rig.vfs.fsync(rig.ctx, fd)
    eager_before = rig.env.stats.count("hinfs_eager_writes")
    rig.vfs.pwrite(rig.ctx, fd, 4 * 64, b"x" * 64)
    assert rig.env.stats.count("hinfs_eager_writes") == eager_before + 1


def test_hinfs_wb_never_writes_eagerly():
    rig = make_rig(factory=make_hinfs_wb)
    fd = rig.vfs.open(rig.ctx, "/db", f.O_CREAT | f.O_RDWR)
    for i in range(4):
        rig.vfs.pwrite(rig.ctx, fd, i * 64, b"x" * 64)
        rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.pwrite(rig.ctx, fd, 4 * 64, b"x" * 64)
    assert rig.env.stats.count("hinfs_eager_writes") == 0


def test_unlink_discards_buffered_blocks_without_writeback(rig):
    before = rig.env.stats.bytes_written_nvmm
    rig.vfs.write_file(rig.ctx, "/shortlived", b"w" * (32 * 4096))
    rig.vfs.unlink(rig.ctx, "/shortlived")
    data_written = rig.env.stats.bytes_written_nvmm - before
    assert rig.env.stats.count("hinfs_discarded_blocks") == 32
    # Only metadata/journal traffic hit NVMM.
    assert data_written < 32 * 4096 / 4


def test_buffer_pressure_stalls_and_reclaims():
    """Writing far more than the buffer forces demand reclaim; data must
    stay correct and some stalls must be recorded."""
    rig = make_rig(hconfig=HiNFSConfig(buffer_bytes=64 * 4096))
    payload = bytes((i * 7) % 256 for i in range(512 * 4096))
    rig.vfs.write_file(rig.ctx, "/huge", payload, chunk=1 << 16)
    assert rig.env.stats.count("writeback_demand_stalls") > 0
    assert rig.vfs.read_file(rig.ctx, "/huge") == payload


def test_unmount_flushes_everything(rig):
    rig.vfs.write_file(rig.ctx, "/u", b"flushed at unmount" * 100)
    rig.vfs.unmount(rig.ctx)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/u") == b"flushed at unmount" * 100


def test_periodic_writeback_flushes_cold_blocks(rig):
    from repro.engine.scheduler import Scheduler

    sched = Scheduler(rig.env)

    def body(ctx):
        rig.vfs.write_file(ctx, "/cold", b"c" * 8192)
        yield
        # Idle for 12 simulated seconds: two periodic wakeups pass.
        ctx.charge(12_000_000_000)
        yield

    sched.spawn("w", body)
    sched.run()
    rig.env.background.advance_to(12_000_000_000)
    assert rig.env.stats.count("writeback_periodic_blocks") >= 2
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/cold") == b"c" * 8192


def test_journal_wrap_barrier_flushes_open_txs():
    rig = make_rig()
    # A tiny journal forces wraps quickly.
    rig.fs.journal.capacity = 256
    rig.fs.journal.reserve_slots = 64
    for i in range(100):
        rig.vfs.write_file(rig.ctx, "/f%d" % i, b"spam" * 256)
    for i in range(100):
        assert rig.vfs.read_file(rig.ctx, "/f%d" % i) == b"spam" * 256
    assert rig.fs.journal.open_transactions <= 100


def test_truncate_discards_dropped_range(rig):
    rig.vfs.write_file(rig.ctx, "/t", b"q" * 16384)
    rig.vfs.truncate(rig.ctx, "/t", 4096)
    assert rig.vfs.read_file(rig.ctx, "/t") == b"q" * 4096
    rig.vfs.write_file(rig.ctx, "/t2", b"")  # buffer still consistent


def test_sparse_lazy_write_reads_zeroes(rig):
    fd = rig.vfs.open(rig.ctx, "/sp", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 100_000, b"tail")
    data = rig.vfs.pread(rig.ctx, fd, 0, 100_004)
    assert data[:100_000] == b"\0" * 100_000
    assert data[100_000:] == b"tail"


def test_model_accuracy_populated_after_repeat_syncs(rig):
    fd = rig.vfs.open(rig.ctx, "/acc", f.O_CREAT | f.O_RDWR)
    for _ in range(5):
        rig.vfs.pwrite(rig.ctx, fd, 0, b"a" * 64)
        rig.vfs.fsync(rig.ctx, fd)
    assert rig.fs.benefit.accuracy is not None
    assert rig.fs.benefit.accuracy >= 0.5

"""Unit tests for the Buffer Benefit Model and ghost buffer."""

import pytest

from repro.core.benefit import STATE_EAGER, STATE_LAZY, BufferBenefitModel
from repro.core.config import HiNFSConfig
from repro.engine.env import SimEnv
from repro.nvmm.config import NVMMConfig

SEC = 1_000_000_000


@pytest.fixture()
def model():
    return BufferBenefitModel(SimEnv(), NVMMConfig(), HiNFSConfig())


def test_blocks_start_lazy(model):
    assert model.state_of(1, 0) == STATE_LAZY
    assert not model.is_eager(1, 0, now_ns=0, file_last_sync_ns=0)


def test_no_coalescing_sync_makes_block_eager(model):
    """One line written, immediately synced: N_cw == N_cf == 1, so
    Inequality (1) fails and the block goes Eager-Persistent."""
    model.record_write(1, 0, 0, 64, now_ns=100)
    assert model.on_sync(1, 0, now_ns=200) == STATE_EAGER
    assert model.is_eager(1, 0, now_ns=300, file_last_sync_ns=200)


def test_coalesced_writes_keep_block_lazy(model):
    """The same line written 10 times then synced: N_cw = 10, N_cf = 1,
    buffering wins."""
    for i in range(10):
        model.record_write(1, 0, 0, 64, now_ns=100 + i)
    assert model.on_sync(1, 0, now_ns=200) == STATE_LAZY
    assert not model.is_eager(1, 0, now_ns=300, file_last_sync_ns=200)


def test_append_pattern_goes_eager(model):
    """Varmail-style appends: every line written once before each sync,
    no coalescing -> eager."""
    offset = 0
    for _ in range(3):
        model.record_write(1, 0, offset % 4096, 64, now_ns=100)
        model.on_sync(1, 0, now_ns=200)
        offset += 64
    assert model.state_of(1, 0) == STATE_EAGER


def test_eager_reverts_after_quiet_period(model):
    model.record_write(1, 0, 0, 64, now_ns=0)
    model.on_sync(1, 0, now_ns=1)
    assert model.state_of(1, 0) == STATE_EAGER
    # 6 s later with no sync on the file: revert to lazy (5 s default).
    assert not model.is_eager(1, 0, now_ns=6 * SEC, file_last_sync_ns=1)
    assert model.state_of(1, 0) == STATE_LAZY


def test_eager_persists_while_syncs_keep_coming(model):
    model.record_write(1, 0, 0, 64, now_ns=0)
    model.on_sync(1, 0, now_ns=1)
    assert model.is_eager(1, 0, now_ns=2 * SEC, file_last_sync_ns=int(1.9 * SEC))


def test_old_writes_assumed_flushed_by_background(model):
    """If the last write is older than the periodic flush age, the sync
    would have found the block already clean: N_cf = 0 -> lazy wins."""
    model.record_write(1, 0, 0, 64, now_ns=0)
    assert model.on_sync(1, 0, now_ns=40 * SEC) == STATE_LAZY


def test_accuracy_tracking(model):
    # Sync 1: outcome eager (first evaluation, no prediction yet).
    model.record_write(1, 0, 0, 64, now_ns=0)
    model.on_sync(1, 0, now_ns=1)
    assert model.accuracy is None
    # Sync 2: same pattern -> same outcome -> accurate.
    model.record_write(1, 0, 0, 64, now_ns=2)
    model.on_sync(1, 0, now_ns=3)
    assert model.accuracy == 1.0
    # Sync 3: heavy coalescing -> lazy -> prediction flips -> inaccurate.
    for i in range(10):
        model.record_write(1, 0, 0, 64, now_ns=4 + i)
    model.on_sync(1, 0, now_ns=20)
    assert model.accuracy == pytest.approx(0.5)


def test_pending_blocks_resets(model):
    model.record_write(1, 3, 0, 64, now_ns=0)
    model.record_write(1, 7, 0, 64, now_ns=0)
    assert model.pending_blocks(1) == [3, 7]
    assert model.pending_blocks(1) == []


def test_drop_file_forgets_state(model):
    model.record_write(1, 0, 0, 64, now_ns=0)
    model.drop_file(1)
    assert model.state_of(1, 0) == STATE_LAZY
    assert model.pending_blocks(1) == []


def test_checker_disabled_never_eager():
    model = BufferBenefitModel(
        SimEnv(), NVMMConfig(), HiNFSConfig(enable_eager_checker=False)
    )
    model.record_write(1, 0, 0, 64, now_ns=0)
    model.on_sync(1, 0, now_ns=1)
    assert not model.is_eager(1, 0, now_ns=2, file_last_sync_ns=1)


def test_ghost_capacity_bounded():
    model = BufferBenefitModel(
        SimEnv(), NVMMConfig(), HiNFSConfig(), max_entries=10
    )
    for fb in range(50):
        model.record_write(1, fb, 0, 64, now_ns=0)
    assert len(model._entries) <= 10


def test_inequality_arithmetic_edge():
    """N_cw = 0 (sync with no intervening writes) must not divide by zero
    and counts as 'no benefit' -> eager."""
    model = BufferBenefitModel(SimEnv(), NVMMConfig(), HiNFSConfig())
    assert model.on_sync(9, 0, now_ns=100) == STATE_EAGER

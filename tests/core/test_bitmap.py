"""Unit and property tests for the Cacheline Bitmap."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmap import (
    FULL_MASK,
    CachelineBitmap,
    fully_covered_mask,
    iter_runs,
    iter_valid_runs,
    line_range_mask,
    popcount,
)
from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE, LINES_PER_BLOCK


def test_line_range_mask_single_line():
    assert line_range_mask(0, 64) == 0b1
    assert line_range_mask(64, 64) == 0b10
    assert line_range_mask(10, 5) == 0b1


def test_line_range_mask_paper_example():
    # The paper's example: writing bytes 0..112 touches lines 0 and 1.
    assert line_range_mask(0, 112) == 0b11


def test_line_range_mask_straddle():
    assert line_range_mask(60, 8) == 0b11


def test_line_range_mask_empty():
    assert line_range_mask(0, 0) == 0


def test_fully_covered_mask():
    # 0..112 fully covers only line 0 (line 1 is partial).
    assert fully_covered_mask(0, 112) == 0b1
    # 0..128 fully covers lines 0 and 1.
    assert fully_covered_mask(0, 128) == 0b11
    # 60..68 covers no full line.
    assert fully_covered_mask(60, 8) == 0
    assert fully_covered_mask(0, BLOCK_SIZE) == FULL_MASK


def test_mark_written_sets_valid_and_dirty():
    bm = CachelineBitmap()
    bm.mark_written(0, 112)
    assert bm.valid == 0b11
    assert bm.dirty == 0b11
    assert bm.dirty_lines == 2


def test_mark_fetched_sets_only_valid():
    bm = CachelineBitmap()
    bm.mark_fetched(0b100)
    assert bm.valid == 0b100
    assert bm.dirty == 0


def test_fetch_needed_paper_example():
    """Paper 3.2.1: writing 0..112 B needs only the second cacheline
    (64..128) fetched, not the whole block."""
    bm = CachelineBitmap()
    assert bm.fetch_needed(0, 112) == 0b10


def test_fetch_needed_aligned_write_needs_nothing():
    bm = CachelineBitmap()
    assert bm.fetch_needed(0, 128) == 0
    assert bm.fetch_needed(0, BLOCK_SIZE) == 0


def test_fetch_needed_skips_already_valid():
    bm = CachelineBitmap()
    bm.mark_fetched(0b10)
    assert bm.fetch_needed(0, 112) == 0


def test_fetch_needed_interior_unaligned():
    # Write 100..200: touches lines 1,2,3? 100//64=1, 199//64=3.
    # Fully covered: ceil(100/64)=2 .. 200//64=3 -> line 2 only.
    bm = CachelineBitmap()
    assert bm.fetch_needed(100, 100) == 0b1010


def test_clean_keeps_valid():
    bm = CachelineBitmap()
    bm.mark_written(0, 4096)
    bm.clean()
    assert bm.dirty == 0
    assert bm.valid == FULL_MASK


def test_iter_runs():
    assert list(iter_runs(0b1)) == [(0, 1)]
    assert list(iter_runs(0b1011)) == [(0, 2), (3, 1)]
    assert list(iter_runs(0)) == []
    assert list(iter_runs(FULL_MASK)) == [(0, LINES_PER_BLOCK)]


def test_iter_valid_runs_covers_everything():
    runs = list(iter_valid_runs(0b1100))
    assert runs == [(0, 2, False), (2, 2, True), (4, 60, False)]
    assert sum(n for _, n, _ in runs) == LINES_PER_BLOCK


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount(FULL_MASK) == LINES_PER_BLOCK


@settings(max_examples=100, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=BLOCK_SIZE - 1),
    length=st.integers(min_value=1, max_value=BLOCK_SIZE),
)
def test_mask_algebra(offset, length):
    length = min(length, BLOCK_SIZE - offset)
    touched = line_range_mask(offset, length)
    full = fully_covered_mask(offset, length)
    # Fully-covered lines are a subset of touched lines.
    assert full & ~touched == 0
    # Every byte of the range lies in a touched line.
    for byte in (offset, offset + length - 1):
        assert (touched >> (byte // CACHELINE_SIZE)) & 1
    # A fully covered line contributes exactly 64 bytes to the range.
    assert popcount(full) * CACHELINE_SIZE <= length


@settings(max_examples=100, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=BLOCK_SIZE - 1),
            st.integers(min_value=1, max_value=512),
        ),
        max_size=20,
    )
)
def test_dirty_subset_of_valid_invariant(writes):
    bm = CachelineBitmap()
    for offset, length in writes:
        length = min(length, BLOCK_SIZE - offset)
        fetch = bm.fetch_needed(offset, length)
        bm.mark_fetched(fetch)
        bm.mark_written(offset, length)
        assert bm.dirty & ~bm.valid == 0
    bm.clean()
    assert bm.dirty == 0

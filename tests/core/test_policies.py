"""Unit and property tests for the buffer replacement policies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import BufferBlock
from repro.core.policies import (
    ARCPolicy,
    LFUPolicy,
    LRWPolicy,
    POLICIES,
    TwoQPolicy,
    make_policy,
)

ALL = ["lrw", "lfu", "2q", "arc"]


def block(ino, fb):
    return BufferBlock(ino, fb, dram_block=fb, nvmm_block=fb + 100)


@pytest.mark.parametrize("name", ALL)
def test_basic_lifecycle(name):
    policy = make_policy(name, capacity_hint=64)
    a, b, c = block(1, 0), block(1, 1), block(1, 2)
    for item in (a, b, c):
        policy.on_buffered(item)
    assert len(policy) == 3
    assert policy.victim() is not None
    policy.on_evict(b)
    assert len(policy) == 2
    remaining = set(policy.iter_order())
    assert remaining == {a, c}


@pytest.mark.parametrize("name", ALL)
def test_victim_is_member(name):
    policy = make_policy(name, capacity_hint=32)
    blocks = [block(1, i) for i in range(10)]
    rng = random.Random(7)
    for item in blocks:
        policy.on_buffered(item)
    for _ in range(30):
        policy.on_write(rng.choice(blocks))
    victim = policy.victim()
    assert victim in blocks
    assert victim in policy.iter_order()


@pytest.mark.parametrize("name", ALL)
def test_empty_policy(name):
    policy = make_policy(name, capacity_hint=32)
    assert policy.victim() is None
    assert policy.iter_order() == []
    assert len(policy) == 0


def test_lrw_victim_is_least_recently_written():
    policy = LRWPolicy()
    a, b = block(1, 0), block(1, 1)
    policy.on_buffered(a)
    policy.on_buffered(b)
    policy.on_write(a)
    assert policy.victim() is b


def test_lfu_prefers_low_frequency():
    policy = LFUPolicy()
    hot, cold = block(1, 0), block(1, 1)
    policy.on_buffered(cold)
    policy.on_buffered(hot)
    for _ in range(5):
        policy.on_write(hot)
    assert policy.victim() is cold


def test_lfu_ties_break_by_recency():
    policy = LFUPolicy()
    first, second = block(1, 0), block(1, 1)
    policy.on_buffered(first)
    policy.on_buffered(second)
    assert policy.victim() is first


def test_2q_promotion_on_rewrite():
    policy = TwoQPolicy(kin=0.01, capacity_hint=16)
    probation, promoted = block(1, 0), block(1, 1)
    policy.on_buffered(probation)
    policy.on_buffered(promoted)
    policy.on_write(promoted)  # promoted to Am
    # With A1in over-quota, the probation block goes first.
    assert policy.victim() is probation


def test_2q_ghost_readmission():
    policy = TwoQPolicy(capacity_hint=16)
    item = block(1, 0)
    policy.on_buffered(item)
    policy.on_evict(item)  # remembered in A1out
    reborn = block(1, 0)  # same (ino, file_block)
    policy.on_buffered(reborn)
    # Straight to Am: a fresh probation block should be victimised first.
    probation = block(1, 5)
    policy.on_buffered(probation)
    assert policy.victim() in (probation, reborn)
    # Am member survives while probation exceeds its quota.
    policy2 = TwoQPolicy(kin=0.01, capacity_hint=16)
    policy2.on_buffered(item)
    policy2.on_evict(item)
    reborn = block(1, 0)
    policy2.on_buffered(reborn)
    probation = block(1, 5)
    policy2.on_buffered(probation)
    assert policy2.victim() is probation


def test_arc_ghost_hit_adapts_target():
    policy = ARCPolicy(capacity_hint=16)
    item = block(1, 0)
    policy.on_buffered(item)
    policy.on_evict(item)  # -> B1 ghost
    p_before = policy.p
    policy.on_buffered(block(1, 0))  # ghost hit in B1
    assert policy.p > p_before


def test_arc_rewrite_moves_to_t2():
    policy = ARCPolicy(capacity_hint=16)
    once, twice = block(1, 0), block(1, 1)
    policy.on_buffered(once)
    policy.on_buffered(twice)
    policy.on_write(twice)
    # t1 preferred while >= p: the once-written block goes first.
    assert policy.victim() is once


def test_make_policy_unknown_name():
    with pytest.raises(KeyError):
        make_policy("fifo")


def test_registry_complete():
    assert set(POLICIES) == set(ALL)


@pytest.mark.parametrize("name", ALL)
@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["insert", "write", "evict", "victim"]),
              st.integers(min_value=0, max_value=15)),
    max_size=120,
))
def test_policy_never_loses_or_duplicates_blocks(name, ops):
    """Membership invariant: iter_order() is exactly the live set."""
    policy = make_policy(name, capacity_hint=16)
    live = {}
    for op, fb in ops:
        if op == "insert" and fb not in live:
            item = block(1, fb)
            live[fb] = item
            policy.on_buffered(item)
        elif op == "write" and fb in live:
            policy.on_write(live[fb])
        elif op == "evict" and live:
            key = sorted(live)[fb % len(live)]
            policy.on_evict(live.pop(key))
        elif op == "victim":
            victim = policy.victim()
            assert (victim is None) == (not live)
            if victim is not None:
                assert victim in live.values()
        assert len(policy) == len(live)
        assert sorted(b.file_block for b in policy.iter_order()) == sorted(live)

"""Parallel writeback workers: shard ownership, stealing, determinism.

The pool replaces the single writeback timeline with
``nr_writeback_workers`` worker clocks; these tests pin down the
partitioning rules (shard owner first, tail-stealing for hot shards),
the per-worker accounting, and that one worker reproduces the old
single-task behaviour exactly.
"""

from repro.core import HiNFS, HiNFSConfig
from repro.core.writeback import WritebackPool, WritebackTask
from repro.engine.background import NEVER

from tests.fs.conftest import PmfsRig


def make_rig(**hconf):
    hconf.setdefault("buffer_bytes", 64 * 4096)
    return PmfsRig(fs_cls=HiNFS, hconfig=HiNFSConfig(**hconf))


def test_worker_zero_keeps_the_registered_timeline_name():
    rig = make_rig(nr_writeback_workers=4)
    pool = rig.fs.writeback
    assert pool.nr_workers == 4
    assert pool.workers[0].ctx is pool.ctx
    assert pool.ctx.name == "hinfs-writeback"
    assert [w.ctx.name for w in pool.workers[1:]] == [
        "hinfs-writeback-1", "hinfs-writeback-2", "hinfs-writeback-3",
    ]


def test_shards_are_partitioned_round_robin():
    rig = make_rig(nr_writeback_workers=3, buffer_shards=8)
    pool = rig.fs.writeback
    owned = [s for w in pool.workers for s in w.shards]
    assert sorted(owned) == list(range(8))
    for worker in pool.workers:
        assert all(s % 3 == worker.worker_id for s in worker.shards)


def test_writeback_task_alias_is_the_pool():
    assert WritebackTask is WritebackPool


def test_demand_reclaim_spreads_across_workers():
    rig = make_rig(nr_writeback_workers=4, reclaim_batch=32)
    rig.vfs.write_file(rig.ctx, "/spread", b"d" * (64 * 4096))
    assert rig.fs.buffer.free_blocks == 0
    freed = rig.fs.writeback.demand_reclaim(rig.ctx)
    assert freed > 0
    per_worker = [rig.env.stats.count("writeback_worker%d_blocks" % w)
                  for w in range(4)]
    assert sum(per_worker) == freed
    # A 32-block batch over many files cannot land on a single worker.
    assert sum(1 for n in per_worker if n > 0) >= 2


def test_single_hot_shard_is_stolen_from():
    rig = make_rig(nr_writeback_workers=4, buffer_shards=4,
                   reclaim_batch=32)
    # One big file: every block shares an inode, hence one shard/owner.
    rig.vfs.write_file(rig.ctx, "/hot", b"h" * (64 * 4096))
    assert rig.fs.buffer.free_blocks == 0
    freed = rig.fs.writeback.demand_reclaim(rig.ctx)
    assert freed > 0
    assert rig.env.stats.count("writeback_steals") > 0
    assert rig.env.stats.count("writeback_stolen_blocks") > 0
    busy = sum(1 for w in range(4)
               if rig.env.stats.count("writeback_worker%d_blocks" % w))
    assert busy >= 2


def test_parallel_demand_reclaim_is_not_slower():
    """Four timelines draining a batch finish no later than one."""
    def stall_ns(workers):
        rig = make_rig(nr_writeback_workers=workers)
        rig.vfs.write_file(rig.ctx, "/fill", b"d" * (64 * 4096))
        before = rig.ctx.now
        rig.fs.writeback.demand_reclaim(rig.ctx)
        return rig.ctx.now - before

    assert stall_ns(4) <= stall_ns(1)


def test_one_worker_matches_pool_of_one():
    """The pool with one worker must reproduce the legacy behaviour:
    same freed count, same foreground stall."""
    results = []
    for _ in range(2):
        rig = make_rig(nr_writeback_workers=1)
        rig.vfs.write_file(rig.ctx, "/fill", b"d" * (64 * 4096))
        before = rig.ctx.now
        freed = rig.fs.writeback.demand_reclaim(rig.ctx)
        results.append((freed, rig.ctx.now - before))
    assert results[0] == results[1]


def test_pressure_signals_coalesce_without_invalidating_cache():
    """Repeated pressure signals under sustained saturation must not
    re-invalidate the registry's cached background minimum: the first
    signal pulls the wakeup earlier in place, later (no-earlier) signals
    are pure no-ops."""
    rig = make_rig()
    pool = rig.fs.writeback
    registry = rig.env.background
    # Warm the registry cache (PR 7's idle fast path).
    registry.advance_to(0)
    assert not registry._min_due_stale
    pool.signal_pressure(1_000)
    assert pool.next_due_ns() == 1_000
    # The cached minimum was lowered in place, not invalidated.
    assert not registry._min_due_stale
    assert registry._min_due_ns == 1_000
    # Later signals at the same or later times change nothing.
    pool.signal_pressure(1_000)
    pool.signal_pressure(5_000)
    assert pool.next_due_ns() == 1_000
    assert registry._min_due_ns == 1_000
    # An *earlier* signal still wins.
    pool.signal_pressure(500)
    assert pool.next_due_ns() == 500
    assert registry._min_due_ns == 500


def test_note_earlier_respects_stale_cache():
    rig = make_rig()
    registry = rig.env.background
    registry.invalidate()
    registry.note_earlier(42)  # stale: recompute will see it anyway
    assert registry._min_due_stale
    # The recompute still finds the true minimum from the tasks.
    registry.advance_to(0)
    assert not registry._min_due_stale


def test_quiesce_rewinds_workers_and_signals():
    rig = make_rig(nr_writeback_workers=4)
    pool = rig.fs.writeback
    rig.vfs.write_file(rig.ctx, "/fill", b"d" * (64 * 4096))
    pool.demand_reclaim(rig.ctx)
    assert any(w.ctx.now > 0 for w in pool.workers)
    pool.quiesce()
    assert all(w.ctx.now == 0 for w in pool.workers)
    assert pool._pressure_ns == NEVER
    assert pool.next_due_ns() == pool.config.periodic_interval_ns

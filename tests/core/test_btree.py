"""Unit and property tests for the DRAM Block Index B-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.btree import BTree


def test_empty_tree():
    tree = BTree()
    assert len(tree) == 0
    assert tree.get(1) is None
    assert 1 not in tree
    assert tree.items() == []


def test_insert_and_get():
    tree = BTree()
    assert tree.insert(5, "five")
    assert tree.get(5) == "five"
    assert 5 in tree
    assert len(tree) == 1


def test_insert_replaces():
    tree = BTree()
    tree.insert(5, "a")
    assert not tree.insert(5, "b")
    assert tree.get(5) == "b"
    assert len(tree) == 1


def test_remove_returns_value():
    tree = BTree()
    tree.insert(7, "seven")
    assert tree.remove(7) == "seven"
    assert tree.get(7) is None
    assert len(tree) == 0


def test_remove_missing_returns_none():
    tree = BTree()
    tree.insert(1, "x")
    assert tree.remove(2) is None
    assert len(tree) == 1


def test_items_sorted():
    tree = BTree(min_degree=2)
    for key in [5, 1, 9, 3, 7, 2, 8]:
        tree.insert(key, key * 10)
    assert tree.keys() == [1, 2, 3, 5, 7, 8, 9]
    assert tree.items()[0] == (1, 10)


def test_many_inserts_keep_invariants():
    tree = BTree(min_degree=2)
    for key in range(500):
        tree.insert(key * 37 % 1000, key)
    tree.check_invariants()


def test_sequential_insert_then_delete_all():
    tree = BTree(min_degree=3)
    for key in range(200):
        tree.insert(key, str(key))
    for key in range(200):
        assert tree.remove(key) == str(key)
        tree.check_invariants()
    assert len(tree) == 0


def test_min_degree_validation():
    with pytest.raises(ValueError):
        BTree(min_degree=1)


def test_clear():
    tree = BTree()
    tree.insert(1, "a")
    tree.clear()
    assert len(tree) == 0
    assert tree.get(1) is None


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "get"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=200,
    ),
    degree=st.integers(min_value=2, max_value=6),
)
def test_btree_matches_dict_model(ops, degree):
    """The B-tree must behave exactly like a dict, with invariants held."""
    tree = BTree(min_degree=degree)
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key * 2)
            model[key] = key * 2
        elif op == "remove":
            assert tree.remove(key) == model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
        assert len(tree) == len(model)
    tree.check_invariants()
    assert tree.items() == sorted(model.items())

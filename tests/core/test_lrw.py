"""Unit tests for the LRW list."""

from repro.core.lrw import LRWList, LRWNode


class Item(LRWNode):
    __slots__ = ("tag",)

    def __init__(self, tag):
        super().__init__()
        self.tag = tag


def tags(nodes):
    return [n.tag for n in nodes]


def test_empty_list():
    lrw = LRWList()
    assert len(lrw) == 0
    assert lrw.lrw_victim() is None
    assert lrw.iter_lrw_order() == []


def test_touch_inserts_in_order():
    lrw = LRWList()
    a, b, c = Item("a"), Item("b"), Item("c")
    for node in (a, b, c):
        lrw.touch(node)
    assert tags(lrw.iter_lrw_order()) == ["a", "b", "c"]
    assert lrw.lrw_victim() is a
    assert len(lrw) == 3


def test_touch_moves_to_mrw():
    lrw = LRWList()
    a, b, c = Item("a"), Item("b"), Item("c")
    for node in (a, b, c):
        lrw.touch(node)
    lrw.touch(a)
    assert tags(lrw.iter_lrw_order()) == ["b", "c", "a"]
    assert lrw.lrw_victim() is b


def test_remove():
    lrw = LRWList()
    a, b = Item("a"), Item("b")
    lrw.touch(a)
    lrw.touch(b)
    lrw.remove(a)
    assert tags(lrw.iter_lrw_order()) == ["b"]
    assert len(lrw) == 1
    assert a not in lrw
    assert b in lrw


def test_remove_absent_is_noop():
    lrw = LRWList()
    a = Item("a")
    lrw.remove(a)
    assert len(lrw) == 0


def test_remove_then_touch_reinserts():
    lrw = LRWList()
    a, b = Item("a"), Item("b")
    lrw.touch(a)
    lrw.touch(b)
    lrw.remove(a)
    lrw.touch(a)
    assert tags(lrw.iter_lrw_order()) == ["b", "a"]


def test_victim_order_is_fifo_for_distinct_writes():
    lrw = LRWList()
    items = [Item(i) for i in range(10)]
    for item in items:
        lrw.touch(item)
    victims = []
    while lrw.lrw_victim() is not None:
        victim = lrw.lrw_victim()
        lrw.remove(victim)
        victims.append(victim.tag)
    assert victims == list(range(10))

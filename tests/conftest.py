"""Repo-wide test configuration: Hypothesis profiles.

CI runs with ``HYPOTHESIS_PROFILE=ci`` (and a fixed ``--hypothesis-seed``)
so property tests are deterministic across runs; the default profile
keeps local runs fast.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "default",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=30,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    deadline=None,
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

"""The trace spine: spans, the bounded ring, and Chrome export."""

import io
import json

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.obs.trace import (
    LAYER_FS,
    LAYER_NVMM,
    LAYER_VFS,
    Span,
    TraceRing,
    chrome_trace,
    chrome_trace_events,
    dump_chrome_trace,
    layer_duration_sums,
)


def test_span_layer_totals_include_own_layer_and_phases():
    span = Span(1, "write", "t0", 100, layer=LAYER_VFS)
    span.add_phase(LAYER_FS, 110, 160)
    span.add_phase(LAYER_NVMM, 120, 150)
    span.add_phase(LAYER_FS, 170, 180)
    span.close(300)
    assert span.duration_ns == 200
    assert span.layer_totals() == {
        LAYER_VFS: 200, LAYER_FS: 60, LAYER_NVMM: 30,
    }


def test_ring_is_bounded_and_counts_evictions():
    ring = TraceRing(capacity=4)
    for i in range(10):
        span = ring.begin("op", "t0", i, i)
        span.close(i + 1)
        ring.record(span)
    assert len(ring) == 4
    assert ring.recorded == 10
    assert ring.dropped == 6
    assert [s.req_id for s in ring.spans()] == [6, 7, 8, 9]


def test_chrome_events_cover_spans_phases_and_thread_names():
    span = Span(5, "writev", "fg-0", 1000, layer=LAYER_VFS,
                meta={"iovecs": 8})
    span.add_phase(LAYER_FS, 1100, 1400)
    span.close(2000)
    events = chrome_trace_events([span])
    complete = [e for e in events if e["ph"] == "X"]
    meta_events = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2
    top = next(e for e in complete if e["cat"] == LAYER_VFS)
    assert top["name"] == "writev"
    assert top["ts"] == 1.0 and top["dur"] == 1.0  # microseconds
    assert top["args"]["req_id"] == 5
    assert top["args"]["dur_ns"] == 1000
    assert top["args"]["iovecs"] == 8
    phase = next(e for e in complete if e["cat"] == LAYER_FS)
    assert phase["args"]["dur_ns"] == 300
    assert meta_events[0]["args"]["name"] == "fg-0"
    assert layer_duration_sums(events) == {LAYER_VFS: 1000, LAYER_FS: 300}


def test_dump_chrome_trace_is_valid_json():
    span = Span(1, "read", "t", 0)
    span.close(10)
    out = io.StringIO()
    dump_chrome_trace([span], out)
    doc = json.loads(out.getvalue())
    assert doc["traceEvents"]
    assert doc == chrome_trace([span])


def test_context_span_feeds_stats_and_ring_identically():
    """The single-instrumentation-point contract: closing a span feeds
    syscall_time_ns, layer_time_ns, and the ring from one measurement."""
    env = SimEnv()
    ring = env.enable_tracing(capacity=16)
    ctx = ExecContext(env, "t0")
    with ctx.span("write"):
        ctx.charge(500)
        with ctx.layer(LAYER_FS):
            ctx.charge(200)
    assert env.stats.syscall_time_ns["write"] == 700
    assert env.stats.layer_time_ns == {LAYER_VFS: 700, LAYER_FS: 200}
    spans = ring.spans()
    assert len(spans) == 1
    exported = layer_duration_sums(chrome_trace_events(spans))
    assert exported == dict(env.stats.layer_time_ns)


def test_traced_run_layer_sums_match_stats_end_to_end():
    """Acceptance: a traced workload's exported per-layer durations sum
    exactly to the run's SimStats totals."""
    from repro.bench.runner import run_workload
    from repro.workloads.filebench import Fileserver

    workload = Fileserver(threads=2, files_per_thread=5, duration_ops=40)
    result = run_workload("hinfs", workload, device_size=64 << 20,
                          trace_capacity=1 << 16)
    ring = result.trace
    assert ring is not None and ring.recorded > 0 and ring.dropped == 0
    doc = chrome_trace(ring.spans())
    json.loads(json.dumps(doc))  # exported object is valid JSON
    sums = layer_duration_sums(doc["traceEvents"])
    assert sums == dict(result.stats.layer_time_ns)
    assert sums[LAYER_VFS] == sum(result.stats.syscall_time_ns.values())
    assert sums.get("fs", 0) > 0


def test_untraced_run_has_no_ring_and_no_layer_times():
    from repro.bench.runner import run_workload
    from repro.workloads.filebench import Fileserver

    workload = Fileserver(threads=1, files_per_thread=5, duration_ops=10)
    result = run_workload("hinfs", workload, device_size=64 << 20)
    assert result.trace is None
    assert dict(result.stats.layer_time_ns) == {}


def test_untraced_spans_still_record_syscall_time():
    env = SimEnv()  # tracing off
    ctx = ExecContext(env, "t0")
    with ctx.span("read") as sp:
        ctx.charge(123)
    assert sp is None
    assert env.stats.syscall_time_ns["read"] == 123
    assert dict(env.stats.layer_time_ns) == {}

"""Tests for the macrobenchmarks (postmark, tpcc, kernel-grep/make)."""

from repro.bench.runner import run_workload
from repro.workloads.macro import KernelGrep, KernelMake, Postmark, TPCC


def run_small(workload, fs_name="pmfs"):
    return run_workload(fs_name, workload, device_size=96 << 20)


def test_postmark_completes_and_deletes_everything():
    workload = Postmark(initial_files=30, transactions=60)
    result = run_small(workload)
    assert result.stats.syscall_counts.get("unlink", 0) >= 30
    assert result.ops > 100


def test_postmark_creates_and_appends():
    workload = Postmark(initial_files=20, transactions=50)
    result = run_small(workload)
    assert result.stats.count("app_bytes_written") > 0
    assert result.stats.syscall_counts.get("read", 0) > 0


def test_postmark_short_lived_files_benefit_hinfs():
    times = {}
    for fs in ("pmfs", "hinfs"):
        workload = Postmark(initial_files=30, transactions=150)
        times[fs] = run_small(workload, fs).elapsed_ns
    assert times["hinfs"] < 0.8 * times["pmfs"]


def test_tpcc_is_fsync_dominated():
    workload = TPCC(transactions=80)
    result = run_small(workload)
    assert result.fsync_byte_fraction > 0.9
    assert result.stats.syscall_counts["fsync"] >= 80


def test_tpcc_checkpoint_syncs_tables():
    workload = TPCC(transactions=60, checkpoint_every=20)
    result = run_small(workload)
    # 60 WAL commits + 3 checkpoints' worth of table fsyncs.
    assert result.stats.syscall_counts["fsync"] > 60


def test_kernel_grep_reads_everything_writes_nothing():
    workload = KernelGrep()
    workload.dirs, workload.files_per_dir = 4, 8
    result = run_small(workload)
    assert result.stats.syscall_counts.get("write", 0) == 0
    assert result.stats.syscall_counts["read"] > 32


def test_kernel_make_writes_objects_without_fsync():
    workload = KernelMake()
    workload.dirs, workload.files_per_dir = 4, 8
    result = run_small(workload)
    assert result.stats.syscall_counts.get("fsync", 0) == 0
    assert result.stats.count("app_bytes_written") > 0


def test_kernel_make_faster_on_hinfs():
    times = {}
    for fs in ("pmfs", "hinfs"):
        workload = KernelMake()
        workload.dirs, workload.files_per_dir = 6, 10
        times[fs] = run_small(workload, fs).elapsed_ns
    assert times["hinfs"] < 0.8 * times["pmfs"]


def test_kernel_grep_parity_between_hinfs_and_pmfs():
    times = {}
    for fs in ("pmfs", "hinfs"):
        workload = KernelGrep()
        workload.dirs, workload.files_per_dir = 4, 10
        times[fs] = run_small(workload, fs).elapsed_ns
    ratio = times["hinfs"] / times["pmfs"]
    assert 0.9 < ratio < 1.1, ratio


def test_macro_threads_split_work():
    workload = KernelGrep(threads=2)
    workload.dirs, workload.files_per_dir = 4, 8
    result = run_small(workload)
    assert result.stats.syscall_counts["read"] > 32

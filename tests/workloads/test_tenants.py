"""Fast smoke profile for the multi-tenant serving harness (tier-1).

The full 500-tenant experiment lives in ``hinfs-bench tenants`` (CI's
bench-tenants job); these tests run tens of tenants in a few seconds and
pin the harness's contracts: every arrival mode completes, summaries are
deterministic, shed traffic is retried and only the shed class pays.
"""

from repro.bench.experiments import tenants_overload
from repro.bench.experiments.common import SMALL
from repro.bench.runner import run_workload
from repro.fs.qos import PRIO_BRONZE, PRIO_GOLD, QosController
from repro.workloads.tenants import (
    MODE_BURST,
    MODE_CLOSED,
    MODE_OPEN,
    TenantFleet,
    TenantSpec,
)


def _run_mixed(n_tenants=30, seed=7, fs_name="hinfs", qos=True):
    fleet = TenantFleet.mixed(n_tenants, ops=8, think_ns=100_000,
                              interval_ns=300_000, seed=seed)
    holder = []

    def setup(env, fs, vfs):
        controller = QosController(env, 4 << 30,
                                   buffer=getattr(fs, "buffer", None))
        vfs.attach_qos(controller)
        fleet.register_all(controller)
        holder.append(controller)

    run_workload(fs_name, fleet, device_size=SMALL.device_size,
                 hinfs_config=SMALL.hinfs_config(),
                 setup=setup if qos else None)
    return fleet


def test_mixed_fleet_completes_every_mode():
    fleet = _run_mixed()
    summary = fleet.summarize()
    assert summary["tenants"] == 30
    assert summary["ops"] == 30 * 8
    assert summary["dropped"] == 0
    assert summary["p50"] <= summary["p99"] <= summary["p999"]
    assert set(summary["classes"]) == {"bronze", "silver", "gold"}
    modes = {s.mode for s in fleet.specs}
    assert modes == {MODE_CLOSED, MODE_OPEN, MODE_BURST}


def test_fleet_summary_is_deterministic():
    first = _run_mixed(seed=11).summarize()
    second = _run_mixed(seed=11).summarize()
    assert first == second
    assert _run_mixed(seed=12).summarize() != first


def test_fleet_runs_without_qos_attached():
    summary = _run_mixed(qos=False).summarize()
    assert summary["ops"] == 30 * 8
    assert summary["shed"] == 0


def test_overload_sheds_only_bronze_and_holds_gold():
    """Tiny overload leg: a bronze O_SYNC flood next to gold, admission
    control on -- bronze is shed, gold is untouched."""
    specs = [
        TenantSpec(tid, weight=1, priority=PRIO_BRONZE, mode=MODE_OPEN,
                   ops=40, io_size=32 << 10, read_fraction=0.0,
                   interval_ns=100_000, sync=True)
        for tid in range(12)
    ] + [
        TenantSpec(12 + tid, weight=4, priority=PRIO_GOLD, mode=MODE_OPEN,
                   ops=40, io_size=4096, read_fraction=0.5,
                   interval_ns=200_000, sync=True)
        for tid in range(4)
    ]
    fleet = TenantFleet(specs, seed=3)
    holder = []

    def setup(env, fs, vfs):
        controller = QosController(env, 32 << 30,
                                   buffer=getattr(fs, "buffer", None),
                                   slot_ceiling_ns=150_000)
        vfs.attach_qos(controller)
        fleet.register_all(controller)
        holder.append((controller, env))

    run_workload("hinfs", fleet, device_size=SMALL.device_size,
                 hinfs_config=SMALL.hinfs_config(buffer_bytes=2 << 20),
                 setup=setup)
    controller, env = holder[0]
    summary = fleet.summarize()
    assert env.stats.count("qos_overload_enters") > 0
    assert env.stats.count("qos_shed_ops_prio_%d" % PRIO_BRONZE) > 0
    assert summary["classes"]["gold"]["shed"] == 0
    assert summary["classes"]["gold"]["dropped"] == 0
    # Gold's tail stays orders of magnitude under the flood's self-damage.
    assert summary["classes"]["gold"]["p999"] \
        < summary["classes"]["bronze"]["p50"]


def test_experiment_shape_check_rejects_collapse_in_qos_on():
    """check_shape is a real gate: hand it a QoS-on gold tail above the
    SLO and it must fail."""
    import copy
    import pytest

    _tables, data = tenants_overload.run(
        scale=SMALL, file_systems=("hinfs",), n_tenants=20,
        overload_tenants=16)
    # The real (tiny) run may or may not hold the full-size shape; only
    # the mutation behaviour is under test here.
    broken = copy.deepcopy(data)
    broken["overload"]["qos_on"]["classes"]["gold"]["p999"] = 10**12
    with pytest.raises(AssertionError):
        tenants_overload.check_shape(broken)

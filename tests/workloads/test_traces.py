"""Tests for trace format, synthesis, and replay."""

import io

import pytest

from repro.bench.runner import run_workload
from repro.workloads.traces import (
    SYNTHESIZERS,
    SyntheticTrace,
    TraceRecord,
    TraceReplayWorkload,
    dump_trace,
    load_trace,
    synthesize_facebook,
    synthesize_lasr,
    synthesize_usr0,
    synthesize_usr1,
)


def test_record_roundtrip():
    record = TraceRecord("write", "/a/b", 4096, 512)
    parsed = TraceRecord.from_line(record.to_line())
    assert (parsed.op, parsed.path, parsed.offset, parsed.size) == (
        "write", "/a/b", 4096, 512)


def test_record_rejects_unknown_op():
    with pytest.raises(ValueError):
        TraceRecord("mmap", "/x")


def test_record_rejects_malformed_line():
    with pytest.raises(ValueError):
        TraceRecord.from_line("write /x")


def test_dump_and_load_trace():
    records = [TraceRecord("write", "/f", 0, 10), TraceRecord("fsync", "/f")]
    buf = io.StringIO()
    dump_trace(records, buf)
    buf.seek(0)
    loaded = load_trace(buf)
    assert len(loaded) == 2
    assert loaded[1].op == "fsync"


def test_fsync_byte_stats():
    trace = SyntheticTrace("t", [
        TraceRecord("write", "/a", 0, 100),
        TraceRecord("write", "/b", 0, 50),
        TraceRecord("fsync", "/a"),
        TraceRecord("write", "/a", 0, 25),  # written after the sync
    ])
    total, fsynced = trace.fsync_byte_stats()
    assert total == 175
    assert fsynced == 100


def test_fsync_stats_unlink_discards_pending():
    trace = SyntheticTrace("t", [
        TraceRecord("write", "/a", 0, 100),
        TraceRecord("unlink", "/a"),
        TraceRecord("fsync", "/a"),
    ])
    assert trace.fsync_byte_stats() == (100, 0)


def test_synthesizers_are_deterministic():
    a = synthesize_usr0(ops=200)
    b = synthesize_usr0(ops=200)
    assert [r.to_line() for r in a.records] == [r.to_line() for r in b.records]


def test_lasr_has_no_fsync():
    trace = synthesize_lasr(ops=1000)
    assert trace.fsync_fraction == 0.0
    assert all(r.op != "fsync" for r in trace.records)


def test_facebook_small_and_synced():
    trace = synthesize_facebook(ops=1000)
    writes = [r for r in trace.records if r.op == "write"]
    assert max(r.size for r in writes) <= 1024
    assert trace.fsync_fraction > 0.6


def test_usr_traces_mixed_sync():
    for synth in (synthesize_usr0, synthesize_usr1):
        frac = synth(ops=1500).fsync_fraction
        assert 0.2 < frac < 0.9, frac


def test_all_synthesizers_produce_requested_ops():
    for name, synth in SYNTHESIZERS.items():
        trace = synth(ops=300)
        # fsyncs are injected inline, so at least `ops` records exist.
        assert len(trace.records) >= 300, name


def test_replay_runs_on_pmfs():
    trace = synthesize_usr0(ops=300)
    result = run_workload("pmfs", TraceReplayWorkload(trace),
                          device_size=64 << 20)
    assert result.ops > 300  # opens/closes add syscalls
    assert result.stats.syscall_time_ns.get("write", 0) > 0


def test_replay_unlinked_files_handled():
    trace = SyntheticTrace("t", [
        TraceRecord("write", "/t/f0", 0, 100),
        TraceRecord("unlink", "/t/f0"),
        TraceRecord("read", "/t/f0", 0, 100),  # recreated on demand
    ])
    result = run_workload("pmfs", TraceReplayWorkload(trace),
                          device_size=64 << 20)
    assert result.ops > 0

"""Tests for the filebench personalities and the fio generator."""

import pytest

from repro.bench.runner import run_workload
from repro.workloads.base import FreeContext, Workload, payload, zipf_index
from repro.workloads.filebench import Fileserver, Varmail, Webproxy, Webserver
from repro.workloads.fio import FioWorkload


def run_small(workload, fs_name="pmfs", **kw):
    return run_workload(fs_name, workload, device_size=64 << 20, **kw)


def test_payload_deterministic_and_sized():
    assert payload(100, 1) == payload(100, 1)
    assert payload(100, 1) != payload(100, 2)
    assert len(payload(123456)) == 123456
    assert payload(0) == b""


def test_zipf_index_bounds_and_skew():
    import random

    rng = random.Random(1)
    picks = [zipf_index(rng, 100) for _ in range(2000)]
    assert all(0 <= p < 100 for p in picks)
    # Heavily skewed towards low indexes.
    assert sum(1 for p in picks if p < 10) > len(picks) * 0.3


def test_workload_rng_deterministic():
    w = Fileserver(seed=7)
    assert w.rng(1).random() == Fileserver(seed=7).rng(1).random()
    assert w.rng(1).random() != w.rng(2).random()


def test_free_context_charges_nothing():
    from repro.engine.env import SimEnv

    ctx = FreeContext(SimEnv(), "free")
    ctx.charge(10_000)
    ctx.sync_to(99_999)
    assert ctx.now == 0
    assert ctx.free


@pytest.mark.parametrize("cls", [Fileserver, Webserver, Webproxy, Varmail])
def test_personality_runs_and_counts_ops(cls):
    workload = cls(threads=2, files_per_thread=10, duration_ops=20)
    result = run_small(workload, duration_ns=50_000_000)
    assert result.ops > 50
    assert result.throughput > 0


def test_fileserver_mixes_creates_and_deletes():
    workload = Fileserver(threads=1, files_per_thread=10, duration_ops=50)
    result = run_small(workload)
    counts = result.stats.syscall_counts
    assert counts.get("unlink", 0) > 0
    assert counts.get("write", 0) > 0
    assert counts.get("read", 0) > 0


def test_varmail_issues_fsyncs():
    workload = Varmail(threads=1, files_per_thread=10, duration_ops=30)
    result = run_small(workload)
    assert result.stats.syscall_counts.get("fsync", 0) >= 30
    assert result.fsync_byte_fraction > 0.5


def test_webserver_is_read_dominated():
    workload = Webserver(threads=1, files_per_thread=20, duration_ops=30)
    result = run_small(workload)
    counts = result.stats.syscall_counts
    assert counts["read"] > 3 * counts["write"]


def test_webproxy_files_are_short_lived():
    workload = Webproxy(threads=1, files_per_thread=10, duration_ops=60)
    result = run_small(workload, fs_name="hinfs")
    assert result.stats.syscall_counts.get("unlink", 0) >= 50


def test_fileserver_io_size_knob_controls_request_size():
    small = Fileserver(threads=1, files_per_thread=5, duration_ops=10,
                       io_size=512, mean_file_size=4096)
    result = run_small(small)
    writes = result.stats.syscall_counts["write"]
    written = result.stats.count("app_bytes_written")
    assert written / writes <= 4096


def test_fio_respects_ratio_and_size():
    workload = FioWorkload(io_size=4096, file_size=1 << 20,
                           read_fraction=0.5, ops_per_thread=400)
    result = run_small(workload)
    counts = result.stats.syscall_counts
    total = counts["read"] + counts["write"]
    assert total >= 400
    assert 0.35 < counts["read"] / total < 0.65


def test_fio_prepare_preallocates():
    workload = FioWorkload(io_size=64, file_size=1 << 20, ops_per_thread=10)
    result = run_small(workload)
    # Reads at random offsets in the preallocated file return real data,
    # so read syscall time is nonzero.
    assert result.stats.syscall_time_ns.get("read", 0) > 0


def test_base_workload_interface():
    w = Workload()
    with pytest.raises(NotImplementedError):
        w.make_thread_body(None, 0)

"""Unit tests for the timed NVMM and DRAM devices."""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import DRAMDevice, NVMMDevice


@pytest.fixture()
def env():
    return SimEnv()


@pytest.fixture()
def cfg():
    return NVMMConfig()


def make_nvmm(env, cfg, size=1 << 16):
    return NVMMDevice(env, cfg, size)


def test_persistent_write_roundtrip_and_cost(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.write_persistent(ctx, 0, b"x" * 4096)
    # 64 lines * 200 ns = 12.8 us on one writer slot.
    assert ctx.now == 64 * 200
    assert dev.read(ctx, 0, 4096) == b"x" * 4096
    assert env.stats.bytes_written_nvmm == 4096


def test_unaligned_persistent_write_pays_straddle(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.write_persistent(ctx, 60, b"ab cd efg")  # 9 bytes across 2 lines
    assert ctx.now == 2 * 200


def test_read_costs_dram_speed(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.read(ctx, 0, 4096)
    assert ctx.now == cfg.load_cost_ns(4096)
    assert env.stats.bytes_read_nvmm == 4096


def test_cached_write_is_cheap_but_volatile(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.write_cached(ctx, 0, b"y" * 64)
    assert ctx.now < cfg.nvmm_persist_cost_ns(1)
    dev.crash()
    assert dev.read(ctx, 0, 64) == b"\0" * 64


def test_clflush_persists_and_pays(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.write_cached(ctx, 0, b"y" * 64)
    before = ctx.now
    assert dev.clflush(ctx, 0, 64) == 1
    assert ctx.now == before + 200
    dev.crash()
    assert dev.read(ctx, 0, 64) == b"y" * 64


def test_clflush_clean_range_is_free(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    before = ctx.now
    assert dev.clflush(ctx, 0, 4096) == 0
    assert ctx.now == before


def test_concurrent_writers_queue_for_slots(env, cfg):
    dev = make_nvmm(env, cfg)
    slots = cfg.nvmm_writer_slots
    ctxs = [ExecContext(env, "t%d" % i) for i in range(slots + 1)]
    for ctx in ctxs:
        dev.write_persistent(ctx, 0, b"z" * 64)
    times = sorted(c.now for c in ctxs)
    # The first `slots` writers finish together; the extra one queues.
    assert times[:slots] == [200] * slots
    assert times[-1] == 400


def test_fence_charges_fixed_cost(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.fence(ctx)
    assert ctx.now == cfg.fence_ns


def test_flush_all_persists_everything(env, cfg):
    dev = make_nvmm(env, cfg)
    ctx = ExecContext(env, "t")
    dev.write_cached(ctx, 0, b"a")
    dev.write_cached(ctx, 4096, b"b")
    dev.flush_all(ctx)
    dev.crash()
    assert dev.read(ctx, 0, 1) == b"a"
    assert dev.read(ctx, 4096, 1) == b"b"


def test_dram_device_roundtrip_and_volatility(env, cfg):
    dram = DRAMDevice(env, cfg, 8192)
    ctx = ExecContext(env, "t")
    dram.write(ctx, 100, b"hello")
    assert dram.read(ctx, 100, 5) == b"hello"
    assert env.stats.bytes_written_dram == 5
    dram.crash()
    assert dram.read(ctx, 100, 5) == b"\0" * 5


def test_dram_write_much_cheaper_than_nvmm(env, cfg):
    dram = DRAMDevice(env, cfg, 1 << 20)
    nvmm = make_nvmm(env, cfg, 1 << 20)
    c1 = ExecContext(env, "dram")
    c2 = ExecContext(env, "nvmm")
    dram.write(c1, 0, b"x" * 4096)
    nvmm.write_persistent(c2, 0, b"x" * 4096)
    assert c2.now > 5 * c1.now


def test_two_devices_share_slots_in_same_env(env, cfg):
    first = make_nvmm(env, cfg)
    second = NVMMDevice(env, cfg, 4096)
    assert first.write_slots is second.write_slots

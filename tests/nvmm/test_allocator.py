"""Unit and property tests for the bitmap block allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvmm.allocator import BlockAllocator, OutOfSpaceError


def test_alloc_returns_unique_blocks():
    alloc = BlockAllocator(10)
    blocks = [alloc.alloc() for _ in range(10)]
    assert sorted(blocks) == list(range(10))


def test_exhaustion_raises():
    alloc = BlockAllocator(2)
    alloc.alloc()
    alloc.alloc()
    with pytest.raises(OutOfSpaceError):
        alloc.alloc()


def test_free_allows_reuse():
    alloc = BlockAllocator(1)
    block = alloc.alloc()
    alloc.free(block)
    assert alloc.alloc() == block


def test_double_free_rejected():
    alloc = BlockAllocator(4)
    block = alloc.alloc()
    alloc.free(block)
    with pytest.raises(ValueError):
        alloc.free(block)


def test_free_unallocated_rejected():
    alloc = BlockAllocator(4)
    with pytest.raises(ValueError):
        alloc.free(0)


def test_out_of_range_rejected():
    alloc = BlockAllocator(4, first_block=10)
    with pytest.raises(ValueError):
        alloc.free(3)
    with pytest.raises(ValueError):
        alloc.is_allocated(14)


def test_first_block_offset():
    alloc = BlockAllocator(3, first_block=100)
    assert alloc.alloc() == 100
    assert alloc.alloc() == 101


def test_counts():
    alloc = BlockAllocator(5)
    assert (alloc.free_count, alloc.used_count) == (5, 0)
    alloc.alloc()
    assert (alloc.free_count, alloc.used_count) == (4, 1)


def test_alloc_many():
    alloc = BlockAllocator(8)
    blocks = alloc.alloc_many(5)
    assert len(set(blocks)) == 5
    with pytest.raises(OutOfSpaceError):
        alloc.alloc_many(4)


def test_sequential_allocations_are_contiguous():
    alloc = BlockAllocator(100)
    blocks = alloc.alloc_many(10)
    assert blocks == list(range(10))


def test_mark_allocated():
    alloc = BlockAllocator(4)
    alloc.mark_allocated(2)
    assert alloc.is_allocated(2)
    remaining = {alloc.alloc() for _ in range(3)}
    assert remaining == {0, 1, 3}


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.sampled_from(["alloc", "free"]), min_size=1, max_size=200)
)
def test_allocator_never_hands_out_duplicates(ops):
    alloc = BlockAllocator(16)
    held = []
    for op in ops:
        if op == "alloc" and alloc.free_count:
            block = alloc.alloc()
            assert block not in held
            held.append(block)
        elif op == "free" and held:
            alloc.free(held.pop())
        assert alloc.used_count == len(held)
        assert alloc.free_count + alloc.used_count == 16

"""Unit tests for the cost-model configuration."""

import pytest

from repro.nvmm.config import BLOCK_SIZE, CACHELINE_SIZE, NVMMConfig, lines_spanned


def test_defaults_match_table2():
    cfg = NVMMConfig()
    assert cfg.nvmm_write_latency_ns == 200
    assert cfg.nvmm_write_bandwidth_bps == 1_000_000_000


def test_lines_spanned_aligned():
    assert lines_spanned(64) == 1
    assert lines_spanned(128) == 2
    assert lines_spanned(BLOCK_SIZE) == BLOCK_SIZE // CACHELINE_SIZE


def test_lines_spanned_unaligned_straddles():
    # Bytes 60..68 touch lines 0 and 1.
    assert lines_spanned(8, offset=60) == 2
    # The paper's example: a write to 0..112 touches lines 0 and 1.
    assert lines_spanned(112, offset=0) == 2


def test_lines_spanned_zero():
    assert lines_spanned(0) == 0


def test_writer_slots_default():
    # 1 GB/s at 200 ns/line (= 320 MB/s per writer) -> 3 slots.
    assert NVMMConfig().nvmm_writer_slots == 3


def test_writer_slots_scale_with_latency():
    # Longer latency -> slower per-writer stream -> more concurrent slots.
    slow = NVMMConfig().replace(nvmm_write_latency_ns=800)
    fast = NVMMConfig().replace(nvmm_write_latency_ns=50)
    assert slow.nvmm_writer_slots > NVMMConfig().nvmm_writer_slots
    assert fast.nvmm_writer_slots == 1


def test_load_cost_scales_with_bytes():
    cfg = NVMMConfig()
    assert cfg.load_cost_ns(0) == 0
    small = cfg.load_cost_ns(64)
    big = cfg.load_cost_ns(1 << 20)
    assert big > small
    # 1 MiB at 8 B/ns is ~131 us plus fixed latency.
    assert big == pytest.approx((1 << 20) / 8.0, rel=0.01)


def test_nvmm_persist_cost_linear_in_lines():
    cfg = NVMMConfig()
    assert cfg.nvmm_persist_cost_ns(1) == 200
    assert cfg.nvmm_persist_cost_ns(64) == 12_800
    assert cfg.nvmm_persist_cost_ns(0) == 0


def test_replace_makes_modified_copy():
    cfg = NVMMConfig()
    swept = cfg.replace(nvmm_write_latency_ns=800)
    assert swept.nvmm_write_latency_ns == 800
    assert cfg.nvmm_write_latency_ns == 200


def test_config_is_frozen():
    with pytest.raises(Exception):
        NVMMConfig().nvmm_write_latency_ns = 5

"""Golden-seed equivalence fence for the hot-path engine rewrite.

The PR 7 engine rewrite (slab data plane, flat-array cacheline state,
batch wakeups, disabled-trace fast path) must preserve *bit-identical*
virtual-time results: same seed => same SimStats counters, same
makespan, same trace-ring contents.  This suite pins those observables
as fixture JSON (``golden/hotpath_golden.json``) generated on the
pre-refactor engine, so any future hot-path edit that silently changes
virtual-time results fails here rather than drifting the paper's
figures.

The grid covers seed in {0, 1337}, writeback workers in {1, 4}, and
ring batch depth in {1, 8} (depth 0 = the sync syscall path) across all
five comparison stacks, plus the library-mode mmap data plane (depth
-1) on the stacks that support it -- those entries pin the mmio charge
accounting exactly, including the empty ``syscall_time_ns`` ledger.
Trace-ring contents are pinned as a SHA-256 over the canonicalised
span stream -- exact, but compact enough to check in.

Regenerate (only when an *intentional* virtual-time change lands, with
a changelog note)::

    PYTHONPATH=src python tests/engine/test_hotpath_equiv.py --regen
"""

import hashlib
import json
import os

import pytest

from repro.bench.runner import run_workload
from repro.core import HiNFSConfig
from repro.workloads.fio import FioWorkload, RingFioWorkload
from repro.workloads.mmio import MmapFioWorkload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "hotpath_golden.json")

STACKS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")

#: (fs, seed, workers, depth): depth 0 is the sync path, otherwise the
#: ring at that batch depth.  Every stack sees both seeds and both
#: depth classes; the worker axis only changes behaviour on hinfs, so
#: the full worker grid runs there.
CASES = [(fs, 0, 1, 0) for fs in STACKS] + \
        [(fs, 1337, 4, 8) for fs in STACKS] + [
    ("hinfs", 0, 4, 1),
    ("hinfs", 0, 4, 8),
    ("hinfs", 1337, 1, 1),
    ("pmfs", 0, 1, 8),
    # depth -1: MAP_ATOMIC mappings on the library-mode stacks.  These
    # pin the zero-syscall ledger and the mmio counters/spans exactly.
    ("hinfs", 0, 1, -1),
    ("pmfs", 1337, 1, -1),
    ("ext4-dax", 0, 1, -1),
    # Sharded mounts ("base@M"): M devices, each its own resource
    # domain, behind one VFS mount.  These pin the shard routing
    # layer's virtual-time results including the per-device
    # ``sharded_reqs@devN``/``nvmm_slot_grants@devN`` ledgers; the
    # single-device entries above stay bit-identical through the shard
    # refactor (domain-None devices bump no per-domain counters).
    ("hinfs@2", 0, 1, 0),
    ("hinfs@4", 1337, 4, 8),
    ("pmfs@2", 0, 1, 8),
]


def case_key(fs, seed, workers, depth):
    mech = "mmap" if depth < 0 else "d%d" % depth
    return "%s/seed%d/w%d/%s" % (fs, seed, workers, mech)


def run_case(fs, seed, workers, depth):
    """One deterministic traced run; returns its full fingerprint."""
    kwargs = dict(threads=2, ops_per_thread=50, io_size=4096,
                  file_size=256 << 10, read_fraction=1 / 3,
                  fsync_every=16, seed=seed)
    setup = None
    if depth < 0:
        workload = MmapFioWorkload(**kwargs)
        setup = workload.attach
    elif depth:
        workload = RingFioWorkload(batch_depth=depth, **kwargs)
    else:
        workload = FioWorkload(**kwargs)
    hc = HiNFSConfig(buffer_bytes=2 << 20, nr_writeback_workers=workers)
    result = run_workload(fs, workload, device_size=32 << 20,
                          hinfs_config=hc, trace_capacity=1 << 14,
                          setup=setup)
    stats = result.stats
    spans = [
        [sp.req_id, sp.name, sp.layer, sp.thread, sp.start_ns, sp.end_ns,
         [list(p) for p in sp.phases], repr(sp.meta)]
        for sp in result.trace.spans()
    ]
    span_blob = json.dumps(spans, separators=(",", ":")).encode()
    return {
        "ops": result.ops,
        "elapsed_ns": result.elapsed_ns,
        "counters": dict(stats.counters),
        "bytes_written_nvmm": stats.bytes_written_nvmm,
        "bytes_read_nvmm": stats.bytes_read_nvmm,
        "bytes_written_dram": stats.bytes_written_dram,
        "breakdown": stats.breakdown.as_dict(),
        "syscall_time_ns": dict(stats.syscall_time_ns),
        "syscall_counts": dict(stats.syscall_counts),
        "layer_time_ns": dict(stats.layer_time_ns),
        "span_count": len(spans),
        "spans_recorded": result.trace.recorded,
        "span_sha256": hashlib.sha256(span_blob).hexdigest(),
    }


def load_golden():
    with open(GOLDEN_PATH) as fileobj:
        return json.load(fileobj)


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail("golden fixture %s missing; regenerate with "
                    "PYTHONPATH=src python %s --regen"
                    % (GOLDEN_PATH, __file__))
    return load_golden()


@pytest.mark.parametrize("fs,seed,workers,depth", CASES,
                         ids=[case_key(*c) for c in CASES])
def test_virtual_time_results_match_golden(golden, fs, seed, workers, depth):
    key = case_key(fs, seed, workers, depth)
    assert key in golden, "no golden entry for %s (regen needed?)" % key
    got = run_case(fs, seed, workers, depth)
    want = golden[key]
    # Compare field by field so a mismatch names what drifted.
    for field in sorted(want):
        assert got[field] == want[field], (
            "%s: %s drifted\n  golden: %r\n  got:    %r"
            % (key, field, want[field], got[field])
        )
    assert sorted(got) == sorted(want)


def regen():
    out = {case_key(*case): run_case(*case) for case in CASES}
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as fileobj:
        json.dump(out, fileobj, indent=1, sort_keys=True)
        fileobj.write("\n")
    print("wrote %s (%d cases)" % (GOLDEN_PATH, len(out)))


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)

"""Tests for SimEnv, ExecContext, SimThread, and the min-clock scheduler."""

import pytest

from repro.engine.background import NEVER, BackgroundTask
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.engine.errors import SimulationError
from repro.engine.scheduler import Scheduler
from repro.engine.stats import CAT_OTHERS


def test_context_charge_advances_clock_and_stats():
    env = SimEnv()
    ctx = ExecContext(env, "t0")
    ctx.charge(120, "write_access")
    assert ctx.now == 120
    assert env.stats.breakdown.get("write_access") == 120


def test_context_sync_to_future_charges_wait():
    env = SimEnv()
    ctx = ExecContext(env, "t0")
    ctx.sync_to(500)
    assert ctx.now == 500
    assert env.stats.breakdown.get(CAT_OTHERS) == 500


def test_context_sync_to_past_is_noop():
    env = SimEnv()
    ctx = ExecContext(env, "t0")
    ctx.charge(100)
    ctx.sync_to(50)
    assert ctx.now == 100


def test_syscall_accounting():
    env = SimEnv()
    ctx = ExecContext(env, "t0")
    with ctx.syscall("write"):
        ctx.charge(300)
    assert env.stats.syscall_time_ns["write"] == 300
    assert env.stats.syscall_counts["write"] == 1


def test_resources_registry():
    env = SimEnv()
    res = env.add_resource("nvmm", 3)
    assert env.resource("nvmm") is res
    assert env.has_resource("nvmm")
    with pytest.raises(SimulationError):
        env.add_resource("nvmm", 1)
    with pytest.raises(SimulationError):
        env.resource("missing")


def test_scheduler_interleaves_min_clock_first():
    env = SimEnv()
    sched = Scheduler(env)
    order = []

    def body(cost, tag):
        def gen(ctx):
            for i in range(3):
                ctx.charge(cost)
                order.append((tag, i))
                yield

        return gen

    sched.spawn("fast", body(10, "fast"))
    sched.spawn("slow", body(100, "slow"))
    sched.run()
    # The fast thread should complete all its ops before the slow thread's
    # second op (clocks 10,20,30 vs 100,200,300).
    assert order.index(("fast", 2)) < order.index(("slow", 1))


def test_scheduler_elapsed_is_makespan():
    env = SimEnv()
    sched = Scheduler(env)

    def body(ctx):
        ctx.charge(250)
        yield

    sched.spawn("a", body)
    sched.spawn("b", body)
    assert sched.run() == 250
    assert sched.total_ops() == 2


def test_scheduler_deadline_stops_run():
    env = SimEnv()
    sched = Scheduler(env)

    def forever(ctx):
        while True:
            ctx.charge(100)
            yield

    thread = sched.spawn("t", forever)
    sched.run(until_ns=1_000)
    assert 1_000 <= thread.now <= 1_100


class _TickTask(BackgroundTask):
    """Fires every ``period`` ns and records when it ran."""

    def __init__(self, env, period):
        super().__init__(env, "tick")
        self.period = period
        self.next_tick = period
        self.fired_at = []

    def next_due_ns(self):
        return self.next_tick

    def run_due(self, horizon_ns):
        while self.next_tick <= horizon_ns:
            self.fired_at.append(self.next_tick)
            self.ctx.clock.advance_to(self.next_tick)
            self.next_tick += self.period


def test_background_task_advances_with_foreground():
    env = SimEnv()
    task = _TickTask(env, period=100)
    env.background.register(task)
    sched = Scheduler(env)

    def body(ctx):
        for _ in range(5):
            ctx.charge(100)
            yield

    sched.spawn("fg", body)
    sched.run()
    # Foreground reached 500; ticks at 100..400 must have fired (the tick
    # at 500 may or may not, depending on the final advance).
    assert task.fired_at[:4] == [100, 200, 300, 400]


def test_background_never_means_idle():
    env = SimEnv()

    class Idle(BackgroundTask):
        def next_due_ns(self):
            return NEVER

        def run_due(self, horizon_ns):  # pragma: no cover
            raise AssertionError("idle task must not run")

    env.background.register(Idle(env, "idle"))
    env.background.advance_to(10**12)  # must not raise


def test_background_no_progress_detected():
    env = SimEnv()

    class Stuck(BackgroundTask):
        def next_due_ns(self):
            return 0

        def run_due(self, horizon_ns):
            pass

    env.background.register(Stuck(env, "stuck"))
    with pytest.raises(SimulationError):
        env.background.advance_to(100)


# -- deadlock diagnostics ------------------------------------------------


def test_thread_diagnostic_captures_wait_label():
    from repro.engine.errors import ThreadDiagnostic

    env = SimEnv()
    ctx = ExecContext(env, "writer")
    ctx.charge(250)
    with ctx.waiting("journal space"):
        diag = ThreadDiagnostic.of(ctx)
    assert diag.name == "writer"
    assert diag.clock_ns == 250
    assert "journal space" in str(diag)
    # Outside the wait the label is cleared again.
    assert ThreadDiagnostic.of(ctx).waiting_on == "nothing"


def test_deadlock_error_renders_diagnostics_and_notes():
    from repro.engine.errors import DeadlockError, ThreadDiagnostic

    exc = DeadlockError(
        "no progress possible",
        diagnostics=[ThreadDiagnostic("fg", 10, "buffer space")],
        notes=["2 NVMM cacheline(s) are marked bad"],
    )
    text = str(exc)
    assert "no progress possible" in text
    assert "thread 'fg' at t=10ns waiting on buffer space" in text
    assert "note: 2 NVMM cacheline(s) are marked bad" in text
    exc.attach([ThreadDiagnostic("wb", 20, "nothing")])
    assert "thread 'wb'" in str(exc)


def test_scheduler_attaches_fleet_state_to_deadlock():
    from repro.engine.errors import DeadlockError, ThreadDiagnostic

    env = SimEnv()
    sched = Scheduler(env)

    def bystander(ctx):
        with ctx.waiting("lock /x"):
            ctx.charge(1000)
            yield

    def victim(ctx):
        raise DeadlockError("stuck", diagnostics=[ThreadDiagnostic.of(ctx)])
        yield  # pragma: no cover

    sched.spawn("bystander", bystander)
    sched.spawn("victim", victim)
    with pytest.raises(DeadlockError) as excinfo:
        sched.run()
    text = str(excinfo.value)
    # The raiser's own state plus the still-blocked bystander's.
    assert "thread 'victim'" in text
    assert "thread 'bystander'" in text and "lock /x" in text

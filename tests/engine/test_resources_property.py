"""Property tests for the gap-aware FCFS servers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.resources import FCFSServers


@settings(max_examples=80, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    requests=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000),
                  st.integers(min_value=0, max_value=500)),
        min_size=1,
        max_size=60,
    ),
)
def test_grants_never_overlap_beyond_capacity(capacity, requests):
    """At any instant, at most ``capacity`` reservations are active."""
    servers = FCFSServers(capacity)
    grants = []
    for request_ns, duration_ns in sorted(requests):
        grant = servers.reserve(request_ns, duration_ns)
        assert grant.start_ns >= request_ns
        assert grant.duration_ns == duration_ns
        if duration_ns:
            grants.append((grant.start_ns, grant.end_ns))
    events = []
    for start, end in grants:
        events.append((start, 1))
        events.append((end, -1))
    active = 0
    for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
        active += delta
        assert active <= capacity


@settings(max_examples=80, deadline=None)
@given(
    future=st.integers(min_value=10_000, max_value=100_000),
    small=st.integers(min_value=1, max_value=64),
)
def test_small_request_slips_into_gap_before_future_booking(future, small):
    """A booking far in the virtual future must not delay a small
    request happening now (the starvation bug the interval timelines
    fixed)."""
    servers = FCFSServers(1)
    servers.reserve(future, 1_000)
    grant = servers.reserve(0, small)
    assert grant.start_ns == 0
    assert grant.end_ns <= future or small > future


@settings(max_examples=60, deadline=None)
@given(durations=st.lists(st.integers(min_value=1, max_value=200),
                          min_size=2, max_size=40))
def test_sequential_single_client_is_contiguous(durations):
    """One client issuing back-to-back work gets a dense schedule."""
    servers = FCFSServers(3)
    now = 0
    for duration in durations:
        grant = servers.reserve(now, duration)
        assert grant.start_ns == now  # capacity 3, one client: no wait
        now = grant.end_ns
    assert now == sum(durations)


def test_interval_history_is_bounded():
    servers = FCFSServers(1)
    for i in range(10_000):
        servers.reserve(i * 10, 5)
    timeline = servers._servers[0]
    assert len(timeline.starts) <= 128

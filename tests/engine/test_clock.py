"""Unit tests for the virtual clock."""

import pytest

from repro.engine.clock import NS_PER_SEC, VirtualClock, format_ns
from repro.engine.errors import ClockError


def test_clock_starts_at_zero():
    assert VirtualClock().now == 0


def test_clock_starts_at_given_time():
    assert VirtualClock(42).now == 42


def test_advance_moves_forward():
    clock = VirtualClock()
    assert clock.advance(100) == 100
    assert clock.advance(50) == 150


def test_advance_rejects_negative():
    with pytest.raises(ClockError):
        VirtualClock().advance(-1)


def test_advance_to_future():
    clock = VirtualClock(10)
    assert clock.advance_to(25) == 25


def test_advance_to_past_is_noop():
    clock = VirtualClock(100)
    assert clock.advance_to(50) == 100


def test_advance_zero_is_noop():
    clock = VirtualClock(7)
    assert clock.advance(0) == 7


def test_format_ns_units():
    assert format_ns(5) == "5ns"
    assert format_ns(1_500) == "1.500us"
    assert format_ns(2_000_000) == "2.000ms"
    assert format_ns(3 * NS_PER_SEC) == "3.000s"


def test_repr_mentions_time():
    assert "us" in repr(VirtualClock(1500))

"""Unit tests for FCFS timed resources (the NVMM writer-slot model)."""

import pytest

from repro.engine.errors import SimulationError
from repro.engine.resources import FCFSServers


def test_single_server_serialises_requests():
    servers = FCFSServers(1)
    first = servers.reserve(0, 100)
    second = servers.reserve(0, 100)
    assert (first.start_ns, first.end_ns) == (0, 100)
    assert (second.start_ns, second.end_ns) == (100, 200)
    assert second.wait_ns == 100


def test_two_servers_run_in_parallel():
    servers = FCFSServers(2)
    first = servers.reserve(0, 100)
    second = servers.reserve(0, 100)
    assert first.start_ns == 0
    assert second.start_ns == 0


def test_third_request_queues_behind_two_servers():
    servers = FCFSServers(2)
    servers.reserve(0, 100)
    servers.reserve(0, 100)
    third = servers.reserve(0, 50)
    assert third.start_ns == 100
    assert third.end_ns == 150


def test_late_request_starts_at_request_time():
    servers = FCFSServers(1)
    servers.reserve(0, 10)
    grant = servers.reserve(500, 10)
    assert grant.start_ns == 500
    assert grant.wait_ns == 0


def test_zero_duration_reservation():
    servers = FCFSServers(1)
    grant = servers.reserve(5, 0)
    assert grant.start_ns == grant.end_ns == 5


def test_negative_duration_rejected():
    with pytest.raises(SimulationError):
        FCFSServers(1).reserve(0, -1)


def test_capacity_must_be_positive():
    with pytest.raises(SimulationError):
        FCFSServers(0)


def test_utilisation_accounting():
    servers = FCFSServers(2)
    servers.reserve(0, 100)
    servers.reserve(0, 100)
    assert servers.utilisation(100) == pytest.approx(1.0)
    assert servers.utilisation(200) == pytest.approx(0.5)


def test_reset_clears_timeline():
    servers = FCFSServers(1)
    servers.reserve(0, 1000)
    servers.reset()
    grant = servers.reserve(0, 10)
    assert grant.start_ns == 0


def test_earliest_free_tracks_min_server():
    servers = FCFSServers(2)
    servers.reserve(0, 100)
    assert servers.earliest_free_ns() == 0
    servers.reserve(0, 50)
    assert servers.earliest_free_ns() == 50


def test_wait_accumulates():
    servers = FCFSServers(1)
    servers.reserve(0, 100)
    servers.reserve(0, 100)
    servers.reserve(0, 100)
    assert servers.total_wait_ns == 100 + 200
    assert servers.total_grants == 3

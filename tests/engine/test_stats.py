"""Unit tests for statistics accumulation."""

import pytest

from repro.engine.stats import SimStats, TimeBreakdown


def test_breakdown_accumulates():
    bd = TimeBreakdown()
    bd.add("write_access", 100)
    bd.add("write_access", 50)
    bd.add("others", 50)
    assert bd.get("write_access") == 150
    assert bd.total() == 200


def test_breakdown_fractions():
    bd = TimeBreakdown()
    bd.add("a", 75)
    bd.add("b", 25)
    fr = bd.fractions()
    assert fr["a"] == pytest.approx(0.75)
    assert fr["b"] == pytest.approx(0.25)


def test_breakdown_empty_fractions():
    assert TimeBreakdown().fractions() == {}


def test_breakdown_zero_add_ignored():
    bd = TimeBreakdown()
    bd.add("a", 0)
    assert bd.as_dict() == {}


def test_breakdown_merge():
    a = TimeBreakdown()
    a.add("x", 10)
    b = TimeBreakdown()
    b.add("x", 5)
    b.add("y", 1)
    a.merge(b)
    assert a.get("x") == 15
    assert a.get("y") == 1


def test_stats_counters():
    stats = SimStats()
    stats.bump("buffer_hits")
    stats.bump("buffer_hits", 2)
    assert stats.count("buffer_hits") == 3
    assert stats.count("missing") == 0


def test_stats_throughput():
    stats = SimStats()
    stats.ops_completed = 500
    assert stats.throughput_ops_per_sec(1_000_000_000) == pytest.approx(500.0)
    assert stats.throughput_ops_per_sec(0) == 0.0


def test_stats_summary_is_plain_data():
    stats = SimStats()
    stats.bump("c")
    stats.add_time("write_access", 7)
    stats.add_syscall_time("fsync", 9)
    summary = stats.summary()
    assert summary["counters"] == {"c": 1}
    assert summary["breakdown"] == {"write_access": 7}
    assert summary["syscall_time_ns"] == {"fsync": 9}
    assert summary["syscall_counts"] == {"fsync": 1}

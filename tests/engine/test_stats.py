"""Unit tests for statistics accumulation and the shared exact-percentile
and fairness helpers."""

import pytest

from repro.engine.stats import (
    SimStats,
    TimeBreakdown,
    fairness_spread,
    jain_index,
    percentile,
    percentiles,
)


def test_nearest_rank_percentile_small_sets():
    # Classic nearest-rank: rank = ceil(p/100 * n), value from the set.
    assert percentile([15, 20, 35, 40, 50], 30) == 20
    assert percentile([15, 20, 35, 40, 50], 40) == 20
    assert percentile([15, 20, 35, 40, 50], 50) == 35
    assert percentile([15, 20, 35, 40, 50], 100) == 50
    assert percentile([7], 1) == 7
    assert percentile([7], 99.9) == 7


def test_percentiles_one_sort_many_ps():
    samples = list(range(1000, 0, -1))  # unsorted on purpose
    out = percentiles(samples, (50, 99, 99.9))
    assert out == {50: 500, 99: 990, 99.9: 999}
    # p999 only reaches the true maximum once n >= 1000.
    assert percentiles(list(range(1, 1002)), (99.9,))[99.9] == 1000


def test_percentile_always_an_element():
    samples = [3, 1, 4, 1, 5, 9, 2, 6]
    for p in (1, 10, 25, 50, 75, 90, 99, 99.9, 100):
        assert percentile(samples, p) in samples


def test_percentiles_validates_input():
    with pytest.raises(ValueError):
        percentiles([])
    with pytest.raises(ValueError):
        percentiles([1], (0,))
    with pytest.raises(ValueError):
        percentiles([1], (101,))


def test_fairness_spread_edges():
    assert fairness_spread([]) == 1.0
    assert fairness_spread([0, 0]) == 1.0
    assert fairness_spread([5, 5, 5]) == 1.0
    assert fairness_spread([10, 5]) == 2.0
    assert fairness_spread([10, 0]) == float("inf")


def test_jain_index_edges():
    assert jain_index([]) == 1.0
    assert jain_index([0, 0]) == 1.0
    assert jain_index([4, 4, 4, 4]) == 1.0
    assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)


def test_breakdown_accumulates():
    bd = TimeBreakdown()
    bd.add("write_access", 100)
    bd.add("write_access", 50)
    bd.add("others", 50)
    assert bd.get("write_access") == 150
    assert bd.total() == 200


def test_breakdown_fractions():
    bd = TimeBreakdown()
    bd.add("a", 75)
    bd.add("b", 25)
    fr = bd.fractions()
    assert fr["a"] == pytest.approx(0.75)
    assert fr["b"] == pytest.approx(0.25)


def test_breakdown_empty_fractions():
    assert TimeBreakdown().fractions() == {}


def test_breakdown_zero_add_ignored():
    bd = TimeBreakdown()
    bd.add("a", 0)
    assert bd.as_dict() == {}


def test_breakdown_merge():
    a = TimeBreakdown()
    a.add("x", 10)
    b = TimeBreakdown()
    b.add("x", 5)
    b.add("y", 1)
    a.merge(b)
    assert a.get("x") == 15
    assert a.get("y") == 1


def test_stats_counters():
    stats = SimStats()
    stats.bump("buffer_hits")
    stats.bump("buffer_hits", 2)
    assert stats.count("buffer_hits") == 3
    assert stats.count("missing") == 0


def test_stats_throughput():
    stats = SimStats()
    stats.ops_completed = 500
    assert stats.throughput_ops_per_sec(1_000_000_000) == pytest.approx(500.0)
    assert stats.throughput_ops_per_sec(0) == 0.0


def test_stats_summary_is_plain_data():
    stats = SimStats()
    stats.bump("c")
    stats.add_time("write_access", 7)
    stats.add_syscall_time("fsync", 9)
    summary = stats.summary()
    assert summary["counters"] == {"c": 1}
    assert summary["breakdown"] == {"write_access": 7}
    assert summary["syscall_time_ns"] == {"fsync": 9}
    assert summary["syscall_counts"] == {"fsync": 1}

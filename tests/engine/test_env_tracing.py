"""``SimEnv.enable_tracing``: the documented idempotency contract.

Two layers (a benchmark runner and a debugging harness, say) may both
call ``enable_tracing`` defensively.  The contract pinned here: a
second call with the *same* capacity and layer set returns the
existing ring untouched -- spans already recorded survive -- while a
call with a *different* configuration is an explicit reset that
replaces the ring and discards its history.
"""

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.obs.trace import LAYER_NVMM, LAYER_VFS


def _record_syscall(env, name="open"):
    ctx = ExecContext(env, "tracer")
    with ctx.syscall(name):
        ctx.charge(100)


def test_same_config_returns_existing_ring_with_history():
    env = SimEnv()
    ring = env.enable_tracing(capacity=64)
    _record_syscall(env)
    assert ring.recorded == 1
    again = env.enable_tracing(capacity=64)
    assert again is ring
    assert env.trace is ring
    assert again.recorded == 1 and len(again) == 1


def test_layer_filter_compares_as_a_set():
    env = SimEnv()
    ring = env.enable_tracing(capacity=32, layers=(LAYER_VFS, LAYER_NVMM))
    _record_syscall(env)
    # Iterable type and order must not matter: the filter is a set.
    assert env.enable_tracing(capacity=32,
                              layers=[LAYER_NVMM, LAYER_VFS]) is ring
    assert ring.recorded == 1


def test_different_capacity_is_an_explicit_reset():
    env = SimEnv()
    ring = env.enable_tracing(capacity=16)
    _record_syscall(env)
    fresh = env.enable_tracing(capacity=32)
    assert fresh is not ring
    assert env.trace is fresh
    assert fresh.capacity == 32
    assert fresh.recorded == 0 and len(fresh) == 0


def test_different_layer_set_is_an_explicit_reset():
    env = SimEnv()
    ring = env.enable_tracing(capacity=16)
    _record_syscall(env)
    fresh = env.enable_tracing(capacity=16, layers=(LAYER_VFS,))
    assert fresh is not ring
    assert fresh.recorded == 0
    assert fresh.enabled_layers == frozenset([LAYER_VFS])
    # And a third call matching the new config sticks to it.
    assert env.enable_tracing(capacity=16, layers=(LAYER_VFS,)) is fresh

"""Virtual-time lock primitives: exclusion, reader overlap, accounting.

The locks never suspend a generator -- *blocking* is advancing the
waiter's virtual clock to the holder's release point -- so these tests
assert on clock positions and the SimStats lock counters.
"""

import pytest

from repro.engine import InodeLockTable, VMutex, VRWLock
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.engine.errors import DeadlockError
from repro.obs.trace import LAYER_LOCK, LAYER_VFS


@pytest.fixture
def env():
    return SimEnv()


def ctx_at(env, name, now):
    return ExecContext(env, name, start_ns=now)


class TestVMutex:
    def test_uncontended_acquire_is_free(self, env):
        m = VMutex(env, "m")
        a = ctx_at(env, "a", 100)
        m.acquire(a)
        assert a.now == 100
        assert m.owner == "a"
        assert env.stats.count("lock_acquisitions") == 1
        assert env.stats.count("lock_contentions") == 0
        m.release(a)
        assert m.owner is None

    def test_writer_writer_exclusion(self, env):
        m = VMutex(env, "m")
        a = ctx_at(env, "a", 0)
        b = ctx_at(env, "b", 10)
        m.acquire(a)
        a.charge(100)  # critical section: 0..100
        m.release(a)
        m.acquire(b)  # b arrived at t=10, must wait until a released
        assert b.now == 100
        assert env.stats.count("lock_contentions") == 1
        assert env.stats.count("lock_wait_ns") == 90
        assert m.contentions == 1
        assert m.wait_ns_total == 90

    def test_held_context_manager_releases(self, env):
        m = VMutex(env, "m")
        a = ctx_at(env, "a", 0)
        with m.held(a):
            a.charge(50)
        b = ctx_at(env, "b", 60)
        m.acquire(b)  # after the release point: no wait
        assert b.now == 60


class TestVRWLock:
    def test_readers_overlap(self, env):
        rw = VRWLock(env, "rw")
        r1 = ctx_at(env, "r1", 0)
        r2 = ctx_at(env, "r2", 5)
        rw.acquire_read(r1)
        r1.charge(100)
        rw.acquire_read(r2)  # concurrent with r1: no wait
        assert r2.now == 5
        rw.release_read(r2)
        rw.release_read(r1)
        assert env.stats.count("lock_contentions") == 0

    def test_writer_excludes_readers(self, env):
        rw = VRWLock(env, "rw")
        w = ctx_at(env, "w", 0)
        r = ctx_at(env, "r", 10)
        rw.acquire_write(w)
        w.charge(80)  # writing until t=80
        rw.release_write(w)
        rw.acquire_read(r)
        assert r.now == 80

    def test_writer_waits_for_readers_and_writers(self, env):
        rw = VRWLock(env, "rw")
        r = ctx_at(env, "r", 0)
        rw.acquire_read(r)
        r.charge(60)
        rw.release_read(r)
        w = ctx_at(env, "w", 20)
        rw.acquire_write(w)  # must wait out the reader
        assert w.now == 60
        w.charge(40)
        rw.release_write(w)
        w2 = ctx_at(env, "w2", 30)
        rw.acquire_write(w2)  # and a later writer waits out the writer
        assert w2.now == 100

    def test_reader_does_not_wait_for_reader(self, env):
        rw = VRWLock(env, "rw")
        r1 = ctx_at(env, "r1", 0)
        rw.acquire_read(r1)
        r1.charge(1000)
        rw.release_read(r1)
        r2 = ctx_at(env, "r2", 10)
        rw.acquire_read(r2)
        assert r2.now == 10  # _read_free_at never gates readers

    def test_contended_wait_is_a_lock_phase_on_the_span(self, env):
        env.enable_tracing(16)
        rw = VRWLock(env, "rw")
        w = ctx_at(env, "w", 0)
        rw.acquire_write(w)
        w.charge(500)
        rw.release_write(w)
        b = ctx_at(env, "b", 100)
        with b.span("write", layer=LAYER_VFS):
            rw.acquire_write(b)
            rw.release_write(b)
        assert b.now == 500
        assert env.stats.layer_time_ns[LAYER_LOCK] == 400
        spans = env.trace.spans()
        phases = [(layer, enter, exit) for sp in spans
                  for layer, enter, exit in sp.phases
                  if layer == LAYER_LOCK]
        assert len(phases) == 1
        assert phases[0][2] - phases[0][1] == 400


class TestInodeLockTable:
    def test_lock_is_lazily_created_and_dropped(self, env):
        table = InodeLockTable(env)
        lock = table.lock(7)
        assert table.lock(7) is lock
        table.drop(7)
        assert table.lock(7) is not lock

    def test_write_locked_tracks_held_locks(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        with table.write_locked(a, 3):
            assert a.held_locks == [(3, "write")]
        assert a.held_locks == []

    def test_recursive_acquisition_is_diagnosed(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        with table.write_locked(a, 3):
            with pytest.raises(DeadlockError, match="recursive inode lock"):
                with table.read_locked(a, 3):
                    pass

    def test_abba_order_violation_is_diagnosed(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        with table.write_locked(a, 9):
            with pytest.raises(DeadlockError,
                               match="lock-order violation"):
                with table.write_locked(a, 4):
                    pass
        # The failed acquisition must not leak into held_locks.
        assert a.held_locks == []

    def test_abba_diagnostics_name_both_inodes(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        with table.write_locked(a, 9):
            with pytest.raises(DeadlockError) as exc:
                with table.write_locked(a, 4):
                    pass
        text = str(exc.value)
        assert "inode 4" in text and "inode 9" in text
        assert "lowest-inode-first" in text

    def test_write_locked_many_sorts_to_canonical_order(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        with table.write_locked_many(a, (9, 4, 9)):
            assert a.held_locks == [(4, "write"), (9, "write")]
        assert a.held_locks == []

    def test_two_threads_same_inode_serialise(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        b = ctx_at(env, "b", 10)
        with table.write_locked(a, 5):
            a.charge(200)
        with table.write_locked(b, 5):
            assert b.now == 200

    def test_two_threads_disjoint_inodes_overlap(self, env):
        table = InodeLockTable(env)
        a = ctx_at(env, "a", 0)
        b = ctx_at(env, "b", 10)
        with table.write_locked(a, 5):
            a.charge(200)
        with table.write_locked(b, 6):
            assert b.now == 10
        assert env.stats.count("lock_contentions") == 0

"""Tests for the command-line entry points."""

import io
import os
import tempfile
from contextlib import redirect_stdout

import pytest

from repro import cli, tracetool


def run_cli(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = cli.main(argv)
    return code, out.getvalue()


def test_cli_list():
    code, out = run_cli(["--list"])
    assert code == 0
    for name in ("fig1", "fig7", "fig13", "abl-policy"):
        assert name in out


def test_cli_no_args_lists():
    code, out = run_cli([])
    assert code == 0
    assert "fig1" in out


def test_cli_unknown_experiment():
    code, _ = run_cli(["fig99"])
    assert code == 2


def test_cli_runs_smallest_experiment():
    code, out = run_cli(["fig2", "--no-check"])
    assert code == 0
    assert "Figure 2" in out
    assert "tpcc" in out


def test_cli_trace_exports_chrome_json(tmp_path):
    import json

    out_file = str(tmp_path / "trace.json")
    code, out = run_cli(["trace", "--fs", "hinfs",
                         "--workload", "fileserver", "-o", out_file])
    assert code == 0
    assert "MISMATCH" not in out  # per-layer sums equal the stats totals
    with open(out_file) as fileobj:
        doc = json.load(fileobj)
    events = doc["traceEvents"]
    assert events
    assert {e["ph"] for e in events} <= {"X", "M"}
    for event in events:
        if event["ph"] == "X":
            assert event["cat"] in ("vfs", "fs", "writeback", "nvmm")
            assert event["args"]["dur_ns"] >= 0


def test_tracetool_synth_stats_roundtrip(tmp_path):
    trace_file = str(tmp_path / "t.trace")
    assert tracetool.main(["synth", "lasr", "-o", trace_file,
                           "--ops", "300"]) == 0
    out = io.StringIO()
    with redirect_stdout(out):
        assert tracetool.main(["stats", trace_file]) == 0
    assert "fsync bytes:    0.0%" in out.getvalue()


def test_tracetool_replay(tmp_path):
    trace_file = str(tmp_path / "t.trace")
    tracetool.main(["synth", "facebook", "-o", trace_file, "--ops", "200"])
    out = io.StringIO()
    with redirect_stdout(out):
        assert tracetool.main(["replay", trace_file, "--fs", "pmfs",
                               "--device-mb", "64"]) == 0
    assert "simulated elapsed" in out.getvalue()

"""Tests for the experiment runner and registry plumbing."""

import pytest

from repro.bench.experiments.common import SCALES, SMALL, personality_kwargs
from repro.bench.registry import EXPERIMENTS
from repro.bench.runner import FS_NAMES, build_stack, run_workload
from repro.engine.env import SimEnv
from repro.nvmm.config import NVMMConfig
from repro.workloads.filebench import Fileserver
from repro.workloads.fio import FioWorkload


@pytest.mark.parametrize("fs_name", FS_NAMES)
def test_build_stack_every_fs(fs_name):
    env = SimEnv()
    fs, vfs = build_stack(env, fs_name, NVMMConfig(), 32 << 20)
    from repro.engine.context import ExecContext

    ctx = ExecContext(env, "t")
    vfs.write_file(ctx, "/x", b"hello")
    assert vfs.read_file(ctx, "/x") == b"hello"


def test_build_stack_unknown_fs():
    with pytest.raises(ValueError):
        build_stack(SimEnv(), "zfs", NVMMConfig(), 32 << 20)


def test_run_workload_measures_only_after_prepare():
    workload = FioWorkload(io_size=4096, file_size=1 << 20, ops_per_thread=50)
    result = run_workload("pmfs", workload, device_size=32 << 20)
    # Prepare wrote 1 MiB but measurement starts afterwards: the measured
    # NVMM write bytes reflect only the fio ops (plus journaling).
    assert result.stats.bytes_written_nvmm < 1 << 20
    assert result.ops >= 50
    assert result.elapsed_ns > 0
    assert result.throughput > 0


def test_run_workload_duration_deadline():
    workload = Fileserver(threads=1, files_per_thread=5,
                          duration_ops=1_000_000)
    result = run_workload("pmfs", workload, device_size=64 << 20,
                          duration_ns=20_000_000)
    assert result.elapsed_ns <= 40_000_000  # one op past the deadline


def test_run_workload_deterministic():
    def once():
        workload = Fileserver(threads=2, files_per_thread=5, duration_ops=10)
        return run_workload("hinfs", workload, device_size=64 << 20)

    first, second = once(), once()
    assert first.ops == second.ops
    assert first.elapsed_ns == second.elapsed_ns
    assert first.stats.bytes_written_nvmm == second.stats.bytes_written_nvmm


def test_run_workload_unmount_drains():
    workload = Fileserver(threads=1, files_per_thread=5, duration_ops=5)
    kept = run_workload("hinfs", workload, device_size=64 << 20)
    workload = Fileserver(threads=1, files_per_thread=5, duration_ops=5)
    drained = run_workload("hinfs", workload, device_size=64 << 20,
                           unmount=True)
    assert drained.stats.bytes_written_nvmm >= kept.stats.bytes_written_nvmm


def test_sync_mount_makes_writes_eager():
    workload = Fileserver(threads=1, files_per_thread=5, duration_ops=5)
    result = run_workload("hinfs", workload, device_size=64 << 20,
                          sync_mount=True)
    assert result.stats.count("hinfs_sync_writes") > 0
    assert result.stats.count("hinfs_lazy_writes") == 0


def test_registry_lists_every_paper_figure():
    assert set(EXPERIMENTS) == {
        "fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "abl-policy", "abl-watermark", "scale", "ring",
        "mmap", "chaos", "simspeed", "tenants", "shard",
    }
    for module in EXPERIMENTS.values():
        assert hasattr(module, "run")
        assert hasattr(module, "check_shape")


def test_scales_expose_paper_ratios():
    assert set(SCALES) == {"small", "medium"}
    for scale in SCALES.values():
        assert scale.buffer_bytes < scale.device_size
        assert scale.hinfs_config().buffer_bytes == scale.buffer_bytes


def test_personality_kwargs_cover_all():
    for name in ("fileserver", "webserver", "webproxy", "varmail"):
        kwargs = personality_kwargs(SMALL, name)
        assert kwargs["files_per_thread"] > 0
    with pytest.raises(ValueError):
        personality_kwargs(SMALL, "dbserver")


def test_fsync_byte_fraction_zero_without_writes():
    workload = FioWorkload(io_size=64, file_size=1 << 20, read_fraction=1.0,
                           ops_per_thread=10)
    result = run_workload("pmfs", workload, device_size=32 << 20)
    assert result.fsync_byte_fraction == 0.0

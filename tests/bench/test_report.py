"""Unit tests for the report tables and series."""

import pytest

from repro.bench.report import Series, Table, normalise


def test_table_formats_aligned():
    table = Table("Title", ["a", "bb"])
    table.add_row(1, 2.5)
    table.add_row("long-cell", 0.123)
    text = table.format()
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a" in lines[2] and "bb" in lines[2]
    assert "long-cell" in text
    assert "0.123" in text


def test_table_rejects_wrong_arity():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_column_access():
    table = Table("t", ["x", "y"])
    table.add_row(1, 10)
    table.add_row(2, 20)
    assert table.column("x") == ["1", "2"]


def test_table_float_formatting():
    table = Table("t", ["v"])
    table.add_row(12345.6)
    table.add_row(3.14159)
    table.add_row(0.001234)
    col = table.column("v")
    assert col[0] == "12346"
    assert col[1] == "3.14"
    assert col[2] == "0.001"


def test_series():
    series = Series("s")
    series.add(1, 10.0)
    series.add(2, 20.0)
    assert series.xs() == [1, 2]
    assert series.ys() == [10.0, 20.0]


def test_normalise():
    assert normalise([2.0, 4.0], 2.0) == [1.0, 2.0]
    assert normalise([1.0], 0) == [0.0]


def test_str_is_format():
    table = Table("t", ["a"])
    table.add_row("x")
    assert str(table) == table.format()

"""errseq semantics: exactly-once per fd, unseen errors visible to new
descriptors, and persistence of unreported errors across remount."""

import pytest

from repro.bench.runner import build_stack
from repro.engine.background import BackgroundRegistry
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults.errseq import ErrseqMap
from repro.fs import flags as f
from repro.fs.errors import MediaError
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig


def test_many_readers_each_see_the_error_exactly_once():
    errs = ErrseqMap()
    errs.record(3)
    cursors = {reader: errs.sample(3) for reader in range(4)}
    # Sampled while unseen: every reader's first check reports.
    for reader in range(4):
        hit, cursors[reader] = errs.check(3, cursors[reader])
        assert hit, reader
    # ... and never a second time.
    for reader in range(4):
        hit, cursors[reader] = errs.check(3, cursors[reader])
        assert not hit, reader


def test_unseen_error_samples_as_zero_seen_as_current():
    errs = ErrseqMap()
    errs.record(9)
    assert errs.sample(9) == 0  # nobody has reported it yet
    assert errs.unseen() == [9]
    hit, cursor = errs.check(9, errs.sample(9))
    assert hit
    assert errs.sample(9) == cursor  # seen: later opens start clean
    assert errs.unseen() == []
    # A fresh error clears the SEEN mark again.
    errs.record(9)
    assert errs.sample(9) == 0


def test_drop_forgets_sequence_and_seen():
    errs = ErrseqMap()
    errs.record(5)
    errs.check(5, 0)
    errs.drop(5)
    assert errs.pending() == []
    hit, _ = errs.check(5, 0)
    assert not hit


class _Rig:
    def __init__(self, fs_name="pmfs"):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.fs, self.vfs = build_stack(self.env, fs_name, self.config,
                                        32 << 20)
        self.ctx = ExecContext(self.env, "t")

    def remount(self):
        device = self.fs.device
        self.fs.unmount(self.ctx)
        self.env.background = BackgroundRegistry()
        self.fs = type(self.fs).mount(self.env, device, self.config)
        self.vfs = VFS(self.env, self.fs, self.config)


def test_fd_opened_after_unreported_error_still_sees_it():
    rig = _Rig()
    rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
    ino = rig.fs.lookup(rig.ctx, 1, "a")
    rig.fs.note_wb_error(ino)
    # No descriptor has reported the loss; a brand-new one must.
    fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.fsync(rig.ctx, fd)  # exactly once
    # Once reported, later descriptors open clean.
    fd2 = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    rig.vfs.fsync(rig.ctx, fd2)
    rig.vfs.close(rig.ctx, fd2)
    rig.vfs.close(rig.ctx, fd)


def test_fd_opened_while_degraded_ro_still_sees_unseen_error():
    """A tenant whose fd opens during DEGRADED_RO inherits the unSEEN
    writeback error: degradation must not retire an unreported loss."""
    rig = _Rig()
    rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
    ino = rig.fs.lookup(rig.ctx, 1, "a")
    rig.fs.note_wb_error(ino)
    rig.vfs.health.force_degraded(0, "test: media error budget spent")
    assert not rig.vfs.health.writable
    # Opening an existing file without O_TRUNC is a read-side operation
    # and succeeds on a read-only mount.
    fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.fsync(rig.ctx, fd)  # exactly once per fd
    # The report flipped the SEEN bit: descriptors opened afterwards
    # (still degraded) sample the current cursor and stay quiet.
    fd2 = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    rig.vfs.fsync(rig.ctx, fd2)
    rig.vfs.close(rig.ctx, fd2)
    rig.vfs.close(rig.ctx, fd)


def test_unreported_error_survives_remount():
    rig = _Rig()
    rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
    ino = rig.fs.lookup(rig.ctx, 1, "a")
    rig.fs.note_wb_error(ino)
    rig.remount()
    # Same device, new mount: the unacknowledged loss is still on file.
    assert rig.fs.wb_err.unseen() == [ino]
    fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.close(rig.ctx, fd)


def test_reported_error_is_retired_across_remount():
    rig = _Rig()
    rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
    fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    ino = rig.fs.lookup(rig.ctx, 1, "a")
    rig.fs.note_wb_error(ino)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.close(rig.ctx, fd)
    rig.remount()
    fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
    rig.vfs.fsync(rig.ctx, fd)  # seen before the remount: stays quiet
    rig.vfs.close(rig.ctx, fd)

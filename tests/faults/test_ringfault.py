"""Ring-targeted fault injection: failed SQEs and mid-chain crashes."""

import pytest

from repro.bench.runner import build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults import RingCrash, RingFaultInjector
from repro.fs import flags as f
from repro.fs.errors import MediaError
from repro.io import ring as uring
from repro.nvmm.config import NVMMConfig


def make_rig(fs_name="hinfs"):
    env = SimEnv()
    fs, vfs = build_stack(env, fs_name, NVMMConfig(), 48 << 20)
    ctx = ExecContext(env, "ringfault-test")
    return env, fs, vfs, ctx


def test_failing_the_nth_sqe_turns_it_into_eio():
    env, fs, vfs, ctx = make_rig()
    fd = vfs.open(ctx, "/f", f.O_CREAT | f.O_RDWR)
    ring = vfs.ring(ctx)
    ring.faults = RingFaultInjector().arm_fail(1)
    cqes = ring.submit_and_wait([
        uring.prep_write(fd, b"ok", 0),
        uring.prep_write(fd, b"doomed", 64),
        uring.prep_write(fd, b"fine", 128),
    ])
    assert [c.ok for c in cqes] == [True, False, True]
    assert cqes[1].res == -MediaError.errno
    assert isinstance(cqes[1].error, MediaError)
    assert env.stats.count("ring_fault_injections") == 1


def test_injected_failure_cancels_the_linked_chain():
    env, fs, vfs, ctx = make_rig()
    fd = vfs.open(ctx, "/f", f.O_CREAT | f.O_RDWR)
    ring = vfs.ring(ctx)
    ring.faults = RingFaultInjector().arm_fail(0)
    cqes = ring.submit_and_wait([
        uring.prep_write(fd, b"doomed", 0, flags=uring.IOSQE_IO_LINK),
        uring.prep_fsync(fd),
    ])
    assert cqes[0].res == -MediaError.errno
    assert cqes[1].res == -uring.ECANCELED
    assert env.stats.count("ring_link_cancels") == 1


def test_max_hits_limits_the_injection():
    env, fs, vfs, ctx = make_rig()
    fd = vfs.open(ctx, "/f", f.O_CREAT | f.O_RDWR)
    ring = vfs.ring(ctx)
    ring.faults = RingFaultInjector(fail_seqs=(0, 1), max_hits=1)
    cqes = ring.submit_and_wait([uring.prep_write(fd, b"a", 0),
                                 uring.prep_write(fd, b"b", 16)])
    assert [c.ok for c in cqes] == [False, True]
    assert ring.faults.hits == 1


def test_crash_between_linked_write_and_fsync():
    """Power fails after the write's CQE exists but before its linked
    fsync runs: the write was acknowledged, nothing was persisted."""
    env, fs, vfs, ctx = make_rig()
    fd = vfs.open(ctx, "/f", f.O_CREAT | f.O_RDWR)
    ino = vfs.fstat(ctx, fd).ino
    ring = vfs.ring(ctx)
    ring.faults = RingFaultInjector(crash_after_seq=0)
    with pytest.raises(RingCrash) as exc:
        ring.submit([uring.prep_write(fd, b"x" * 4096, 0,
                                      flags=uring.IOSQE_IO_LINK),
                     uring.prep_fsync(fd)])
    assert exc.value.seq == 0
    # Only the write executed; the linked fsync never ran.
    assert ring.faults.observed == [(0, "write")]
    assert env.stats.count("hinfs_fsyncs") == 0
    # The acknowledged write's CQE is reapable, and -- fsync having never
    # run -- the data still sits in the DRAM buffer, i.e. it would be
    # lost by the crash. That is exactly the window the link closes.
    (cqe,) = ring.peek()
    assert cqe.res == 4096
    assert list(fs.buffer.file_blocks(ino))


def test_crash_after_full_chain_sees_durable_data():
    env, fs, vfs, ctx = make_rig()
    fd = vfs.open(ctx, "/f", f.O_CREAT | f.O_RDWR)
    ino = vfs.fstat(ctx, fd).ino
    ring = vfs.ring(ctx)
    ring.faults = RingFaultInjector(crash_after_seq=1)
    with pytest.raises(RingCrash):
        ring.submit([uring.prep_write(fd, b"x" * 4096, 0,
                                      flags=uring.IOSQE_IO_LINK),
                     uring.prep_fsync(fd)])
    # Both ops ran before the cut; the buffer is clean.
    assert ring.faults.observed == [(0, "write"), (1, "fsync")]
    assert not list(fs.buffer.file_blocks(ino))
    assert env.stats.count("hinfs_fsyncs") == 1

"""Crash-point exploration of the library-mode mmio epoch log.

Every log-append, epoch-commit and checkpoint boundary of the
``MMIO_OPS`` sequence becomes a crash point (plus sampled cache
evictions and torn 8-byte-word states); recovery must always produce
the pre- or post-epoch image, never a blend.  Disabling the log's entry
CRCs is the negative control: a torn append then parses as a valid
record with garbage bytes and the explorer must catch the corruption.
"""

import pytest

from repro.faults.crashpoints import (
    MMIO_OPS,
    CrashPointExplorer,
    run_crashcheck,
)


@pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
def test_mmio_ops_all_crash_states_consistent(fs_kind):
    explorer = CrashPointExplorer(fs_kind, seed=0,
                                  eviction_samples_per_op=8,
                                  torn_samples_per_op=8)
    report = explorer.explore(MMIO_OPS)
    report.raise_if_failed()
    assert report.events > 0 and report.boundaries > 0
    # The sequence exercises both log policies and every mmap-family op.
    kinds = {op[0] for op in MMIO_OPS}
    assert {"mmap", "mstore", "msync_m", "munmap"} <= kinds
    policies = {op[2] for op in MMIO_OPS if op[0] == "mmap"}
    assert policies == {"undo", "redo"}
    # Torn-write states were actually sampled inside the mmio windows.
    assert sum(report.torn_draws.values()) > 0


def test_mmio_negative_control_checksums_off_catches_torn_append():
    """With log entry CRCs disabled, recovery replays garbage bytes
    reconstructed from a torn log append; the explorer must flag the
    corrupted pre-image.  The checksums-on run above is the positive
    control for the identical sequence."""
    broken = CrashPointExplorer("pmfs", seed=0,
                                eviction_samples_per_op=8,
                                torn_samples_per_op=48,
                                mmio_log_checksums=False).explore(MMIO_OPS)
    assert broken.failures, "torn mmio log replay went undetected"
    assert any(v.torn is not None for v in broken.failures)


def test_run_crashcheck_threads_the_mmio_knob():
    reports = run_crashcheck(fs_kinds=("pmfs",), seed=3,
                             eviction_samples_per_op=4,
                             torn_samples_per_op=4, ops=MMIO_OPS)
    assert len(reports) == 1
    reports[0].raise_if_failed()

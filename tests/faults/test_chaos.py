"""Chaos campaign engine: zero unrecovered violations, full recovery,
and seed-for-seed determinism of fault sites and outcomes."""

import pytest

from repro.faults.chaos import (
    CHAOS_STACKS,
    TORN_CRASH_STACKS,
    run_campaign,
)


@pytest.mark.parametrize("fs_name", CHAOS_STACKS)
def test_campaign_recovers_every_stack(fs_name):
    result = run_campaign(fs_name, seed=0, rounds=1)
    assert result["violations"] == []
    assert result["final_state"] == "healthy"
    # The degradation leg forced remount-ro and a clean scrub recovered.
    transitions = [(frm, to) for frm, to, _at, _why in
                   result["health_history"]]
    assert ("healthy", "degraded_ro") in transitions
    assert ("degraded_ro", "healthy") in transitions
    assert result["mttr_ns"] is not None and result["mttr_ns"] > 0
    # Every bad line the scrubber found was either repaired or isolated.
    assert result["bad_lines_found"] > 0
    handled = result["repaired_lines"] + result["isolated_lines"]
    assert handled == result["bad_lines_found"]
    # Injected faults actually exercised the retry machinery.
    assert result["fault_lines"] and result["transient_lines"]
    assert result["stats"]["media_retries"] > 0
    assert result["stats"]["ring_fault_injections"] > 0
    assert result["stats"]["ring_sqe_retry_successes"] > 0


@pytest.mark.parametrize("fs_name", TORN_CRASH_STACKS)
def test_torn_crash_leg_runs_on_persistent_memory_stacks(fs_name):
    result = run_campaign(fs_name, seed=0, rounds=1)
    torn = result["torn"]
    assert torn is not None
    assert torn["words"]  # a strict subset of the line's words persisted
    assert result["violations"] == []


def test_block_stacks_skip_the_torn_leg():
    result = run_campaign("ext2-nvmmbd", seed=0, rounds=1)
    assert result["torn"] is None


@pytest.mark.parametrize("fs_name", ["pmfs", "hinfs"])
def test_same_seed_reproduces_sites_outcomes_and_stats(fs_name):
    a = run_campaign(fs_name, seed=11, rounds=1)
    b = run_campaign(fs_name, seed=11, rounds=1)
    # The whole result is reproducible: fault sites, torn-line choice,
    # recovery outcomes, health history, and every stats counter.
    assert a == b


def test_bench_experiment_runs_and_shape_checks():
    from repro.bench.experiments import chaos_campaign

    tables, data = chaos_campaign.run(file_systems=("pmfs", "ext2-nvmmbd"),
                                      rounds=1)
    chaos_campaign.check_shape(data)
    (table,) = tables
    assert [row[0] for row in table.rows] == ["pmfs", "ext2-nvmmbd"]


def test_different_seed_diverges():
    a = run_campaign("pmfs", seed=0, rounds=1)
    b = run_campaign("pmfs", seed=1, rounds=1)
    assert (a["fault_lines"], a["transient_lines"], a["torn"]) != (
        b["fault_lines"], b["transient_lines"], b["torn"])

"""Request-targeted fault injection through the unified I/O pipeline."""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.faults import RequestFaultInjector
from repro.fs import flags as f
from repro.fs.errors import MediaError

from tests.fs.conftest import PmfsRig


def make_rig():
    rig = PmfsRig(size=32 << 20, fs_cls=HiNFS,
                  hconfig=HiNFSConfig(buffer_bytes=2 << 20))
    rig.fs.request_faults = RequestFaultInjector()
    return rig


@pytest.fixture()
def rig():
    return make_rig()


def test_injector_arm_disarm_and_max_hits():
    injector = RequestFaultInjector(max_hits=1)
    injector.check(None)  # untagged blocks are never hit
    injector.check(7)  # unarmed
    injector.arm(7)
    assert injector.armed == frozenset({7})
    with pytest.raises(MediaError):
        injector.check(7)
    injector.check(7)  # max_hits exhausted
    assert injector.hits == 1
    injector.disarm(7)
    assert injector.armed == frozenset()


def test_buffered_blocks_carry_the_last_request_id(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"a" * 64)
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    (block,) = rig.fs.buffer.file_blocks(ino)
    first = block.last_req_id
    assert first is not None
    rig.vfs.pwrite(rig.ctx, fd, 64, b"b" * 64)
    assert block.last_req_id > first  # rewrite re-tags the block


def test_armed_request_fails_foreground_fsync(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"x" * 4096)
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    (block,) = rig.fs.buffer.file_blocks(ino)
    rig.fs.request_faults.arm(block.last_req_id)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)
    # Foreground EIO: the data stays buffered for a retry, and once the
    # fault is disarmed the retry succeeds.
    assert rig.fs.buffer.file_blocks(ino)
    rig.fs.request_faults.disarm(block.last_req_id)
    rig.vfs.fsync(rig.ctx, fd)
    assert not rig.fs.buffer.file_blocks(ino)
    assert rig.vfs.pread(rig.ctx, fd, 0, 4096) == b"x" * 4096


def test_armed_request_writeback_records_deferred_error(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"y" * 4096)
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    (block,) = rig.fs.buffer.file_blocks(ino)
    rig.fs.request_faults.arm(block.last_req_id)
    # Background-style flush: nobody to raise at, so the error lands in
    # the inode's errseq and the block's unpersistable data is dropped.
    rig.fs.flush_blocks(rig.ctx, [block], record_errors=True)
    assert rig.env.stats.count("hinfs_wb_media_errors") == 1
    assert not rig.fs.buffer.file_blocks(ino)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)  # errseq: reported exactly once per fd
    rig.vfs.fsync(rig.ctx, fd)


def test_unarmed_requests_are_untouched(rig):
    rig.fs.request_faults.arm(999_999)
    fd = rig.vfs.open(rig.ctx, "/ok", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"fine")
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.fs.request_faults.hits == 0


def test_writeback_spans_tag_flushed_request_ids(rig):
    """With tracing on, writeback batch spans carry the req_ids whose
    buffered data they persist -- the join key for targeted injection."""
    ring = rig.env.enable_tracing()
    fd = rig.vfs.open(rig.ctx, "/t", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"z" * 4096)
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    (block,) = rig.fs.buffer.file_blocks(ino)
    req_id = block.last_req_id
    rig.fs.writeback._flush_batch(rig.fs.writeback.ctx, "test", [block])
    wb_spans = [s for s in ring.spans() if s.layer == "writeback"]
    assert wb_spans
    assert wb_spans[-1].meta == {"cause": "test", "req_ids": [req_id]}
    # The foreground span for the pwrite carries the same request id.
    assert any(s.req_id == req_id and s.name == "write"
               for s in ring.spans())


def test_crashpoint_explorer_maps_ops_to_request_ids():
    from repro.faults.crashpoints import CrashPointExplorer

    ops = (
        ("create", "/a"),
        ("append", "/a", 2000),
        ("fsync", "/a"),
        ("mkdir", "/d"),
    )
    report = CrashPointExplorer("hinfs", eviction_samples_per_op=4).explore(ops)
    report.raise_if_failed()
    # The data-path ops (append's pwrite, plus stat-free ops issue none)
    # are mapped to the request ids they consumed.
    assert 1 in report.op_request_ids
    first, last = report.op_request_ids[1]
    assert first <= last
    # Namespace-only ops allocate no data-path requests.
    assert 3 not in report.op_request_ids

"""Crash-point gates for the cross-shard rename protocol.

The explorer (:mod:`repro.faults.shardcrash`) crashes a cross-shard
``rename(2)`` at every protocol boundary, remounts the whole sharded
stack from the devices' persistent images, and checks the recovery
contract.  These tests pin not just "it passed" but *which* name the
file recovers to at each boundary: before the target-shard link commits
the source name survives (roll back), after it the destination does
(roll forward) -- never zero, never both.
"""

import pytest

from repro.faults.shardcrash import (
    BOUNDARIES,
    _pick_names,
    explore_cross_shard_rename,
)

#: boundary -> which side of the commit point it recovers to.
ROLLS_BACK = ("intent", "copy", "copied")
ROLLS_FORWARD = ("linked", "unlinked")


@pytest.mark.parametrize("base", ["hinfs", "pmfs"])
def test_plain_migration_recovers_to_the_expected_name(base):
    report = explore_cross_shard_rename(base, nshards=2, with_victim=False)
    report.raise_if_failed()
    by_boundary = {case["boundary"]: case for case in report.cases}
    # "victim-unlinked" only exists for a cross-shard replacement.
    assert set(by_boundary) == set(BOUNDARIES) - {"victim-unlinked"}
    src, dst = _pick_names(2)
    for boundary in ROLLS_BACK:
        assert by_boundary[boundary]["recovered_to"] == src, by_boundary
    for boundary in ROLLS_FORWARD:
        assert by_boundary[boundary]["recovered_to"] == dst, by_boundary
    # Exactly one name at every point: never both, never neither.
    for case in report.cases:
        assert case["old_present"] != case["new_present"], case


def test_misplaced_victim_exercises_the_cross_shard_unlink():
    # The victim sits on the *source* shard (residue of an in-place
    # rename), so the protocol must unlink it cross-shard -- the
    # "victim-unlinked" boundary only this shape reaches.
    report = explore_cross_shard_rename("hinfs", nshards=2,
                                        with_victim="misplaced")
    report.raise_if_failed()
    boundaries = {case["boundary"] for case in report.cases}
    assert "victim-unlinked" in boundaries
    # Replacing rename: the destination name must resolve at EVERY
    # crash point (to the old victim before the point of no return, to
    # the moved file after) -- rename-over never loses the name.
    assert all(case["new_present"] for case in report.cases), report.cases


def test_hash_placed_victim_is_replaced_by_the_inner_journal():
    report = explore_cross_shard_rename("pmfs", nshards=4,
                                        with_victim="same")
    report.raise_if_failed()
    assert all(case["new_present"] for case in report.cases), report.cases
    # The same-shard victim is replaced at the link step itself, so the
    # cross-shard unlink boundary never fires.
    assert "victim-unlinked" not in {c["boundary"] for c in report.cases}


def test_report_raise_if_failed_names_the_violations():
    report = explore_cross_shard_rename("pmfs", nshards=2)
    assert report.passed
    d = report.as_dict()
    assert d["passed"] and not d["violations"]
    assert len(d["cases"]) == len(BOUNDARIES) - 1

"""Crash-point explorer acceptance tests (deterministic, seeded)."""

import pytest

from repro.faults.crashpoints import (
    DEFAULT_OPS,
    EV_PERSIST,
    EV_STORE,
    CrashPointExplorer,
    ShadowImage,
    TapeRecorder,
)
from repro.nvmm.config import CACHELINE_SIZE

SHORT_OPS = (
    ("create", "/a"),
    ("append", "/a", 1200),
    ("rename", "/a", "/b"),
    ("unlink", "/b"),
)


class TestShadowImage:
    def test_store_is_volatile_until_persist(self):
        shadow = ShadowImage(b"\0" * (4 * CACHELINE_SIZE))
        shadow.apply((EV_STORE, 10, b"xyz"))
        assert shadow.crash_image()[10:13] == b"\0\0\0"
        assert 0 in shadow.dirty
        shadow.apply((EV_PERSIST, 10, b"xyz"))
        assert shadow.crash_image()[10:13] == b"xyz"
        assert not shadow.dirty

    def test_eviction_overlays_dirty_line(self):
        shadow = ShadowImage(b"\0" * (4 * CACHELINE_SIZE))
        shadow.apply((EV_STORE, CACHELINE_SIZE, b"q" * 8))
        image = shadow.crash_image(evict_lines=(1,))
        assert image[CACHELINE_SIZE:CACHELINE_SIZE + 8] == b"q" * 8
        # The un-evicted view is unchanged.
        assert shadow.crash_image()[CACHELINE_SIZE] == 0

    def test_store_spanning_lines(self):
        shadow = ShadowImage(b"\0" * (4 * CACHELINE_SIZE))
        data = bytes(range(100))
        shadow.apply((EV_STORE, CACHELINE_SIZE - 20, data))
        assert sorted(shadow.dirty) == [0, 1, 2]
        image = shadow.crash_image(evict_lines=(0, 1, 2))
        assert image[CACHELINE_SIZE - 20:CACHELINE_SIZE + 80] == data


class TestTapeRecorder:
    def test_disabled_recorder_drops_events(self):
        tape = TapeRecorder()
        tape.on_cached_write(0, b"a")
        tape.enabled = False
        tape.on_persist(0, b"a")
        tape.on_fence(None)
        assert len(tape.events) == 1 and not tape.boundaries


class TestExplorerAcceptance:
    """Every flush/fence boundary of the mixed sequence recovers clean."""

    @pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
    def test_default_ops_all_states_consistent(self, fs_kind):
        explorer = CrashPointExplorer(fs_kind, seed=0,
                                      eviction_samples_per_op=64)
        report = explorer.explore(DEFAULT_OPS)
        report.raise_if_failed()
        assert report.events > 0
        assert report.boundaries > 0
        # The sequence exercises the op kinds the issue names.
        kinds = {op[0] for op in DEFAULT_OPS}
        assert {"create", "append", "rename", "unlink"} <= kinds
        # Every op whose window produced tape events drew its full quota
        # of sampled eviction subsets; ops that emit no events (a PMFS
        # fsync is a bare fence) legitimately draw zero.
        assert len(report.eviction_draws) == len(DEFAULT_OPS)
        for op_index, draws in report.eviction_draws.items():
            assert draws in (0, 64), (op_index, draws)
        assert sum(report.eviction_draws.values()) >= 64 * 10

    def test_same_seed_same_exploration(self):
        a = CrashPointExplorer("pmfs", seed=7,
                               eviction_samples_per_op=8).explore(SHORT_OPS)
        b = CrashPointExplorer("pmfs", seed=7,
                               eviction_samples_per_op=8).explore(SHORT_OPS)
        a.raise_if_failed()
        assert (a.events, a.boundaries, a.states_checked, a.states_deduped,
                a.eviction_draws) == (b.events, b.boundaries,
                                      b.states_checked, b.states_deduped,
                                      b.eviction_draws)

    def test_rejects_unknown_fs(self):
        with pytest.raises(ValueError):
            CrashPointExplorer("ext4")
